"""Setup shim: enables legacy editable installs (`pip install -e .`) in
offline environments whose setuptools cannot build PEP 660 wheels."""

from setuptools import setup

setup()
