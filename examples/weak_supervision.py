"""Weak supervision: Logic-LNCL on labeling functions instead of humans.

The paper's Discussion (§VIII) observes that LNCL methods transfer to weak
supervision, where annotation "sources" are programs (labeling functions,
LFs) rather than crowd workers. An LF's sparse votes form exactly the
instance × source label matrix the crowd model expects, so the whole
framework — confusion matrices per source, Eq. 13 inference, logic-rule
distillation — runs unchanged.

This example labels the synthetic sentiment corpus with:
* two keyword LFs (polarity lexicon hits),
* three noisy "heuristic" LFs of varying coverage/accuracy,

then trains Logic-LNCL on the LF votes alone (no human labels) and
compares against majority-vote-over-LFs.

Run:  python examples/weak_supervision.py
"""

import numpy as np

from repro.baselines import TrainerConfig, TwoStageClassifier
from repro.core import LogicLNCLClassifier, sentiment_paper_config
from repro.data import SentimentCorpusConfig, make_sentiment_task
from repro.eval import accuracy, posterior_accuracy
from repro.inference import MajorityVote
from repro.logic import ButRule
from repro.models import TextCNN, TextCNNConfig
from repro.weak_supervision import KeywordLF, NoisyOracleLF, apply_labeling_functions


def main() -> None:
    rng = np.random.default_rng(21)
    config = SentimentCorpusConfig(num_train=800, num_dev=200, num_test=200, embedding_dim=32)
    task = make_sentiment_task(rng, config)

    # Keyword LFs over subsets of the polarity lexicons (a real LF would
    # only know *some* sentiment words).
    pos_ids = [task.vocab.id_of(f"pos{i}") for i in range(0, config.num_positive_words, 2)]
    neg_ids = [task.vocab.id_of(f"neg{i}") for i in range(0, config.num_negative_words, 2)]
    lfs = [
        KeywordLF("positive-lexicon", pos_ids, label=1),
        KeywordLF("negative-lexicon", neg_ids, label=0),
        NoisyOracleLF("heuristic-high-precision", task.train.labels, 2,
                      coverage=0.3, accuracy=0.9, rng=rng),
        NoisyOracleLF("heuristic-broad", task.train.labels, 2,
                      coverage=0.8, accuracy=0.65, rng=rng),
        NoisyOracleLF("heuristic-weak", task.train.labels, 2,
                      coverage=0.5, accuracy=0.55, rng=rng),
    ]

    print("Applying labeling functions ...")
    crowd = apply_labeling_functions(lfs, task.train)
    task.train.crowd = crowd
    coverage = crowd.observed_mask.any(axis=1).mean()
    print(f"  coverage: {100 * coverage:.1f}% of instances got >= 1 vote; "
          f"{crowd.total_annotations()} votes total")

    print("Training Logic-LNCL on LF votes ...")
    trainer = LogicLNCLClassifier(
        TextCNN(task.embeddings, TextCNNConfig(feature_maps=32), rng),
        sentiment_paper_config(epochs=12),
        rng,
        rule=ButRule(task.but_id),
    )
    trainer.fit(task.train, dev=task.dev)

    print("Training MV-over-LFs baseline ...")
    baseline = TwoStageClassifier(
        TextCNN(task.embeddings, TextCNNConfig(feature_maps=32), rng),
        MajorityVote(),
        TrainerConfig(epochs=12),
        rng,
    )
    baseline.fit(task.train, dev=task.dev)

    test = task.test
    print()
    print(f"{'method':<28}{'test accuracy':>14}")
    print("-" * 42)
    print(f"{'MV over LFs + classifier':<28}"
          f"{accuracy(test.labels, baseline.predict(test.tokens, test.lengths)):>14.4f}")
    print(f"{'Logic-LNCL (teacher)':<28}"
          f"{accuracy(test.labels, trainer.predict_teacher(test.tokens, test.lengths)):>14.4f}")
    print()
    print("Per-source reliability estimated by Eq. 12 (diagonal means):")
    for lf, confusion in zip(lfs, trainer.confusions_):
        reliability = float(np.diag(confusion).mean())
        print(f"  {lf.name:<26} {reliability:.3f}")
    print("\nThe high-precision heuristic should earn the highest estimated")
    print("reliability and the weak one the lowest — the framework discovers")
    print("source quality without any ground truth.")


if __name__ == "__main__":
    main()
