"""Authoring your own PSL rules and plugging them into Logic-LNCL.

The framework accepts *any* first-order soft-logic rule in the PSL
formalism (paper §III-A). This example shows the three layers of the rule
API:

1. the generic engine — build formulas with ``&``, ``|``, ``~``, ``>>``
   and evaluate Łukasiewicz soft truth values (the paper's Eq. 3-4 voting
   example);
2. the posterior-regularization closed form (Eq. 15) applied to an
   arbitrary penalty you compute from your own rules;
3. a custom groundable rule driving an actual Logic-LNCL training run —
   here a *negation-aware* variant of the "but" rule that also treats
   "however" as a (lower-weight) contrast marker.

Run:  python examples/custom_rules.py
"""

import numpy as np

from repro.core import LogicLNCLClassifier, sentiment_paper_config
from repro.crowd import sample_annotator_pool, simulate_classification_crowd
from repro.data import SentimentCorpusConfig, make_sentiment_task
from repro.eval import accuracy
from repro.logic import Atom, ButRule, Rule, RuleSet, distill_posterior
from repro.models import TextCNN, TextCNNConfig


def part1_generic_engine() -> None:
    print("1) Generic PSL engine — the paper's voting rule (Eq. 3):")
    friend = Atom("friend(B,A)")
    votes_a = Atom("votesFor(A,P)")
    votes_b = Atom("votesFor(B,P)")
    rule = Rule("voting", (friend & votes_a) >> votes_b, weight=1.0)
    interpretation = {"friend(B,A)": 1.0, "votesFor(A,P)": 0.9, "votesFor(B,P)": 0.4}
    print(f"   rule value v = {rule.value(interpretation):.2f}   "
          f"distance to satisfaction d = {rule.distance_to_satisfaction(interpretation):.2f}")

    rules = RuleSet([rule, Rule("prior", ~Atom("votesFor(B,P)") >> Atom("abstains(B)"), 0.3)])
    interpretation["abstains(B)"] = 0.2
    print(f"   aggregate penalty Σ w·(1-v) = {rules.penalty(interpretation):.2f}")


def part2_posterior_regularization() -> None:
    print("\n2) Eq. 15 closed form — projecting a posterior onto rules:")
    qa = np.array([[0.55, 0.45], [0.5, 0.5]])
    # Suppose our rules penalize class 1 on the first instance only.
    penalties = np.array([[0.0, 0.8], [0.0, 0.0]])
    qb = distill_posterior(qa, penalties, C=5.0)
    for i in range(2):
        print(f"   qa={qa[i]} → qb={np.round(qb[i], 3)}")


class ContrastRule:
    """Custom groundable rule: 'but' (w=1.0) OR 'however' (w=0.5) contrast.

    Any object with a ``penalties(tokens, lengths, predict_proba) → (B, K)``
    method can be passed to :class:`LogicLNCLClassifier` as the rule; this
    one composes the library's :class:`ButRule` for both trigger words,
    taking the elementwise maximum of the two penalty fields (a grounded
    sentence is constrained by its strongest applicable rule).
    """

    def __init__(self, but_id: int, however_id: int, num_classes: int = 2) -> None:
        self.strong = ButRule(but_id, num_classes=num_classes, weight=1.0)
        self.weak = ButRule(however_id, num_classes=num_classes, weight=0.5)

    def penalties(self, tokens, lengths, predict_proba):
        strong = self.strong.penalties(tokens, lengths, predict_proba)
        weak = self.weak.penalties(tokens, lengths, predict_proba)
        return np.maximum(strong, weak)


def part3_custom_rule_in_training() -> None:
    print("\n3) Custom rule inside Logic-LNCL training:")
    rng = np.random.default_rng(3)
    task = make_sentiment_task(
        rng, SentimentCorpusConfig(num_train=500, num_dev=150, num_test=150, embedding_dim=32)
    )
    pool = sample_annotator_pool(rng, 30, 2)
    task.train.crowd = simulate_classification_crowd(rng, task.train.labels, pool, 5.0)

    results = {}
    for label, rule in (
        ("but only (paper)", ButRule(task.but_id)),
        ("but + however (custom)", ContrastRule(task.but_id, task.however_id)),
    ):
        trainer = LogicLNCLClassifier(
            TextCNN(task.embeddings, TextCNNConfig(feature_maps=24), np.random.default_rng(0)),
            sentiment_paper_config(epochs=10),
            np.random.default_rng(1),
            rule=rule,
        )
        trainer.fit(task.train, dev=task.dev)
        score = accuracy(
            task.test.labels,
            trainer.predict_teacher(task.test.tokens, task.test.lengths),
        )
        results[label] = score
        print(f"   {label:<26} teacher accuracy = {score:.4f}")
    print("   ('however' has weaker dominance in the corpus, so the custom")
    print("    rule's extra groundings trade precision for coverage.)")


if __name__ == "__main__":
    part1_generic_engine()
    part2_posterior_regularization()
    part3_custom_rule_in_training()
