"""Comparing eight truth-inference methods on one simulated crowd.

The two-stage LNCL pipeline (paper Fig. 1, upper path) lives or dies by
its aggregation step. This example sweeps crowd difficulty — redundancy
(labels per instance) and annotator quality — and shows where the
model-based methods (DS, GLAD, IBCC) pull away from heuristics (MV, PM,
CATD), mirroring the Table II "Truth Inference" block.

Run:  python examples/truth_inference_comparison.py
"""

import numpy as np

from repro.crowd import AnnotatorPool, sample_confusion_matrix, simulate_classification_crowd
from repro.eval import posterior_accuracy
from repro.inference import available_methods, build_method_table


def make_pool(rng: np.random.Generator, num_annotators: int, spammer_fraction: float) -> AnnotatorPool:
    """Pool with a controllable fraction of near-random spammers."""
    confusions = np.zeros((num_annotators, 2, 2))
    for j in range(num_annotators):
        if rng.random() < spammer_fraction:
            accuracy_level = rng.uniform(0.40, 0.55)
        else:
            accuracy_level = rng.uniform(0.75, 0.95)
        confusions[j] = sample_confusion_matrix(rng, accuracy_level, 2)
    activity = (rng.permutation(num_annotators) + 1.0) ** -1.1
    return AnnotatorPool(confusions, activity)


def main() -> None:
    # Every registered classification method, in registration order — a
    # newly registered method joins the comparison with no edits here.
    methods = build_method_table(available_methods("classification"), kind="classification")
    print(f"{'redundancy':>10} {'spammers':>9} | " + " ".join(f"{m:>7}" for m in methods))
    print("-" * 75)
    for redundancy in (2.0, 4.0, 6.0):
        for spammer_fraction in (0.1, 0.4):
            rng = np.random.default_rng(42)
            truth = rng.integers(0, 2, size=1500)
            pool = make_pool(rng, 50, spammer_fraction)
            crowd = simulate_classification_crowd(
                rng, truth, pool, mean_labels_per_instance=redundancy
            )
            row = []
            for method in methods.values():
                result = method.infer(crowd)
                row.append(posterior_accuracy(truth, result.posterior))
            cells = " ".join(f"{100 * v:7.2f}" for v in row)
            print(f"{redundancy:>10.1f} {spammer_fraction:>9.1f} | {cells}")
    print()
    print("Expected shape (as in the paper's Table II block): the confusion-")
    print("matrix methods (DS, IBCC) dominate when spammers are common and")
    print("redundancy is low; everything converges as redundancy grows.")


if __name__ == "__main__":
    main()
