"""Out-of-core, multi-core Dawid–Skene over on-disk shard handles.

Walks through the shard-and-merge pipeline end to end:

1. simulate a classification crowd too annotator-heavy to be trivial;
2. write it to disk once as a row-sorted shard file and describe it with
   row-range :class:`~repro.crowd.sharding.ShardHandle`\\ s — small
   picklable records, not data;
3. run sharded DS three ways — serial, and over a 2-worker process pool
   both via ``workers=2`` and via a caller-owned executor — where each
   worker memmaps the shard file itself and per-round model state is
   broadcast once per pass;
4. compare every run against in-memory batch DS: the sharded posteriors
   agree with batch to ~1e-15, and the three sharded runs are
   *bit-identical* to each other (deterministic tree reduce).

Run:  PYTHONPATH=src python examples/sharded_parallel_ds.py
"""

import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import numpy as np

from repro.crowd import sample_annotator_pool, simulate_classification_crowd
from repro.crowd.sharding import save_shard_handles
from repro.inference import DawidSkene, run_sharded


def timed(label, fn):
    start = time.perf_counter()
    result = fn()
    print(f"  {label}: {(time.perf_counter() - start) * 1e3:7.1f} ms")
    return result


def main() -> None:
    rng = np.random.default_rng(11)

    # 1. A synthetic crowd: 5000 instances, 47 annotators, 9 classes.
    print("Simulating the crowd ...")
    pool = sample_annotator_pool(rng, num_annotators=47, num_classes=9)
    truth = rng.integers(0, 9, size=5000)
    crowd = simulate_classification_crowd(rng, truth, pool, mean_labels_per_instance=4)

    with tempfile.TemporaryDirectory() as tmp:
        # 2. One shard file on disk, four row-range handles over it. Only
        #    the handles (path + range + dims) ever cross a pickle
        #    boundary; workers open their own memmaps.
        handles = save_shard_handles(crowd, Path(tmp) / "crowd.npy", num_shards=4)
        print(f"Wrote {len(handles)} shard handles over one "
              f"{os.path.getsize(handles[0].path) / 1024:.0f} KiB file")

        # 3. Batch DS (whole crowd in memory) vs the sharded twins.
        print(f"Running DS four ways ({os.cpu_count()} CPU core(s) here):")
        batch = timed("batch, in-memory      ",
                      lambda: DawidSkene().infer(crowd))
        serial = timed("sharded, serial       ",
                       lambda: run_sharded("DS", handles))
        workers = timed("sharded, workers=2    ",
                        lambda: run_sharded("DS", handles, workers=2))
        with ProcessPoolExecutor(max_workers=2) as pool_executor:
            shared = timed("sharded, own executor ",
                           lambda: run_sharded("DS", handles, executor=pool_executor))

    # 4. The contracts: sharded matches batch to float round-off, and the
    #    three sharded runs match each other bit for bit.
    diff = np.abs(serial.posterior - batch.posterior).max()
    print(f"sharded vs batch posterior:   max |diff| = {diff:.2e}")
    assert diff < 1e-10
    assert serial.extras["iterations"] == batch.extras["iterations"]
    for label, run in (("workers=2", workers), ("own executor", shared)):
        identical = np.array_equal(serial.posterior, run.posterior)
        print(f"sharded serial vs {label}: bit-identical = {identical}")
        assert identical
    print("All equivalence checks passed.")


if __name__ == "__main__":
    main()
