"""Named-entity recognition from a noisy crowd, with transition-rule logic.

The paper's second instantiation: a CNN+GRU tagger learns CoNLL-style BIO
tags from crowd annotations that contain ignore / boundary / span-type
errors. The Eq. 18-19 transition rules ("I-X must follow B-X or I-X") are
distilled into the learning targets through the chain-DP version of Eq. 15,
and applied again at test time by the teacher predictor.

This example shows:
* how sequential truth inference (HMM-Crowd) compares with token-level MV;
* how the rules repair invalid BIO transitions the student still produces;
* the student/teacher gap on strict span F1.

Run:  python examples/ner_crowdsourcing.py
"""

import numpy as np

from repro.core import LogicLNCLSequenceTagger, ner_paper_config
from repro.crowd import sample_ner_pool, sequence_annotator_report, simulate_ner_crowd
from repro.data import CONLL_LABELS, NERCorpusConfig, make_ner_task
from repro.eval import span_f1_score
from repro.inference import HMMCrowd, MajorityVote, TokenLevelInference
from repro.logic import bio_transition_rules
from repro.models import NERTagger, NERTaggerConfig


def count_invalid_transitions(sequences) -> int:
    """Count I-X tags whose predecessor is neither B-X nor I-X."""
    bad = 0
    for seq in sequences:
        previous = "O"
        for tag in seq:
            name = CONLL_LABELS[int(tag)]
            if name.startswith("I-") and previous not in (f"B-{name[2:]}", name):
                bad += 1
            previous = name
    return bad


def main() -> None:
    rng = np.random.default_rng(11)

    print("Generating the synthetic CoNLL-style corpus ...")
    task = make_ner_task(
        rng, NERCorpusConfig(num_train=400, num_dev=120, num_test=120, embedding_dim=32)
    )

    print("Simulating the NER crowd (ignore / boundary / span-type errors) ...")
    pool = sample_ner_pool(rng, num_annotators=20)
    task.train.crowd = simulate_ner_crowd(
        rng, task.train.tags, pool, mean_labels_per_instance=4.0
    )
    report = sequence_annotator_report(task.train.crowd, task.train.tags)
    active = report.counts >= 3
    print(
        f"  annotator span F1 ranges {report.quality[active].min():.2f}"
        f"–{report.quality[active].max():.2f} (paper: 0.176–0.891)"
    )

    print("Aggregation-only comparison on the training set:")
    mv = TokenLevelInference(MajorityVote()).infer(task.train.crowd)
    hmm = HMMCrowd(max_iterations=15).infer(task.train.crowd)
    for name, result in (("token MV", mv), ("HMM-Crowd", hmm)):
        f1 = span_f1_score(task.train.tags, result.hard_labels()).f1
        print(f"  {name:<12} span F1 = {f1:.4f}")

    print("Training Logic-LNCL (CNN+GRU + BIO transition rules) ...")
    config = ner_paper_config(epochs=12)
    config.learning_rate = 1e-2  # scaled task trains faster at 1e-2
    trainer = LogicLNCLSequenceTagger(
        NERTagger(task.embeddings, NERTaggerConfig(conv_features=64, gru_hidden=32), rng),
        config,
        rng,
        rules=bio_transition_rules(CONLL_LABELS),
    )
    trainer.fit(task.train, dev=task.dev)

    test = task.test
    student = trainer.predict_student(test.tokens, test.lengths)
    teacher = trainer.predict_teacher(test.tokens, test.lengths)

    print()
    print(f"{'predictor':<22}{'span F1':>10}{'invalid I-X transitions':>28}")
    print("-" * 60)
    print(
        f"{'student p(t|x)':<22}{span_f1_score(test.tags, student).f1:>10.4f}"
        f"{count_invalid_transitions(student):>28d}"
    )
    print(
        f"{'teacher (Eq. 15 DP)':<22}{span_f1_score(test.tags, teacher).f1:>10.4f}"
        f"{count_invalid_transitions(teacher):>28d}"
    )
    inference_f1 = span_f1_score(
        task.train.tags, [q.argmax(axis=1) for q in trainer.inference_posterior()]
    ).f1
    print(f"\nqf(t) inference span F1 on the training set: {inference_f1:.4f}")
    print("The teacher's chain decoding should eliminate invalid transitions")
    print("and raise precision, as in the paper's Table III.")


if __name__ == "__main__":
    main()
