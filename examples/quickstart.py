"""Quickstart: train Logic-LNCL on a simulated sentiment crowd.

Walks through the full pipeline in ~30 seconds on a laptop CPU:

1. generate a synthetic sentiment corpus with "A-but-B" structure;
2. simulate a heterogeneous MTurk-style crowd labeling the training split;
3. train Logic-LNCL (Kim-CNN + the "but" rule, paper Table I config);
4. compare the student and teacher predictors against majority voting.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.baselines import TrainerConfig, TwoStageClassifier
from repro.core import LogicLNCLClassifier, sentiment_paper_config
from repro.crowd import sample_annotator_pool, simulate_classification_crowd
from repro.data import SentimentCorpusConfig, make_sentiment_task
from repro.eval import accuracy, posterior_accuracy
from repro.inference import MajorityVote
from repro.logic import ButRule
from repro.models import TextCNN, TextCNNConfig


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. Corpus: sentences whose words carry noisy polarity signal, with a
    #    sub-population of contrastive "A but B" sentences (clause B wins).
    print("Generating the synthetic sentiment corpus ...")
    task = make_sentiment_task(
        rng,
        SentimentCorpusConfig(num_train=800, num_dev=200, num_test=200, embedding_dim=32),
    )

    # 2. Crowd: 40 annotators spanning experts to spammers, heavy-tailed
    #    activity, ~5.5 labels per instance (the paper's redundancy).
    print("Simulating the MTurk crowd ...")
    pool = sample_annotator_pool(rng, num_annotators=40, num_classes=2)
    task.train.crowd = simulate_classification_crowd(
        rng, task.train.labels, pool, mean_labels_per_instance=5.55
    )
    noisy = task.train.crowd
    print(
        f"  {noisy.total_annotations()} labels from {noisy.num_annotators} annotators "
        f"({noisy.annotations_per_instance().mean():.2f} per instance)"
    )

    # 3. Logic-LNCL: Kim-CNN classifier + the Eq. 16-17 "but" rule, trained
    #    with the paper's EM-alike iterative distillation (Algorithm 1).
    print("Training Logic-LNCL ...")
    model = TextCNN(task.embeddings, TextCNNConfig(feature_maps=32), rng)
    trainer = LogicLNCLClassifier(
        model,
        sentiment_paper_config(epochs=12),
        rng,
        rule=ButRule(task.but_id),
    )
    trainer.fit(task.train, dev=task.dev)

    # 4. Score against a majority-voting two-stage baseline.
    print("Training the MV-Classifier baseline ...")
    baseline = TwoStageClassifier(
        TextCNN(task.embeddings, TextCNNConfig(feature_maps=32), rng),
        MajorityVote(),
        TrainerConfig(epochs=12),
        rng,
    )
    baseline.fit(task.train, dev=task.dev)

    test = task.test
    print()
    print(f"{'method':<28}{'test accuracy':>14}{'inference accuracy':>20}")
    print("-" * 62)
    mv_inference = posterior_accuracy(task.train.labels, baseline.inference_posterior())
    print(
        f"{'MV-Classifier':<28}"
        f"{accuracy(test.labels, baseline.predict(test.tokens, test.lengths)):>14.4f}"
        f"{mv_inference:>20.4f}"
    )
    lncl_inference = posterior_accuracy(task.train.labels, trainer.inference_posterior())
    print(
        f"{'Logic-LNCL (student)':<28}"
        f"{accuracy(test.labels, trainer.predict_student(test.tokens, test.lengths)):>14.4f}"
        f"{lncl_inference:>20.4f}"
    )
    print(
        f"{'Logic-LNCL (teacher)':<28}"
        f"{accuracy(test.labels, trainer.predict_teacher(test.tokens, test.lengths)):>14.4f}"
        f"{lncl_inference:>20.4f}"
    )
    print()
    print("The teacher applies the logic rule at test time (Eq. 15 with the")
    print("network prediction as qa) and should score highest, as in the paper.")


if __name__ == "__main__":
    main()
