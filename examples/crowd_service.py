"""A long-lived truth-inference service: updates, queries, crash, recovery.

Walks the :class:`~repro.serving.service.CrowdService` surface end to end:

1. build a bursty many-dataset label schedule from the streaming suite's
   generators (:func:`~repro.serving.workload.build_serving_workload`) —
   six simulated crowds, heavy-tailed batch arrivals, Poisson query
   traffic interleaved;
2. replay it against a service with a resident budget of two datasets,
   so most traffic lands on evicted datasets and is served through
   checkpoint/rehydrate churn;
3. checkpoint, then simulate a crash by dropping the service mid-stream
   (everything after the last checkpoint is lost);
4. start a fresh service on the same directory — it discovers every
   checkpointed dataset — ask each dataset's replay cursor how many
   batches were durably applied, and re-feed only the tails;
5. verify the recovery contract: the recovered posteriors are
   *bit-identical* to uninterrupted single-stream twins fed the same
   batches, evictions and restart notwithstanding.

Run:  PYTHONPATH=src python examples/crowd_service.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.experiments.streaming_suite import StreamScenarioConfig
from repro.inference import get_method
from repro.serving import CrowdService, build_serving_workload


def timed(label, fn):
    start = time.perf_counter()
    result = fn()
    print(f"  {label}: {(time.perf_counter() - start) * 1e3:7.1f} ms")
    return result


def main() -> None:
    # 1. Six datasets x 120 instances of bursty label traffic, with one
    #    posterior query per update on average.
    config = StreamScenarioConfig(
        instances=120, annotators=12, batch_size=20, mean_labels_per_instance=4.0
    )
    workload = build_serving_workload(seed=7, datasets=6, config=config)
    print(
        f"Schedule: {workload.update_count} updates + {workload.query_count} "
        f"queries across {len(workload.datasets)} datasets"
    )

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "service"

        # 2. Serve the first half of the schedule with only 2 of the 6
        #    datasets allowed in memory at a time.
        service = CrowdService(root, method="DS", max_resident=2, inner_sweeps=1)
        events = workload.events
        half = len(events) // 2

        def serve(chunk):
            for event in chunk:
                if event.kind == "update":
                    service.partial_fit(event.dataset_id, event.batch)
                else:
                    service.query(event.dataset_id)

        timed("serve first half      ", lambda: serve(events[:half]))
        cursors = timed("checkpoint all        ", service.checkpoint)
        print(f"  durable cursors: {cursors}")

        # 3. Keep serving past the checkpoint, then crash. The service
        #    object (and every in-memory estimator) is simply gone; only
        #    root/<dataset>/ survives.
        timed("serve past checkpoint ", lambda: serve(events[half : half + half // 2]))
        stats = dict(service.stats)
        print(f"  pre-crash stats: {stats}")
        assert stats["evictions"] > 0, "budget of 2 should have forced evictions"
        del service
        print("-- crash: in-memory state lost, checkpoint directory survives --")

        # 4. A fresh service on the same root discovers the checkpoints.
        #    Each dataset's cursor says how many batches were durably
        #    applied; the label source re-feeds each tail from there.
        recovered = CrowdService(root, method="DS", max_resident=2, inner_sweeps=1)
        print(f"Recovered datasets: {', '.join(recovered.datasets())}")

        def replay_tails():
            replayed = 0
            for dataset_id in workload.datasets:
                known = dataset_id in recovered.datasets()
                cursor = recovered.cursor(dataset_id) if known else 0
                for batch in workload.updates_for(dataset_id)[cursor:]:
                    recovered.partial_fit(dataset_id, batch)
                    replayed += 1
            return replayed

        replayed = timed("replay lost tails     ", replay_tails)
        print(f"  re-fed {replayed} of {workload.update_count} batches")

        # 5. The recovery contract: every recovered posterior matches an
        #    uninterrupted single-stream twin bit for bit.
        worst = 0.0
        for dataset_id in workload.datasets:
            twin = get_method("DS", kind="streaming", inner_sweeps=1)
            for batch in workload.updates_for(dataset_id):
                twin.partial_fit(batch)
            got = recovered.query(dataset_id)
            expected = twin.result()
            assert np.array_equal(got.posterior, expected.posterior), dataset_id
            assert np.array_equal(got.confusions, expected.confusions), dataset_id
            accuracy = float(
                (got.posterior.argmax(axis=1) == workload.truths[dataset_id]).mean()
            )
            worst = max(worst, np.abs(got.posterior - expected.posterior).max(initial=0.0))
            print(
                f"  {dataset_id}: {got.extras['updates']} updates, "
                f"accuracy vs simulator truth {accuracy:.3f}"
            )
        print(f"recovered vs uninterrupted: max |diff| = {worst:.1e} (bit-identical)")
        print(f"post-recovery stats: {recovered.stats}")
    print("All recovery checks passed.")


if __name__ == "__main__":
    main()
