"""CrowdService behavior: snapshots, eviction, restart discovery, validation.

The recovery *contract* lives in ``test_recovery.py``; this module pins
the serving semantics around it — queries see the last completed update
(cached snapshots, no torn reads under a concurrent writer), LRU
eviction respects the resident budget and rehydrates transparently, a
restarted service discovers checkpointed datasets and resumes each under
the configuration it was trained with, and bad inputs (path-unsafe ids,
unknown datasets, incompatible batches) are rejected without touching
state.
"""

import threading

import numpy as np
import pytest

from repro.crowd.types import MISSING, CrowdLabelMatrix
from repro.experiments.streaming_suite import stream_crowd_in_batches
from repro.inference import get_method
from repro.serving import CrowdService

from ..inference.equivalence_harness import random_classification_crowd


@pytest.fixture
def batches():
    crowd = random_classification_crowd(
        29, instances=90, annotators=8, classes=2, mean_labels=4.0
    )
    return stream_crowd_in_batches(crowd, [30, 30, 30])


def _twin(batches, **overrides):
    """Single-stream DS twin fed the same batches (the service's ground truth)."""
    stream = get_method("DS", kind="streaming", **overrides)
    for batch in batches:
        stream.partial_fit(batch)
    return stream


class TestSnapshots:
    def test_query_is_cached_between_updates(self, tmp_path, batches):
        service = CrowdService(tmp_path, method="DS", inner_sweeps=1)
        ack = service.partial_fit("ds", batches[0])
        assert ack["updates"] == 1
        first = service.query("ds")
        assert service.query("ds") is first  # O(1) snapshot hit
        service.partial_fit("ds", batches[1])
        second = service.query("ds")
        assert second is not first
        assert second.posterior.shape[0] == 60
        np.testing.assert_array_equal(
            second.posterior, _twin(batches[:2], inner_sweeps=1).result().posterior
        )

    def test_refresh_recomputes_without_disturbing_snapshot(self, tmp_path, batches):
        service = CrowdService(tmp_path, method="DS", inner_sweeps=1)
        service.partial_fit("ds", batches[0])
        service.partial_fit("ds", batches[1])
        snapshot = service.query("ds")
        refreshed = service.query("ds", refresh=True)
        assert refreshed is not snapshot
        # Refresh re-runs the E-step under the current annotator model, so
        # it differs from the ingest-time posteriors the snapshot serves.
        assert not np.array_equal(refreshed.posterior, snapshot.posterior)
        assert service.query("ds") is snapshot  # cache survived the refresh
        np.testing.assert_array_equal(
            refreshed.posterior,
            _twin(batches[:2], inner_sweeps=1).result(refresh=True).posterior,
        )

    def test_queries_never_see_torn_updates(self, tmp_path):
        crowd = random_classification_crowd(
            31, instances=200, annotators=6, classes=2, mean_labels=3.0
        )
        batches = stream_crowd_in_batches(crowd, [10] * 20)
        service = CrowdService(tmp_path, method="DS", inner_sweeps=1)
        service.partial_fit("hot", batches[0])

        def writer():
            for batch in batches[1:]:
                service.partial_fit("hot", batch)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            while thread.is_alive():
                result = service.query("hot")
                rows = result.posterior.shape[0]
                # Every observable posterior is a completed update's: a
                # whole number of 10-row batches, rows normalized.
                assert rows % 10 == 0 and 10 <= rows <= 200
                np.testing.assert_allclose(
                    result.posterior.sum(axis=1), 1.0, atol=1e-8
                )
        finally:
            thread.join()
        np.testing.assert_array_equal(
            service.query("hot").posterior,
            _twin(batches, inner_sweeps=1).result().posterior,
        )


class TestEviction:
    def test_lru_eviction_and_transparent_rehydration(self, tmp_path, batches):
        service = CrowdService(tmp_path, method="DS", max_resident=2, inner_sweeps=1)
        service.partial_fit("alpha", batches[0])
        service.partial_fit("beta", batches[1])
        service.partial_fit("gamma", batches[2])
        # alpha was touched first -> evicted to disk when gamma arrived.
        assert service.resident_datasets() == ("beta", "gamma")
        assert (tmp_path / "alpha" / "state.npz").is_file()
        assert (tmp_path / "alpha" / "crowd.shard").is_file()
        assert service.stats["evictions"] == 1
        assert service.cursor("alpha") == 1  # readable while cold

        # Touching alpha rehydrates it and pushes out the new LRU (beta).
        result = service.query("alpha")
        assert service.resident_datasets() == ("alpha", "gamma")
        assert service.stats["rehydrations"] == 1
        assert service.stats["evictions"] == 2
        np.testing.assert_array_equal(
            result.posterior, _twin(batches[:1], inner_sweeps=1).result().posterior
        )
        np.testing.assert_array_equal(
            result.confusions, _twin(batches[:1], inner_sweeps=1).result().confusions
        )

    def test_explicit_evict_round_trip(self, tmp_path, batches):
        service = CrowdService(tmp_path, method="DS", inner_sweeps=1)
        service.partial_fit("ds", batches[0])
        before = service.query("ds")
        assert service.evict("ds") is True
        assert service.resident_datasets() == ()
        assert service.evict("ds") is False  # already cold
        after = service.query("ds")
        np.testing.assert_array_equal(after.posterior, before.posterior)

    def test_max_resident_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="max_resident"):
            CrowdService(tmp_path, max_resident=0)


class TestRestart:
    def test_discovery_and_config_travel(self, tmp_path, batches):
        with CrowdService(tmp_path, method="DS", inner_sweeps=1) as service:
            service.partial_fit("ds-a", batches[0])
            service.partial_fit("ds-a", batches[1])
            service.partial_fit("ds-b", batches[2])
        # close() checkpointed the dirty residents.
        assert (tmp_path / "ds-a" / "state.npz").is_file()
        assert (tmp_path / "ds-b" / "state.npz").is_file()

        # The revived service has *different* defaults; each dataset must
        # resume under the configuration stored in its checkpoint.
        revived = CrowdService(tmp_path, method="MV")
        assert revived.datasets() == ("ds-a", "ds-b")
        assert revived.resident_datasets() == ()
        assert revived.cursor("ds-a") == 2
        assert revived.cursor("ds-b") == 1
        result = revived.query("ds-a")
        assert result.confusions is not None  # DS, not the MV default
        np.testing.assert_array_equal(
            result.posterior, _twin(batches[:2], inner_sweeps=1).result().posterior
        )
        # Feeding the tail continues under the checkpointed inner_sweeps=1.
        revived.partial_fit("ds-a", batches[2])
        np.testing.assert_array_equal(
            revived.query("ds-a").posterior,
            _twin(batches, inner_sweeps=1).result().posterior,
        )

    def test_create_dataset_overrides_service_method(self, tmp_path, batches):
        with CrowdService(tmp_path, method="DS", inner_sweeps=1) as service:
            service.create_dataset("votes", method="MV")
            with pytest.raises(ValueError, match="already exists"):
                service.create_dataset("votes")
            service.partial_fit("votes", batches[0])
            assert service.query("votes").confusions is None  # MV has none
        revived = CrowdService(tmp_path, method="DS", inner_sweeps=1)
        result = revived.query("votes")
        assert result.confusions is None  # rehydrated as MV, not service DS
        mv = get_method("MV", kind="streaming").partial_fit(batches[0])
        np.testing.assert_array_equal(result.posterior, mv.result().posterior)

    def test_checkpoint_skips_clean_datasets(self, tmp_path, batches):
        service = CrowdService(tmp_path, method="DS", inner_sweeps=1)
        service.partial_fit("ds", batches[0])
        cursors = service.checkpoint()
        assert cursors == {"ds": 1}
        assert service.stats["checkpoints"] == 1
        assert service.checkpoint() == {"ds": 1}  # clean: not rewritten
        assert service.stats["checkpoints"] == 1
        service.partial_fit("ds", batches[1])
        assert service.checkpoint() == {"ds": 2}
        assert service.stats["checkpoints"] == 2


class TestValidation:
    def test_unknown_dataset_raises(self, tmp_path):
        service = CrowdService(tmp_path)
        with pytest.raises(KeyError, match="unknown dataset"):
            service.query("ghost")
        with pytest.raises(KeyError, match="unknown dataset"):
            service.cursor("ghost")
        with pytest.raises(KeyError, match="unknown dataset"):
            service.evict("ghost")
        with pytest.raises(KeyError, match="unknown dataset"):
            service.checkpoint("ghost")

    @pytest.mark.parametrize(
        "dataset_id", ["", "a/b", "../up", ".hidden", "sp ace"]
    )
    def test_path_unsafe_ids_rejected(self, tmp_path, batches, dataset_id):
        service = CrowdService(tmp_path)
        with pytest.raises(ValueError, match="path-safe"):
            service.partial_fit(dataset_id, batches[0])
        with pytest.raises(ValueError, match="path-safe"):
            service.create_dataset(dataset_id)
        assert service.datasets() == ()

    def test_rejected_batch_leaves_dataset_untouched(self, tmp_path, batches):
        service = CrowdService(tmp_path, method="DS", inner_sweeps=1)
        service.partial_fit("ds", batches[0])
        before = service.query("ds")
        wrong_classes = CrowdLabelMatrix(
            np.array([[2] + [MISSING] * 7], dtype=np.int64), 3
        )
        with pytest.raises(ValueError, match="classes"):
            service.partial_fit("ds", wrong_classes)
        assert service.cursor("ds") == 1
        assert service.query("ds") is before  # snapshot still valid
        np.testing.assert_array_equal(
            service.query("ds", refresh=True).posterior,
            _twin(batches[:1], inner_sweeps=1).result(refresh=True).posterior,
        )
