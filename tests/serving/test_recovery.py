"""The recovery contract, pinned at the codec and the service level.

A checkpoint taken mid-stream, written through the on-disk codec (the
same ``state.npz`` + ``crowd.shard`` files a crashed service would read
back), restored into a freshly constructed estimator, and replayed over
the tail of the label stream must reproduce the uninterrupted stream:
MV/DS sufficient statistics bit-exactly, everything end-to-end at
atol 1e-10. The sweep runs every streaming method over the harness's
randomized crowd cases; the service-level test adds eviction churn and a
simulated crash (updates after the last checkpoint are lost and
re-played from the durable cursor).
"""

import numpy as np
import pytest

from repro.experiments.streaming_suite import (
    StreamScenarioConfig,
    stream_crowd_in_batches,
)
from repro.inference import get_method
from repro.serving import (
    CrowdService,
    build_serving_workload,
    load_crowd,
    load_stream_state,
    save_crowd,
    save_stream_state,
)

from ..inference.equivalence_harness import (
    METHOD_OVERRIDES,
    crowd_cases,
    method_supports,
    random_batch_sizes,
    random_classification_crowd,
)

STREAMING_METHODS = ("MV", "DS", "GLAD")
CASES = crowd_cases("classification")


def _make_stream(name):
    params = METHOD_OVERRIDES.get(("streaming", name), {})
    return get_method(name, kind="streaming", **params)


def _assert_states_match(actual: dict, expected: dict, exact: bool, context: str) -> None:
    assert set(actual) == set(expected), context
    for key, want in expected.items():
        got = actual[key]
        if want is None:
            assert got is None, f"{context}: {key}"
        elif isinstance(want, np.ndarray):
            if exact:
                np.testing.assert_array_equal(got, want, err_msg=f"{context}: {key}")
            else:
                np.testing.assert_allclose(
                    got, want, atol=1e-10, rtol=0, err_msg=f"{context}: {key}"
                )
        else:
            assert got == want, f"{context}: {key} ({got!r} != {want!r})"


class TestCheckpointRestoreSweep:
    """Estimator-level contract: every method x every harness crowd case."""

    @pytest.mark.parametrize("case", CASES, ids=lambda case: case.name)
    @pytest.mark.parametrize("name", STREAMING_METHODS)
    def test_restore_plus_tail_replay_matches_uninterrupted(self, name, case, tmp_path):
        crowd = case.build()
        if not method_supports(name, "streaming", crowd):
            pytest.skip(f"{name} does not support {case.name}")
        batches = stream_crowd_in_batches(
            crowd, random_batch_sizes(97, crowd.num_instances)
        )

        reference = _make_stream(name)
        for batch in batches:
            reference.partial_fit(batch)

        interrupted = _make_stream(name)
        cut = len(batches) // 2
        for batch in batches[:cut]:
            interrupted.partial_fit(batch)
        save_stream_state(tmp_path / "state.npz", interrupted.get_state())
        if interrupted.crowd is not None:
            save_crowd(tmp_path / "crowd.shard", interrupted.crowd)
        del interrupted  # crash: only the files survive

        state = load_stream_state(tmp_path / "state.npz")
        crowd_file = tmp_path / "crowd.shard"
        retained = load_crowd(crowd_file) if crowd_file.is_file() else None
        restored = _make_stream(name).set_state(state, retained)
        assert restored.updates == cut
        for batch in batches[restored.updates:]:
            restored.partial_fit(batch)

        context = f"method={name} case={case.name}"
        # MV/DS statistics replay bit-exactly; GLAD is held to the
        # end-to-end 1e-10 contract (in practice it is bit-exact too).
        _assert_states_match(
            restored.get_state(), reference.get_state(), name in ("MV", "DS"), context
        )
        expected = reference.result()
        got = restored.result()
        np.testing.assert_allclose(
            got.posterior, expected.posterior, atol=1e-10, rtol=0, err_msg=context
        )
        if expected.confusions is not None:
            np.testing.assert_allclose(
                got.confusions, expected.confusions, atol=1e-10, rtol=0, err_msg=context
            )
        np.testing.assert_allclose(
            restored.result(refresh=True).posterior,
            reference.result(refresh=True).posterior,
            atol=1e-10,
            rtol=0,
            err_msg=f"{context} (refresh)",
        )


class TestServiceRecovery:
    """Service-level contract: crash + restart + tail replay, with eviction."""

    def test_restart_with_tail_replay_matches_uninterrupted(self, tmp_path):
        config = StreamScenarioConfig(
            instances=60, annotators=8, batch_size=12, mean_labels_per_instance=3.0
        )
        workload = build_serving_workload(
            seed=5, datasets=3, config=config, queries_per_update=0.5
        )

        with CrowdService(
            tmp_path / "uninterrupted", method="DS", inner_sweeps=1
        ) as reference:
            for event in workload.events:
                if event.kind == "update":
                    reference.partial_fit(event.dataset_id, event.batch)
                else:
                    reference.query(event.dataset_id)
            expected = {
                dataset_id: reference.query(dataset_id)
                for dataset_id in workload.datasets
            }

        # The crashing service also runs under eviction pressure, so the
        # contract is exercised through checkpoint/rehydrate churn too.
        crashed_root = tmp_path / "crashed"
        service = CrowdService(crashed_root, method="DS", max_resident=2, inner_sweeps=1)
        updates = [event for event in workload.events if event.kind == "update"]
        cut = len(updates) // 2
        for event in updates[:cut]:
            service.partial_fit(event.dataset_id, event.batch)
        durable = service.checkpoint()
        for event in updates[cut : cut + len(updates) // 4]:
            service.partial_fit(event.dataset_id, event.batch)
        del service  # crash: everything after checkpoint() is lost

        revived = CrowdService(crashed_root, method="DS", max_resident=2, inner_sweeps=1)
        for dataset_id in revived.datasets():
            # Evicted datasets were checkpointed on eviction, so their
            # durable cursor may be ahead of the explicit checkpoint.
            assert revived.cursor(dataset_id) >= durable[dataset_id]
        for dataset_id in workload.datasets:
            cursor = (
                revived.cursor(dataset_id)
                if dataset_id in revived.datasets()
                else 0
            )
            for batch in workload.updates_for(dataset_id)[cursor:]:
                revived.partial_fit(dataset_id, batch)
        for dataset_id in workload.datasets:
            got = revived.query(dataset_id)
            np.testing.assert_array_equal(
                got.posterior, expected[dataset_id].posterior, err_msg=dataset_id
            )
            np.testing.assert_array_equal(
                got.confusions, expected[dataset_id].confusions, err_msg=dataset_id
            )
            assert got.extras["updates"] == expected[dataset_id].extras["updates"]


class TestStateCodec:
    """The npz state codec and the shard-backed crowd files."""

    def test_state_round_trip_preserves_types_and_none(self, tmp_path):
        state = {
            "format": 1,
            "method": "DS",
            "decay": None,
            "updates": 7,
            "monitor_last_change": 0.25,
            "monitor_converged": True,
            "stat_prior": np.array([1.5, 2.5]),
            "confusions": None,
        }
        save_stream_state(tmp_path / "state.npz", state)
        loaded = load_stream_state(tmp_path / "state.npz")
        assert set(loaded) == set(state)
        assert loaded["decay"] is None and loaded["confusions"] is None
        assert loaded["method"] == "DS"
        assert loaded["updates"] == 7 and isinstance(loaded["updates"], int)
        assert loaded["monitor_last_change"] == 0.25
        assert loaded["monitor_converged"] is np.True_ or loaded["monitor_converged"]
        np.testing.assert_array_equal(loaded["stat_prior"], state["stat_prior"])

    def test_save_is_atomic_overwrite(self, tmp_path):
        path = tmp_path / "state.npz"
        save_stream_state(path, {"updates": 1})
        save_stream_state(path, {"updates": 2})
        assert load_stream_state(path)["updates"] == 2
        assert not path.with_name("state.npz.tmp").exists()

    def test_reserved_codec_key_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            save_stream_state(tmp_path / "state.npz", {"__none_keys__": 1})

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, values=np.arange(3))
        with pytest.raises(ValueError, match="not a stream-state file"):
            load_stream_state(path)

    def test_crowd_round_trip_is_exact(self, tmp_path):
        crowd = random_classification_crowd(
            43, instances=50, annotators=9, classes=3, mean_labels=2.0
        )
        save_crowd(tmp_path / "crowd.shard", crowd)
        restored = load_crowd(tmp_path / "crowd.shard")
        np.testing.assert_array_equal(restored.labels, crowd.labels)
        assert restored.num_classes == crowd.num_classes

    def test_crowd_rejects_npz_suffix(self, tmp_path):
        crowd = random_classification_crowd(
            47, instances=5, annotators=3, classes=2, mean_labels=2.0
        )
        with pytest.raises(ValueError, match="npz"):
            save_crowd(tmp_path / "crowd.npz", crowd)
