"""Tests for the rule-text DSL parser."""

import pytest

from repro.logic import And, Atom, Implies, Not, Or
from repro.logic.parser import RuleSyntaxError, parse_formula, parse_rule


class TestParseFormula:
    def test_single_atom(self):
        formula = parse_formula("rain")
        assert isinstance(formula, Atom)
        assert formula.name == "rain"

    def test_atom_with_arguments_keeps_surface_text(self):
        formula = parse_formula("votesFor(A,P)")
        assert isinstance(formula, Atom)
        assert formula.name == "votesFor(A,P)"

    def test_paper_voting_rule(self):
        formula = parse_formula("friend(B,A) & votesFor(A,P) >> votesFor(B,P)")
        assert isinstance(formula, Implies)
        assert isinstance(formula.left, And)
        truth = formula.truth(
            {"friend(B,A)": 1.0, "votesFor(A,P)": 0.9, "votesFor(B,P)": 0.4}
        )
        assert truth == pytest.approx(0.5)

    def test_negation(self):
        formula = parse_formula("~wet")
        assert isinstance(formula, Not)
        assert formula.truth({"wet": 0.3}) == pytest.approx(0.7)

    def test_precedence_not_over_and_over_or(self):
        formula = parse_formula("~a & b | c")
        # Parses as ((~a & b) | c).
        assert isinstance(formula, Or)
        assert isinstance(formula.left, And)
        assert isinstance(formula.left.left, Not)

    def test_parentheses_override_precedence(self):
        formula = parse_formula("~(a | b)")
        assert isinstance(formula, Not)
        assert isinstance(formula.operand, Or)

    def test_implication_right_associative(self):
        formula = parse_formula("a >> b >> c")
        assert isinstance(formula, Implies)
        assert isinstance(formula.right, Implies)
        assert isinstance(formula.left, Atom)

    def test_chained_conjunction(self):
        formula = parse_formula("a & b & c")
        assert formula.atoms() == {"a", "b", "c"}
        assert formula.truth({"a": 1.0, "b": 1.0, "c": 0.4}) == pytest.approx(0.4)

    def test_whitespace_insensitive(self):
        a = parse_formula("a&b>>c")
        b = parse_formula("  a  &  b  >>  c  ")
        assert repr(a) == repr(b)

    def test_empty_rejected(self):
        with pytest.raises(RuleSyntaxError):
            parse_formula("   ")

    def test_unbalanced_paren_rejected(self):
        with pytest.raises(RuleSyntaxError):
            parse_formula("(a & b")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(RuleSyntaxError):
            parse_formula("a b")

    def test_dangling_operator_rejected(self):
        with pytest.raises(RuleSyntaxError):
            parse_formula("a &")

    def test_garbage_rejected(self):
        with pytest.raises(RuleSyntaxError):
            parse_formula("a @ b")


class TestParseRule:
    def test_builds_weighted_rule(self):
        rule = parse_rule("a >> b", weight=0.8)
        assert rule.weight == 0.8
        assert rule.name == "a >> b"
        assert rule.value({"a": 1.0, "b": 0.25}) == pytest.approx(0.25)

    def test_custom_name(self):
        rule = parse_rule("a >> b", name="my-rule")
        assert rule.name == "my-rule"

    def test_weight_validated(self):
        with pytest.raises(ValueError):
            parse_rule("a >> b", weight=2.0)

    def test_roundtrip_with_engine_semantics(self):
        """DSL-built and hand-built formulas agree on all 0/1 corners."""
        from repro.logic import Atom as A

        dsl = parse_formula("(a & ~b) >> c")
        manual = (A("a") & ~A("b")) >> A("c")
        for a in (0.0, 1.0):
            for b in (0.0, 1.0):
                for c in (0.0, 1.0):
                    interp = {"a": a, "b": b, "c": c}
                    assert dsl.truth(interp) == manual.truth(interp)
