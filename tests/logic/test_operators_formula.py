"""Tests for Łukasiewicz operators and the formula AST."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import (
    And,
    Atom,
    Implies,
    Not,
    Or,
    soft_and,
    soft_implies,
    soft_not,
    soft_or,
    validate_truth,
)

unit = st.floats(min_value=0.0, max_value=1.0)


class TestOperators:
    def test_and_paper_example(self):
        # Paper: I(friend ∧ votesFor) with truths 1 and 0.9 gives 0.9.
        assert soft_and(1.0, 0.9) == pytest.approx(0.9)

    def test_and_truncates_at_zero(self):
        assert soft_and(0.3, 0.4) == 0.0

    def test_or_truncates_at_one(self):
        assert soft_or(0.8, 0.7) == 1.0

    def test_not(self):
        assert soft_not(0.3) == pytest.approx(0.7)

    def test_implies_satisfied_when_consequent_stronger(self):
        assert soft_implies(0.4, 0.9) == 1.0

    def test_implies_partial(self):
        assert soft_implies(1.0, 0.25) == pytest.approx(0.25)

    def test_elementwise_arrays(self):
        a = np.array([0.2, 0.9])
        b = np.array([0.9, 0.9])
        np.testing.assert_allclose(soft_and(a, b), [0.1, 0.8])

    def test_validate_truth_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            validate_truth(1.5)
        with pytest.raises(ValueError):
            validate_truth(-0.2)

    def test_validate_truth_clips_float_noise(self):
        assert validate_truth(1.0 + 1e-14) == 1.0

    @settings(max_examples=100, deadline=None)
    @given(a=unit, b=unit)
    def test_property_outputs_in_unit_interval(self, a, b):
        for value in (soft_and(a, b), soft_or(a, b), soft_not(a), soft_implies(a, b)):
            assert -1e-12 <= float(value) <= 1.0 + 1e-12

    @settings(max_examples=100, deadline=None)
    @given(a=unit, b=unit)
    def test_property_de_morgan(self, a, b):
        # Łukasiewicz satisfies De Morgan: ~(a & b) == ~a | ~b.
        left = soft_not(soft_and(a, b))
        right = soft_or(soft_not(a), soft_not(b))
        assert float(left) == pytest.approx(float(right), abs=1e-12)

    @settings(max_examples=100, deadline=None)
    @given(a=unit, b=unit)
    def test_property_implication_as_disjunction(self, a, b):
        assert float(soft_implies(a, b)) == pytest.approx(
            float(soft_or(soft_not(a), b)), abs=1e-12
        )

    @settings(max_examples=100, deadline=None)
    @given(a=unit)
    def test_property_boolean_boundary_agreement(self, a):
        # On {0, 1} inputs the operators agree with classical logic.
        for x in (0.0, 1.0):
            for y in (0.0, 1.0):
                assert soft_and(x, y) == float(bool(x) and bool(y))
                assert soft_or(x, y) == float(bool(x) or bool(y))
                assert soft_implies(x, y) == float((not bool(x)) or bool(y))


class TestFormula:
    def test_atom_lookup(self):
        assert Atom("p").truth({"p": 0.7}) == pytest.approx(0.7)

    def test_atom_missing_raises(self):
        with pytest.raises(KeyError):
            Atom("p").truth({})

    def test_atom_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Atom("")

    def test_operator_sugar_builds_ast(self):
        f = (Atom("a") & Atom("b")) >> ~Atom("c")
        assert isinstance(f, Implies)
        assert isinstance(f.left, And)
        assert isinstance(f.right, Not)
        assert f.atoms() == {"a", "b", "c"}

    def test_voting_rule_from_paper(self):
        # friend(B,A) ∧ votesFor(A,P) → votesFor(B,P)
        rule = (Atom("friend") & Atom("votesA")) >> Atom("votesB")
        interp = {"friend": 1.0, "votesA": 0.9, "votesB": 0.4}
        # body truth = 0.9, head = 0.4 → implication = min(1, 1-0.9+0.4) = 0.5
        assert rule.truth(interp) == pytest.approx(0.5)

    def test_or_and_not_composition(self):
        f = Or(Not(Atom("a")), Atom("b"))
        assert f.truth({"a": 0.2, "b": 0.1}) == pytest.approx(0.9)

    def test_repr_readable(self):
        f = (Atom("a") & Atom("b")) >> Atom("c")
        assert "=>" in repr(f)
        assert "&" in repr(f)

    def test_array_interpretation(self):
        f = Atom("a") >> Atom("b")
        interp = {"a": np.array([1.0, 0.0]), "b": np.array([0.3, 0.3])}
        np.testing.assert_allclose(f.truth(interp), [0.3, 1.0])
