"""Tests for the A-but-B sentiment rule and the BIO transition rules."""

import numpy as np
import pytest

from repro.logic import ButRule, TransitionRules, bio_transition_rules

BUT = 7
PAD = 0


def _uniform_proba(tokens, lengths):
    return np.full((tokens.shape[0], 2), 0.5)


class TestButRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            ButRule(BUT, weight=2.0)
        with pytest.raises(ValueError):
            ButRule(BUT, num_classes=1)

    def test_clause_b_extraction(self):
        rule = ButRule(BUT)
        tokens = np.array([1, 2, BUT, 4, 5, PAD, PAD])
        np.testing.assert_array_equal(rule.clause_b(tokens, 5), [4, 5])

    def test_clause_b_uses_last_trigger(self):
        rule = ButRule(BUT)
        tokens = np.array([1, BUT, 3, BUT, 5])
        np.testing.assert_array_equal(rule.clause_b(tokens, 5), [5])

    def test_no_trigger_returns_none(self):
        rule = ButRule(BUT)
        assert rule.clause_b(np.array([1, 2, 3]), 3) is None

    def test_trailing_trigger_returns_none(self):
        rule = ButRule(BUT)
        assert rule.clause_b(np.array([1, 2, BUT]), 3) is None

    def test_trigger_in_padding_ignored(self):
        rule = ButRule(BUT)
        tokens = np.array([1, 2, 3, BUT, 9])
        assert rule.clause_b(tokens, 3) is None  # BUT is beyond the length

    def test_penalties_zero_without_groundings(self):
        rule = ButRule(BUT)
        batch = np.array([[1, 2, 3], [4, 5, 6]])
        lengths = np.array([3, 3])
        penalties = rule.penalties(batch, lengths, _uniform_proba)
        np.testing.assert_allclose(penalties, 0.0)

    def test_penalties_follow_clause_probability(self):
        rule = ButRule(BUT)
        batch = np.array([[1, BUT, 3, PAD], [4, 5, 6, PAD]])
        lengths = np.array([3, 3])

        def proba(tokens, lengths_):
            assert tokens.shape[0] == 1  # only the grounded sentence
            return np.array([[0.2, 0.8]])

        penalties = rule.penalties(batch, lengths, proba)
        # grounded row: penalty_k = 1 - sigma(B)_k
        np.testing.assert_allclose(penalties[0], [0.8, 0.2], atol=1e-12)
        np.testing.assert_allclose(penalties[1], 0.0)

    def test_penalties_weight_scales(self):
        rule = ButRule(BUT, weight=0.5)
        batch = np.array([[1, BUT, 3]])
        penalties = rule.penalties(batch, np.array([3]), lambda t, l: np.array([[0.0, 1.0]]))
        np.testing.assert_allclose(penalties[0], [0.5, 0.0])

    def test_penalties_shape_validation(self):
        rule = ButRule(BUT)
        with pytest.raises(ValueError):
            rule.penalties(np.array([1, 2, 3]), np.array([3]), _uniform_proba)
        with pytest.raises(ValueError):
            rule.penalties(np.array([[1, 2, 3]]), np.array([3, 3]), _uniform_proba)

    def test_predict_proba_bad_shape_detected(self):
        rule = ButRule(BUT)
        batch = np.array([[1, BUT, 3]])
        with pytest.raises(ValueError):
            rule.penalties(batch, np.array([3]), lambda t, l: np.zeros((1, 5)))

    def test_clause_batch_padding(self):
        rule = ButRule(BUT, pad_id=PAD)
        batch = np.array([[1, BUT, 3, 4, 5], [1, 2, 3, BUT, 9]])
        lengths = np.array([5, 5])
        seen = {}

        def proba(tokens, lengths_):
            seen["tokens"] = tokens.copy()
            seen["lengths"] = lengths_.copy()
            return np.full((2, 2), 0.5)

        rule.penalties(batch, lengths, proba)
        np.testing.assert_array_equal(seen["lengths"], [3, 1])
        np.testing.assert_array_equal(seen["tokens"][0], [3, 4, 5])
        np.testing.assert_array_equal(seen["tokens"][1], [9, PAD, PAD])


LABELS = ["O", "B-PER", "I-PER", "B-ORG", "I-ORG"]


class TestTransitionRules:
    def test_penalty_matrix_values(self):
        tr = TransitionRules(LABELS)
        idx = {name: i for i, name in enumerate(LABELS)}
        P = tr.penalty_matrix
        # Into I-PER: from B-PER costs 0.2, from I-PER costs 0.8, else 1.0.
        assert P[idx["B-PER"], idx["I-PER"]] == pytest.approx(0.2)
        assert P[idx["I-PER"], idx["I-PER"]] == pytest.approx(0.8)
        assert P[idx["O"], idx["I-PER"]] == pytest.approx(1.0)
        assert P[idx["B-ORG"], idx["I-PER"]] == pytest.approx(1.0)
        # Non-inside columns are penalty-free.
        assert P[:, idx["O"]].sum() == 0.0
        assert P[:, idx["B-PER"]].sum() == 0.0

    def test_initial_penalty_blocks_inside_start(self):
        tr = TransitionRules(LABELS)
        idx = {name: i for i, name in enumerate(LABELS)}
        assert tr.initial_penalty[idx["I-ORG"]] == pytest.approx(1.0)
        assert tr.initial_penalty[idx["B-ORG"]] == 0.0
        assert tr.initial_penalty[idx["O"]] == 0.0

    def test_matches_generic_psl_engine(self):
        """The compiled matrix must equal rule-by-rule PSL evaluation."""
        tr = TransitionRules(LABELS)
        rules = tr.as_rule_set()
        for p_idx, prev in enumerate(LABELS):
            for c_idx, cur in enumerate(LABELS):
                interp = tr.interpretation(prev, cur)
                expected = 0.0
                for rule in rules:
                    # Only rules whose consequent concerns `cur` contribute.
                    if rule.name.startswith(f"{cur}->"):
                        expected += rule.weight * float(
                            rule.distance_to_satisfaction(interp)
                        )
                assert tr.penalty_matrix[p_idx, c_idx] == pytest.approx(expected), (
                    prev,
                    cur,
                )

    def test_pairwise_potential_exponentiates(self):
        tr = TransitionRules(LABELS)
        np.testing.assert_allclose(
            tr.pairwise_potential(5.0), np.exp(-5.0 * tr.penalty_matrix)
        )
        np.testing.assert_allclose(
            tr.initial_potential(5.0), np.exp(-5.0 * tr.initial_penalty)
        )

    def test_negative_C_rejected(self):
        tr = TransitionRules(LABELS)
        with pytest.raises(ValueError):
            tr.pairwise_potential(-1.0)
        with pytest.raises(ValueError):
            tr.initial_potential(-1.0)

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            TransitionRules(LABELS, begin_weight=1.5)

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            TransitionRules(["O", "O"])

    def test_inside_without_begin_label(self):
        # I-MISC with no B-MISC: the begin rule simply has no satisfier.
        tr = TransitionRules(["O", "I-MISC"])
        idx = {"O": 0, "I-MISC": 1}
        assert tr.penalty_matrix[idx["O"], idx["I-MISC"]] == pytest.approx(1.0)
        assert tr.penalty_matrix[idx["I-MISC"], idx["I-MISC"]] == pytest.approx(0.8)

    def test_ablation_only_begin_rule(self):
        tr = bio_transition_rules(LABELS, only_begin_rule=True)
        idx = {name: i for i, name in enumerate(LABELS)}
        # Only Eq. 18 at weight 1: B->I free, I->I fully penalized.
        assert tr.penalty_matrix[idx["B-PER"], idx["I-PER"]] == pytest.approx(0.0)
        assert tr.penalty_matrix[idx["I-PER"], idx["I-PER"]] == pytest.approx(1.0)
        assert tr.penalty_matrix[idx["O"], idx["I-PER"]] == pytest.approx(1.0)

    def test_factory_default_matches_paper_weights(self):
        tr = bio_transition_rules(LABELS)
        assert tr.begin_weight == pytest.approx(0.8)
        assert tr.inside_weight == pytest.approx(0.2)
