"""Tests for weighted rules, rule sets, and groundings."""

import numpy as np
import pytest

from repro.logic import Atom, Grounding, Rule, RuleSet


def _rule(name="r", weight=1.0):
    return Rule(name, Atom("p") >> Atom("q"), weight=weight)


class TestRule:
    def test_weight_validation(self):
        with pytest.raises(ValueError):
            _rule(weight=1.5)
        with pytest.raises(ValueError):
            _rule(weight=-0.1)

    def test_value_and_distance_complementary(self):
        rule = _rule()
        interp = {"p": 1.0, "q": 0.3}
        assert rule.value(interp) == pytest.approx(0.3)
        assert rule.distance_to_satisfaction(interp) == pytest.approx(0.7)

    def test_satisfied_rule_zero_distance(self):
        rule = _rule()
        assert rule.distance_to_satisfaction({"p": 0.2, "q": 0.9}) == pytest.approx(0.0)

    def test_repr(self):
        assert "weight=0.8" in repr(_rule(weight=0.8))


class TestRuleSet:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            RuleSet([_rule("a"), _rule("a")])
        rs = RuleSet([_rule("a")])
        with pytest.raises(ValueError):
            rs.add(_rule("a"))

    def test_penalty_weighted_sum(self):
        rs = RuleSet(
            [
                Rule("r1", Atom("p") >> Atom("q"), weight=0.8),
                Rule("r2", Atom("p") >> Atom("s"), weight=0.2),
            ]
        )
        interp = {"p": 1.0, "q": 0.0, "s": 1.0}
        # r1 fully violated (d=1), r2 satisfied (d=0) → 0.8.
        assert rs.penalty(interp) == pytest.approx(0.8)

    def test_len_and_iter(self):
        rs = RuleSet([_rule("a"), _rule("b")])
        assert len(rs) == 2
        assert [r.name for r in rs] == ["a", "b"]

    def test_ground_penalties(self):
        rs = RuleSet([Rule("but", Atom("label_pos") >> Atom("clause_pos"), weight=1.0)])
        groundings = [
            Grounding("but", {"clause_pos": 0.9}),
            Grounding("but", {"clause_pos": 0.1}),
        ]

        def label_atoms(k):
            return {"label_pos": 1.0 if k == 1 else 0.0}

        penalties = rs.ground_penalties(groundings, label_atoms, num_classes=2)
        # class 0: antecedent false → satisfied → penalty 0.
        np.testing.assert_allclose(penalties[:, 0], 0.0)
        # class 1: penalty = 1 - clause_pos.
        np.testing.assert_allclose(penalties[:, 1], [0.1, 0.9], atol=1e-12)

    def test_ground_penalties_unknown_rule(self):
        rs = RuleSet([_rule("a")])
        with pytest.raises(KeyError):
            rs.ground_penalties([Grounding("zzz")], lambda k: {}, 2)
