"""Tests for the Eq. 15 closed form and the chain DP."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic import chain_marginals, distill_posterior


def _random_posterior(rng, rows, K):
    q = rng.random((rows, K)) + 1e-3
    return q / q.sum(axis=1, keepdims=True)


class TestDistillPosterior:
    def test_zero_penalty_returns_qa(self):
        rng = np.random.default_rng(0)
        qa = _random_posterior(rng, 4, 3)
        np.testing.assert_allclose(distill_posterior(qa, np.zeros((4, 3)), C=5.0), qa)

    def test_zero_C_returns_qa(self):
        rng = np.random.default_rng(0)
        qa = _random_posterior(rng, 4, 3)
        penalties = rng.random((4, 3))
        np.testing.assert_allclose(distill_posterior(qa, penalties, C=0.0), qa)

    def test_matches_paper_formula(self):
        qa = np.array([[0.6, 0.4]])
        penalties = np.array([[0.0, 1.0]])
        C = 5.0
        expected = qa * np.exp(-C * penalties)
        expected /= expected.sum()
        np.testing.assert_allclose(distill_posterior(qa, penalties, C), expected)

    def test_penalty_shifts_mass_away(self):
        qa = np.array([[0.5, 0.5]])
        qb = distill_posterior(qa, np.array([[0.0, 0.5]]), C=2.0)
        assert qb[0, 0] > 0.5
        assert qb[0, 1] < 0.5
        np.testing.assert_allclose(qb.sum(), 1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            distill_posterior(np.ones((2, 2)) / 2, np.zeros((3, 2)), C=1.0)

    def test_negative_C_rejected(self):
        with pytest.raises(ValueError):
            distill_posterior(np.ones((1, 2)) / 2, np.zeros((1, 2)), C=-1.0)

    def test_negative_penalty_rejected(self):
        with pytest.raises(ValueError):
            distill_posterior(np.ones((1, 2)) / 2, np.array([[-0.5, 0.0]]), C=1.0)

    def test_degenerate_row_falls_back_to_qa(self):
        # All qa mass on the (astronomically) penalized label.
        qa = np.array([[1.0, 0.0]])
        qb = distill_posterior(qa, np.array([[5000.0, 0.0]]), C=1.0)
        assert np.isfinite(qb).all()
        np.testing.assert_allclose(qb.sum(axis=1), 1.0)

    def test_large_penalties_numerically_stable(self):
        qa = np.array([[0.5, 0.5]])
        qb = distill_posterior(qa, np.array([[1000.0, 999.0]]), C=10.0)
        assert np.isfinite(qb).all()
        np.testing.assert_allclose(qb.sum(axis=1), 1.0)

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 2**16), C=st.floats(0.0, 10.0))
    def test_property_output_is_distribution(self, seed, C):
        rng = np.random.default_rng(seed)
        qa = _random_posterior(rng, 5, 4)
        penalties = rng.random((5, 4)) * 3
        qb = distill_posterior(qa, penalties, C)
        assert np.all(qb >= 0)
        np.testing.assert_allclose(qb.sum(axis=1), np.ones(5), atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_property_kl_projection_direction(self, seed):
        """qb must put no *more* mass than qa on the most-penalized label."""
        rng = np.random.default_rng(seed)
        qa = _random_posterior(rng, 1, 3)
        penalties = np.array([[0.0, 0.0, 2.0]])
        qb = distill_posterior(qa, penalties, C=3.0)
        assert qb[0, 2] <= qa[0, 2] + 1e-12


def _brute_force_chain_marginals(unary, pairwise, initial):
    """Enumerate all label sequences (exponential; tiny test cases only)."""
    T, K = unary.shape
    marginals = np.zeros((T, K))
    total = 0.0
    for assignment in itertools.product(range(K), repeat=T):
        weight = initial[assignment[0]] * unary[0, assignment[0]]
        for s in range(1, T):
            weight *= pairwise[assignment[s - 1], assignment[s]] * unary[s, assignment[s]]
        total += weight
        for s, label in enumerate(assignment):
            marginals[s, label] += weight
    return marginals / total


class TestChainMarginals:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(3)
        T, K = 4, 3
        unary = rng.random((T, K)) + 0.05
        pairwise = rng.random((K, K)) + 0.05
        initial = rng.random(K) + 0.05
        got = chain_marginals(unary, pairwise, initial)
        expected = _brute_force_chain_marginals(unary, pairwise, initial)
        np.testing.assert_allclose(got, expected, atol=1e-10)

    def test_identity_pairwise_reduces_to_unary(self):
        rng = np.random.default_rng(1)
        unary = rng.random((5, 3)) + 0.1
        got = chain_marginals(unary, np.ones((3, 3)))
        expected = unary / unary.sum(axis=1, keepdims=True)
        np.testing.assert_allclose(got, expected, atol=1e-12)

    def test_forbidden_transition_removes_mass(self):
        # Two tokens; transitioning 0→1 forbidden; token2 unary prefers 1.
        unary = np.array([[1.0, 0.0], [0.2, 0.8]])
        pairwise = np.array([[1.0, 0.0], [1.0, 1.0]])
        got = chain_marginals(unary, pairwise)
        np.testing.assert_allclose(got[1], [1.0, 0.0], atol=1e-12)

    def test_long_chain_no_underflow(self):
        rng = np.random.default_rng(2)
        unary = rng.random((500, 4)) * 1e-3 + 1e-6
        pairwise = rng.random((4, 4)) * 1e-3 + 1e-6
        got = chain_marginals(unary, pairwise)
        assert np.isfinite(got).all()
        np.testing.assert_allclose(got.sum(axis=1), np.ones(500), atol=1e-9)

    def test_single_token_chain(self):
        unary = np.array([[0.2, 0.8]])
        got = chain_marginals(unary, np.ones((2, 2)))
        np.testing.assert_allclose(got, [[0.2, 0.8]])

    def test_initial_potential_applies(self):
        unary = np.array([[0.5, 0.5]])
        got = chain_marginals(unary, np.ones((2, 2)), initial=np.array([1.0, 0.0]))
        np.testing.assert_allclose(got, [[1.0, 0.0]])

    def test_validation(self):
        with pytest.raises(ValueError):
            chain_marginals(np.ones(3), np.ones((3, 3)))
        with pytest.raises(ValueError):
            chain_marginals(np.ones((2, 3)), np.ones((2, 2)))
        with pytest.raises(ValueError):
            chain_marginals(np.ones((2, 3)), np.ones((3, 3)), initial=np.ones(2))
        with pytest.raises(ValueError):
            chain_marginals(-np.ones((2, 3)), np.ones((3, 3)))

    def test_no_support_raises(self):
        with pytest.raises(ValueError):
            chain_marginals(np.zeros((2, 2)), np.ones((2, 2)))

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_property_matches_brute_force_random(self, seed):
        rng = np.random.default_rng(seed)
        T, K = 3, 2
        unary = rng.random((T, K)) + 0.05
        pairwise = rng.random((K, K)) + 0.05
        initial = rng.random(K) + 0.05
        got = chain_marginals(unary, pairwise, initial)
        expected = _brute_force_chain_marginals(unary, pairwise, initial)
        np.testing.assert_allclose(got, expected, atol=1e-9)
