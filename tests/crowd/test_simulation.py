"""Tests for the classification and NER crowd simulators."""

import numpy as np
import pytest

from repro.crowd import (
    AnnotatorPool,
    NERAnnotatorProfile,
    sample_annotator_pool,
    sample_confusion_matrix,
    sample_ner_pool,
    simulate_classification_crowd,
    simulate_ner_crowd,
)
from repro.crowd.ner_simulation import corrupt_tags
from repro.data import CONLL_LABELS, label_index, spans_from_bio

IDX = label_index(CONLL_LABELS)


class TestSampleConfusionMatrix:
    def test_rows_are_distributions(self):
        rng = np.random.default_rng(0)
        matrix = sample_confusion_matrix(rng, 0.8, 4)
        np.testing.assert_allclose(matrix.sum(axis=1), np.ones(4), atol=1e-12)
        assert (matrix >= 0).all()

    def test_diagonal_tracks_accuracy(self):
        rng = np.random.default_rng(0)
        diagonals = [np.diag(sample_confusion_matrix(rng, 0.9, 3)).mean() for _ in range(200)]
        assert abs(np.mean(diagonals) - 0.9) < 0.05

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_confusion_matrix(rng, 1.0, 3)
        with pytest.raises(ValueError):
            sample_confusion_matrix(rng, 0.5, 1)


class TestAnnotatorPool:
    def test_pool_shapes(self):
        pool = sample_annotator_pool(np.random.default_rng(0), 30, 2)
        assert pool.num_annotators == 30
        assert pool.num_classes == 2
        assert pool.accuracies().shape == (30,)

    def test_quality_heterogeneous(self):
        pool = sample_annotator_pool(np.random.default_rng(0), 200, 2)
        accuracies = pool.accuracies()
        # The mixture must produce both spammers and experts (Fig. 4b).
        assert accuracies.min() < 0.6
        assert accuracies.max() > 0.9
        assert 0.65 < np.median(accuracies) < 0.9

    def test_activity_heavy_tailed(self):
        pool = sample_annotator_pool(np.random.default_rng(0), 100, 2)
        activity = np.sort(pool.activity)[::-1]
        assert activity[0] / activity[-1] > 20  # orders of magnitude spread

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_annotator_pool(np.random.default_rng(0), 0, 2)
        with pytest.raises(ValueError):
            AnnotatorPool(np.ones((2, 2, 2)) / 2, np.array([1.0]))
        with pytest.raises(ValueError):
            AnnotatorPool(np.ones((1, 2, 2)), np.array([1.0]))  # rows don't sum to 1


class TestSimulateClassificationCrowd:
    def _run(self, seed=0, I=300, J=40, mean=5.0):
        rng = np.random.default_rng(seed)
        truth = rng.integers(0, 2, size=I)
        pool = sample_annotator_pool(rng, J, 2)
        crowd = simulate_classification_crowd(rng, truth, pool, mean_labels_per_instance=mean)
        return truth, pool, crowd

    def test_shape_and_redundancy(self):
        truth, pool, crowd = self._run()
        assert crowd.num_instances == 300
        assert crowd.num_annotators == 40
        counts = crowd.annotations_per_instance()
        assert counts.min() >= 1
        assert abs(counts.mean() - 5.0) < 0.6

    def test_labels_correlate_with_truth(self):
        truth, pool, crowd = self._run()
        observed = crowd.observed_mask
        rows, cols = np.nonzero(observed)
        agreement = (crowd.labels[rows, cols] == truth[rows]).mean()
        assert agreement > 0.65  # the pool skews competent

    def test_good_annotators_beat_spammers(self):
        truth, pool, crowd = self._run(I=1000, J=20, mean=8.0)
        accuracies = pool.accuracies()
        best, worst = np.argmax(accuracies), np.argmin(accuracies)
        empirical = []
        for j in (best, worst):
            mask = crowd.observed_mask[:, j]
            if mask.sum() < 10:
                pytest.skip("annotator too inactive in this draw")
            empirical.append((crowd.labels[mask, j] == truth[mask]).mean())
        assert empirical[0] > empirical[1]

    def test_mean_below_minimum_rejected(self):
        rng = np.random.default_rng(0)
        pool = sample_annotator_pool(rng, 5, 2)
        with pytest.raises(ValueError):
            simulate_classification_crowd(rng, np.zeros(3, dtype=int), pool, 0.5, 1)

    def test_truth_range_validated(self):
        rng = np.random.default_rng(0)
        pool = sample_annotator_pool(rng, 5, 2)
        with pytest.raises(ValueError):
            simulate_classification_crowd(rng, np.array([0, 7]), pool)


class TestNERProfileAndPool:
    def test_profile_validation(self):
        with pytest.raises(ValueError):
            NERAnnotatorProfile(1.5, 0, 0, 0)

    def test_pool_sampling(self):
        pool = sample_ner_pool(np.random.default_rng(0), 47)
        assert pool.num_annotators == 47
        ignore_rates = [p.ignore_rate for p in pool.profiles]
        assert min(ignore_rates) < 0.15
        assert max(ignore_rates) > 0.4  # both experts and poor annotators


class TestCorruptTags:
    def _gold(self):
        # "w w B-PER I-PER w B-ORG I-ORG I-ORG w"
        return np.array(
            [IDX["O"], IDX["O"], IDX["B-PER"], IDX["I-PER"], IDX["O"],
             IDX["B-ORG"], IDX["I-ORG"], IDX["I-ORG"], IDX["O"]]
        )

    def test_perfect_annotator_copies(self):
        profile = NERAnnotatorProfile(0, 0, 0, 0)
        out = corrupt_tags(np.random.default_rng(0), self._gold(), profile)
        np.testing.assert_array_equal(out, self._gold())

    def test_ignore_error_removes_entities(self):
        profile = NERAnnotatorProfile(1.0, 0, 0, 0)
        out = corrupt_tags(np.random.default_rng(0), self._gold(), profile)
        assert spans_from_bio(out) == []

    def test_type_error_changes_type_not_span(self):
        profile = NERAnnotatorProfile(0, 0, 1.0, 0)
        out = corrupt_tags(np.random.default_rng(0), self._gold(), profile)
        spans = spans_from_bio(out)
        boundaries = {(start, end) for _, start, end in spans}
        assert boundaries == {(2, 4), (5, 8)}
        types = {entity for entity, _, _ in spans}
        assert "PER" not in types or "ORG" not in types

    def test_boundary_error_keeps_type(self):
        profile = NERAnnotatorProfile(0, 1.0, 0, 0)
        out = corrupt_tags(np.random.default_rng(3), self._gold(), profile)
        types = [entity for entity, _, _ in spans_from_bio(out)]
        assert sorted(types) == ["ORG", "PER"]

    def test_token_noise_can_break_bio(self):
        profile = NERAnnotatorProfile(0, 0, 0, 1.0)
        out = corrupt_tags(np.random.default_rng(0), self._gold(), profile)
        assert not np.array_equal(out, self._gold())


class TestSimulateNERCrowd:
    def test_structure(self):
        rng = np.random.default_rng(0)
        tags = [np.array([IDX["O"], IDX["B-PER"], IDX["I-PER"]])] * 50
        pool = sample_ner_pool(rng, 10)
        crowd = simulate_ner_crowd(rng, tags, pool, mean_labels_per_instance=3.0)
        assert crowd.num_instances == 50
        assert crowd.num_annotators == 10
        counts = crowd.annotations_per_instance()
        assert counts.min() >= 1
        assert abs(counts.mean() - 3.0) < 0.7

    def test_quality_spread_matches_paper_band(self):
        """Per-annotator F1 should span a wide band like 17.6%–89.1%."""
        rng = np.random.default_rng(1)
        from repro.data import NERCorpusConfig, make_ner_task

        task = make_ner_task(rng, NERCorpusConfig(num_train=150, num_dev=10, num_test=10, embedding_dim=8))
        pool = sample_ner_pool(rng, 15)
        crowd = simulate_ner_crowd(rng, task.train.tags, pool, mean_labels_per_instance=5.0)
        from repro.crowd import sequence_annotator_report

        report = sequence_annotator_report(crowd, task.train.tags)
        active = report.counts >= 5
        quality = report.quality[active]
        assert quality.max() > 0.75
        assert quality.min() < 0.55

    def test_mean_validation(self):
        rng = np.random.default_rng(0)
        pool = sample_ner_pool(rng, 3)
        with pytest.raises(ValueError):
            simulate_ner_crowd(rng, [np.array([0])], pool, mean_labels_per_instance=0.2)
