"""Annotator-report regression tests (PR 5 bugfixes).

Three confirmed bugs pinned here:

* zero-label annotators used to get ``quality = 0.0``, conflating "no
  data" with "always wrong" and dragging the Fig. 4 quality boxplots
  down — they now report NaN and are excluded from ``quality_stats``;
* ``count_stats`` / ``quality_stats`` used to crash with a bare
  "cannot summarize an empty array" when no annotator passed
  ``min_labels`` (or the crowd was empty) — the error now names the
  threshold and the crowd;
* ``top_annotators`` used ``np.argsort`` with the default unstable sort,
  so tied annotator volumes could reorder across platforms — the sort is
  now stable and tie order is pinned.
"""

import numpy as np
import pytest

from repro.crowd import (
    CrowdLabelMatrix,
    MISSING,
    SequenceCrowdLabels,
    classification_annotator_report,
    sequence_annotator_report,
)

M = MISSING


def _crowd_with_idle_annotator():
    # Annotator 2 never labels; annotator 1 labels and is always wrong.
    labels = np.array(
        [
            [0, 1, M],
            [1, 0, M],
            [0, 1, M],
            [1, 0, M],
        ]
    )
    truth = np.array([0, 1, 0, 1])
    return CrowdLabelMatrix(labels, 2), truth


class TestZeroLabelAnnotators:
    def test_idle_annotator_reports_nan_not_zero(self):
        crowd, truth = _crowd_with_idle_annotator()
        report = classification_annotator_report(crowd, truth)
        assert np.isnan(report.quality[2])  # no data
        assert report.quality[1] == 0.0     # labeled, always wrong — distinct
        assert report.quality[0] == 1.0

    def test_idle_annotator_excluded_from_quality_stats(self):
        crowd, truth = _crowd_with_idle_annotator()
        report = classification_annotator_report(crowd, truth)
        # Even at min_labels=0 the NaN must not leak into the summary.
        for min_labels in (0, 1):
            stats = report.quality_stats(min_labels=min_labels)
            assert np.isfinite([stats.minimum, stats.mean, stats.maximum]).all()
            assert stats.minimum == 0.0 and stats.maximum == 1.0

    def test_sequence_idle_annotator_reports_nan(self):
        sentences = [
            np.array([[0, M], [1, M]]),
            np.array([[1, M], [0, M]]),
        ]
        crowd = SequenceCrowdLabels(sentences, 2, 2)
        truth = [np.array([0, 1]), np.array([1, 0])]
        report = sequence_annotator_report(crowd, truth, labels=["O", "B-X"])
        assert np.isnan(report.quality[1])
        assert np.isfinite(report.quality[0])


class TestEmptySelectionErrors:
    def test_count_stats_names_min_labels_and_crowd(self):
        crowd, truth = _crowd_with_idle_annotator()
        report = classification_annotator_report(crowd, truth)
        with pytest.raises(ValueError, match=r"min_labels=9.*3 annotators.*labeled 4"):
            report.count_stats(min_labels=9)

    def test_quality_stats_names_min_labels_and_crowd(self):
        crowd, truth = _crowd_with_idle_annotator()
        report = classification_annotator_report(crowd, truth)
        with pytest.raises(ValueError, match="min_labels=9"):
            report.quality_stats(min_labels=9)

    def test_empty_crowd_reports_busiest_zero(self):
        crowd = CrowdLabelMatrix(np.full((0, 3), M, dtype=np.int64), 2)
        report = classification_annotator_report(crowd, np.zeros(0, dtype=np.int64))
        with pytest.raises(ValueError, match="busiest.*labeled 0"):
            report.count_stats()

    def test_passing_selection_unchanged(self):
        crowd, truth = _crowd_with_idle_annotator()
        report = classification_annotator_report(crowd, truth)
        stats = report.count_stats(min_labels=1)
        assert stats.minimum == 4.0 and stats.maximum == 4.0


class TestTopAnnotatorsTieOrder:
    def test_ties_keep_ascending_annotator_order(self):
        report = classification_annotator_report(
            CrowdLabelMatrix(np.full((0, 4), M, dtype=np.int64), 2),
            np.zeros(0, dtype=np.int64),
        )
        # Overwrite counts directly: volumes [5, 7, 5, 7] have two ties.
        report.counts = np.array([5, 7, 5, 7])
        np.testing.assert_array_equal(report.top_annotators(4), [1, 3, 0, 2])
        np.testing.assert_array_equal(report.top_annotators(2), [1, 3])

    def test_all_tied_is_identity_order(self):
        report = classification_annotator_report(
            CrowdLabelMatrix(np.full((0, 5), M, dtype=np.int64), 2),
            np.zeros(0, dtype=np.int64),
        )
        report.counts = np.full(5, 3)
        np.testing.assert_array_equal(report.top_annotators(5), np.arange(5))
