"""Tests for crowd-label containers."""

import numpy as np
import pytest

from repro.crowd import MISSING, CrowdLabelMatrix, SequenceCrowdLabels

M = MISSING


class TestCrowdLabelMatrix:
    def _tiny(self):
        labels = np.array(
            [
                [0, 1, M],
                [1, 1, 1],
                [M, M, 0],
            ]
        )
        return CrowdLabelMatrix(labels, num_classes=2)

    def test_validation(self):
        with pytest.raises(ValueError):
            CrowdLabelMatrix(np.array([0, 1]), 2)  # not 2-D
        with pytest.raises(TypeError):
            CrowdLabelMatrix(np.array([[0.5]]), 2)
        with pytest.raises(ValueError):
            CrowdLabelMatrix(np.array([[5]]), 2)  # out of range
        with pytest.raises(ValueError):
            CrowdLabelMatrix(np.array([[0]]), 1)  # too few classes

    def test_counts(self):
        crowd = self._tiny()
        np.testing.assert_array_equal(crowd.annotations_per_instance(), [2, 3, 1])
        np.testing.assert_array_equal(crowd.annotations_per_annotator(), [2, 2, 2])
        assert crowd.total_annotations() == 6

    def test_vote_counts(self):
        crowd = self._tiny()
        np.testing.assert_array_equal(crowd.vote_counts(), [[1, 1], [0, 3], [1, 0]])

    def test_one_hot(self):
        one_hot = self._tiny().one_hot()
        assert one_hot.shape == (3, 3, 2)
        np.testing.assert_allclose(one_hot[0, 0], [1, 0])
        np.testing.assert_allclose(one_hot[0, 2], [0, 0])  # missing

    def test_subset(self):
        sub = self._tiny().subset(np.array([2]))
        assert sub.num_instances == 1
        np.testing.assert_array_equal(sub.labels[0], [M, M, 0])

    def test_annotator_confusion(self):
        crowd = self._tiny()
        truth = np.array([0, 1, 0])
        confusion = crowd.annotator_confusion(truth, annotator=0)
        # Annotator 0 labeled instance 0 (true 0 → said 0) and 1 (true 1 → said 1).
        np.testing.assert_allclose(confusion, np.eye(2))

    def test_annotator_confusion_unobserved_row_uniform(self):
        crowd = CrowdLabelMatrix(np.array([[0], [M]]), 2)
        confusion = crowd.annotator_confusion(np.array([0, 1]), 0)
        np.testing.assert_allclose(confusion[1], [0.5, 0.5])

    def test_paper_convention_roundtrip(self):
        paper = np.array([[1, 0, 2], [0, 2, 1]])
        crowd = CrowdLabelMatrix.from_paper_convention(paper, 2)
        np.testing.assert_array_equal(crowd.labels, [[0, M, 1], [M, 1, 0]])
        np.testing.assert_array_equal(crowd.to_paper_convention(), paper)


class TestSequenceCrowdLabels:
    def _tiny(self):
        return SequenceCrowdLabels(
            labels=[
                np.array([[0, M], [1, M]]),          # 2 tokens, annotator 0 only
                np.array([[0, 0], [1, 2], [2, 2]]),  # 3 tokens, both annotators
            ],
            num_classes=3,
            num_annotators=2,
        )

    def test_validation_partial_column_rejected(self):
        with pytest.raises(ValueError):
            SequenceCrowdLabels(
                labels=[np.array([[0, M], [M, M]])],  # annotator 0 labeled 1 of 2
                num_classes=2,
                num_annotators=2,
            )

    def test_validation_out_of_range(self):
        with pytest.raises(ValueError):
            SequenceCrowdLabels([np.array([[9]])], num_classes=2, num_annotators=1)

    def test_validation_shape(self):
        with pytest.raises(ValueError):
            SequenceCrowdLabels([np.zeros((2,), dtype=int)], num_classes=2, num_annotators=1)

    def test_annotators_of(self):
        crowd = self._tiny()
        np.testing.assert_array_equal(crowd.annotators_of(0), [0])
        np.testing.assert_array_equal(crowd.annotators_of(1), [0, 1])

    def test_counts(self):
        crowd = self._tiny()
        np.testing.assert_array_equal(crowd.annotations_per_instance(), [1, 2])
        np.testing.assert_array_equal(crowd.annotations_per_annotator(), [2, 1])

    def test_token_vote_counts(self):
        crowd = self._tiny()
        votes = crowd.token_vote_counts(1)
        np.testing.assert_array_equal(votes, [[2, 0, 0], [0, 1, 1], [0, 0, 2]])

    def test_subset(self):
        sub = self._tiny().subset(np.array([1]))
        assert sub.num_instances == 1
        assert sub.labels[0].shape == (3, 2)

    def test_annotator_confusion(self):
        crowd = self._tiny()
        truth = [np.array([0, 1]), np.array([0, 1, 2])]
        confusion = crowd.annotator_confusion(truth, 0)
        np.testing.assert_allclose(confusion, np.eye(3))
        confusion1 = crowd.annotator_confusion(truth, 1)
        # Annotator 1 labeled only sentence 1: true (0,1,2) → said (0,2,2).
        np.testing.assert_allclose(confusion1[0], [1, 0, 0])
        np.testing.assert_allclose(confusion1[1], [0, 0, 1])
        np.testing.assert_allclose(confusion1[2], [0, 0, 1])
