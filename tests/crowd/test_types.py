"""Tests for crowd-label containers."""

import numpy as np
import pytest

from repro.crowd import MISSING, CrowdLabelMatrix, SequenceCrowdLabels

M = MISSING


class TestCrowdLabelMatrix:
    def _tiny(self):
        labels = np.array(
            [
                [0, 1, M],
                [1, 1, 1],
                [M, M, 0],
            ]
        )
        return CrowdLabelMatrix(labels, num_classes=2)

    def test_validation(self):
        with pytest.raises(ValueError):
            CrowdLabelMatrix(np.array([0, 1]), 2)  # not 2-D
        with pytest.raises(TypeError):
            CrowdLabelMatrix(np.array([[0.5]]), 2)
        with pytest.raises(ValueError):
            CrowdLabelMatrix(np.array([[5]]), 2)  # out of range
        with pytest.raises(ValueError):
            CrowdLabelMatrix(np.array([[0]]), 1)  # too few classes

    def test_counts(self):
        crowd = self._tiny()
        np.testing.assert_array_equal(crowd.annotations_per_instance(), [2, 3, 1])
        np.testing.assert_array_equal(crowd.annotations_per_annotator(), [2, 2, 2])
        assert crowd.total_annotations() == 6

    def test_vote_counts(self):
        crowd = self._tiny()
        np.testing.assert_array_equal(crowd.vote_counts(), [[1, 1], [0, 3], [1, 0]])

    def test_one_hot(self):
        one_hot = self._tiny().one_hot()
        assert one_hot.shape == (3, 3, 2)
        np.testing.assert_allclose(one_hot[0, 0], [1, 0])
        np.testing.assert_allclose(one_hot[0, 2], [0, 0])  # missing

    def test_subset(self):
        sub = self._tiny().subset(np.array([2]))
        assert sub.num_instances == 1
        np.testing.assert_array_equal(sub.labels[0], [M, M, 0])

    def test_annotator_confusion(self):
        crowd = self._tiny()
        truth = np.array([0, 1, 0])
        confusion = crowd.annotator_confusion(truth, annotator=0)
        # Annotator 0 labeled instance 0 (true 0 → said 0) and 1 (true 1 → said 1).
        np.testing.assert_allclose(confusion, np.eye(2))

    def test_annotator_confusion_unobserved_row_uniform(self):
        crowd = CrowdLabelMatrix(np.array([[0], [M]]), 2)
        confusion = crowd.annotator_confusion(np.array([0, 1]), 0)
        np.testing.assert_allclose(confusion[1], [0.5, 0.5])

    def test_paper_convention_roundtrip(self):
        paper = np.array([[1, 0, 2], [0, 2, 1]])
        crowd = CrowdLabelMatrix.from_paper_convention(paper, 2)
        np.testing.assert_array_equal(crowd.labels, [[0, M, 1], [M, 1, 0]])
        np.testing.assert_array_equal(crowd.to_paper_convention(), paper)


class TestSequenceCrowdLabels:
    def _tiny(self):
        return SequenceCrowdLabels(
            labels=[
                np.array([[0, M], [1, M]]),          # 2 tokens, annotator 0 only
                np.array([[0, 0], [1, 2], [2, 2]]),  # 3 tokens, both annotators
            ],
            num_classes=3,
            num_annotators=2,
        )

    def test_validation_partial_column_rejected(self):
        with pytest.raises(ValueError):
            SequenceCrowdLabels(
                labels=[np.array([[0, M], [M, M]])],  # annotator 0 labeled 1 of 2
                num_classes=2,
                num_annotators=2,
            )

    def test_validation_out_of_range(self):
        with pytest.raises(ValueError):
            SequenceCrowdLabels([np.array([[9]])], num_classes=2, num_annotators=1)

    def test_validation_shape(self):
        with pytest.raises(ValueError):
            SequenceCrowdLabels([np.zeros((2,), dtype=int)], num_classes=2, num_annotators=1)

    def test_annotators_of(self):
        crowd = self._tiny()
        np.testing.assert_array_equal(crowd.annotators_of(0), [0])
        np.testing.assert_array_equal(crowd.annotators_of(1), [0, 1])

    def test_counts(self):
        crowd = self._tiny()
        np.testing.assert_array_equal(crowd.annotations_per_instance(), [1, 2])
        np.testing.assert_array_equal(crowd.annotations_per_annotator(), [2, 1])

    def test_token_vote_counts(self):
        crowd = self._tiny()
        votes = crowd.token_vote_counts(1)
        np.testing.assert_array_equal(votes, [[2, 0, 0], [0, 1, 1], [0, 0, 2]])

    def test_subset(self):
        sub = self._tiny().subset(np.array([1]))
        assert sub.num_instances == 1
        assert sub.labels[0].shape == (3, 2)

    def test_annotator_confusion(self):
        crowd = self._tiny()
        truth = [np.array([0, 1]), np.array([0, 1, 2])]
        confusion = crowd.annotator_confusion(truth, 0)
        np.testing.assert_allclose(confusion, np.eye(3))
        confusion1 = crowd.annotator_confusion(truth, 1)
        # Annotator 1 labeled only sentence 1: true (0,1,2) → said (0,2,2).
        np.testing.assert_allclose(confusion1[0], [1, 0, 0])
        np.testing.assert_allclose(confusion1[1], [0, 0, 1])
        np.testing.assert_allclose(confusion1[2], [0, 0, 1])


def _assert_classification_caches_match(extended: CrowdLabelMatrix, fresh: CrowdLabelMatrix):
    """Every cached view of an incrementally-extended container must equal a
    from-scratch rebuild — the correctness contract of the streaming append
    path (cache coherence, not just label equality)."""
    np.testing.assert_array_equal(extended.labels, fresh.labels)
    np.testing.assert_array_equal(extended.observed_mask, fresh.observed_mask)
    np.testing.assert_array_equal(extended.vote_counts(), fresh.vote_counts())
    for got, want in zip(extended.flat_label_pairs(), fresh.flat_label_pairs()):
        np.testing.assert_array_equal(got, want)
    got_inc, want_inc = extended.label_incidence(), fresh.label_incidence()
    if want_inc is not None:
        assert (got_inc != want_inc).nnz == 0


class TestCrowdLabelMatrixExtend:
    def _blocks(self):
        rng = np.random.default_rng(7)
        blocks = []
        for size in (5, 3, 0, 8):
            block = rng.integers(-1, 3, size=(size, 4))
            blocks.append(block.astype(np.int64))
        # Guarantee at least one fully-missing row survives validation checks.
        blocks[0][1] = M
        return blocks

    def test_extend_matches_fresh_container_with_warm_caches(self):
        blocks = self._blocks()
        crowd = CrowdLabelMatrix(blocks[0], num_classes=3)
        # Warm every cache before the first append.
        crowd.observed_mask, crowd.flat_label_pairs()
        crowd.label_incidence(), crowd.vote_counts()
        for block in blocks[1:]:
            crowd.extend(block)
        fresh = CrowdLabelMatrix(np.concatenate(blocks, axis=0), num_classes=3)
        _assert_classification_caches_match(crowd, fresh)

    def test_extend_with_cold_caches_builds_lazily(self):
        blocks = self._blocks()
        crowd = CrowdLabelMatrix(blocks[0], num_classes=3)
        for block in blocks[1:]:
            crowd.extend(block)  # nothing cached yet — no incremental work
        fresh = CrowdLabelMatrix(np.concatenate(blocks, axis=0), num_classes=3)
        _assert_classification_caches_match(crowd, fresh)

    def test_extend_returns_self_and_grows(self):
        crowd = CrowdLabelMatrix(np.array([[0, 1]]), 2)
        assert crowd.extend(np.array([[1, M]])) is crowd
        assert crowd.num_instances == 2
        assert crowd.total_annotations() == 3

    def test_extend_from_empty(self):
        crowd = CrowdLabelMatrix(np.zeros((0, 3), dtype=np.int64), 2)
        crowd.vote_counts()
        crowd.extend(np.array([[0, 1, M]]))
        np.testing.assert_array_equal(crowd.vote_counts(), [[1, 1]])

    def test_extend_validates_block(self):
        crowd = CrowdLabelMatrix(np.array([[0, 1]]), 2)
        with pytest.raises(ValueError):
            crowd.extend(np.array([[5, 0]]))  # out of range
        with pytest.raises(ValueError):
            crowd.extend(np.array([[0, 1, 0]]))  # annotator axis changed
        with pytest.raises(TypeError):
            crowd.extend(np.array([[0.5, 0.5]]))
        assert crowd.num_instances == 1  # failed appends leave it untouched


class TestSequenceCrowdLabelsAppend:
    def _sentences(self, seed, count, annotators=3, classes=3):
        rng = np.random.default_rng(seed)
        sentences = []
        for index in range(count):
            t = int(rng.integers(0 if index % 3 == 1 else 1, 5))
            matrix = np.full((t, annotators), M, dtype=np.int64)
            for j in range(annotators):
                if rng.random() < 0.7:
                    matrix[:, j] = rng.integers(0, classes, size=t)
            sentences.append(matrix)
        return sentences

    def _assert_matches_fresh(self, extended, fresh):
        assert extended.num_instances == fresh.num_instances
        for got, want in zip(extended.labels, fresh.labels):
            np.testing.assert_array_equal(got, want)
        got_stack, got_offsets = extended.flat_labels()
        want_stack, want_offsets = fresh.flat_labels()
        np.testing.assert_array_equal(got_stack, want_stack)
        np.testing.assert_array_equal(got_offsets, want_offsets)
        for got, want in zip(extended.flat_label_pairs(), fresh.flat_label_pairs()):
            np.testing.assert_array_equal(got, want)
        np.testing.assert_array_equal(extended.annotator_mask(), fresh.annotator_mask())
        np.testing.assert_array_equal(
            extended.token_vote_counts_flat(), fresh.token_vote_counts_flat()
        )
        got_inc, want_inc = extended.token_label_incidence(), fresh.token_label_incidence()
        if want_inc is not None:
            assert (got_inc != want_inc).nnz == 0

    def test_append_matches_fresh_container_with_warm_caches(self):
        first = self._sentences(11, 4)
        second = self._sentences(13, 3)
        third = self._sentences(17, 2)
        crowd = SequenceCrowdLabels(list(first), 3, 3)
        crowd.flat_labels(), crowd.flat_label_pairs()
        crowd.token_label_incidence(), crowd.annotator_mask()
        crowd.append_labels(second)
        crowd.append_labels([])      # empty batch is a no-op
        crowd.append_labels(third)
        fresh = SequenceCrowdLabels(first + second + third, 3, 3)
        self._assert_matches_fresh(crowd, fresh)

    def test_append_with_cold_caches_builds_lazily(self):
        first = self._sentences(19, 3)
        second = self._sentences(23, 4)
        crowd = SequenceCrowdLabels(list(first), 3, 3)
        crowd.append_labels(second)
        fresh = SequenceCrowdLabels(first + second, 3, 3)
        self._assert_matches_fresh(crowd, fresh)

    def test_append_validates_sentences(self):
        crowd = SequenceCrowdLabels([np.array([[0, 1]])], 2, 2)
        with pytest.raises(ValueError):
            crowd.append_labels([np.array([[0, M], [M, M]])])  # partial column
        with pytest.raises(ValueError):
            crowd.append_labels([np.array([[9, 0]])])  # out of range


def _random_matrix_crowd(seed: int, instances: int, annotators: int, classes: int):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, classes, size=(instances, annotators))
    labels[rng.random(labels.shape) < 0.6] = M
    return CrowdLabelMatrix(labels, classes)


def _random_sequence_crowd(seed: int, sentences: int, annotators: int, classes: int):
    rng = np.random.default_rng(seed)
    matrices = []
    for _ in range(sentences):
        t = int(rng.integers(1, 8))
        matrix = np.full((t, annotators), M, dtype=np.int64)
        for j in rng.choice(annotators, size=2, replace=False):
            matrix[:, j] = rng.integers(0, classes, size=t)
        matrices.append(matrix)
    return SequenceCrowdLabels(matrices, classes, annotators)


class TestCrowdShards:
    """The zero-copy shard views of CrowdLabelMatrix (PR 5 data layer)."""

    def test_partition_covers_crowd_in_order(self):
        crowd = _random_matrix_crowd(0, 23, 6, 3)
        shards = crowd.shards(4)
        assert [s.num_instances for s in shards] == [6, 6, 6, 5]
        rebuilt = np.concatenate([s.labels for s in shards], axis=0)
        np.testing.assert_array_equal(rebuilt, crowd.labels)

    def test_views_match_subset_containers(self):
        crowd = _random_matrix_crowd(1, 30, 5, 4)
        start = 0
        for shard in crowd.shards(3):
            subset = crowd.subset(np.arange(start, start + shard.num_instances))
            np.testing.assert_array_equal(shard.labels, subset.labels)
            np.testing.assert_array_equal(shard.vote_counts(), subset.vote_counts())
            np.testing.assert_array_equal(shard.observed_mask, subset.observed_mask)
            np.testing.assert_array_equal(
                shard.annotations_per_instance(), subset.annotations_per_instance()
            )
            np.testing.assert_array_equal(
                shard.annotations_per_annotator(), subset.annotations_per_annotator()
            )
            assert shard.total_annotations() == subset.total_annotations()
            for mine, theirs in zip(shard.flat_label_pairs(), subset.flat_label_pairs()):
                np.testing.assert_array_equal(mine, theirs)
            incidence = shard.label_incidence()
            if incidence is not None:
                np.testing.assert_array_equal(
                    incidence.toarray(), subset.label_incidence().toarray()
                )
            start += shard.num_instances

    def test_views_share_parent_cache_memory(self):
        crowd = _random_matrix_crowd(2, 20, 5, 3)
        shard = crowd.shards(2)[1]
        # Label block and vote counts are row slices of the parent arrays.
        assert np.shares_memory(shard.labels, crowd.labels)
        assert np.shares_memory(shard.vote_counts(), crowd.vote_counts())
        # Annotator/label columns of the COO triples are parent slices;
        # only the localized row index is fresh memory.
        _, annotators, given = shard.flat_label_pairs()
        _, parent_annotators, parent_given = crowd.flat_label_pairs()
        assert np.shares_memory(annotators, parent_annotators)
        assert np.shares_memory(given, parent_given)

    def test_oversized_shard_count_yields_empty_shards(self):
        crowd = _random_matrix_crowd(3, 4, 3, 2)
        shards = crowd.shards(7)
        assert [s.num_instances for s in shards] == [1, 1, 1, 1, 0, 0, 0]
        empty = shards[-1]
        assert empty.num_annotators == 3 and empty.num_classes == 2
        assert empty.total_annotations() == 0
        rows, annotators, given = empty.flat_label_pairs()
        assert rows.size == annotators.size == given.size == 0

    def test_iter_shards_respects_observation_budget(self):
        crowd = _random_matrix_crowd(4, 40, 8, 3)
        per_instance = crowd.annotations_per_instance()
        shards = list(crowd.iter_shards(10))
        assert sum(s.num_instances for s in shards) == crowd.num_instances
        for shard in shards:
            obs = shard.total_annotations()
            assert obs <= 10 or shard.num_instances == 1
        # Greedy packing: every shard but the last would overflow by
        # adding its successor's first instance.
        starts = np.cumsum([0] + [s.num_instances for s in shards])
        for index in range(len(shards) - 1):
            next_first = per_instance[starts[index + 1]]
            assert shards[index].total_annotations() + next_first > 10

    def test_iter_shards_on_empty_crowd_yields_one_empty_shard(self):
        crowd = CrowdLabelMatrix(np.zeros((0, 4), dtype=np.int64), 2)
        shards = list(crowd.iter_shards(5))
        assert len(shards) == 1 and shards[0].num_instances == 0

    def test_invalid_arguments_rejected(self):
        crowd = _random_matrix_crowd(5, 6, 3, 2)
        with pytest.raises(ValueError):
            crowd.shards(0)
        with pytest.raises(ValueError):
            list(crowd.iter_shards(0))
        from repro.crowd import CrowdShard

        with pytest.raises(ValueError):
            CrowdShard(crowd, 4, 9)


class TestSequenceCrowdShards:
    def test_views_match_subset_containers(self):
        crowd = _random_sequence_crowd(6, 13, 5, 4)
        start = 0
        for shard in crowd.shards(3):
            subset = crowd.subset(np.arange(start, start + shard.num_instances))
            stacked, offsets = shard.flat_labels()
            sub_stacked, sub_offsets = subset.flat_labels()
            np.testing.assert_array_equal(stacked, sub_stacked)
            np.testing.assert_array_equal(offsets, sub_offsets)
            for mine, theirs in zip(shard.flat_label_pairs(), subset.flat_label_pairs()):
                np.testing.assert_array_equal(mine, theirs)
            np.testing.assert_array_equal(shard.annotator_mask(), subset.annotator_mask())
            np.testing.assert_array_equal(
                shard.token_vote_counts_flat(), subset.token_vote_counts_flat()
            )
            incidence = shard.token_label_incidence()
            if incidence is not None:
                np.testing.assert_array_equal(
                    incidence.toarray(), subset.token_label_incidence().toarray()
                )
            start += shard.num_instances

    def test_primitives_run_on_sequence_shards(self):
        from repro.inference.primitives import confusion_counts

        crowd = _random_sequence_crowd(7, 9, 4, 3)
        rng = np.random.default_rng(8)
        start = 0
        for shard in crowd.shards(2):
            subset = crowd.subset(np.arange(start, start + shard.num_instances))
            stacked, _ = shard.flat_labels()
            posterior = rng.dirichlet(np.ones(3), size=stacked.shape[0])
            np.testing.assert_allclose(
                confusion_counts(posterior, shard),
                confusion_counts(posterior, subset),
                atol=1e-12, rtol=0,
            )
            start += shard.num_instances

    def test_iter_shards_budgets_token_observations(self):
        crowd = _random_sequence_crowd(9, 12, 5, 3)
        shards = list(crowd.iter_shards(30))
        assert sum(s.num_instances for s in shards) == crowd.num_instances
        for shard in shards:
            assert shard.total_annotations() <= 30 or shard.num_instances == 1
