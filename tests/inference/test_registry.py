"""Registry completeness and interface-contract property tests.

Every paper Table II/III truth-inference name must resolve through the
registry, registry-built suite tables must match what the suites used to
hard-code, and every registered method must satisfy the shared interface
contract: correct shapes, normalized rows, no NaNs, determinism under a
fixed seed.
"""

import numpy as np
import pytest

from repro.crowd import (
    sample_annotator_pool,
    sample_ner_pool,
    simulate_classification_crowd,
    simulate_ner_crowd,
)
from repro.data import NERCorpusConfig, make_ner_task
from repro.inference import (
    BSCSeq,
    CATD,
    DawidSkene,
    GLAD,
    HMMCrowd,
    IBCC,
    MajorityVote,
    PM,
    TokenLevelInference,
    available_methods,
    build_method_table,
    get_method,
    register,
)
from repro.inference.registry import _REGISTRY, MethodSpec

# Paper Table II truth-inference block (sentiment) and Table III block (NER).
PAPER_TABLE2_NAMES = ["MV", "DS", "GLAD", "PM", "CATD"]
PAPER_TABLE3_NAMES = ["MV", "DS", "IBCC", "BSC-seq", "HMM-Crowd"]


@pytest.fixture(scope="module")
def small_classification_crowd():
    rng = np.random.default_rng(0)
    truth = rng.integers(0, 2, size=120)
    pool = sample_annotator_pool(rng, 10, 2)
    return simulate_classification_crowd(rng, truth, pool, mean_labels_per_instance=4.0)


@pytest.fixture(scope="module")
def small_sequence_crowd():
    rng = np.random.default_rng(1)
    task = make_ner_task(
        rng, NERCorpusConfig(num_train=25, num_dev=5, num_test=5, embedding_dim=8)
    )
    return simulate_ner_crowd(rng, task.train.tags, sample_ner_pool(rng, 6), 3.0)


class TestCompleteness:
    def test_all_paper_names_resolve(self):
        for name in PAPER_TABLE2_NAMES + ["IBCC"]:
            assert get_method(name, kind="classification") is not None
        for name in PAPER_TABLE3_NAMES:
            assert get_method(name, kind="sequence") is not None

    def test_registry_table_matches_previous_hardcoded_sentiment(self):
        table = build_method_table(PAPER_TABLE2_NAMES, kind="classification")
        expected = {"MV": MajorityVote, "DS": DawidSkene, "GLAD": GLAD, "PM": PM, "CATD": CATD}
        assert list(table) == PAPER_TABLE2_NAMES
        for name, method in table.items():
            assert type(method) is expected[name]

    def test_registry_table_matches_previous_hardcoded_ner(self):
        overrides = {"BSC-seq": {"max_iterations": 15}, "HMM-Crowd": {"max_iterations": 15}}
        table = build_method_table(PAPER_TABLE3_NAMES, kind="sequence", overrides=overrides)
        assert list(table) == PAPER_TABLE3_NAMES
        for name in ("MV", "DS", "IBCC"):
            assert type(table[name]) is TokenLevelInference
        assert type(table["MV"].method) is MajorityVote
        assert type(table["DS"].method) is DawidSkene
        assert type(table["IBCC"].method) is IBCC
        assert type(table["BSC-seq"]) is BSCSeq
        assert type(table["HMM-Crowd"]) is HMMCrowd
        assert table["BSC-seq"].max_iterations == 15
        assert table["HMM-Crowd"].max_iterations == 15

    def test_suites_build_from_registry(self):
        from repro.experiments import (
            NER_INFERENCE_METHODS,
            SENTIMENT_INFERENCE_METHODS,
            ner_inference_table,
            sentiment_inference_table,
        )

        assert SENTIMENT_INFERENCE_METHODS == PAPER_TABLE2_NAMES
        assert NER_INFERENCE_METHODS == PAPER_TABLE3_NAMES
        assert list(sentiment_inference_table()) == SENTIMENT_INFERENCE_METHODS
        assert list(ner_inference_table()) == NER_INFERENCE_METHODS

    def test_available_methods_filters_by_kind(self):
        classification = available_methods("classification")
        sequence = available_methods("sequence")
        assert set(PAPER_TABLE2_NAMES) <= set(classification)
        assert set(PAPER_TABLE3_NAMES) <= set(sequence)
        assert set(classification) | set(sequence) <= set(available_methods())


class TestRegistryAPI:
    def test_unknown_name_raises_keyerror_with_known_names(self):
        with pytest.raises(KeyError, match="MV"):
            get_method("nope")
        with pytest.raises(KeyError):
            get_method("nope", kind="sequence")

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            get_method("MV", kind="token")
        with pytest.raises(ValueError):
            register("X", "token", MajorityVote)

    def test_no_silent_redefinition(self):
        with pytest.raises(ValueError, match="already registered"):
            register("MV", "classification", MajorityVote)

    def test_register_and_overwrite(self):
        key = ("classification", "_test_method")
        try:
            spec = register("_test_method", "classification", MajorityVote, "test")
            assert isinstance(spec, MethodSpec)
            assert isinstance(get_method("_test_method"), MajorityVote)
            register("_test_method", "classification", DawidSkene, overwrite=True)
            assert isinstance(get_method("_test_method"), DawidSkene)
        finally:
            _REGISTRY.pop(key, None)

    def test_overrides_forwarded(self):
        method = get_method("DS", max_iterations=7)
        assert method.max_iterations == 7
        wrapped = get_method("DS", kind="sequence", max_iterations=7)
        assert wrapped.method.max_iterations == 7


class TestInterfaceContract:
    """Shape / normalization / NaN / determinism for every registered method."""

    @pytest.mark.parametrize("name", available_methods("classification"))
    def test_classification_contract(self, name, small_classification_crowd):
        crowd = small_classification_crowd
        result = get_method(name, kind="classification").infer(crowd)
        assert result.posterior.shape == (crowd.num_instances, crowd.num_classes)
        np.testing.assert_allclose(result.posterior.sum(axis=1), 1.0, atol=1e-8)
        assert np.isfinite(result.posterior).all()
        if result.confusions is not None:
            assert result.confusions.shape == (
                crowd.num_annotators,
                crowd.num_classes,
                crowd.num_classes,
            )
            assert np.isfinite(result.confusions).all()

    @pytest.mark.parametrize("name", available_methods("classification"))
    def test_classification_deterministic(self, name, small_classification_crowd):
        crowd = small_classification_crowd
        first = get_method(name, kind="classification").infer(crowd)
        second = get_method(name, kind="classification").infer(crowd)
        np.testing.assert_array_equal(first.posterior, second.posterior)

    @pytest.mark.parametrize("name", available_methods("sequence"))
    def test_sequence_contract(self, name, small_sequence_crowd):
        crowd = small_sequence_crowd
        result = get_method(name, kind="sequence").infer(crowd)
        assert len(result.posteriors) == crowd.num_instances
        for i, posterior in enumerate(result.posteriors):
            assert posterior.shape == (crowd.labels[i].shape[0], crowd.num_classes)
            np.testing.assert_allclose(posterior.sum(axis=1), 1.0, atol=1e-8)
            assert np.isfinite(posterior).all()

    @pytest.mark.parametrize("name", available_methods("sequence"))
    def test_sequence_deterministic(self, name, small_sequence_crowd):
        crowd = small_sequence_crowd
        first = get_method(name, kind="sequence").infer(crowd)
        second = get_method(name, kind="sequence").infer(crowd)
        for a, b in zip(first.posteriors, second.posteriors):
            np.testing.assert_array_equal(a, b)


class TestDiagnosticsContract:
    """Every *iterative* method must expose the shared ConvergenceMonitor
    keys — the contract the PR-3 sweep extended to GLAD/PM/CATD (which used
    to report ad-hoc extras or none at all)."""

    ITERATIVE_CLASSIFICATION = ["DS", "IBCC", "GLAD", "PM", "CATD"]

    @pytest.mark.parametrize("name", ITERATIVE_CLASSIFICATION)
    def test_monitor_keys_present_and_sane(self, name, small_classification_crowd):
        extras = get_method(name, kind="classification").infer(small_classification_crowd).extras
        assert {"iterations", "last_change", "converged"} <= set(extras)
        assert extras["iterations"] >= 1
        assert np.isfinite(extras["last_change"])
        assert isinstance(extras["converged"], bool)

    @pytest.mark.parametrize("name", ["GLAD", "PM", "CATD"])
    def test_method_specific_extras_preserved(self, name, small_classification_crowd):
        extras = get_method(name, kind="classification").infer(small_classification_crowd).extras
        if name == "GLAD":
            assert extras["alpha"].shape == (small_classification_crowd.num_annotators,)
            assert extras["beta"].shape == (small_classification_crowd.num_instances,)
        else:
            assert extras["weights"].shape == (small_classification_crowd.num_annotators,)

    def test_mv_is_intentionally_monitor_free(self, small_classification_crowd):
        # MV is closed-form; the diagnostics contract applies to iterative
        # methods only, and MV advertising fake iteration counts would lie.
        extras = get_method("MV", kind="classification").infer(small_classification_crowd).extras
        assert "iterations" not in extras

    def test_converged_methods_report_subtolerance_change(self, small_classification_crowd):
        for name in ("PM", "CATD"):
            method = get_method(name, kind="classification")
            extras = method.infer(small_classification_crowd).extras
            if extras["converged"]:
                assert extras["last_change"] < method.tolerance

    def test_registered_kinds_match_paper_applicability(self):
        # GLAD/PM/CATD are instance-level methods (GLAD binary-only — "GLAD,
        # which is inapplicable on NER"); none of them is a sequence method.
        sequence = set(available_methods("sequence"))
        classification = set(available_methods("classification"))
        assert {"GLAD", "PM", "CATD"} <= classification
        assert not ({"GLAD", "PM", "CATD"} & sequence)
        assert "MV" in classification and "MV" in sequence
