"""Tests for the truth-inference baselines (classification)."""

import numpy as np
import pytest

from repro.crowd import (
    MISSING,
    CrowdLabelMatrix,
    sample_annotator_pool,
    simulate_classification_crowd,
)
from repro.eval import posterior_accuracy
from repro.inference import (
    CATD,
    GLAD,
    IBCC,
    PM,
    DawidSkene,
    InferenceResult,
    MajorityVote,
    majority_vote_posterior,
)

M = MISSING


def _simulated(seed=0, I=400, J=25, mean=5.0, num_classes=2):
    rng = np.random.default_rng(seed)
    truth = rng.integers(0, num_classes, size=I)
    pool = sample_annotator_pool(rng, J, num_classes)
    crowd = simulate_classification_crowd(rng, truth, pool, mean_labels_per_instance=mean)
    return truth, crowd


class TestInferenceResult:
    def test_posterior_must_normalize(self):
        with pytest.raises(ValueError):
            InferenceResult(posterior=np.array([[0.5, 0.2]]))

    def test_hard_labels(self):
        result = InferenceResult(posterior=np.array([[0.9, 0.1], [0.3, 0.7]]))
        np.testing.assert_array_equal(result.hard_labels(), [0, 1])


class TestMajorityVote:
    def test_vote_fractions(self):
        crowd = CrowdLabelMatrix(np.array([[0, 0, 1], [1, M, M]]), 2)
        posterior = majority_vote_posterior(crowd)
        np.testing.assert_allclose(posterior, [[2 / 3, 1 / 3], [0, 1]])

    def test_unlabeled_instance_uniform(self):
        crowd = CrowdLabelMatrix(np.array([[M, M], [0, 0]]), 2)
        posterior = majority_vote_posterior(crowd)
        np.testing.assert_allclose(posterior[0], [0.5, 0.5])

    def test_reasonable_on_simulation(self):
        truth, crowd = _simulated()
        accuracy = posterior_accuracy(truth, MajorityVote().infer(crowd).posterior)
        assert accuracy > 0.8


class TestDawidSkene:
    def test_beats_mv_on_heterogeneous_crowd(self):
        truth, crowd = _simulated(seed=1, I=600, J=30, mean=5.0)
        mv = posterior_accuracy(truth, MajorityVote().infer(crowd).posterior)
        ds = posterior_accuracy(truth, DawidSkene().infer(crowd).posterior)
        assert ds >= mv - 0.005  # DS should match or beat MV

    def test_recovers_confusion_matrices(self):
        rng = np.random.default_rng(2)
        truth = rng.integers(0, 2, size=2000)
        pool = sample_annotator_pool(rng, 8, 2)
        crowd = simulate_classification_crowd(rng, truth, pool, mean_labels_per_instance=6.0)
        result = DawidSkene().infer(crowd)
        active = crowd.annotations_per_annotator() > 200
        if active.sum() < 2:
            pytest.skip("too few active annotators in this draw")
        error = np.abs(result.confusions[active] - pool.confusions[active]).mean()
        assert error < 0.1

    def test_converges_and_reports_iterations(self):
        truth, crowd = _simulated()
        result = DawidSkene().infer(crowd)
        assert result.extras["iterations"] <= 100

    def test_rejects_empty_instances(self):
        crowd = CrowdLabelMatrix(np.array([[M, M], [0, 1]]), 2)
        with pytest.raises(ValueError):
            DawidSkene().infer(crowd)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            DawidSkene(max_iterations=0)
        with pytest.raises(ValueError):
            DawidSkene(smoothing=-1.0)


class TestGLAD:
    def test_binary_only(self):
        crowd = CrowdLabelMatrix(np.array([[0, 1, 2]]), 3)
        with pytest.raises(ValueError):
            GLAD().infer(crowd)

    def test_accuracy_on_simulation(self):
        truth, crowd = _simulated(seed=3)
        glad = posterior_accuracy(truth, GLAD().infer(crowd).posterior)
        mv = posterior_accuracy(truth, MajorityVote().infer(crowd).posterior)
        assert glad >= mv - 0.02

    def test_ability_identifies_spammer(self):
        rng = np.random.default_rng(4)
        truth = rng.integers(0, 2, size=800)
        # Two perfect annotators, one uniform spammer, all labeling everything.
        labels = np.stack([truth, truth, rng.integers(0, 2, size=800)], axis=1)
        crowd = CrowdLabelMatrix(labels, 2)
        result = GLAD().infer(crowd)
        alpha = result.extras["alpha"]
        assert alpha[2] < alpha[0]
        assert alpha[2] < alpha[1]

    def test_prior_validation(self):
        with pytest.raises(ValueError):
            GLAD(prior_correct=0.0)
        with pytest.raises(ValueError):
            GLAD(em_iterations=0)

    def test_tolerance_enables_early_stop(self):
        truth, crowd = _simulated(seed=12)
        eager = GLAD(tolerance=1e9).infer(crowd)
        assert eager.extras["iterations"] == 1
        assert eager.extras["converged"]
        # Default tolerance 0.0 never stops early (the paper's fixed budget).
        full = GLAD().infer(crowd)
        assert full.extras["iterations"] == GLAD().em_iterations
        assert not full.extras["converged"]


class TestPMAndCATD:
    @pytest.mark.parametrize("method_cls", [PM, CATD])
    def test_matches_or_beats_mv(self, method_cls):
        truth, crowd = _simulated(seed=5)
        score = posterior_accuracy(truth, method_cls().infer(crowd).posterior)
        mv = posterior_accuracy(truth, MajorityVote().infer(crowd).posterior)
        assert score >= mv - 0.02

    @pytest.mark.parametrize("method_cls", [PM, CATD])
    def test_weights_favor_good_annotators(self, method_cls):
        # Two reliable annotators plus one spammer (a 2-annotator crowd is
        # degenerate for agreement-based weighting: every label always gets
        # at least half the soft vote).
        rng = np.random.default_rng(6)
        truth = rng.integers(0, 2, size=600)
        labels = np.stack([truth, truth, rng.integers(0, 2, size=600)], axis=1)
        crowd = CrowdLabelMatrix(labels, 2)
        weights = method_cls().infer(crowd).extras["weights"]
        assert weights[0] > weights[2]
        assert weights[1] > weights[2]

    def test_pm_validation(self):
        with pytest.raises(ValueError):
            PM(max_iterations=0)

    def test_catd_validation(self):
        with pytest.raises(ValueError):
            CATD(alpha=0.0)

    def test_catd_downweights_scarce_annotators(self):
        # Annotator 1 agrees with the consensus whenever present but has
        # only a handful of labels; CATD must not give it a huge weight.
        rng = np.random.default_rng(7)
        truth = rng.integers(0, 2, size=300)
        labels = np.stack([truth.copy(), truth.copy(), np.full(300, M)], axis=1)
        labels[:5, 2] = truth[:5]
        crowd = CrowdLabelMatrix(labels, 2)
        weights = CATD().infer(crowd).extras["weights"]
        assert weights[2] < weights[0]


class TestIBCC:
    def test_matches_or_beats_ds_on_sparse_annotators(self):
        truth, crowd = _simulated(seed=8, I=300, J=60, mean=3.0)
        ds = posterior_accuracy(truth, DawidSkene().infer(crowd).posterior)
        ibcc = posterior_accuracy(truth, IBCC().infer(crowd).posterior)
        assert ibcc >= ds - 0.03

    def test_returns_confusions(self):
        truth, crowd = _simulated(seed=9)
        result = IBCC().infer(crowd)
        assert result.confusions.shape == (crowd.num_annotators, 2, 2)
        np.testing.assert_allclose(result.confusions.sum(axis=2), 1.0, atol=1e-9)

    def test_prior_validation(self):
        with pytest.raises(ValueError):
            IBCC(prior_diagonal=0.0)


class TestGLADGradientConvergence:
    """GLAD's inner gradient ascent must actually *work*, not just run: on
    a separable crowd (two experts, three coin-flippers, one adversary)
    only learned abilities — including a *negative* one — beat equal-vote
    majority voting."""

    def test_beats_mv_on_separable_heterogeneous_crowd(self):
        rng = np.random.default_rng(42)
        truth = rng.integers(0, 2, size=600)
        accuracies = (0.95, 0.93, 0.57, 0.55, 0.55, 0.12)
        columns = [
            np.where(rng.random(600) < p, truth, 1 - truth) for p in accuracies
        ]
        crowd = CrowdLabelMatrix(np.stack(columns, axis=1), 2)
        mv = posterior_accuracy(truth, MajorityVote().infer(crowd).posterior)
        result = GLAD().infer(crowd)
        glad = posterior_accuracy(truth, result.posterior)
        assert glad > mv
        assert glad > 0.9
        # The adversary is identified by sign, not merely down-weighted.
        assert result.extras["alpha"][-1] < 0
        assert result.extras["alpha"][0] > result.extras["alpha"][2]

    def test_learns_negative_ability_for_adversaries(self):
        rng = np.random.default_rng(43)
        truth = rng.integers(0, 2, size=500)
        labels = np.stack(
            [truth, truth, np.where(rng.random(500) < 0.1, truth, 1 - truth)], axis=1
        )
        result = GLAD().infer(CrowdLabelMatrix(labels, 2))
        assert result.extras["alpha"][2] < 0  # adversary, not merely noisy
        assert result.extras["iterations"] == GLAD().em_iterations


class TestWeightedVotingDegenerateCrowds:
    """PM/CATD on single-annotator and unanimous crowds: the agreement
    terms hit their boundary values (error → 0) and must stay finite."""

    @pytest.mark.parametrize("method_cls", [PM, CATD])
    def test_single_annotator_crowd_no_nans(self, method_cls):
        rng = np.random.default_rng(44)
        labels = rng.integers(0, 3, size=(40, 1))
        result = method_cls().infer(CrowdLabelMatrix(labels, 3))
        assert np.isfinite(result.posterior).all()
        assert np.isfinite(result.extras["weights"]).all()
        # The lone annotator's labels are the only evidence: posterior must
        # follow them exactly.
        np.testing.assert_array_equal(result.hard_labels(), labels[:, 0])

    @pytest.mark.parametrize("method_cls", [PM, CATD])
    def test_unanimous_crowd_no_nans(self, method_cls):
        rng = np.random.default_rng(45)
        truth = rng.integers(0, 2, size=80)
        labels = np.repeat(truth[:, None], 4, axis=1)
        result = method_cls().infer(CrowdLabelMatrix(labels, 2))
        assert np.isfinite(result.posterior).all()
        assert np.isfinite(result.extras["weights"]).all()
        np.testing.assert_array_equal(result.hard_labels(), truth)
        assert result.extras["converged"]


class TestAgainstKnownOptimum:
    def test_all_methods_perfect_on_noiseless_crowd(self):
        rng = np.random.default_rng(10)
        truth = rng.integers(0, 2, size=100)
        labels = np.stack([truth] * 3, axis=1)
        crowd = CrowdLabelMatrix(labels, 2)
        for method in (MajorityVote(), DawidSkene(), GLAD(), PM(), CATD(), IBCC()):
            result = method.infer(crowd)
            assert posterior_accuracy(truth, result.posterior) == 1.0, method.name
