"""Vectorized truth-inference methods vs. their ``*_reference`` specs.

Each reworked method (DS, IBCC, HMM-Crowd, BSC-seq) must reproduce the
pre-refactor implementation's posteriors and confusion matrices at atol
1e-10 on random crowds — including the iteration count, so convergence
behaviour is pinned too. Also covers the BSC-seq diagnostics regression:
``extras["last_change"]`` must report the change that actually triggered
convergence, not the previous sweep's.
"""

import numpy as np
import pytest

from repro.autodiff.dtypes import equivalence_atol
from repro.crowd import (
    sample_annotator_pool,
    sample_ner_pool,
    simulate_classification_crowd,
    simulate_ner_crowd,
)
from repro.data import NERCorpusConfig, make_ner_task
from repro.inference import (
    BSCSeq,
    DawidSkene,
    HMMCrowd,
    IBCC,
    bsc_seq_reference,
    dawid_skene_reference,
    hmm_crowd_reference,
    ibcc_reference,
)


def classification_crowd(seed, instances=300, annotators=15, classes=3, mean=4.0):
    rng = np.random.default_rng(seed)
    truth = rng.integers(0, classes, size=instances)
    pool = sample_annotator_pool(rng, annotators, classes)
    return simulate_classification_crowd(rng, truth, pool, mean_labels_per_instance=mean)


def ner_crowd(seed, sentences=50, annotators=8, mean=4.0):
    rng = np.random.default_rng(seed)
    task = make_ner_task(
        rng, NERCorpusConfig(num_train=sentences, num_dev=5, num_test=5, embedding_dim=8)
    )
    return simulate_ner_crowd(rng, task.train.tags, sample_ner_pool(rng, annotators), mean)


def assert_sequence_results_close(result, reference, atol=equivalence_atol("float64")):
    assert len(result.posteriors) == len(reference.posteriors)
    for new, old in zip(result.posteriors, reference.posteriors):
        np.testing.assert_allclose(new, old, atol=atol, rtol=0)
    np.testing.assert_allclose(result.confusions, reference.confusions, atol=atol, rtol=0)
    np.testing.assert_allclose(
        result.extras["transition"], reference.extras["transition"], atol=atol, rtol=0
    )
    assert result.extras["iterations"] == reference.extras["iterations"]


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_dawid_skene_matches_reference(seed):
    crowd = classification_crowd(seed)
    result = DawidSkene().infer(crowd)
    reference = dawid_skene_reference(crowd)
    atol = equivalence_atol("float64")
    np.testing.assert_allclose(result.posterior, reference.posterior, atol=atol, rtol=0)
    np.testing.assert_allclose(result.confusions, reference.confusions, atol=atol, rtol=0)
    assert result.extras["iterations"] == reference.extras["iterations"]


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_ibcc_matches_reference(seed):
    crowd = classification_crowd(seed, annotators=25, mean=3.0)
    result = IBCC().infer(crowd)
    reference = ibcc_reference(crowd)
    atol = equivalence_atol("float64")
    np.testing.assert_allclose(result.posterior, reference.posterior, atol=atol, rtol=0)
    np.testing.assert_allclose(result.confusions, reference.confusions, atol=atol, rtol=0)
    assert result.extras["iterations"] == reference.extras["iterations"]


@pytest.mark.parametrize("seed", [0, 1])
def test_hmm_crowd_matches_reference(seed):
    crowd = ner_crowd(seed)
    result = HMMCrowd().infer(crowd)
    reference = hmm_crowd_reference(crowd)
    assert_sequence_results_close(result, reference)
    assert "initial" in result.extras and "log_likelihood" in result.extras


@pytest.mark.parametrize("seed", [0, 1])
def test_bsc_seq_matches_reference(seed):
    crowd = ner_crowd(seed, sentences=40)
    result = BSCSeq().infer(crowd)
    reference = bsc_seq_reference(crowd)
    assert_sequence_results_close(result, reference)


def test_empty_sequence_crowd_returns_degenerate_result():
    from repro.crowd.types import SequenceCrowdLabels

    empty = SequenceCrowdLabels([], num_classes=4, num_annotators=3)
    for method in (HMMCrowd(), BSCSeq()):
        result = method.infer(empty)
        assert result.posteriors == []
        assert result.confusions.shape == (3, 4, 4)
        np.testing.assert_allclose(result.confusions.sum(axis=2), 1.0, atol=1e-12)
        assert result.extras["iterations"] == 0
        assert result.extras["converged"]


def test_mixed_empty_sentences_supported():
    from repro.crowd.types import MISSING, SequenceCrowdLabels

    rng = np.random.default_rng(6)
    sentences = []
    for t in (3, 0, 2):
        matrix = np.full((t, 2), MISSING, dtype=np.int64)
        matrix[:, 0] = rng.integers(0, 3, size=t)
        matrix[:, 1] = rng.integers(0, 3, size=t)
        sentences.append(matrix)
    crowd = SequenceCrowdLabels(sentences, num_classes=3, num_annotators=2)
    for method in (HMMCrowd(max_iterations=5), BSCSeq(max_iterations=5)):
        result = method.infer(crowd)
        assert [p.shape[0] for p in result.posteriors] == [3, 0, 2]
        for posterior in result.posteriors:
            if posterior.size:
                np.testing.assert_allclose(posterior.sum(axis=1), 1.0, atol=1e-8)


def test_diagnostics_contract_present():
    crowd = classification_crowd(3)
    for method in (DawidSkene(), IBCC()):
        extras = method.infer(crowd).extras
        assert {"iterations", "last_change", "converged"} <= set(extras)
    seq_crowd = ner_crowd(3, sentences=20)
    for method in (HMMCrowd(max_iterations=5), BSCSeq(max_iterations=5)):
        extras = method.infer(seq_crowd).extras
        assert {"iterations", "last_change", "converged"} <= set(extras)
        assert "log_likelihood_trace" in extras
        assert len(extras["log_likelihood_trace"]) == extras["iterations"]


class TestBSCSeqDiagnosticsRegression:
    """``last_change`` must be the change that triggered convergence."""

    def test_last_change_is_triggering_change(self):
        crowd = ner_crowd(4, sentences=30)
        result = BSCSeq().infer(crowd)
        if result.extras["converged"]:
            # The old loop reported the *previous* sweep's change, which by
            # definition was >= tolerance; the fix reports the sub-tolerance
            # change that stopped the loop.
            assert result.extras["last_change"] < BSCSeq().tolerance
        assert np.isfinite(result.extras["last_change"])

    def test_convergence_on_first_iteration_not_inf(self):
        # A huge tolerance forces convergence on sweep 1; the old loop
        # reported last_change = inf in that case.
        crowd = ner_crowd(5, sentences=15)
        result = BSCSeq(tolerance=1e9).infer(crowd)
        assert result.extras["iterations"] == 1
        assert result.extras["converged"]
        assert np.isfinite(result.extras["last_change"])

    def test_old_behavior_really_was_stale(self):
        # Documents the bug the reference still carries: converged runs
        # report a last_change at or above tolerance (the prior sweep's).
        crowd = ner_crowd(4, sentences=30)
        reference = bsc_seq_reference(crowd)
        if reference.extras["iterations"] < BSCSeq().max_iterations:
            assert reference.extras["last_change"] >= BSCSeq().tolerance
