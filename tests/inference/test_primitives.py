"""Equivalence tests for the shared sparse-crowd kernels.

The batched forward–backward must match the per-chain reference (gamma,
xi sums, log-likelihood) on ragged chains, and the confusion-count /
emission-log-likelihood / weighted-vote kernels must agree between their
sparse-incidence and bincount fallback paths on both crowd containers
(and against the dense one-hot einsums they replaced).
"""

import numpy as np
import pytest

from repro.autodiff.dtypes import equivalence_atol
from repro.crowd.types import MISSING, CrowdLabelMatrix, SequenceCrowdLabels
from repro.inference import forward_backward
from repro.inference.primitives import (
    annotator_agreement,
    batched_forward_backward,
    confusion_counts,
    crowd_views,
    emission_log_likelihood,
    normalize_log_posterior,
    normalize_vote_scores,
    pad_ragged,
    weighted_vote_scores,
)


def ragged_chains(seed, instances=30, classes=6, t_max=18):
    rng = np.random.default_rng(seed)
    lengths = rng.integers(1, t_max + 1, size=instances)
    lengths[0] = t_max  # pin one chain at the pad length
    lengths[1] = 1      # and one single-token chain
    chains = [np.log(rng.random((t, classes)) + 1e-3) for t in lengths]
    transition = rng.dirichlet(np.ones(classes), size=classes)
    initial = rng.dirichlet(np.ones(classes))
    return chains, lengths, np.log(transition), np.log(initial)


def classification_crowd(seed, instances=50, annotators=9, classes=4):
    rng = np.random.default_rng(seed)
    labels = np.full((instances, annotators), MISSING, dtype=np.int64)
    for i in range(instances):
        chosen = rng.choice(annotators, size=rng.integers(1, 4), replace=False)
        labels[i, chosen] = rng.integers(0, classes, size=chosen.size)
    return CrowdLabelMatrix(labels, classes)


def sequence_crowd(seed, instances=25, annotators=7, classes=5, t_max=10):
    rng = np.random.default_rng(seed)
    sentences = []
    for _ in range(instances):
        t = int(rng.integers(1, t_max + 1))
        matrix = np.full((t, annotators), MISSING, dtype=np.int64)
        chosen = rng.choice(annotators, size=rng.integers(1, 4), replace=False)
        for j in chosen:
            matrix[:, j] = rng.integers(0, classes, size=t)
        sentences.append(matrix)
    return SequenceCrowdLabels(sentences, classes, annotators)


class TestBatchedForwardBackward:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_per_chain_reference(self, seed):
        chains, lengths, log_A, log_pi = ragged_chains(seed)
        I, K = len(chains), log_pi.size
        padded = np.zeros((I, lengths.max(), K))
        for i, chain in enumerate(chains):
            padded[i, : lengths[i]] = chain
        gamma, xi_sum, log_likelihood = batched_forward_backward(
            padded, log_A, log_pi, lengths
        )
        for i, chain in enumerate(chains):
            ref_gamma, ref_xi, ref_ll = forward_backward(chain, log_A, log_pi)
            np.testing.assert_allclose(
                gamma[i, : lengths[i]], ref_gamma, atol=1e-10, rtol=0
            )
            np.testing.assert_allclose(xi_sum[i], ref_xi, atol=1e-10, rtol=0)
            np.testing.assert_allclose(log_likelihood[i], ref_ll, atol=1e-10, rtol=0)

    def test_gamma_zero_past_length(self):
        chains, lengths, log_A, log_pi = ragged_chains(3)
        I, K = len(chains), log_pi.size
        padded = np.zeros((I, lengths.max(), K))
        for i, chain in enumerate(chains):
            padded[i, : lengths[i]] = chain
        gamma, _, _ = batched_forward_backward(padded, log_A, log_pi, lengths)
        mask = np.arange(lengths.max())[None, :] >= lengths[:, None]
        assert np.all(gamma[mask] == 0.0)

    def test_single_token_chains(self):
        rng = np.random.default_rng(4)
        K = 3
        log_em = np.log(rng.random((5, 1, K)) + 0.1)
        log_pi = np.log(rng.dirichlet(np.ones(K)))
        gamma, xi_sum, _ = batched_forward_backward(
            log_em, np.zeros((K, K)), log_pi, np.ones(5, dtype=np.int64)
        )
        assert np.all(xi_sum == 0.0)
        expected = np.exp(log_em[:, 0] + log_pi)
        expected /= expected.sum(axis=1, keepdims=True)
        np.testing.assert_allclose(gamma[:, 0], expected, atol=1e-10)

    def test_rejects_bad_lengths(self):
        log_em = np.zeros((2, 4, 3))
        with pytest.raises(ValueError):
            batched_forward_backward(log_em, np.zeros((3, 3)), np.zeros(3), np.array([-1, 4]))
        with pytest.raises(ValueError):
            batched_forward_backward(log_em, np.zeros((3, 3)), np.zeros(3), np.array([5, 4]))

    def test_zero_length_chains_masked_out(self):
        chains, lengths, log_A, log_pi = ragged_chains(6, instances=8)
        lengths = lengths.copy()
        lengths[2] = 0
        lengths[5] = 0
        I, K = len(chains), log_pi.size
        padded = np.zeros((I, lengths.max(), K))
        for i, chain in enumerate(chains):
            padded[i, : lengths[i]] = chain[: lengths[i]]
        gamma, xi_sum, log_likelihood = batched_forward_backward(
            padded, log_A, log_pi, lengths
        )
        for i in (2, 5):
            assert np.all(gamma[i] == 0.0)
            assert np.all(xi_sum[i] == 0.0)
            assert log_likelihood[i] == 0.0
        # Non-empty chains still match the per-chain reference.
        for i in (0, 1, 3):
            ref_gamma, ref_xi, ref_ll = forward_backward(
                chains[i][: lengths[i]], log_A, log_pi
            )
            np.testing.assert_allclose(gamma[i, : lengths[i]], ref_gamma, atol=1e-10, rtol=0)
            np.testing.assert_allclose(xi_sum[i], ref_xi, atol=1e-10, rtol=0)

    def test_all_empty_returns_zero_shapes(self):
        gamma, xi_sum, ll = batched_forward_backward(
            np.zeros((3, 0, 2)), np.zeros((2, 2)), np.zeros(2), np.zeros(3, dtype=np.int64)
        )
        assert gamma.shape == (3, 0, 2)
        assert np.all(xi_sum == 0.0) and np.all(ll == 0.0)

    def test_no_support_raises_like_reference(self):
        # An all-zero transition matrix kills every path after t=0.
        K = 2
        log_A = np.full((K, K), -np.inf)
        with pytest.raises(ValueError, match="no support"):
            batched_forward_backward(
                np.zeros((1, 3, K)), log_A, np.log(np.full(K, 0.5)), np.array([3])
            )


class TestPadRagged:
    def test_roundtrip(self):
        rng = np.random.default_rng(5)
        lengths = np.array([3, 1, 4])
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        flat = rng.random((offsets[-1], 2))
        padded, out_lengths, chain_index, time_index = pad_ragged(flat, offsets)
        np.testing.assert_array_equal(out_lengths, lengths)
        np.testing.assert_allclose(
            padded[chain_index, time_index], flat, atol=equivalence_atol("float64")
        )
        assert padded.shape == (3, 4, 2)
        # Padding stays at the fill value.
        assert padded[1, 1:].sum() == 0.0


class TestSharedKernels:
    @pytest.mark.parametrize("make_crowd", [classification_crowd, sequence_crowd])
    def test_fallback_matches_sparse(self, make_crowd, monkeypatch):
        crowd = make_crowd(6)
        rng = np.random.default_rng(7)
        _, _, _, num_rows, _ = crowd_views(crowd)
        posterior = rng.dirichlet(np.ones(crowd.num_classes), size=num_rows)
        log_conf = np.log(
            rng.dirichlet(
                np.ones(crowd.num_classes),
                size=(crowd.num_annotators, crowd.num_classes),
            )
        )
        sparse_counts = confusion_counts(posterior, crowd)
        sparse_ll = emission_log_likelihood(crowd, log_conf)

        incidence_name = (
            "token_label_incidence"
            if isinstance(crowd, SequenceCrowdLabels)
            else "label_incidence"
        )
        weights = rng.random(crowd.num_annotators) + 0.1
        sparse_scores = weighted_vote_scores(weights, crowd)

        monkeypatch.setattr(type(crowd), incidence_name, lambda self: None)
        np.testing.assert_allclose(
            confusion_counts(posterior, crowd), sparse_counts, atol=1e-12, rtol=0
        )
        np.testing.assert_allclose(
            emission_log_likelihood(crowd, log_conf), sparse_ll, atol=1e-12, rtol=0
        )
        np.testing.assert_allclose(
            weighted_vote_scores(weights, crowd), sparse_scores, atol=1e-12, rtol=0
        )

    def test_counts_match_dense_einsum(self):
        crowd = classification_crowd(8)
        rng = np.random.default_rng(9)
        posterior = rng.dirichlet(np.ones(crowd.num_classes), size=crowd.num_instances)
        dense = np.einsum("im,ijn->jmn", posterior, crowd.one_hot())
        np.testing.assert_allclose(
            confusion_counts(posterior, crowd), dense, atol=1e-12, rtol=0
        )

    def test_emission_matches_dense_einsum(self):
        crowd = classification_crowd(10)
        rng = np.random.default_rng(11)
        log_conf = np.log(
            rng.dirichlet(
                np.ones(crowd.num_classes),
                size=(crowd.num_annotators, crowd.num_classes),
            )
        )
        dense = np.einsum("ijn,jmn->im", crowd.one_hot(), log_conf)
        np.testing.assert_allclose(
            emission_log_likelihood(crowd, log_conf), dense, atol=1e-12, rtol=0
        )

    def test_agreement_matches_dense_einsum(self):
        crowd = classification_crowd(16)
        rng = np.random.default_rng(17)
        posterior = rng.dirichlet(np.ones(crowd.num_classes), size=crowd.num_instances)
        agreement = np.einsum("ijk,ik->ij", crowd.one_hot(), posterior)
        dense = np.where(crowd.observed_mask, agreement, 0.0).sum(axis=0)
        np.testing.assert_allclose(
            annotator_agreement(posterior, crowd), dense, atol=1e-12, rtol=0
        )

    def test_vote_scores_match_dense_einsum(self):
        crowd = classification_crowd(18)
        rng = np.random.default_rng(19)
        weights = rng.random(crowd.num_annotators) + 0.1
        dense = np.einsum("j,ijk->ik", weights, crowd.one_hot())
        np.testing.assert_allclose(
            weighted_vote_scores(weights, crowd), dense, atol=1e-12, rtol=0
        )

    def test_normalize_vote_scores_uniform_on_empty_rows(self):
        scores = np.array([[2.0, 2.0, 0.0], [0.0, 0.0, 0.0]])
        posterior = normalize_vote_scores(scores)
        atol = equivalence_atol("float64")
        np.testing.assert_allclose(posterior[0], [0.5, 0.5, 0.0], atol=atol)
        np.testing.assert_allclose(posterior[1], [1 / 3, 1 / 3, 1 / 3], atol=atol)

    def test_shape_validation(self):
        crowd = classification_crowd(12)
        with pytest.raises(ValueError):
            confusion_counts(np.zeros((3, crowd.num_classes)), crowd)
        with pytest.raises(ValueError):
            emission_log_likelihood(crowd, np.zeros((1, 2, 2)))
        with pytest.raises(TypeError):
            crowd_views([1, 2, 3])
        with pytest.raises(ValueError):
            annotator_agreement(np.zeros((3, crowd.num_classes)), crowd)
        with pytest.raises(ValueError):
            weighted_vote_scores(np.zeros(crowd.num_annotators + 1), crowd)

    def test_normalize_log_posterior(self):
        rng = np.random.default_rng(13)
        logits = rng.normal(size=(10, 4)) * 50
        posterior = normalize_log_posterior(logits)
        np.testing.assert_allclose(posterior.sum(axis=1), 1.0, atol=1e-12)
        assert np.isfinite(posterior).all()


class TestCrowdLabelMatrixViews:
    def test_pairs_and_incidence_consistent(self):
        crowd = classification_crowd(14)
        rows, cols, given = crowd.flat_label_pairs()
        assert rows.size == crowd.total_annotations()
        np.testing.assert_array_equal(crowd.labels[rows, cols], given)
        incidence = crowd.label_incidence()
        assert incidence.shape == (
            crowd.num_instances,
            crowd.num_annotators * crowd.num_classes,
        )
        assert incidence.sum() == rows.size
        # vote_counts via bincount equals the dense scatter.
        dense = np.zeros((crowd.num_instances, crowd.num_classes), dtype=np.int64)
        np.add.at(dense, (rows, given), 1)
        np.testing.assert_array_equal(crowd.vote_counts(), dense)
