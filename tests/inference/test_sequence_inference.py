"""Tests for sequential truth inference (HMM-Crowd, BSC-seq, token adapters)."""

import numpy as np
import pytest

from repro.crowd import sample_ner_pool, simulate_ner_crowd
from repro.data import CONLL_LABELS, NERCorpusConfig, label_index, make_ner_task
from repro.eval import span_f1_score
from repro.inference import (
    BSCSeq,
    DawidSkene,
    HMMCrowd,
    MajorityVote,
    TokenLevelInference,
    flatten_sequence_crowd,
    forward_backward,
)

IDX = label_index(CONLL_LABELS)


def _ner_crowd(seed=0, sentences=80, annotators=12, mean=4.0):
    rng = np.random.default_rng(seed)
    task = make_ner_task(
        rng, NERCorpusConfig(num_train=sentences, num_dev=5, num_test=5, embedding_dim=8)
    )
    pool = sample_ner_pool(rng, annotators)
    crowd = simulate_ner_crowd(rng, task.train.tags, pool, mean_labels_per_instance=mean)
    return task, crowd


def _posterior_f1(posteriors, truth):
    predictions = [posterior.argmax(axis=1) for posterior in posteriors]
    return span_f1_score(truth, predictions).f1


class TestForwardBackward:
    def test_uniform_transition_reduces_to_independent(self):
        rng = np.random.default_rng(0)
        log_em = np.log(rng.random((6, 3)) + 0.1)
        gamma, _, _ = forward_backward(log_em, np.zeros((3, 3)), np.zeros(3))
        independent = np.exp(log_em)
        independent /= independent.sum(axis=1, keepdims=True)
        np.testing.assert_allclose(gamma, independent, atol=1e-10)

    def test_xi_rows_consistent_with_gamma(self):
        rng = np.random.default_rng(1)
        log_em = np.log(rng.random((5, 2)) + 0.1)
        log_A = np.log(rng.random((2, 2)) + 0.1)
        gamma, xi_sum, _ = forward_backward(log_em, log_A, np.zeros(2))
        # Sum of pairwise marginals over "to" equals gamma of the "from"
        # tokens 0..T-2 summed.
        np.testing.assert_allclose(xi_sum.sum(axis=1), gamma[:-1].sum(axis=0), atol=1e-8)

    def test_log_likelihood_matches_brute_force(self):
        import itertools

        rng = np.random.default_rng(2)
        T, K = 3, 2
        log_em = np.log(rng.random((T, K)) + 0.1)
        A = rng.random((K, K)) + 0.1
        A /= A.sum(axis=1, keepdims=True)
        pi = np.array([0.4, 0.6])
        _, _, log_like = forward_backward(log_em, np.log(A), np.log(pi))
        total = 0.0
        for seq in itertools.product(range(K), repeat=T):
            weight = pi[seq[0]] * np.exp(log_em[0, seq[0]])
            for t in range(1, T):
                weight *= A[seq[t - 1], seq[t]] * np.exp(log_em[t, seq[t]])
            total += weight
        np.testing.assert_allclose(log_like, np.log(total), atol=1e-8)


class TestFlatten:
    def test_roundtrip_slices(self):
        _, crowd = _ner_crowd(sentences=10)
        flat, slices = flatten_sequence_crowd(crowd)
        assert flat.num_instances == sum(m.shape[0] for m in crowd.labels)
        total = sum(s.stop - s.start for s in slices)
        assert total == flat.num_instances

    def test_token_level_mv(self):
        task, crowd = _ner_crowd(sentences=40)
        result = TokenLevelInference(MajorityVote()).infer(crowd)
        assert len(result.posteriors) == 40
        for posterior, tags in zip(result.posteriors, task.train.tags):
            assert posterior.shape == (len(tags), len(CONLL_LABELS))


class TestHMMCrowd:
    def test_beats_token_mv(self):
        task, crowd = _ner_crowd(seed=3)
        mv = _posterior_f1(
            TokenLevelInference(MajorityVote()).infer(crowd).posteriors, task.train.tags
        )
        hmm = _posterior_f1(HMMCrowd().infer(crowd).posteriors, task.train.tags)
        assert hmm > mv - 0.02

    def test_transition_matrix_learned(self):
        _, crowd = _ner_crowd(seed=4, sentences=60)
        result = HMMCrowd().infer(crowd)
        transition = result.extras["transition"]
        np.testing.assert_allclose(transition.sum(axis=1), 1.0, atol=1e-9)
        # O→I-X must be rarer than B-X→I-X for every type with data.
        o = IDX["O"]
        assert transition[IDX["B-PER"], IDX["I-PER"]] > transition[o, IDX["I-PER"]]

    def test_validation(self):
        with pytest.raises(ValueError):
            HMMCrowd(max_iterations=0)


class TestBSCSeq:
    def test_comparable_to_hmm_crowd(self):
        task, crowd = _ner_crowd(seed=5)
        hmm = _posterior_f1(HMMCrowd().infer(crowd).posteriors, task.train.tags)
        bsc = _posterior_f1(BSCSeq().infer(crowd).posteriors, task.train.tags)
        assert bsc > hmm - 0.1

    def test_posteriors_normalized(self):
        _, crowd = _ner_crowd(seed=6, sentences=20)
        result = BSCSeq().infer(crowd)
        for posterior in result.posteriors:
            np.testing.assert_allclose(posterior.sum(axis=1), 1.0, atol=1e-8)

    def test_prior_validation(self):
        with pytest.raises(ValueError):
            BSCSeq(prior_diagonal=0.0)


class TestTokenDSOnSequences:
    def test_ds_token_level_runs(self):
        task, crowd = _ner_crowd(seed=7, sentences=30)
        result = TokenLevelInference(DawidSkene()).infer(crowd)
        f1 = _posterior_f1(result.posteriors, task.train.tags)
        assert 0.0 <= f1 <= 1.0
        assert result.confusions is not None
