"""Run every registered truth-inference method through the randomized
equivalence harness (see ``equivalence_harness.py`` for the case matrix
and the add-a-method recipe)."""

import pytest

from repro.inference import available_methods

from .equivalence_harness import (
    REFERENCE_IMPLEMENTATIONS,
    SHARD_LAYOUTS,
    assert_degenerate_ok,
    assert_matches_reference,
    assert_sharded_matches_batch,
    assert_streaming_replay_matches,
    crowd_cases,
    method_supports,
)

KINDS = ("classification", "sequence")
ALL_KINDS = KINDS + ("streaming", "sharded")


def _matrix(reference_comparable: bool):
    """(kind, method name, case) triples for the full harness sweep."""
    triples = []
    for kind in KINDS:
        for case in crowd_cases(kind):
            if case.reference_comparable != reference_comparable:
                continue
            for name in available_methods(kind):
                triples.append(pytest.param(name, kind, case, id=f"{kind}-{name}-{case.name}"))
    return triples


@pytest.mark.parametrize("name,kind,case", _matrix(reference_comparable=True))
def test_method_matches_reference_on_random_crowds(name, kind, case):
    crowd = case.build()
    if not method_supports(name, kind, crowd):
        pytest.skip(f"{name} does not apply to {case.name}")
    assert_matches_reference(name, kind, crowd, atol=1e-10)


@pytest.mark.parametrize("name,kind,case", _matrix(reference_comparable=False))
def test_method_handles_degenerate_crowds(name, kind, case):
    crowd = case.build()
    if not method_supports(name, kind, crowd):
        pytest.skip(f"{name} does not apply to {case.name}")
    assert_degenerate_ok(name, kind, crowd)


def _streaming_matrix():
    """(method name, case) pairs: every streaming method × every
    classification crowd, including the degenerate ones — the batch twin
    handles I = 0 since PR 3, so the replay contract covers them too."""
    pairs = []
    for case in crowd_cases("classification"):
        for name in available_methods("streaming"):
            pairs.append(pytest.param(name, case, id=f"streaming-{name}-{case.name}"))
    return pairs


@pytest.mark.parametrize("name,case", _streaming_matrix())
def test_streaming_replay_matches_batch_at_convergence(name, case):
    """The tentpole contract: a full crowd replayed through the streaming
    API in batches (decay disabled) reproduces the batch method's posterior
    at convergence, atol 1e-8."""
    crowd = case.build()
    if not method_supports(name, "streaming", crowd):
        pytest.skip(f"{name} does not apply to {case.name}")
    assert_streaming_replay_matches(name, crowd, seed=101, atol=1e-8)


def _sharded_matrix():
    """(method name, case, layout) triples: every sharded method × every
    classification crowd (incl. degenerate ones — the batch twins handle
    I = 0 since PR 3) × every shard layout."""
    triples = []
    for case in crowd_cases("classification"):
        for name in available_methods("sharded"):
            for layout in SHARD_LAYOUTS:
                triples.append(
                    pytest.param(name, case, layout, id=f"sharded-{name}-{case.name}-{layout}")
                )
    return triples


@pytest.mark.parametrize("name,case,layout", _sharded_matrix())
def test_sharded_matches_batch_across_layouts(name, case, layout):
    """The tentpole contract: any shard layout — one shard, many,
    one-instance shards, empty shards, lazy out-of-core sources —
    reproduces the batch twin at atol 1e-10 (posterior, confusions,
    iteration count, annotator-model extras)."""
    crowd = case.build()
    if not method_supports(name, "sharded", crowd):
        pytest.skip(f"{name} does not apply to {case.name}")
    assert_sharded_matches_batch(name, crowd, SHARD_LAYOUTS[layout], atol=1e-10)


@pytest.mark.parametrize("name", available_methods("sharded"))
def test_sharded_matches_batch_under_process_pool(name):
    """The worker-count half of the contract: the on-disk handle layout
    through a 2-worker process pool (built by ``workers=``, shard-warming
    initializer and all) still reproduces the batch twin at atol 1e-10."""
    case = {
        case.name: case
        for case in crowd_cases("classification")
    }["binary-sparse-adversarial" if name == "GLAD" else "multiclass-midsize"]
    crowd = case.build()
    assert_sharded_matches_batch(
        name, crowd, SHARD_LAYOUTS["on-disk-handles"], atol=1e-10, workers=2
    )


def test_every_registered_method_has_a_reference():
    """Forcing function: a newly registered method without an executable
    specification (pre-refactor implementation, or batch twin for
    streaming methods) fails here, not silently skips the harness."""
    for kind in ALL_KINDS:
        for name in available_methods(kind):
            assert (kind, name) in REFERENCE_IMPLEMENTATIONS, (
                f"method {name!r} ({kind}) registered without a reference "
                "implementation — add it to REFERENCE_IMPLEMENTATIONS in "
                "tests/inference/equivalence_harness.py"
            )


def test_case_matrix_covers_both_kinds_and_degenerate_crowds():
    """The harness itself must keep covering the axes the tentpole names."""
    for kind in KINDS:
        cases = crowd_cases(kind)
        assert any(case.reference_comparable for case in cases)
        assert any(not case.reference_comparable for case in cases)
    names = {case.name for case in crowd_cases()}
    assert {"binary-sparse-adversarial", "single-annotator", "unanimous", "empty-crowd"} <= names
