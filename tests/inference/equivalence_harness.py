"""Randomized new-vs-reference equivalence harness for truth inference.

The vectorization discipline that made PRs 1-3 safe, packaged: every
method registered in :mod:`repro.inference.registry` must have an entry in
:data:`REFERENCE_IMPLEMENTATIONS` (its pre-refactor executable
specification), and :func:`assert_matches_reference` pins the vectorized
implementation to that spec at atol 1e-10 on seeded random crowds —
posterior(s), confusion matrices, and the iteration count, so convergence
behaviour is pinned too.

Crowd generation covers the axes that historically break vectorized
rewrites: crowd size (I/J/K), sparsity (dense redundancy down to one label
per instance), adversarial annotators (systematically anti-correlated),
single-annotator and unanimous crowds, and empty/degenerate containers.
Degenerate cases the pre-refactor implementations crash on (empty crowds,
zero-length sentences) are marked ``reference_comparable=False`` and go
through :func:`assert_degenerate_ok` instead: the *new* code must handle
them gracefully even though the old code never did.

To vectorize another method in a future PR:

1. keep the old implementation as ``<method>_reference``;
2. point ``REFERENCE_IMPLEMENTATIONS[(kind, name)]`` at it;
3. done — ``test_equivalence_harness.py`` parametrizes over
   ``available_methods()`` × :func:`crowd_cases`, so the new method is
   pinned on every case without hand-rolling fixtures. A meta-test fails
   if a registered method has no reference entry.

Streaming methods (kind ``"streaming"``) follow the same discipline with
a different contract: their ``REFERENCE_IMPLEMENTATIONS`` entry is the
*batch twin at convergence*, and :func:`assert_streaming_replay_matches`
pins the replay-equivalence contract of :mod:`repro.inference.streaming`
— feeding a crowd through ``partial_fit`` in seeded random batches with
decay disabled, then ``fit_to_convergence()``, must reproduce the batch
posterior at atol 1e-8. The meta-test covers this kind too, so a future
streaming variant cannot register without shipping its batch reference.

Sharded methods (kind ``"sharded"``, :mod:`repro.inference.sharding`)
follow the tightest contract of all: their reference is the batch twin of
the same name, and :func:`assert_sharded_matches_batch` pins posterior,
confusions, iteration count, and method extras (weights/α/β) at atol
1e-10 on every layout in :data:`SHARD_LAYOUTS` — one shard, 2, 7,
one-instance shards, layouts padded with empty shards, a lazily consumed
out-of-core generator of standalone COO shards, an
``iter_shards``-budgeted split, and the on-disk ``ShardHandle`` layouts
(one COO file plus picklable range descriptors, memmapped and eager) that
the process-based parallel map ships to workers. The contract holds
regardless of executor: ``assert_sharded_matches_batch`` forwards
``executor=``/``workers=`` so the same pin runs through thread and
process pools. The meta-test covers this kind too.
"""

from __future__ import annotations

import atexit
import itertools
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.autodiff.dtypes import equivalence_atol
from repro.crowd.sharding import save_shard_handles
from repro.crowd.types import MISSING, CrowdLabelMatrix, SequenceCrowdLabels
from repro.experiments.streaming_suite import stream_crowd_in_batches
from repro.inference import (
    SequenceInferenceResult,
    bsc_seq_reference,
    catd_reference,
    dawid_skene_reference,
    get_method,
    glad_reference,
    hmm_crowd_reference,
    ibcc_reference,
    majority_vote_reference,
    pm_reference,
)
from repro.inference.sequence_utils import flatten_sequence_crowd
from repro.inference.sharding import run_sharded

__all__ = [
    "CrowdCase",
    "crowd_cases",
    "random_classification_crowd",
    "random_sequence_crowd",
    "random_batch_sizes",
    "REFERENCE_IMPLEMENTATIONS",
    "METHOD_OVERRIDES",
    "SHARD_LAYOUTS",
    "method_supports",
    "assert_matches_reference",
    "assert_degenerate_ok",
    "assert_streaming_replay_matches",
    "assert_sharded_matches_batch",
]


# --------------------------------------------------------------------- #
# Crowd generation
# --------------------------------------------------------------------- #
def random_classification_crowd(
    seed: int,
    instances: int,
    annotators: int,
    classes: int,
    mean_labels: float = 4.0,
    adversarial: int = 0,
) -> CrowdLabelMatrix:
    """Seeded random crowd with controllable sparsity and adversaries.

    Each instance draws ``Poisson(mean_labels - 1) + 1`` annotators (so the
    long tail of single-label instances appears at low means). Annotator
    accuracies are uniform in [0.55, 0.95] except the first
    ``adversarial`` annotators, who are anti-correlated (accuracy in
    [0.02, 0.2]) — the regime GLAD's negative-ability and PM/CATD's
    weighting must survive.
    """
    rng = np.random.default_rng(seed)
    truth = rng.integers(0, classes, size=instances)
    accuracy = rng.uniform(0.55, 0.95, size=annotators)
    if adversarial:
        accuracy[:adversarial] = rng.uniform(0.02, 0.2, size=adversarial)
    labels = np.full((instances, annotators), MISSING, dtype=np.int64)
    for i in range(instances):
        count = min(int(rng.poisson(max(mean_labels - 1.0, 0.0))) + 1, annotators)
        chosen = rng.choice(annotators, size=count, replace=False)
        correct = rng.random(count) < accuracy[chosen]
        wrong = (truth[i] + rng.integers(1, classes, size=count)) % classes
        labels[i, chosen] = np.where(correct, truth[i], wrong)
    return CrowdLabelMatrix(labels, classes)


def random_sequence_crowd(
    seed: int,
    sentences: int,
    annotators: int,
    classes: int,
    t_max: int = 12,
    per_sentence: int = 3,
    allow_empty_sentences: bool = False,
) -> SequenceCrowdLabels:
    """Seeded random sequence crowd (each annotator labels whole sentences)."""
    rng = np.random.default_rng(seed)
    labels = []
    for index in range(sentences):
        low = 0 if allow_empty_sentences and index % 4 == 1 else 1
        t = int(rng.integers(low, t_max + 1))
        matrix = np.full((t, annotators), MISSING, dtype=np.int64)
        chosen = rng.choice(annotators, size=min(per_sentence, annotators), replace=False)
        for j in chosen:
            matrix[:, j] = rng.integers(0, classes, size=t)
        labels.append(matrix)
    return SequenceCrowdLabels(labels, classes, annotators)


def _unanimous_crowd(seed: int, instances: int, annotators: int, classes: int) -> CrowdLabelMatrix:
    rng = np.random.default_rng(seed)
    truth = rng.integers(0, classes, size=instances)
    return CrowdLabelMatrix(np.repeat(truth[:, None], annotators, axis=1), classes)


def _single_annotator_crowd(seed: int, instances: int, classes: int) -> CrowdLabelMatrix:
    rng = np.random.default_rng(seed)
    return CrowdLabelMatrix(rng.integers(0, classes, size=(instances, 1)), classes)


@dataclass(frozen=True)
class CrowdCase:
    """One named crowd configuration the whole method matrix runs on."""

    name: str
    kind: str  # "classification" | "sequence"
    build: Callable[[], object]
    # False → the pre-refactor reference cannot run this (e.g. empty
    # crowds); the new implementation is checked behaviourally instead.
    reference_comparable: bool = True


def crowd_cases(kind: str | None = None) -> list[CrowdCase]:
    """The harness's case matrix, optionally filtered by kind."""
    cases = [
        CrowdCase(
            "binary-dense", "classification",
            lambda: random_classification_crowd(11, instances=120, annotators=8, classes=2, mean_labels=5.0),
        ),
        CrowdCase(
            "binary-sparse-adversarial", "classification",
            lambda: random_classification_crowd(23, instances=150, annotators=20, classes=2,
                                                mean_labels=2.0, adversarial=5),
        ),
        CrowdCase(
            "multiclass-midsize", "classification",
            lambda: random_classification_crowd(37, instances=200, annotators=15, classes=4, mean_labels=4.0),
        ),
        CrowdCase(
            "multiclass-long-tail", "classification",
            lambda: random_classification_crowd(41, instances=90, annotators=40, classes=3, mean_labels=1.5),
        ),
        CrowdCase(
            "single-annotator", "classification",
            lambda: _single_annotator_crowd(53, instances=40, classes=2),
        ),
        CrowdCase(
            "unanimous", "classification",
            lambda: _unanimous_crowd(59, instances=60, annotators=5, classes=2),
        ),
        CrowdCase(
            "one-instance", "classification",
            lambda: random_classification_crowd(61, instances=1, annotators=6, classes=2, mean_labels=4.0),
        ),
        CrowdCase(
            # Binary so every classification method (including GLAD) runs it.
            "empty-crowd", "classification",
            lambda: CrowdLabelMatrix(np.zeros((0, 4), dtype=np.int64), 2),
            reference_comparable=False,
        ),
        CrowdCase(
            "seq-midsize", "sequence",
            lambda: random_sequence_crowd(67, sentences=25, annotators=6, classes=5),
        ),
        CrowdCase(
            "seq-binary-sparse", "sequence",
            lambda: random_sequence_crowd(71, sentences=30, annotators=10, classes=2, per_sentence=1),
        ),
        CrowdCase(
            "seq-empty-sentences", "sequence",
            lambda: random_sequence_crowd(73, sentences=16, annotators=5, classes=3,
                                          allow_empty_sentences=True),
            reference_comparable=False,
        ),
        CrowdCase(
            "seq-empty-crowd", "sequence",
            lambda: SequenceCrowdLabels([], num_classes=4, num_annotators=3),
            reference_comparable=False,
        ),
    ]
    if kind is not None:
        cases = [case for case in cases if case.kind == kind]
    return cases


# --------------------------------------------------------------------- #
# Reference registry
# --------------------------------------------------------------------- #
def _token_level_reference(classification_reference: Callable) -> Callable:
    """Reference twin of ``TokenLevelInference``: flatten, run the
    classification reference per token, unflatten."""

    def run(crowd: SequenceCrowdLabels, **params) -> SequenceInferenceResult:
        flat, slices = flatten_sequence_crowd(crowd)
        result = classification_reference(flat, **params)
        return SequenceInferenceResult(
            posteriors=[result.posterior[s] for s in slices],
            confusions=result.confusions,
            extras=dict(result.extras),
        )

    return run


def _batch_at_convergence(name: str) -> Callable:
    """Reference for a streaming method: its batch twin run to convergence
    on the whole crowd — what a no-decay replay must reproduce."""

    def run(crowd: CrowdLabelMatrix, **params):
        return get_method(name, kind="classification", **params).infer(crowd)

    return run


# (kind, registered name) → executable specification: the pre-refactor
# implementation for batch methods, the batch twin at convergence for
# streaming methods. Every name in available_methods() must appear here;
# the meta-test in test_equivalence_harness.py enforces it.
REFERENCE_IMPLEMENTATIONS: dict[tuple[str, str], Callable] = {
    ("classification", "MV"): majority_vote_reference,
    ("classification", "DS"): dawid_skene_reference,
    ("classification", "GLAD"): glad_reference,
    ("classification", "PM"): pm_reference,
    ("classification", "CATD"): catd_reference,
    ("classification", "IBCC"): ibcc_reference,
    ("sequence", "MV"): _token_level_reference(majority_vote_reference),
    ("sequence", "DS"): _token_level_reference(dawid_skene_reference),
    ("sequence", "IBCC"): _token_level_reference(ibcc_reference),
    ("sequence", "BSC-seq"): bsc_seq_reference,
    ("sequence", "HMM-Crowd"): hmm_crowd_reference,
    ("streaming", "MV"): _batch_at_convergence("MV"),
    ("streaming", "DS"): _batch_at_convergence("DS"),
    ("streaming", "GLAD"): _batch_at_convergence("GLAD"),
    # Sharded twins: the reference is the batch method itself — any shard
    # layout must reproduce it at atol 1e-10.
    ("sharded", "MV"): _batch_at_convergence("MV"),
    ("sharded", "DS"): _batch_at_convergence("DS"),
    ("sharded", "IBCC"): _batch_at_convergence("IBCC"),
    ("sharded", "GLAD"): _batch_at_convergence("GLAD"),
    ("sharded", "PM"): _batch_at_convergence("PM"),
    ("sharded", "CATD"): _batch_at_convergence("CATD"),
}

# Constructor keywords applied to BOTH sides of a comparison (keeps the
# harness fast without loosening the pin; both signatures must accept them).
METHOD_OVERRIDES: dict[tuple[str, str], dict] = {
    ("classification", "GLAD"): {"em_iterations": 15, "gradient_steps": 15},
    ("sequence", "BSC-seq"): {"max_iterations": 10},
    ("sequence", "HMM-Crowd"): {"max_iterations": 10},
    ("streaming", "GLAD"): {"em_iterations": 15, "gradient_steps": 15},
    # Single-instance-shard layouts multiply the per-pass Python cost by
    # I; smaller (shared) budgets keep the sweep fast without loosening
    # the pin — both sides run the same budget and the iteration counts
    # are still compared.
    ("sharded", "GLAD"): {"em_iterations": 6, "gradient_steps": 6},
    ("sharded", "DS"): {"max_iterations": 25},
    ("sharded", "IBCC"): {"max_iterations": 25},
}


def method_supports(name: str, kind: str, crowd) -> bool:
    """Structural applicability (GLAD is binary-only, as in the paper)."""
    if name == "GLAD":
        return crowd.num_classes == 2
    return True


# --------------------------------------------------------------------- #
# Assertions
# --------------------------------------------------------------------- #
def _assert_posteriors_close(result, expected, kind: str, atol: float, context: str) -> None:
    if kind == "classification":
        np.testing.assert_allclose(
            result.posterior, expected.posterior, atol=atol, rtol=0,
            err_msg=f"posterior diverged from reference ({context})",
        )
    else:
        assert len(result.posteriors) == len(expected.posteriors), context
        for i, (new, old) in enumerate(zip(result.posteriors, expected.posteriors)):
            np.testing.assert_allclose(
                new, old, atol=atol, rtol=0,
                err_msg=f"sentence {i} posterior diverged from reference ({context})",
            )


def assert_matches_reference(
    name: str, kind: str, crowd, atol: float = equivalence_atol("float64")
) -> None:
    """Pin the registered method to its reference on one crowd.

    Compares posterior(s), confusion matrices when both sides model them,
    and the reported iteration count (convergence behaviour is part of the
    contract, not an implementation detail).
    """
    params = METHOD_OVERRIDES.get((kind, name), {})
    reference = REFERENCE_IMPLEMENTATIONS[(kind, name)]
    result = get_method(name, kind=kind, **params).infer(crowd)
    expected = reference(crowd, **params)
    context = f"method={name} kind={kind}"
    _assert_posteriors_close(result, expected, kind, atol, context)
    if result.confusions is not None and expected.confusions is not None:
        np.testing.assert_allclose(
            result.confusions, expected.confusions, atol=atol, rtol=0,
            err_msg=f"confusions diverged from reference ({context})",
        )
    if "iterations" in expected.extras:
        assert result.extras.get("iterations") == expected.extras["iterations"], (
            f"iteration count diverged ({context}): "
            f"{result.extras.get('iterations')} != {expected.extras['iterations']}"
        )


def random_batch_sizes(seed: int, total: int) -> list[int]:
    """Seeded arrival pattern covering the awkward shapes: uneven batches,
    quiet ticks (empty batches), and single-instance dribbles."""
    rng = np.random.default_rng(seed)
    sizes: list[int] = []
    remaining = total
    while remaining > 0:
        if rng.random() < 0.2:
            sizes.append(0)
        size = int(rng.integers(1, max(total // 3, 2) + 1))
        size = min(size, remaining)
        sizes.append(size)
        remaining -= size
    if not sizes:
        sizes = [0]  # an empty crowd still streams one (empty) batch
    return sizes


def assert_streaming_replay_matches(name: str, crowd, seed: int, atol: float = 1e-8) -> None:
    """Pin the streaming replay-equivalence contract on one crowd.

    Feeds the crowd through ``partial_fit`` in a seeded random batch
    pattern (decay disabled), checks every intermediate result is
    well-formed, then requires ``fit_to_convergence()`` to reproduce the
    batch twin's posterior (and confusions, when both model them) at
    ``atol``. Majority vote is additionally pinned *incrementally*: its
    streaming posterior must equal the batch posterior after the final
    update with no convergence call at all.
    """
    params = METHOD_OVERRIDES.get(("streaming", name), {})
    stream = get_method(name, kind="streaming", **params)
    sizes = random_batch_sizes(seed, crowd.num_instances)
    for batch in stream_crowd_in_batches(crowd, sizes):
        stream.partial_fit(batch)
    context = f"method={name} kind=streaming"

    online = stream.result()
    assert online.posterior.shape == (crowd.num_instances, crowd.num_classes), context
    assert np.isfinite(online.posterior).all(), context
    if online.posterior.size:
        np.testing.assert_allclose(
            online.posterior.sum(axis=1), 1.0, atol=1e-8,
            err_msg=f"streaming posterior not normalized ({context})",
        )
    expected = REFERENCE_IMPLEMENTATIONS[("streaming", name)](crowd, **params)
    if name == "MV":
        np.testing.assert_allclose(
            online.posterior, expected.posterior, atol=atol, rtol=0,
            err_msg=f"incremental MV diverged from batch MV ({context})",
        )
    replay = stream.fit_to_convergence()
    np.testing.assert_allclose(
        replay.posterior, expected.posterior, atol=atol, rtol=0,
        err_msg=f"replayed stream diverged from batch twin ({context})",
    )
    if replay.confusions is not None and expected.confusions is not None:
        np.testing.assert_allclose(
            replay.confusions, expected.confusions, atol=atol, rtol=0,
            err_msg=f"replayed confusions diverged from batch twin ({context})",
        )
    if "iterations" in expected.extras:
        assert replay.extras.get("iterations") == expected.extras["iterations"], context


def _out_of_core_source(crowd: CrowdLabelMatrix, num_shards: int):
    """Callable yielding standalone COO shards lazily, one per iteration —
    the out-of-core form: nothing references the parent container."""

    def source():
        for shard in crowd.shards(num_shards):
            yield shard.to_sparse()

    return source


# Session-scoped scratch dir for the on-disk handle layouts. Each layout
# call writes a *fresh* file (handle caches key by path, and shard files
# are immutable while handles are live — see repro.inference.sharding).
_HANDLE_DIR = Path(tempfile.mkdtemp(prefix="repro-harness-handles-"))
atexit.register(shutil.rmtree, _HANDLE_DIR, ignore_errors=True)
_handle_counter = itertools.count()


def _handle_source(crowd: CrowdLabelMatrix, num_shards: int, mmap: bool):
    path = _HANDLE_DIR / f"crowd-{next(_handle_counter):05d}.npy"
    return save_shard_handles(crowd, path, num_shards, mmap=mmap)


# name → (crowd → shard source): the layout axis of the sharded contract.
# Covers the shard counts the tentpole names (1, 2, 7, one-instance,
# empty shards), both lazy source forms, and the on-disk ShardHandle
# layouts (one COO file + range descriptors, memmapped and eager).
SHARD_LAYOUTS: dict[str, Callable] = {
    "one-shard": lambda crowd: crowd.shards(1),
    "two-shards": lambda crowd: crowd.shards(2),
    "seven-shards": lambda crowd: crowd.shards(7),
    "single-instance-shards": lambda crowd: crowd.shards(max(crowd.num_instances, 1)),
    # array_split semantics pad the tail with empty shards when n > I.
    "with-empty-shards": lambda crowd: crowd.shards(crowd.num_instances + 3),
    "out-of-core-generator": lambda crowd: _out_of_core_source(crowd, 5),
    "observation-budgeted": lambda crowd: (lambda: crowd.iter_shards(16)),
    "on-disk-handles": lambda crowd: _handle_source(crowd, 4, mmap=True),
    "on-disk-handles-eager": lambda crowd: _handle_source(crowd, 3, mmap=False),
}


def assert_sharded_matches_batch(
    name: str, crowd, make_source: Callable, atol: float = equivalence_atol("float64"),
    executor=None, workers: int | None = None,
) -> None:
    """Pin one sharded method to its batch twin on one crowd and layout.

    Compares the posterior, confusion matrices (when both model them), the
    iteration count, and the per-annotator / per-instance extras the
    method family reports (weights, α, β) — convergence behaviour and the
    annotator model are part of the contract, not just the posterior.
    ``executor`` / ``workers`` forward to :func:`run_sharded`, so the same
    pin can be taken through a thread or process pool.
    """
    params = METHOD_OVERRIDES.get(("sharded", name), {})
    expected = get_method(name, kind="classification", **params).infer(crowd)
    result = run_sharded(
        name, make_source(crowd), executor=executor, workers=workers, **params
    )
    context = f"method={name} kind=sharded"
    np.testing.assert_allclose(
        result.posterior, expected.posterior, atol=atol, rtol=0,
        err_msg=f"posterior diverged from batch twin ({context})",
    )
    if result.confusions is not None and expected.confusions is not None:
        np.testing.assert_allclose(
            result.confusions, expected.confusions, atol=atol, rtol=0,
            err_msg=f"confusions diverged from batch twin ({context})",
        )
    if "iterations" in expected.extras:
        assert result.extras.get("iterations") == expected.extras["iterations"], (
            f"iteration count diverged ({context}): "
            f"{result.extras.get('iterations')} != {expected.extras['iterations']}"
        )
    for key in ("weights", "alpha", "beta"):
        if key in expected.extras and key in result.extras:
            np.testing.assert_allclose(
                result.extras[key], expected.extras[key], atol=atol, rtol=0,
                err_msg=f"extras[{key!r}] diverged from batch twin ({context})",
            )


def assert_degenerate_ok(name: str, kind: str, crowd) -> None:
    """Behavioural contract on crowds the pre-refactor code crashed on:
    the method must run and return well-formed, finite, normalized output."""
    params = METHOD_OVERRIDES.get((kind, name), {})
    result = get_method(name, kind=kind, **params).infer(crowd)
    if kind == "classification":
        posteriors = [result.posterior]
        assert result.posterior.shape == (crowd.num_instances, crowd.num_classes)
    else:
        posteriors = result.posteriors
        assert len(posteriors) == crowd.num_instances
    for posterior in posteriors:
        assert np.isfinite(posterior).all()
        if posterior.size:
            np.testing.assert_allclose(posterior.sum(axis=1), 1.0, atol=1e-8)
