"""Shard-and-merge layer tests: ShardStats algebra, the deterministic
tree reduce, degenerate shard layouts, shard sources, the run_sharded
driver, the executor hooks (thread and process), the shard file format,
and the pickle boundary.

The full method × crowd × layout equivalence sweep lives in
``test_equivalence_harness.py``; this file covers the merge primitive and
the plumbing the sweep rides on.
"""

import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np
import pytest

from repro.crowd.sharding import ShardHandle, SparseLabelShard, save_shard_handles
from repro.crowd.types import MISSING, CrowdLabelMatrix
from repro.inference import (
    ShardedDawidSkene,
    ShardedMajorityVote,
    ShardStats,
    get_method,
    merge_shard_stats,
    run_sharded,
    tree_merge_shard_stats,
)
from repro.inference.majority_vote import majority_vote_posterior
from repro.inference.primitives import confusion_counts
from repro.inference.sharding import (
    TreeReducer,
    _window_size,
    as_shard_source,
    shard_base_stats,
)

from .equivalence_harness import random_classification_crowd


def _stats_from(shard) -> ShardStats:
    """A representative, fully populated ShardStats from a shard's MV
    posterior — the same fields the method mappers fill."""
    block = majority_vote_posterior(shard)
    return ShardStats(
        confusion=confusion_counts(block, shard),
        class_totals=block.sum(axis=0),
        agreement=block.sum(axis=0)[:1].repeat(shard.num_annotators),
        label_counts=np.asarray(shard.annotations_per_annotator(), dtype=np.float64),
        log_likelihood=float(block.sum()),
        delta=float(block.max(initial=0.0)),
        **shard_base_stats(shard),
    )


@pytest.fixture(scope="module")
def crowd():
    return random_classification_crowd(3, instances=90, annotators=9, classes=3)


class TestShardStatsMerge:
    def test_identity(self, crowd):
        stats = _stats_from(crowd.shards(1)[0])
        for merged in (ShardStats().merge(stats), stats.merge(ShardStats())):
            assert merged.instances == stats.instances
            assert merged.observations == stats.observations
            np.testing.assert_array_equal(merged.confusion, stats.confusion)
            np.testing.assert_array_equal(merged.class_totals, stats.class_totals)
            assert merged.delta == stats.delta
            assert merged.log_likelihood == stats.log_likelihood

    def test_commutative_exactly(self, crowd):
        a, b = (_stats_from(shard) for shard in crowd.shards(2))
        ab, ba = a.merge(b), b.merge(a)
        # IEEE addition is commutative, so this holds bit-for-bit.
        np.testing.assert_array_equal(ab.confusion, ba.confusion)
        np.testing.assert_array_equal(ab.class_totals, ba.class_totals)
        np.testing.assert_array_equal(ab.label_counts, ba.label_counts)
        assert ab.instances == ba.instances
        assert ab.delta == ba.delta

    def test_associative_to_rounding(self, crowd):
        a, b, c = (_stats_from(shard) for shard in crowd.shards(3))
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        np.testing.assert_allclose(left.confusion, right.confusion, atol=1e-12, rtol=0)
        np.testing.assert_allclose(left.class_totals, right.class_totals, atol=1e-12, rtol=0)
        # Integer fields merge exactly regardless of grouping.
        assert left.instances == right.instances
        assert left.observations == right.observations
        np.testing.assert_array_equal(left.label_counts, right.label_counts)
        assert left.delta == right.delta

    def test_delta_merges_via_max(self):
        merged = ShardStats(delta=0.25).merge(ShardStats(delta=0.75))
        assert merged.delta == 0.75

    def test_disjoint_fields_merge_without_shape_bookkeeping(self):
        # An E-pass stat (confusion) and a gradient-pass stat (grad_alpha)
        # merge: None is the identity per field.
        a = ShardStats(confusion=np.ones((2, 3, 3)))
        b = ShardStats(grad_alpha=np.ones(2))
        merged = a.merge(b)
        np.testing.assert_array_equal(merged.confusion, a.confusion)
        np.testing.assert_array_equal(merged.grad_alpha, b.grad_alpha)
        assert merged.class_totals is None

    @pytest.mark.parametrize("num_shards", [1, 2, 7, 90, 97])
    def test_shard_count_invariance(self, crowd, num_shards):
        """Merging per-shard statistics reproduces the whole-crowd
        statistics for any shard count (incl. one-instance and empty
        shards) — the associativity property the map-reduce EM rests on."""
        whole = _stats_from(crowd.shards(1)[0])
        merged = merge_shard_stats(
            _stats_from(shard) for shard in crowd.shards(num_shards)
        )
        assert merged.instances == whole.instances
        assert merged.observations == whole.observations
        np.testing.assert_array_equal(merged.label_counts, whole.label_counts)
        np.testing.assert_allclose(merged.confusion, whole.confusion, atol=1e-12, rtol=0)
        np.testing.assert_allclose(
            merged.class_totals, whole.class_totals, atol=1e-12, rtol=0
        )


def _assert_stats_equal(left: ShardStats, right: ShardStats) -> None:
    """Bit-for-bit equality over every populated ShardStats field."""
    assert (left.instances, left.observations, left.unannotated) == (
        right.instances, right.observations, right.unannotated,
    )
    assert left.log_likelihood == right.log_likelihood
    assert left.delta == right.delta
    for field in ("confusion", "class_totals", "vote_totals", "agreement",
                  "label_counts", "grad_alpha"):
        a, b = getattr(left, field), getattr(right, field)
        assert (a is None) == (b is None), field
        if a is not None:
            np.testing.assert_array_equal(a, b, err_msg=field)


class TestTreeReduce:
    """The merge *shape* is part of the numerical contract: a pure
    function of the leaf count, independent of completion timing."""

    def test_empty_is_identity(self):
        assert TreeReducer().result().instances == 0
        _assert_stats_equal(tree_merge_shard_stats([]), ShardStats())

    def test_single_leaf_passes_through(self, crowd):
        stats = _stats_from(crowd.shards(1)[0])
        _assert_stats_equal(tree_merge_shard_stats([stats]), stats)

    def test_four_leaves_merge_pairwise(self, crowd):
        a, b, c, d = (_stats_from(shard) for shard in crowd.shards(4))
        expected = (a.merge(b)).merge(c.merge(d))
        _assert_stats_equal(tree_merge_shard_stats([a, b, c, d]), expected)

    def test_odd_leaf_joins_smallest_first(self, crowd):
        a, b, c = (_stats_from(shard) for shard in crowd.shards(3))
        # Binary-counter fold: the leftover leaf c merges into (a·b).
        _assert_stats_equal(tree_merge_shard_stats([a, b, c]), a.merge(b).merge(c))
        # Seven leaves: ((e·f)·g) joins ((a·b)·(c·d)) — levels low→high.
        leaves = [_stats_from(shard) for shard in crowd.shards(7)]
        a, b, c, d, e, f, g = leaves
        expected = (a.merge(b).merge(c.merge(d))).merge(e.merge(f).merge(g))
        _assert_stats_equal(tree_merge_shard_stats(leaves), expected)

    def test_result_is_pure(self, crowd):
        reducer = TreeReducer()
        for shard in crowd.shards(5):
            reducer.push(_stats_from(shard))
        _assert_stats_equal(reducer.result(), reducer.result())
        assert reducer.count == 5

    def test_identity_leaves_do_not_change_integer_fields(self, crowd):
        stats = _stats_from(crowd.shards(1)[0])
        merged = tree_merge_shard_stats([ShardStats(), stats, ShardStats()])
        assert merged.instances == stats.instances
        assert merged.observations == stats.observations
        np.testing.assert_array_equal(merged.label_counts, stats.label_counts)

    def test_matches_left_fold_to_rounding(self, crowd):
        leaves = [_stats_from(shard) for shard in crowd.shards(7)]
        tree = tree_merge_shard_stats(leaves)
        fold = merge_shard_stats(leaves)
        assert tree.instances == fold.instances
        np.testing.assert_array_equal(tree.label_counts, fold.label_counts)
        np.testing.assert_allclose(tree.confusion, fold.confusion, atol=1e-12, rtol=0)


class TestDegenerateShardLayouts:
    def test_empty_shards_interleaved(self, crowd):
        """Empty shards anywhere in the stream contribute nothing."""
        expected = get_method("DS", kind="classification").infer(crowd)
        pieces = crowd.shards(3)
        empty = SparseLabelShard(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            num_instances=0, num_annotators=crowd.num_annotators,
            num_classes=crowd.num_classes,
        )
        layout = [empty, pieces[0], empty, pieces[1], pieces[2], empty]
        result = run_sharded("DS", layout)
        np.testing.assert_allclose(result.posterior, expected.posterior, atol=1e-10, rtol=0)
        assert result.extras["iterations"] == expected.extras["iterations"]
        assert result.extras["shards"] == len(layout)

    def test_disjoint_annotator_sets(self):
        """Shards whose active annotators do not overlap still merge: the
        annotator axis is global, per-shard statistics are zero for absent
        annotators."""
        rng = np.random.default_rng(11)
        J, K = 10, 3
        labels = np.full((80, J), MISSING, dtype=np.int64)
        truth = rng.integers(0, K, size=80)
        for i in range(80):
            # First half of the instances only sees annotators 0-4,
            # second half only 5-9.
            pool = np.arange(5) if i < 40 else np.arange(5, 10)
            chosen = rng.choice(pool, size=3, replace=False)
            noisy = np.where(
                rng.random(3) < 0.75, truth[i], rng.integers(0, K, size=3)
            )
            labels[i, chosen] = noisy
        crowd = CrowdLabelMatrix(labels, K)
        shards = crowd.shards(2)
        front = shards[0].annotations_per_annotator()
        back = shards[1].annotations_per_annotator()
        assert (front[5:] == 0).all() and (back[:5] == 0).all()  # really disjoint
        for name in ("DS", "PM", "CATD"):
            expected = get_method(name, kind="classification").infer(crowd)
            result = run_sharded(name, shards)
            np.testing.assert_allclose(
                result.posterior, expected.posterior, atol=1e-10, rtol=0,
                err_msg=f"{name} diverged on disjoint-annotator shards",
            )

    def test_single_instance_shards(self, crowd):
        expected = get_method("PM", kind="classification").infer(crowd)
        result = run_sharded("PM", crowd.shards(crowd.num_instances))
        np.testing.assert_allclose(result.posterior, expected.posterior, atol=1e-10, rtol=0)

    def test_empty_crowd_single_empty_shard(self):
        empty = CrowdLabelMatrix(np.zeros((0, 4), dtype=np.int64), 2)
        result = run_sharded("DS", empty.shards(1))
        assert result.posterior.shape == (0, 2)
        assert result.confusions.shape == (4, 2, 2)
        assert np.isfinite(result.confusions).all()


class TestShardSources:
    def test_one_shot_iterator_ok_for_single_pass_mv(self, crowd):
        result = run_sharded("MV", iter(crowd.shards(4)))
        np.testing.assert_allclose(
            result.posterior, majority_vote_posterior(crowd), atol=1e-12, rtol=0
        )

    def test_one_shot_iterator_rejected_for_multi_pass_methods(self, crowd):
        with pytest.raises(ValueError, match="one-shot iterator"):
            run_sharded("DS", iter(crowd.shards(4)))

    def test_callable_source_re_invoked_per_pass(self, crowd):
        passes = {"count": 0}

        def source():
            passes["count"] += 1
            return iter(crowd.shards(3))

        result = run_sharded("DS", source, max_iterations=5, tolerance=0.0)
        # init pass + one pass per EM round
        assert passes["count"] == 6
        assert result.extras["iterations"] == 5

    def test_empty_source_rejected(self):
        with pytest.raises(ValueError, match="no shards"):
            run_sharded("MV", [])

    def test_mismatched_shard_dimensions_rejected(self, crowd):
        other = CrowdLabelMatrix(np.zeros((3, crowd.num_annotators + 1), dtype=np.int64), 2)
        with pytest.raises(ValueError, match="disagree"):
            run_sharded("MV", [crowd.shards(1)[0], other])

    def test_unsupported_source_type_rejected(self):
        with pytest.raises(TypeError, match="shard source"):
            as_shard_source(42)


class TestRunShardedDriver:
    def test_resolves_names_and_forwards_overrides(self, crowd):
        result = run_sharded("DS", crowd.shards(2), max_iterations=3, tolerance=0.0)
        assert result.extras["iterations"] == 3

    def test_accepts_instances(self, crowd):
        method = ShardedDawidSkene(max_iterations=3, tolerance=0.0)
        result = run_sharded(method, crowd.shards(2))
        assert result.extras["iterations"] == 3

    def test_instance_plus_overrides_rejected(self, crowd):
        with pytest.raises(TypeError, match="overrides"):
            run_sharded(ShardedMajorityVote(), crowd.shards(2), max_iterations=3)

    def test_non_sharded_method_rejected(self, crowd):
        with pytest.raises(TypeError, match="sharded"):
            run_sharded(get_method("DS", kind="classification"), crowd.shards(2))

    def test_unknown_name_raises_keyerror(self, crowd):
        with pytest.raises(KeyError):
            run_sharded("nope", crowd.shards(2))

    def test_convenience_infer_shards_in_memory(self, crowd):
        expected = get_method("DS", kind="classification").infer(crowd)
        result = ShardedDawidSkene().infer(crowd, num_shards=3)
        np.testing.assert_allclose(result.posterior, expected.posterior, atol=1e-10, rtol=0)
        assert result.extras["shards"] == 3


class TestExecutorHook:
    @pytest.mark.parametrize("name", ["MV", "DS", "PM"])
    def test_thread_pool_map_stage_is_deterministic(self, crowd, name):
        serial = run_sharded(name, crowd.shards(5))
        with ThreadPoolExecutor(max_workers=3) as pool:
            threaded = run_sharded(name, crowd.shards(5), executor=pool)
        # Results are consumed in submission order and reduced on the
        # caller's thread, so parallel mapping is bit-identical.
        np.testing.assert_array_equal(serial.posterior, threaded.posterior)

    def test_lazy_source_keeps_bounded_in_flight_window(self):
        """The parallel map must not drain a lazy out-of-core source up
        front (executor.map would) — at most 2×workers shards in flight."""
        from repro.inference.sharding import ShardedTruthInference

        state = {"issued": 0, "consumed": 0, "max_outstanding": 0}

        def items():
            for index in range(40):
                state["issued"] += 1
                outstanding = state["issued"] - state["consumed"]
                state["max_outstanding"] = max(state["max_outstanding"], outstanding)
                yield index

        with ThreadPoolExecutor(max_workers=2) as pool:
            results = []
            for value in ShardedTruthInference._map_results(
                lambda item: item * 2, items(), pool
            ):
                state["consumed"] += 1
                results.append(value)
        assert results == [index * 2 for index in range(40)]
        # Window is 2 × max_workers = 4 (+1 for the item pulled before
        # the oldest future's result is claimed).
        assert state["max_outstanding"] <= 5

    def test_explicit_window_bounds_in_flight_items(self):
        """Satellite contract: window= is an explicit argument, not a peek
        at executor internals."""
        from repro.inference.sharding import ShardedTruthInference

        state = {"issued": 0, "consumed": 0, "max_outstanding": 0}

        def items():
            for index in range(30):
                state["issued"] += 1
                outstanding = state["issued"] - state["consumed"]
                state["max_outstanding"] = max(state["max_outstanding"], outstanding)
                yield index

        with ThreadPoolExecutor(max_workers=4) as pool:
            results = []
            for value in ShardedTruthInference._map_results(
                lambda item: item + 1, items(), pool, window=2
            ):
                state["consumed"] += 1
                results.append(value)
        assert results == [index + 1 for index in range(30)]
        assert state["max_outstanding"] <= 3  # window 2 (+1 pre-claim pull)

    def test_window_default_without_max_workers_attribute(self):
        """Executors that don't expose the stdlib's private _max_workers
        fall back to os.cpu_count(), not a hard-coded guess."""
        import os

        class OpaqueExecutor:
            pass

        expected = max(2 * (os.cpu_count() or 1), 2)
        assert _window_size(OpaqueExecutor(), None) == expected
        assert _window_size(OpaqueExecutor(), 7) == 7

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError, match="window"):
            _window_size(None, 0)

    def test_window_forwarded_through_run_sharded(self, crowd):
        serial = run_sharded("DS", crowd.shards(5), max_iterations=4, tolerance=0.0)
        with ThreadPoolExecutor(max_workers=2) as pool:
            windowed = run_sharded(
                "DS", crowd.shards(5), executor=pool, window=1,
                max_iterations=4, tolerance=0.0,
            )
        np.testing.assert_array_equal(serial.posterior, windowed.posterior)


@pytest.fixture(scope="module")
def binary_crowd():
    return random_classification_crowd(5, instances=70, annotators=8, classes=2)


class TestExecutorBitIdentity:
    """Satellite contract: for a fixed shard layout, serial, thread-pool,
    and process-pool execution produce bit-identical posteriors — the
    tree reduce plus submission-order consumption make merge order a pure
    function of shard count."""

    BUDGETS = {
        "DS": {"max_iterations": 6, "tolerance": 0.0},
        "PM": {"max_iterations": 6, "tolerance": 0.0},
        "GLAD": {"em_iterations": 3, "gradient_steps": 3},
    }

    @pytest.mark.parametrize("num_shards", [1, 2, 4, 7])
    @pytest.mark.parametrize("name", ["DS", "PM", "GLAD"])
    def test_serial_thread_process_bit_identical(
        self, crowd, binary_crowd, tmp_path, name, num_shards
    ):
        source = binary_crowd if name == "GLAD" else crowd
        handles = save_shard_handles(
            source, tmp_path / f"{name}-{num_shards}.npy", num_shards
        )
        overrides = self.BUDGETS[name]
        serial = run_sharded(name, handles, **overrides)
        with ThreadPoolExecutor(max_workers=3) as pool:
            threaded = run_sharded(name, handles, executor=pool, **overrides)
        with ProcessPoolExecutor(max_workers=2) as pool:
            processed = run_sharded(name, handles, executor=pool, **overrides)
        # Not allclose — array_equal. Bit-identity is the contract.
        np.testing.assert_array_equal(serial.posterior, threaded.posterior)
        np.testing.assert_array_equal(serial.posterior, processed.posterior)
        if serial.confusions is not None:
            np.testing.assert_array_equal(serial.confusions, processed.confusions)
        for key in ("weights", "alpha", "beta"):
            if key in serial.extras:
                np.testing.assert_array_equal(
                    serial.extras[key], processed.extras[key], err_msg=key
                )

    def test_stats_arrays_are_layout_canonical(self):
        """Regression: mappers hand ShardStats strided views (einsum
        transposes); a pickle round trip rewrites those C-contiguous, and
        numpy reductions order additions by memory layout — so without
        canonicalization at construction, serial and process runs sum the
        merged confusion in different orders and diverge in the last bits."""
        view = np.arange(47 * 9 * 9, dtype=np.float64).reshape(47, 9, 9)
        stats = ShardStats(confusion=view.transpose(0, 2, 1))
        assert stats.confusion.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(stats.confusion, view.transpose(0, 2, 1))

    def test_wide_crowd_regression(self, tmp_path):
        """The observed failure case for the layout bug: J=47, K=9 — large
        enough that the confusion reduction's addition order shows up in
        the bits. Small test crowds never caught it."""
        wide = random_classification_crowd(11, instances=150, annotators=47, classes=9)
        [handle] = save_shard_handles(wide, tmp_path / "wide.npy", 1)
        serial = run_sharded("DS", [handle], max_iterations=4, tolerance=0.0)
        with ProcessPoolExecutor(max_workers=1) as pool:
            processed = run_sharded(
                "DS", [handle], executor=pool, max_iterations=4, tolerance=0.0
            )
        np.testing.assert_array_equal(serial.posterior, processed.posterior)
        np.testing.assert_array_equal(serial.confusions, processed.confusions)


class TestProcessExecutor:
    def test_workers_spills_in_memory_shards(self, crowd):
        """workers=N on an in-memory layout: shards are written to handle
        form behind the scenes; the result is bit-identical to serial."""
        serial = run_sharded("DS", crowd.shards(4), max_iterations=5, tolerance=0.0)
        parallel = run_sharded(
            "DS", crowd.shards(4), workers=2, max_iterations=5, tolerance=0.0
        )
        np.testing.assert_array_equal(serial.posterior, parallel.posterior)
        np.testing.assert_array_equal(serial.confusions, parallel.confusions)

    def test_workers_with_lazy_source_pickles_shards_per_task(self, crowd):
        """A callable source under workers=N still works: yielded shards
        cross the pickle boundary directly (no spill for lazy sources)."""

        def source():
            for shard in crowd.shards(3):
                yield shard.to_sparse()

        serial = run_sharded("PM", source, max_iterations=4, tolerance=0.0)
        parallel = run_sharded("PM", source, workers=2, max_iterations=4, tolerance=0.0)
        np.testing.assert_array_equal(serial.posterior, parallel.posterior)

    def test_workers_and_executor_are_mutually_exclusive(self, crowd):
        with ThreadPoolExecutor(max_workers=1) as pool:
            with pytest.raises(TypeError, match="not both"):
                run_sharded("MV", crowd.shards(2), executor=pool, workers=2)

    def test_workers_must_be_positive(self, crowd):
        with pytest.raises(ValueError, match="worker"):
            run_sharded("MV", crowd.shards(2), workers=0)

    def test_user_process_pool_with_handles(self, crowd, tmp_path):
        """A caller-owned ProcessPoolExecutor (no shard-warming
        initializer) resolves handles on demand in the workers."""
        handles = save_shard_handles(crowd, tmp_path / "crowd.npy", 4)
        expected = get_method("DS", kind="classification").infer(crowd)
        with ProcessPoolExecutor(max_workers=2) as pool:
            result = run_sharded("DS", handles, executor=pool)
        np.testing.assert_allclose(result.posterior, expected.posterior, atol=1e-10, rtol=0)
        assert result.extras["iterations"] == expected.extras["iterations"]


class TestShardFileFormat:
    def test_npy_round_trip_mmap_and_eager(self, crowd, tmp_path):
        shard = crowd.shards(1)[0].to_sparse()
        path = shard.save(tmp_path / "shard.npy")
        for mmap in (True, False):
            loaded = SparseLabelShard.load(path, mmap=mmap)
            for a, b in zip(loaded.flat_label_pairs(), shard.flat_label_pairs()):
                np.testing.assert_array_equal(a, b)
            assert loaded.num_instances == shard.num_instances
            assert loaded.num_annotators == shard.num_annotators
            assert loaded.num_classes == shard.num_classes
            np.testing.assert_array_equal(loaded.vote_counts(), shard.vote_counts())

    def test_npz_round_trip(self, crowd, tmp_path):
        shard = crowd.shards(1)[0].to_sparse()
        path = shard.save(tmp_path / "shard.npz")
        loaded = SparseLabelShard.load(path)
        np.testing.assert_array_equal(loaded.vote_counts(), shard.vote_counts())

    def test_sparse_incidence_flag_survives_save_load(self, crowd, tmp_path):
        rows, annotators, given = crowd.flat_label_pairs()
        shard = SparseLabelShard(
            rows, annotators, given,
            num_instances=crowd.num_instances,
            num_annotators=crowd.num_annotators,
            num_classes=crowd.num_classes,
            sparse_incidence=False,
        )
        loaded = SparseLabelShard.load(shard.save(tmp_path / "no-csr.npy"))
        assert loaded.label_incidence() is None

    def test_empty_shard_round_trip(self, tmp_path):
        empty = SparseLabelShard(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            num_instances=0, num_annotators=4, num_classes=2,
        )
        loaded = SparseLabelShard.load(empty.save(tmp_path / "empty.npy"))
        assert loaded.num_instances == 0
        assert loaded.total_annotations() == 0

    def test_non_shard_file_rejected(self, tmp_path):
        path = tmp_path / "other.npy"
        np.save(path, np.arange(8, dtype=np.int64))
        with pytest.raises(ValueError, match="not a shard file"):
            SparseLabelShard.load(path)

    def test_handle_range_localizes_in_file_coordinates(self, crowd, tmp_path):
        handles = save_shard_handles(crowd, tmp_path / "crowd.npy", 3)
        assert sum(h.num_instances for h in handles) == crowd.num_instances
        opened = [handle.open() for handle in handles]
        np.testing.assert_array_equal(
            np.concatenate([s.vote_counts() for s in opened], axis=0),
            crowd.vote_counts(),
        )

    def test_handle_dims_cross_checked_against_header(self, crowd, tmp_path):
        [handle] = save_shard_handles(crowd, tmp_path / "crowd.npy", 1)
        import dataclasses

        with pytest.raises(ValueError, match="disagree"):
            dataclasses.replace(handle, num_classes=handle.num_classes + 1).open()
        with pytest.raises(ValueError, match="declares"):
            dataclasses.replace(handle, num_instances=handle.num_instances + 5).open()

    def test_range_handle_over_unsorted_file_rejected(self, tmp_path):
        shard = SparseLabelShard(
            np.array([3, 0, 2]), np.array([0, 1, 2]), np.array([1, 0, 1]),
            num_instances=4, num_annotators=3, num_classes=2,
        )
        path = shard.save(tmp_path / "unsorted.npy")
        handle = ShardHandle(
            path=str(path), num_instances=2, num_annotators=3, num_classes=2,
            start=0, stop=2,
        )
        with pytest.raises(ValueError, match="row-sorted"):
            handle.open()

    def test_save_shard_handles_sorts_unsorted_input(self, tmp_path):
        shard = SparseLabelShard(
            np.array([3, 0, 2]), np.array([0, 1, 2]), np.array([1, 0, 1]),
            num_instances=4, num_annotators=3, num_classes=2,
        )
        handles = save_shard_handles(shard, tmp_path / "sorted.npy", 2)
        opened = [handle.open() for handle in handles]
        np.testing.assert_array_equal(
            np.concatenate([s.vote_counts() for s in opened], axis=0),
            shard.vote_counts(),
        )


class TestSparseLabelShardPickle:
    """Satellite regression: pickling must drop built caches (the CSR
    incidence in particular) and preserve the sparse_incidence flag."""

    def test_built_incidence_cache_is_dropped(self, crowd):
        shard = crowd.shards(1)[0].to_sparse()
        assert shard.label_incidence() is not None  # build the cache
        assert "_incidence_cache" in shard.__dict__
        clone = pickle.loads(pickle.dumps(shard))
        assert "_incidence_cache" not in clone.__dict__
        # The clone rebuilds on demand and computes the same thing.
        np.testing.assert_array_equal(
            np.asarray(clone.label_incidence().todense()),
            np.asarray(shard.label_incidence().todense()),
        )

    def test_sparse_incidence_false_round_trips(self, crowd):
        rows, annotators, given = crowd.flat_label_pairs()
        shard = SparseLabelShard(
            rows, annotators, given,
            num_instances=crowd.num_instances,
            num_annotators=crowd.num_annotators,
            num_classes=crowd.num_classes,
            sparse_incidence=False,
        )
        clone = pickle.loads(pickle.dumps(shard))
        assert clone.label_incidence() is None  # the flag's promise holds
        np.testing.assert_array_equal(clone.vote_counts(), shard.vote_counts())

    def test_payload_carries_no_csr(self, crowd):
        """The serialized form must not grow when a cache happens to be
        built — what goes over the pickle boundary is triples + dims."""
        shard = crowd.shards(1)[0].to_sparse()
        cold = len(pickle.dumps(shard))
        shard.label_incidence()
        warm = len(pickle.dumps(shard))
        assert warm == cold

    def test_memmap_backed_shard_pickles_as_plain_arrays(self, crowd, tmp_path):
        shard = crowd.shards(1)[0].to_sparse()
        loaded = SparseLabelShard.load(shard.save(tmp_path / "shard.npy"), mmap=True)
        clone = pickle.loads(pickle.dumps(loaded))
        assert not isinstance(clone.flat_label_pairs()[1], np.memmap)
        np.testing.assert_array_equal(clone.vote_counts(), shard.vote_counts())


class TestOutOfCore:
    def test_lazily_loaded_coo_shards_match_batch(self, crowd, tmp_path):
        """The out-of-core path: shards persisted as COO triples, loaded
        one at a time per pass, nothing referencing the parent crowd."""
        paths = []
        for index, shard in enumerate(crowd.shards(6)):
            rows, annotators, given = shard.flat_label_pairs()
            path = tmp_path / f"shard{index}.npz"
            np.savez(
                path, rows=rows, annotators=annotators, labels=given,
                num_instances=shard.num_instances,
            )
            paths.append(path)

        def source():
            for path in paths:
                payload = np.load(path)
                yield SparseLabelShard(
                    payload["rows"], payload["annotators"], payload["labels"],
                    num_instances=int(payload["num_instances"]),
                    num_annotators=crowd.num_annotators,
                    num_classes=crowd.num_classes,
                    sparse_incidence=False,
                )

        expected = get_method("DS", kind="classification").infer(crowd)
        result = run_sharded("DS", source)
        np.testing.assert_allclose(result.posterior, expected.posterior, atol=1e-10, rtol=0)
        np.testing.assert_allclose(result.confusions, expected.confusions, atol=1e-10, rtol=0)
        assert result.extras["iterations"] == expected.extras["iterations"]

    def test_iter_shards_budget_source(self, crowd):
        expected = get_method("IBCC", kind="classification").infer(crowd)
        result = run_sharded("IBCC", lambda: crowd.iter_shards(25))
        np.testing.assert_allclose(result.posterior, expected.posterior, atol=1e-10, rtol=0)

    def test_user_defined_shard_satisfying_the_protocol(self, crowd):
        """The documented shard protocol is structural: any object with
        the kernel-facing surface works, not just the built-in classes."""

        class MyShard:
            def __init__(self, shard):
                self._pairs = tuple(np.array(a) for a in shard.flat_label_pairs())
                self.num_instances = shard.num_instances
                self.num_annotators = shard.num_annotators
                self.num_classes = shard.num_classes

            def flat_label_pairs(self):
                return self._pairs

            def label_incidence(self):
                return None

            def vote_counts(self):
                rows, _, given = self._pairs
                key = rows * self.num_classes + given
                counts = np.bincount(key, minlength=self.num_instances * self.num_classes)
                return counts.reshape(self.num_instances, self.num_classes)

            def annotations_per_instance(self):
                return np.bincount(self._pairs[0], minlength=self.num_instances)

            def annotations_per_annotator(self):
                return np.bincount(self._pairs[1], minlength=self.num_annotators)

        expected = get_method("DS", kind="classification").infer(crowd)
        result = run_sharded("DS", [MyShard(shard) for shard in crowd.shards(3)])
        np.testing.assert_allclose(result.posterior, expected.posterior, atol=1e-10, rtol=0)


class TestSparseLabelShardValidation:
    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="labels out of range"):
            SparseLabelShard(
                np.array([0]), np.array([0]), np.array([5]),
                num_instances=2, num_annotators=3, num_classes=3,
            )
        with pytest.raises(ValueError, match="rows out of range"):
            SparseLabelShard(
                np.array([7]), np.array([0]), np.array([1]),
                num_instances=2, num_annotators=3, num_classes=3,
            )

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal-length"):
            SparseLabelShard(
                np.array([0, 1]), np.array([0]), np.array([1]),
                num_instances=2, num_annotators=3, num_classes=3,
            )

    def test_from_dense_round_trip(self, crowd):
        shard = SparseLabelShard.from_dense(crowd.labels, crowd.num_classes)
        np.testing.assert_array_equal(shard.vote_counts(), crowd.vote_counts())
        np.testing.assert_array_equal(
            shard.annotations_per_annotator(), crowd.annotations_per_annotator()
        )
        assert shard.total_annotations() == crowd.total_annotations()

    def test_to_matrix_densifies_exactly(self, crowd, tmp_path):
        # dense → COO → dense is lossless, including unlabeled instances
        # and a save/load hop — the serving layer's crowd rehydration path.
        shard = SparseLabelShard.from_dense(crowd.labels, crowd.num_classes)
        restored = shard.to_matrix()
        np.testing.assert_array_equal(restored.labels, crowd.labels)
        assert restored.num_classes == crowd.num_classes
        reloaded = SparseLabelShard.load(shard.save(tmp_path / "crowd.shard"), mmap=False)
        np.testing.assert_array_equal(reloaded.to_matrix().labels, crowd.labels)

    def test_to_matrix_handles_empty_shard(self):
        shard = SparseLabelShard(
            np.array([], dtype=np.int64), np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
            num_instances=0, num_annotators=4, num_classes=2,
        )
        matrix = shard.to_matrix()
        assert matrix.labels.shape == (0, 4)
        assert matrix.num_classes == 2
