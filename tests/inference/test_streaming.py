"""Streaming truth inference: API contract, online behaviour, and decay.

The replay-equivalence contract itself (stream + ``fit_to_convergence``
reproduces the batch methods on every randomized harness crowd) lives in
``test_equivalence_harness.py``; this file covers the streaming-specific
surface — incremental ingest, diagnostics, decay-driven drift tracking,
and the degenerate stream shapes batch methods never see.
"""

import numpy as np
import pytest

from repro.crowd.types import MISSING, CrowdLabelMatrix
from repro.experiments.streaming_suite import stream_crowd_in_batches
from repro.inference import (
    DawidSkene,
    MajorityVote,
    StreamingDawidSkene,
    StreamingGLAD,
    StreamingMajorityVote,
    available_methods,
    get_method,
)

from .equivalence_harness import random_classification_crowd

STREAMING_METHODS = ("MV", "DS", "GLAD")


@pytest.fixture(scope="module")
def binary_crowd():
    return random_classification_crowd(3, instances=120, annotators=10, classes=2, mean_labels=5.0)


class TestStreamingAPI:
    def test_registered_under_streaming_kind(self):
        assert set(STREAMING_METHODS) <= set(available_methods("streaming"))

    def test_rejects_non_crowd_batches(self):
        with pytest.raises(TypeError):
            StreamingMajorityVote().partial_fit(np.zeros((3, 2), dtype=np.int64))

    def test_rejects_changed_class_count(self):
        stream = StreamingMajorityVote()
        stream.partial_fit(CrowdLabelMatrix(np.array([[0, 1]]), 2))
        with pytest.raises(ValueError, match="classes"):
            stream.partial_fit(CrowdLabelMatrix(np.array([[2, 1]]), 3))

    def test_rejects_changed_annotator_axis(self):
        stream = StreamingMajorityVote()
        stream.partial_fit(CrowdLabelMatrix(np.array([[0, 1]]), 2))
        with pytest.raises(ValueError, match="annotator"):
            stream.partial_fit(CrowdLabelMatrix(np.array([[0, 1, 1]]), 2))

    def test_result_before_any_batch_raises(self):
        for name in STREAMING_METHODS:
            stream = get_method(name, kind="streaming")
            with pytest.raises(RuntimeError):
                stream.result()
            with pytest.raises(RuntimeError):
                stream.fit_to_convergence()

    @pytest.mark.parametrize("decay", [0.0, -0.5, 1.5])
    def test_bad_decay_rejected(self, decay):
        with pytest.raises(ValueError):
            StreamingDawidSkene(decay=decay)

    def test_glad_rejects_multiclass_stream(self):
        stream = StreamingGLAD()
        with pytest.raises(ValueError, match="binary"):
            stream.partial_fit(CrowdLabelMatrix(np.array([[0, 2]]), 3))

    @pytest.mark.parametrize("name", STREAMING_METHODS)
    def test_diagnostics_contract(self, name, binary_crowd):
        stream = get_method(name, kind="streaming")
        for batch in stream_crowd_in_batches(binary_crowd, [40, 40, 40]):
            stream.partial_fit(batch)
        extras = stream.result().extras
        # ConvergenceMonitor block (one step per update) + streaming block.
        assert {"iterations", "last_change", "converged"} <= set(extras)
        assert extras["iterations"] == extras["updates"] == 3
        assert extras["observations_seen"] == binary_crowd.total_annotations()
        assert extras["decay"] is None
        assert np.isfinite(extras["last_change"])

    @pytest.mark.parametrize("name", STREAMING_METHODS)
    def test_empty_batches_are_legal_anywhere(self, name, binary_crowd):
        empty = CrowdLabelMatrix(np.zeros((0, 10), dtype=np.int64), 2)
        stream = get_method(name, kind="streaming")
        stream.partial_fit(empty)
        for batch in stream_crowd_in_batches(binary_crowd, [60, 60]):
            stream.partial_fit(batch)
            stream.partial_fit(empty)
        result = stream.result()
        assert result.posterior.shape == (120, 2)
        assert np.isfinite(result.posterior).all()
        np.testing.assert_allclose(result.posterior.sum(axis=1), 1.0, atol=1e-8)

    @pytest.mark.parametrize("name", STREAMING_METHODS)
    def test_unannotated_instances_survive_convergence(self, name):
        """An instance whose labels are still in flight must not break the
        convergence path the ingest path already tolerates: the batch twin
        runs on the annotated subset and the unlabeled row gets the
        method's no-evidence posterior."""
        labels = np.array([[0, 1, 1], [MISSING, MISSING, MISSING], [1, 1, MISSING]])
        stream = get_method(name, kind="streaming")
        stream.partial_fit(CrowdLabelMatrix(labels[:2], 2))
        stream.partial_fit(CrowdLabelMatrix(labels[2:], 2))
        converged = stream.fit_to_convergence()
        assert converged.posterior.shape == (3, 2)
        assert np.isfinite(converged.posterior).all()
        np.testing.assert_allclose(converged.posterior.sum(axis=1), 1.0, atol=1e-8)
        annotated = get_method(name, kind="classification").infer(
            CrowdLabelMatrix(labels[[0, 2]], 2)
        )
        np.testing.assert_allclose(
            converged.posterior[[0, 2]], annotated.posterior, atol=1e-12, rtol=0
        )
        # Streaming continues past the checkpoint, late labels and all.
        stream.partial_fit(CrowdLabelMatrix(np.array([[1, MISSING, 1]]), 2))
        assert stream.result().posterior.shape == (4, 2)

    @pytest.mark.parametrize("name", STREAMING_METHODS)
    def test_retained_crowd_matches_fresh_container(self, name, binary_crowd):
        stream = get_method(name, kind="streaming")
        for batch in stream_crowd_in_batches(binary_crowd, [50, 0, 70]):
            stream.partial_fit(batch)
        np.testing.assert_array_equal(stream.crowd.labels, binary_crowd.labels)


class TestStreamingMajorityVote:
    def test_exact_after_every_update(self, binary_crowd):
        stream = StreamingMajorityVote()
        seen = 0
        for batch in stream_crowd_in_batches(binary_crowd, [30, 50, 40]):
            stream.partial_fit(batch)
            seen += batch.num_instances
            batch_result = MajorityVote().infer(binary_crowd.subset(np.arange(seen)))
            np.testing.assert_array_equal(stream.result().posterior, batch_result.posterior)

    def test_decay_is_inert_for_mv(self, binary_crowd):
        plain = StreamingMajorityVote()
        decayed = StreamingMajorityVote(decay=0.5)
        for batch in stream_crowd_in_batches(binary_crowd, [60, 60]):
            plain.partial_fit(batch)
            decayed.partial_fit(batch)
        np.testing.assert_array_equal(plain.result().posterior, decayed.result().posterior)


class TestStreamingDawidSkene:
    def test_online_posterior_tracks_batch_hard_labels(self, binary_crowd):
        stream = StreamingDawidSkene()
        for batch in stream_crowd_in_batches(binary_crowd, [40, 40, 40]):
            stream.partial_fit(batch)
        online = stream.result(refresh=True)
        batch = DawidSkene().infer(binary_crowd)
        agreement = (online.hard_labels() == batch.hard_labels()).mean()
        assert agreement >= 0.95

    def test_refresh_updates_early_instances(self):
        crowd = random_classification_crowd(7, instances=200, annotators=12, classes=3)
        stream = StreamingDawidSkene()
        for batch in stream_crowd_in_batches(crowd, [20, 60, 60, 60]):
            stream.partial_fit(batch)
        stale = stream.result(refresh=False).posterior[:20]
        fresh = stream.result(refresh=True).posterior[:20]
        # The first batch was scored before most annotator evidence arrived;
        # a refresh re-scores it under the final model.
        assert np.abs(stale - fresh).max() > 0

    def test_fit_to_convergence_adopts_state(self, binary_crowd):
        batches = stream_crowd_in_batches(binary_crowd, [60, 60])
        stream = StreamingDawidSkene()
        stream.partial_fit(batches[0])
        converged = stream.fit_to_convergence()
        reference = DawidSkene().infer(binary_crowd.subset(np.arange(60)))
        np.testing.assert_allclose(converged.posterior, reference.posterior, atol=1e-12, rtol=0)
        np.testing.assert_allclose(
            stream._confusions, reference.confusions, atol=1e-12, rtol=0
        )
        # The stream keeps going after a convergence checkpoint.
        stream.partial_fit(batches[1])
        assert stream.result().posterior.shape == (120, 2)

    def test_arrival_order_invariant_at_convergence(self):
        crowd = random_classification_crowd(13, instances=90, annotators=9, classes=3)
        forward = StreamingDawidSkene()
        for batch in stream_crowd_in_batches(crowd, [30, 30, 30]):
            forward.partial_fit(batch)
        order = np.random.default_rng(5).permutation(90)
        shuffled_crowd = crowd.subset(order)
        backward = StreamingDawidSkene()
        for batch in stream_crowd_in_batches(shuffled_crowd, [45, 45]):
            backward.partial_fit(batch)
        first = forward.fit_to_convergence().posterior
        second = backward.fit_to_convergence().posterior
        # Same instances, different arrival order/batching: identical
        # converged posteriors (per-instance, after undoing the shuffle).
        np.testing.assert_allclose(first[order], second, atol=1e-12, rtol=0)

    def test_decay_tracks_annotator_drift(self):
        """An annotator who flips from perfect to adversarial mid-stream:
        with decay the estimated confusion follows the recent behaviour,
        without decay it averages the two regimes."""
        rng = np.random.default_rng(17)
        J, K, per_batch, batches_per_phase = 6, 2, 40, 8
        truth = rng.integers(0, K, size=per_batch * batches_per_phase * 2)

        def make_batch(phase, index):
            start = (phase * batches_per_phase + index) * per_batch
            block_truth = truth[start : start + per_batch]
            labels = np.full((per_batch, J), MISSING, dtype=np.int64)
            for j in range(1, J):  # ordinary 80% annotators
                noisy = np.where(
                    rng.random(per_batch) < 0.8,
                    block_truth,
                    1 - block_truth,
                )
                labels[:, j] = noisy
            # Annotator 0: perfect in phase 0, always wrong in phase 1.
            labels[:, 0] = block_truth if phase == 0 else 1 - block_truth
            return CrowdLabelMatrix(labels, K)

        streams = {None: StreamingDawidSkene(), 0.5: StreamingDawidSkene(decay=0.5)}
        for phase in range(2):
            for index in range(batches_per_phase):
                batch = make_batch(phase, index)
                for stream in streams.values():
                    stream.partial_fit(batch)

        diag = {
            decay: float(np.diag(stream.result().confusions[0]).mean())
            for decay, stream in streams.items()
        }
        # Decayed estimate: annotator 0 now looks adversarial (diag ≈ 0);
        # undecayed still credits the good old days.
        assert diag[0.5] < 0.1
        assert diag[None] > diag[0.5] + 0.2


class TestStreamingContracts:
    """Regression pins for the streaming-contract fixes (PR 8).

    Each of the first three tests fails on the pre-fix code: GLAD flagged
    observation-free streams converged after the first tick, ``refresh``
    permanently overwrote the stored ingest-time posteriors, and batch
    validation ran after the retained crowd had already been extended.
    """

    @pytest.mark.parametrize("name", ("DS", "GLAD"))
    def test_observation_free_stream_never_reports_converged(self, name):
        # An empty → empty → ... stream has updates > 0 but an untrained
        # model; the monitor delta must stay inf until a real batch lands.
        empty = CrowdLabelMatrix(np.zeros((0, 4), dtype=np.int64), 2)
        stream = get_method(name, kind="streaming", tolerance=1e-3)
        for _ in range(4):
            stream.partial_fit(empty)
            extras = stream.result().extras
            assert extras["converged"] is False
            assert extras["last_change"] == np.inf

    @pytest.mark.parametrize("name", ("DS", "GLAD"))
    def test_observation_free_delta_is_zero_once_trained(self, name, binary_crowd):
        # After a real batch the model exists, so "nothing arrived, nothing
        # moved" is an honest 0.0.
        empty = CrowdLabelMatrix(np.zeros((0, 10), dtype=np.int64), 2)
        stream = get_method(name, kind="streaming")
        stream.partial_fit(empty)
        stream.partial_fit(binary_crowd.subset(np.arange(60)))
        stream.partial_fit(empty)
        assert stream.result().extras["last_change"] == 0.0

    @pytest.mark.parametrize("name", STREAMING_METHODS)
    def test_refresh_is_side_effect_free(self, name, binary_crowd):
        stream = get_method(name, kind="streaming")
        for batch in stream_crowd_in_batches(binary_crowd, [20, 50, 50]):
            stream.partial_fit(batch)
        ingest_time = stream.result(refresh=False).posterior.copy()
        refreshed = stream.result(refresh=True).posterior.copy()
        # Pre-fix this read returned the refreshed posteriors: the refresh
        # had overwritten the stored blocks.
        np.testing.assert_array_equal(
            stream.result(refresh=False).posterior, ingest_time
        )
        # Same model, same data: refreshing again reproduces the refresh.
        np.testing.assert_array_equal(
            stream.result(refresh=True).posterior, refreshed
        )
        if name != "MV":  # MV's result always reflects every vote
            assert np.abs(refreshed - ingest_time).max() > 0

    def test_glad_refresh_keeps_difficulty_blocks(self, binary_crowd):
        # Pre-fix the refresh also collapsed _log_beta_blocks into one
        # block; the per-batch difficulty state must survive a read.
        stream = StreamingGLAD()
        for batch in stream_crowd_in_batches(binary_crowd, [40, 40, 40]):
            stream.partial_fit(batch)
        before = [block.copy() for block in stream._log_beta_blocks]
        stream.result(refresh=True)
        assert len(stream._log_beta_blocks) == len(before)
        for kept, expected in zip(stream._log_beta_blocks, before):
            np.testing.assert_array_equal(kept, expected)

    @pytest.mark.parametrize("name", STREAMING_METHODS)
    def test_rejected_batch_leaves_stream_untouched(self, name, binary_crowd):
        stream = get_method(name, kind="streaming")
        for batch in stream_crowd_in_batches(binary_crowd, [60, 60]):
            stream.partial_fit(batch)
        labels_before = stream.crowd.labels.copy()
        posterior_before = stream.result().posterior.copy()
        counters_before = (stream.updates, stream.observations_seen)
        monitor_before = (
            stream._monitor.iterations,
            stream._monitor.last_change,
            stream._monitor.converged,
        )

        wrong_classes = CrowdLabelMatrix(np.array([[2] + [MISSING] * 9]), 3)
        wrong_annotators = CrowdLabelMatrix(np.array([[0, 1]]), 2)
        for bad in (wrong_classes, wrong_annotators):
            with pytest.raises(ValueError):
                stream.partial_fit(bad)

        assert (stream.updates, stream.observations_seen) == counters_before
        assert (
            stream._monitor.iterations,
            stream._monitor.last_change,
            stream._monitor.converged,
        ) == monitor_before
        np.testing.assert_array_equal(stream.crowd.labels, labels_before)
        np.testing.assert_array_equal(stream.result().posterior, posterior_before)

    @pytest.mark.parametrize("name", STREAMING_METHODS)
    def test_state_roundtrip_resumes_bit_identically(self, name, binary_crowd):
        params = {"em_iterations": 5, "gradient_steps": 5} if name == "GLAD" else {}
        batches = stream_crowd_in_batches(binary_crowd, [30, 0, 50, 40])
        reference = get_method(name, kind="streaming", **params)
        for batch in batches:
            reference.partial_fit(batch)

        interrupted = get_method(name, kind="streaming", **params)
        for batch in batches[:2]:
            interrupted.partial_fit(batch)
        state = interrupted.get_state()
        restored = get_method(name, kind="streaming", **params)
        restored.set_state(
            state,
            CrowdLabelMatrix(
                interrupted.crowd.labels.copy(), interrupted.crowd.num_classes
            ),
        )
        for batch in batches[2:]:
            restored.partial_fit(batch)

        assert restored.updates == reference.updates
        assert restored.observations_seen == reference.observations_seen
        np.testing.assert_array_equal(
            restored.result().posterior, reference.result().posterior
        )
        np.testing.assert_array_equal(
            restored.result(refresh=True).posterior,
            reference.result(refresh=True).posterior,
        )
        if reference.result().confusions is not None:
            np.testing.assert_array_equal(
                restored.result().confusions, reference.result().confusions
            )

    @pytest.mark.parametrize("name", STREAMING_METHODS)
    def test_state_roundtrip_before_any_batch(self, name):
        state = get_method(name, kind="streaming").get_state()
        restored = get_method(name, kind="streaming").set_state(state)
        assert restored.updates == 0 and restored.crowd is None
        with pytest.raises(RuntimeError):
            restored.result()

    def test_set_state_validates_method_decay_format_and_crowd(self, binary_crowd):
        stream = StreamingDawidSkene()
        stream.partial_fit(binary_crowd.subset(np.arange(40)))
        state = stream.get_state()
        with pytest.raises(ValueError, match="method"):
            StreamingMajorityVote().set_state(state, stream.crowd)
        with pytest.raises(ValueError, match="decay"):
            StreamingDawidSkene(decay=0.5).set_state(state, stream.crowd)
        with pytest.raises(ValueError, match="crowd"):
            StreamingDawidSkene().set_state(state, None)
        with pytest.raises(ValueError, match="format"):
            StreamingDawidSkene().set_state(dict(state, format=99), stream.crowd)


class TestStreamingGLAD:
    def test_learns_negative_ability_for_adversary(self):
        crowd = random_classification_crowd(
            23, instances=150, annotators=12, classes=2, mean_labels=5.0, adversarial=2
        )
        stream = StreamingGLAD()
        for batch in stream_crowd_in_batches(crowd, [50, 50, 50]):
            stream.partial_fit(batch)
        alpha = stream._alpha
        assert alpha[:2].max() < alpha[2:].mean()

    def test_refresh_concatenates_difficulties(self, binary_crowd):
        stream = StreamingGLAD()
        for batch in stream_crowd_in_batches(binary_crowd, [40, 80]):
            stream.partial_fit(batch)
        result = stream.result(refresh=True)
        assert result.posterior.shape == (120, 2)
        np.testing.assert_allclose(result.posterior.sum(axis=1), 1.0, atol=1e-8)
