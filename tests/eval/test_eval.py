"""Tests for evaluation metrics: accuracy, span F1, statistics, reliability."""

import numpy as np
import pytest

from repro.data import CONLL_LABELS, label_index
from repro.eval import (
    accuracy,
    compare_reliability,
    confusion_mae,
    one_sided_t_test,
    overall_reliability,
    pearson_correlation,
    per_class_accuracy,
    posterior_accuracy,
    span_f1_score,
    token_accuracy,
)

IDX = label_index(CONLL_LABELS)


class TestAccuracy:
    def test_basic(self):
        assert accuracy(np.array([0, 1, 1]), np.array([0, 1, 0])) == pytest.approx(2 / 3)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([0]), np.array([0, 1]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_posterior_accuracy_uses_argmax(self):
        posterior = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        assert posterior_accuracy(np.array([0, 1, 1]), posterior) == pytest.approx(2 / 3)

    def test_posterior_shape_validated(self):
        with pytest.raises(ValueError):
            posterior_accuracy(np.array([0]), np.array([0.5, 0.5]))

    def test_per_class_accuracy(self):
        truth = np.array([0, 0, 1, 2])
        pred = np.array([0, 1, 1, 0])
        out = per_class_accuracy(truth, pred, 4)
        np.testing.assert_allclose(out[:3], [0.5, 1.0, 0.0])
        assert np.isnan(out[3])


def _tags(*names):
    return np.array([IDX[name] for name in names])


class TestSpanF1:
    def test_perfect_prediction(self):
        gold = [_tags("O", "B-PER", "I-PER", "O")]
        result = span_f1_score(gold, gold)
        assert result.f1 == 1.0
        assert result.true_positives == 1

    def test_boundary_error_counts_as_both_fp_and_fn(self):
        gold = [_tags("B-PER", "I-PER", "O")]
        pred = [_tags("B-PER", "O", "O")]
        result = span_f1_score(gold, pred)
        assert result.true_positives == 0
        assert result.false_positives == 1
        assert result.false_negatives == 1
        assert result.f1 == 0.0

    def test_type_error_is_not_a_match(self):
        gold = [_tags("B-PER", "I-PER")]
        pred = [_tags("B-ORG", "I-ORG")]
        assert span_f1_score(gold, pred).f1 == 0.0

    def test_micro_average_over_sentences(self):
        gold = [_tags("B-PER", "O"), _tags("B-LOC", "O")]
        pred = [_tags("B-PER", "O"), _tags("O", "O")]
        result = span_f1_score(gold, pred)
        assert result.precision == 1.0
        assert result.recall == 0.5
        assert result.f1 == pytest.approx(2 / 3)

    def test_no_entities_anywhere(self):
        gold = [_tags("O", "O")]
        result = span_f1_score(gold, gold)
        assert result.f1 == 0.0  # conventional: no TPs → 0, not 1

    def test_sentence_count_mismatch(self):
        with pytest.raises(ValueError):
            span_f1_score([_tags("O")], [])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            span_f1_score([_tags("O")], [_tags("O", "O")])

    def test_token_accuracy(self):
        gold = [_tags("O", "B-PER"), _tags("O")]
        pred = [_tags("O", "O"), _tags("O")]
        assert token_accuracy(gold, pred) == pytest.approx(2 / 3)


class TestStatistics:
    def test_one_sided_detects_improvement(self):
        rng = np.random.default_rng(0)
        base = rng.normal(0.0, 0.01, size=30)
        better = base + 0.05
        result = one_sided_t_test(better, base)
        assert result.p_value < 0.01
        assert result.significant_at_1pct

    def test_no_difference_not_significant(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=30)
        result = one_sided_t_test(a, a + rng.normal(0, 1e-6, size=30))
        assert result.p_value > 0.01

    def test_unpaired_variant(self):
        rng = np.random.default_rng(0)
        a = rng.normal(1.0, 0.1, size=25)
        b = rng.normal(0.0, 0.1, size=20)
        assert one_sided_t_test(a, b, paired=False).p_value < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            one_sided_t_test(np.array([1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            one_sided_t_test(np.ones(3), np.ones(4), paired=True)

    def test_pearson_perfect_correlation(self):
        x = np.arange(10, dtype=float)
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_pearson_validation(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            pearson_correlation(np.array([1.0]), np.array([1.0]))


class TestReliability:
    def test_overall_reliability(self):
        confusions = np.stack([np.eye(2), np.full((2, 2), 0.5)])
        np.testing.assert_allclose(overall_reliability(confusions), [1.0, 0.5])

    def test_single_matrix_promoted(self):
        np.testing.assert_allclose(overall_reliability(np.eye(3)), [1.0])

    def test_confusion_mae(self):
        a = np.zeros((1, 2, 2))
        b = np.ones((1, 2, 2))
        assert confusion_mae(a, b) == 1.0
        with pytest.raises(ValueError):
            confusion_mae(np.zeros((1, 2, 2)), np.zeros((2, 2, 2)))

    def test_compare_reliability_recovers_correlation(self):
        rng = np.random.default_rng(0)
        real = np.stack([np.eye(2) * r + (1 - r) / 2 for r in rng.uniform(0.3, 1.0, 20)])
        noisy = real + rng.normal(0, 0.01, real.shape)
        comparison = compare_reliability(noisy, real)
        assert comparison.pearson > 0.95
        assert comparison.mae < 0.05

    def test_min_labels_filter(self):
        real = np.stack([np.eye(2), np.eye(2) * 0.8 + 0.1, np.full((2, 2), 0.5)])
        counts = np.array([100, 50, 2])
        with pytest.raises(ValueError):
            compare_reliability(real, real, min_labels=5, counts=None)
        filtered = compare_reliability(real, real + 1e-9, min_labels=5, counts=counts)
        assert filtered.estimated.shape == (2,)
