"""Tests for the layer library (Module, Linear, Embedding, Conv, GRU, ...)."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.autodiff import nn

from .gradcheck import assert_grad_matches


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestModule:
    def test_parameter_discovery_nested(self):
        rng = _rng()

        class Toy(nn.Module):
            def __init__(self):
                super().__init__()
                self.lin = nn.Linear(3, 2, rng)
                self.blocks = [nn.Linear(2, 2, rng), nn.Linear(2, 1, rng)]

        toy = Toy()
        names = dict(toy.named_parameters())
        assert "lin.weight" in names
        assert "blocks.0.weight" in names
        assert "blocks.1.bias" in names
        assert len(toy.parameters()) == 6

    def test_train_eval_propagates(self):
        rng = _rng()
        seq = nn.Sequential(nn.Linear(2, 2, rng), nn.Dropout(0.5, rng))
        seq.eval()
        assert all(not m.training for m in seq.modules())
        seq.train()
        assert all(m.training for m in seq.modules())

    def test_zero_grad(self):
        rng = _rng()
        lin = nn.Linear(2, 2, rng)
        (lin(Tensor(np.ones((1, 2)))) ** 2).sum().backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_state_dict_roundtrip(self):
        rng = _rng()
        a = nn.Linear(3, 2, rng)
        b = nn.Linear(3, 2, _rng(1))
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_state_dict_detects_mismatch(self):
        rng = _rng()
        a = nn.Linear(3, 2, rng)
        state = a.state_dict()
        state["extra"] = np.zeros(1)
        with pytest.raises(KeyError):
            a.load_state_dict(state)

    def test_state_dict_detects_shape_mismatch(self):
        rng = _rng()
        a = nn.Linear(3, 2, rng)
        state = a.state_dict()
        state["weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_num_parameters(self):
        lin = nn.Linear(3, 2, _rng())
        assert lin.num_parameters() == 3 * 2 + 2


class TestLinear:
    def test_forward_matches_manual(self):
        rng = _rng()
        lin = nn.Linear(3, 2, rng)
        x = rng.normal(size=(4, 3))
        out = lin(Tensor(x)).numpy()
        np.testing.assert_allclose(out, x @ lin.weight.data + lin.bias.data, atol=1e-12)

    def test_no_bias(self):
        lin = nn.Linear(3, 2, _rng(), bias=False)
        assert lin.bias is None
        assert len(lin.parameters()) == 1

    def test_gradcheck(self):
        rng = _rng()
        lin = nn.Linear(3, 2, rng)
        x = Tensor(rng.normal(size=(4, 3)))
        assert_grad_matches(lambda: (lin(x) ** 2).sum(), lin.parameters())


class TestEmbedding:
    def test_pretrained_frozen(self):
        pretrained = _rng().normal(size=(5, 3))
        emb = nn.Embedding(5, 3, pretrained=pretrained, trainable=False)
        assert emb.parameters() == []
        out = emb(np.array([1, 2]))
        np.testing.assert_allclose(out.numpy(), pretrained[[1, 2]])

    def test_pretrained_shape_check(self):
        with pytest.raises(ValueError):
            nn.Embedding(5, 3, pretrained=np.zeros((4, 3)))

    def test_requires_rng_without_pretrained(self):
        with pytest.raises(ValueError):
            nn.Embedding(5, 3)

    def test_trainable_receives_grads(self):
        emb = nn.Embedding(5, 3, rng=_rng())
        emb(np.array([0, 1])).sum().backward()
        assert emb.weight.grad is not None


class TestConvDropout:
    def test_conv_layer_shapes(self):
        conv = nn.Conv1dSeq(4, 8, width=3, rng=_rng())
        out = conv(Tensor(_rng().normal(size=(2, 6, 4))))
        assert out.shape == (2, 4, 8)

    def test_conv_same_padding(self):
        conv = nn.Conv1dSeq(4, 8, width=5, rng=_rng(), pad="same")
        out = conv(Tensor(_rng().normal(size=(2, 6, 4))))
        assert out.shape == (2, 6, 8)

    def test_dropout_rate_validation(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5, _rng())

    def test_dropout_respects_eval(self):
        drop = nn.Dropout(0.9, _rng())
        drop.eval()
        x = Tensor(np.ones((3, 3)))
        assert drop(x) is x

    def test_activation_modules(self):
        x = Tensor(np.array([-1.0, 2.0]))
        np.testing.assert_allclose(nn.ReLU()(x).numpy(), [0.0, 2.0])
        np.testing.assert_allclose(nn.Tanh()(x).numpy(), np.tanh([-1.0, 2.0]))


class TestGRU:
    def test_cell_output_shape(self):
        cell = nn.GRUCell(4, 6, _rng())
        h = cell(Tensor(np.zeros((3, 4))), Tensor(np.zeros((3, 6))))
        assert h.shape == (3, 6)

    def test_zero_update_gate_keeps_state_bounded(self):
        cell = nn.GRUCell(2, 3, _rng())
        h = Tensor(np.zeros((1, 3)))
        for _ in range(50):
            h = cell(Tensor(np.ones((1, 2))), h)
        assert np.all(np.abs(h.numpy()) <= 1.0 + 1e-9)  # tanh-bounded

    def test_sequence_output_shape(self):
        gru = nn.GRU(4, 5, _rng())
        out = gru(Tensor(_rng().normal(size=(2, 7, 4))))
        assert out.shape == (2, 7, 5)

    def test_mask_freezes_state(self):
        gru = nn.GRU(3, 4, _rng())
        x = _rng().normal(size=(1, 5, 3))
        mask = np.array([[1, 1, 0, 0, 0]])
        out = gru(Tensor(x), mask=mask).numpy()
        # After the mask ends the hidden state must stay constant.
        np.testing.assert_allclose(out[0, 2], out[0, 3])
        np.testing.assert_allclose(out[0, 3], out[0, 4])

    def test_padding_invariance(self):
        gru = nn.GRU(3, 4, _rng())
        x_short = _rng(3).normal(size=(1, 3, 3))
        x_long = np.concatenate([x_short, np.zeros((1, 2, 3))], axis=1)
        out_short = gru(Tensor(x_short), mask=np.ones((1, 3))).numpy()
        out_long = gru(Tensor(x_long), mask=np.array([[1, 1, 1, 0, 0]])).numpy()
        np.testing.assert_allclose(out_short[0, 2], out_long[0, 4], atol=1e-12)

    def test_gradcheck_small(self):
        rng = _rng()
        gru = nn.GRU(2, 3, rng)
        x = Tensor(rng.normal(size=(2, 3, 2)))
        params = gru.parameters()
        assert len(params) == 3  # fused w_x, w_h, bias
        assert_grad_matches(
            lambda: (gru(x) ** 2).sum(), params, atol=1e-4, rtol=1e-3
        )


class TestInitializers:
    def test_glorot_uniform_bounds(self):
        w = nn.init.glorot_uniform(_rng(), 100, 100)
        bound = np.sqrt(6.0 / 200)
        assert np.all(np.abs(w) <= bound)

    def test_orthogonal_is_orthogonal(self):
        q = nn.init.orthogonal(_rng(), (6, 6))
        np.testing.assert_allclose(q.T @ q, np.eye(6), atol=1e-10)

    def test_zeros(self):
        np.testing.assert_allclose(nn.init.zeros((2, 2)), np.zeros((2, 2)))
