"""Tests for optimizers and schedules."""

import numpy as np
import pytest

from repro.autodiff import Tensor
from repro.autodiff.optim import SGD, Adadelta, Adam, StepDecay, clip_grad_norm


def _quadratic_param(start=5.0):
    return Tensor(np.array([start]), requires_grad=True)


def _minimize(optimizer, parameter, steps=200):
    for _ in range(steps):
        optimizer.zero_grad()
        loss = (parameter * parameter).sum()
        loss.backward()
        optimizer.step()
    return abs(parameter.data[0])


class TestSGD:
    def test_minimizes_quadratic(self):
        p = _quadratic_param()
        assert _minimize(SGD([p], lr=0.1), p) < 1e-4

    def test_momentum_accelerates(self):
        p_plain = _quadratic_param()
        p_mom = _quadratic_param()
        _minimize(SGD([p_plain], lr=0.01), p_plain, steps=50)
        _minimize(SGD([p_mom], lr=0.01, momentum=0.9), p_mom, steps=50)
        assert abs(p_mom.data[0]) < abs(p_plain.data[0])

    def test_weight_decay_shrinks(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] < 1.0

    def test_skips_parameters_without_grad(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        SGD([p], lr=0.1).step()  # no grad populated; must not crash
        assert p.data[0] == 1.0

    def test_rejects_empty_parameters(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_rejects_nonpositive_lr(self):
        with pytest.raises(ValueError):
            SGD([_quadratic_param()], lr=0.0)


class TestAdam:
    def test_minimizes_quadratic(self):
        p = _quadratic_param()
        assert _minimize(Adam([p], lr=0.1), p, steps=300) < 1e-3

    def test_bias_correction_first_step(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = Adam([p], lr=0.5)
        p.grad = np.array([1.0])
        opt.step()
        # With bias correction the first step has magnitude ~lr.
        np.testing.assert_allclose(p.data[0], 1.0 - 0.5, atol=1e-6)

    def test_weight_decay(self):
        p = Tensor(np.array([10.0]), requires_grad=True)
        opt = Adam([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] < 10.0


class TestAdadelta:
    def test_minimizes_quadratic(self):
        p = _quadratic_param()
        assert _minimize(Adadelta([p], lr=1.0), p, steps=3000) < 0.5

    def test_step_without_grad_is_noop(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        Adadelta([p]).step()
        assert p.data[0] == 1.0


class TestStepDecay:
    def test_halves_every_n_epochs(self):
        p = _quadratic_param()
        opt = SGD([p], lr=1.0)
        sched = StepDecay(opt, every=5, factor=0.5)
        for _ in range(4):
            sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert opt.lr == 0.5
        for _ in range(5):
            sched.step()
        assert opt.lr == 0.25

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            StepDecay(SGD([_quadratic_param()], lr=1.0), every=0)


class TestClipGradNorm:
    def test_clips_when_above(self):
        p = Tensor(np.array([0.0, 0.0]), requires_grad=True)
        p.grad = np.array([3.0, 4.0])
        norm = clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(norm, 5.0)
        np.testing.assert_allclose(np.linalg.norm(p.grad), 1.0)

    def test_no_clip_when_below(self):
        p = Tensor(np.array([0.0]), requires_grad=True)
        p.grad = np.array([0.5])
        clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(p.grad, [0.5])

    def test_rejects_bad_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=-1.0)
