"""Precision-policy tests: float64 reference vs the float32 fast path.

Covers the resolution rules in :mod:`repro.autodiff.dtypes`, dtype flow
through tensor creation / constants / backward, the float32 pretrained
embedding regression, same-seed init parity, optimizer state dtype, and
float32 "twins" of the fused-GRU / conv1d / trainer equivalence tests at
the bumped tolerance tier (:func:`equivalence_atol`).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import Tensor, equivalence_atol
from repro.autodiff import functional as F
from repro.autodiff.dtypes import (
    canonical_dtype,
    coerce_array,
    default_dtype,
    get_default_dtype,
    resolve_dtype,
    set_default_dtype,
)
from repro.autodiff.nn import Embedding, init
from repro.autodiff.nn.rnn import GRU, GRUCell, gru_reference_forward
from repro.autodiff.optim import Adam
from repro.baselines.common import TrainerConfig, run_classification_epoch, build_optimizer
from repro.models import MLPClassifier, MLPConfig, NERTaggerConfig, TextCNNConfig

F32 = np.dtype(np.float32)
F64 = np.dtype(np.float64)
F32_ATOL = equivalence_atol("float32")


class TestPolicyBasics:
    def test_default_is_float64(self):
        assert get_default_dtype() == F64

    def test_canonical_dtype_accepts_aliases(self):
        assert canonical_dtype("float32") == F32
        assert canonical_dtype(np.float32) == F32
        assert canonical_dtype(F64) == F64

    @pytest.mark.parametrize("bad", ["float16", "int64", np.int32, "bogus", object])
    def test_canonical_dtype_rejects_non_engine_dtypes(self, bad):
        with pytest.raises(ValueError):
            canonical_dtype(bad)

    def test_set_default_returns_previous_and_context_restores(self):
        previous = set_default_dtype("float32")
        try:
            assert previous == F64
            assert get_default_dtype() == F32
        finally:
            set_default_dtype(previous)
        with default_dtype("float32"):
            assert get_default_dtype() == F32
            with default_dtype("float64"):
                assert get_default_dtype() == F64
            assert get_default_dtype() == F32
        assert get_default_dtype() == F64

    def test_resolve_dtype(self):
        assert resolve_dtype(None) == F64
        assert resolve_dtype("float32") == F32
        with default_dtype("float32"):
            assert resolve_dtype(None) == F32

    def test_equivalence_atol_tiers(self):
        assert equivalence_atol("float64") == 1e-10
        assert equivalence_atol("float32") == 1e-4

    def test_coerce_array_preserves_float_dtypes(self):
        f32 = np.ones((3,), dtype=F32)
        assert coerce_array(f32).dtype == F32
        assert coerce_array(f32) is f32  # no-copy fast path
        assert coerce_array(np.arange(3)).dtype == F64  # ints take the default
        assert coerce_array(f32, dtype="float64").dtype == F64
        copied = coerce_array(f32, copy=True)
        assert copied is not f32 and copied.dtype == F32


class TestTensorCreation:
    def test_float_arrays_keep_their_dtype(self):
        assert Tensor(np.ones((2,), dtype=F32)).dtype == F32
        assert Tensor(np.ones((2,), dtype=F64)).dtype == F64

    def test_scalars_lists_and_ints_take_ambient_default(self):
        assert Tensor(1.5).dtype == F64
        assert Tensor([1, 2, 3]).dtype == F64
        assert Tensor(np.arange(4)).dtype == F64
        with default_dtype("float32"):
            assert Tensor(1.5).dtype == F32
            assert Tensor([1, 2, 3]).dtype == F32
            assert Tensor(np.arange(4)).dtype == F32
            # an explicit float array still keeps its own dtype
            assert Tensor(np.ones((2,), dtype=F64)).dtype == F64

    def test_explicit_dtype_wins(self):
        assert Tensor(np.ones((2,), dtype=F64), dtype="float32").dtype == F32
        assert Tensor.zeros(3, dtype="float32").dtype == F32
        assert Tensor.ones(3, dtype="float32").dtype == F32
        assert Tensor.from_numpy(np.arange(3), dtype="float32").dtype == F32

    def test_constant_cache_is_keyed_by_dtype(self):
        t32 = Tensor(np.ones((3,), dtype=F32), requires_grad=True)
        with default_dtype("float32"):
            assert (t32 * 2.0).dtype == F32
        # the cached float32 constant for 2.0 must not leak into a
        # float64-ambient graph
        t64 = Tensor(np.ones((3,), dtype=F64), requires_grad=True)
        assert (t64 * 2.0).dtype == F64

    def test_mixed_dtype_inputs_promote_to_float64(self):
        a = Tensor(np.ones((3,), dtype=F32), requires_grad=True)
        b = Tensor(np.ones((3,), dtype=F64), requires_grad=True)
        assert (a + b).dtype == F64
        a2 = Tensor(np.ones((2, 3), dtype=F32), requires_grad=True)
        assert (a2 @ Tensor(np.ones((3, 2), dtype=F64))).dtype == F64


class TestBackwardDtype:
    def test_grads_land_in_each_params_own_dtype(self):
        a = Tensor(np.ones((3,), dtype=F32), requires_grad=True)
        b = Tensor(np.ones((3,), dtype=F64), requires_grad=True)
        ((a * b).sum()).backward()
        assert a.grad.dtype == F32  # cast back down at the leaf
        assert b.grad.dtype == F64

    def test_pure_float32_graph_backward_stays_float32(self):
        with default_dtype("float32"):
            w = Tensor(np.ones((4, 3), dtype=F32), requires_grad=True)
            x = Tensor(np.full((2, 4), 0.5, dtype=F32))
            loss = F.log_softmax(x @ w, axis=-1).sum() * (1.0 / 2.0)
            loss.backward()
        assert loss.dtype == F32
        assert w.grad.dtype == F32


class TestEmbeddingDtypeRegression:
    """Satellite: float32 pretrained matrices must not silently double."""

    def test_float32_pretrained_is_not_doubled(self):
        pretrained = np.random.default_rng(0).normal(size=(20, 8)).astype(F32)
        layer = Embedding(20, 8, pretrained=pretrained)
        assert layer.weight.data.dtype == F32
        assert layer.weight.data.nbytes == pretrained.nbytes  # not 2x
        np.testing.assert_array_equal(layer.weight.data, pretrained)

    def test_float64_pretrained_stays_float64(self):
        pretrained = np.random.default_rng(0).normal(size=(5, 4))
        layer = Embedding(5, 4, pretrained=pretrained)
        assert layer.weight.data.dtype == F64

    def test_explicit_dtype_overrides_pretrained(self):
        pretrained = np.random.default_rng(0).normal(size=(5, 4))
        layer = Embedding(5, 4, pretrained=pretrained, dtype="float32")
        assert layer.weight.data.dtype == F32
        np.testing.assert_array_equal(layer.weight.data, pretrained.astype(F32))

    def test_pretrained_is_copied_not_aliased(self):
        pretrained = np.zeros((3, 2), dtype=F32)
        layer = Embedding(3, 2, pretrained=pretrained)
        layer.weight.data[0, 0] = 1.0
        assert pretrained[0, 0] == 0.0


class TestInitParity:
    """Same seed, different dtype → float32 params are rounded float64 draws."""

    def test_initializers_draw_then_cast(self):
        for name, call in [
            ("glorot_uniform", lambda rng, dt: init.glorot_uniform(rng, 6, 5, dtype=dt)),
            ("glorot_normal", lambda rng, dt: init.glorot_normal(rng, 6, 5, dtype=dt)),
            ("uniform", lambda rng, dt: init.uniform(rng, (4, 3), dtype=dt)),
            ("normal", lambda rng, dt: init.normal(rng, (4, 3), dtype=dt)),
            ("orthogonal", lambda rng, dt: init.orthogonal(rng, (5, 5), dtype=dt)),
        ]:
            ref = call(np.random.default_rng(11), "float64")
            fast = call(np.random.default_rng(11), "float32")
            assert fast.dtype == F32, name
            np.testing.assert_array_equal(fast, ref.astype(F32), err_msg=name)

    def test_gru_same_seed_cross_dtype_parity(self):
        ref = GRU(4, 3, np.random.default_rng(5))
        fast = GRU(4, 3, np.random.default_rng(5), dtype="float32")
        assert fast.w_h.data.dtype == F32
        np.testing.assert_array_equal(fast.w_x.data, ref.w_x.data.astype(F32))
        np.testing.assert_array_equal(fast.w_h.data, ref.w_h.data.astype(F32))


class TestOptimizerStateDtype:
    def test_adam_state_inherits_param_dtype(self):
        p = Tensor(np.ones((3,), dtype=F32), requires_grad=True)
        optimizer = Adam([p], lr=1e-2)
        assert optimizer._m[0].dtype == F32
        assert optimizer._v[0].dtype == F32
        (p * p).sum().backward()
        optimizer.step()
        assert p.data.dtype == F32
        assert p.grad.dtype == F32


class TestConfigPlumbing:
    def test_trainer_config_validates_dtype(self):
        assert TrainerConfig(dtype="float32").dtype == "float32"
        assert TrainerConfig().dtype == "float64"
        with pytest.raises(ValueError):
            TrainerConfig(dtype="float16")

    def test_model_configs_validate_dtype(self):
        assert TextCNNConfig(dtype=np.float32).dtype == "float32"
        assert NERTaggerConfig(dtype="float32").dtype == "float32"
        assert MLPConfig(dtype="float32").dtype == "float32"
        for bad in ("int32", "float128"):
            with pytest.raises(ValueError):
                TextCNNConfig(dtype=bad)

    def test_mlp_from_config_builds_at_configured_dtype(self):
        embeddings = np.random.default_rng(0).normal(size=(10, 4))
        model = MLPClassifier.from_config(
            embeddings, MLPConfig(num_classes=3, hidden=8, dtype="float32"),
            np.random.default_rng(1),
        )
        assert model.embedding.weight.data.dtype == F32
        assert model.output.weight.data.dtype == F32
        logits = model.logits(np.array([[1, 2, 0]]), np.array([2]))
        assert logits.dtype == F32


def _toy_classification(dtype: str):
    """Same-seed float twin setup: model + data for one training epoch."""
    rng = np.random.default_rng(3)
    embeddings = rng.normal(size=(12, 6))
    tokens = rng.integers(0, 12, size=(16, 5))
    lengths = rng.integers(1, 6, size=16)
    labels = rng.integers(0, 3, size=16)
    targets = np.eye(3)[labels]
    model = MLPClassifier(embeddings, 3, 8, np.random.default_rng(7), dtype=dtype)
    config = TrainerConfig(
        epochs=1, batch_size=4, optimizer="sgd", learning_rate=0.1,
        lr_decay_every=None, grad_clip=None, dtype=dtype,
    )
    optimizer, _ = build_optimizer(model.parameters(), config)
    return model, optimizer, tokens, lengths, targets, config


class TestFloat32Twins:
    """Float32 re-runs of the core equivalence tests at the bumped atol."""

    def test_fused_gru_matches_reference_float32(self):
        gru = GRU(6, 5, np.random.default_rng(42), dtype="float32")
        cell = GRUCell(6, 5, np.random.default_rng(42), dtype="float32")
        rng = np.random.default_rng(1)
        x = rng.normal(size=(4, 9, 6)).astype(F32)
        lengths = np.array([9, 2, 7, 1])
        mask = np.arange(9)[None, :] < lengths[:, None]

        x_fused = Tensor(x, requires_grad=True)
        fused = gru(x_fused, mask=mask)
        assert fused.dtype == F32
        x_ref = Tensor(x, requires_grad=True)
        reference = gru_reference_forward(cell, x_ref, mask=mask)
        assert reference.dtype == F32
        np.testing.assert_allclose(
            fused.numpy(), reference.numpy(), atol=F32_ATOL, rtol=0
        )

        (fused**2).sum().backward()
        (reference**2).sum().backward()
        assert x_fused.grad.dtype == F32
        np.testing.assert_allclose(x_fused.grad, x_ref.grad, atol=F32_ATOL, rtol=0)
        for fused_param, gate_params in [
            (gru.w_x, [cell.w_xr, cell.w_xz, cell.w_xn]),
            (gru.w_h, [cell.w_hr, cell.w_hz, cell.w_hn]),
        ]:
            stacked = np.concatenate([p.grad for p in gate_params], axis=1)
            assert fused_param.grad.dtype == F32
            np.testing.assert_allclose(fused_param.grad, stacked, atol=F32_ATOL, rtol=0)

    @pytest.mark.parametrize("pad", ["valid", "same"])
    def test_conv1d_variants_agree_float32(self, pad):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(3, 8, 4)).astype(F32)
        w = rng.normal(size=(3 * 4, 5)).astype(F32)
        b = rng.normal(size=(5,)).astype(F32)
        results = {}
        for variant in ("im2col", "width_loop"):
            xt = Tensor(x, requires_grad=True)
            wt = Tensor(w, requires_grad=True)
            bt = Tensor(b, requires_grad=True)
            out = F.conv1d_seq(xt, wt, bt, width=3, pad=pad, variant=variant)
            assert out.dtype == F32
            (out**2).sum().backward()
            assert xt.grad.dtype == F32 and wt.grad.dtype == F32
            results[variant] = (out.numpy(), xt.grad, wt.grad, bt.grad)
        for a, b_ in zip(results["im2col"], results["width_loop"]):
            np.testing.assert_allclose(a, b_, atol=F32_ATOL, rtol=0)

    def test_trainer_epoch_float32_twin_matches_reference(self):
        ref_model, ref_opt, tokens, lengths, targets, ref_cfg = _toy_classification("float64")
        fast_model, fast_opt, _, _, _, fast_cfg = _toy_classification("float32")
        loss64 = run_classification_epoch(
            ref_model, ref_opt, tokens, lengths, targets, np.random.default_rng(9), ref_cfg
        )
        loss32 = run_classification_epoch(
            fast_model, fast_opt, tokens, lengths, targets, np.random.default_rng(9), fast_cfg
        )
        assert np.isfinite(loss32)
        assert abs(loss64 - loss32) < 1e-3
        for p64, p32 in zip(ref_model.parameters(), fast_model.parameters()):
            assert p32.data.dtype == F32
            np.testing.assert_allclose(
                p32.data, p64.data.astype(F32), atol=F32_ATOL, rtol=1e-3
            )
