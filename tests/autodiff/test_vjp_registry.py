"""Meta-tests for the VJP registry.

Every primitive registered in :mod:`repro.autodiff.vjps` must appear in
``GRADCHECK_CASES`` below — a small scalar-loss graph exercising that
primitive, checked against central differences at float64. The sweep is
exhaustive by construction: a new ``defvjp``/``defvjp_fused`` call without
a matching case fails ``test_every_primitive_has_a_gradcheck_case``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.autodiff import Tensor, vjps
from repro.autodiff import functional as F

from .gradcheck import assert_grad_matches

RNG_SEED = 20240807


def _leaf(rng: np.random.Generator, *shape: int) -> Tensor:
    return Tensor(rng.normal(0.0, 1.0, size=shape), requires_grad=True)


# primitive name -> builder returning (loss_fn, parameters). Each builder
# creates fresh leaves so cases are independent; the loss closes over them
# so central differences can perturb the same arrays the tape saw.
GRADCHECK_CASES = {}


def case(name):
    def register(builder):
        assert name not in GRADCHECK_CASES, f"duplicate case for {name}"
        GRADCHECK_CASES[name] = builder
        return builder

    return register


@case("add")
def _add(rng):
    a, b = _leaf(rng, 3, 4), _leaf(rng, 3, 4)
    return lambda: (a + b).sum(), [a, b]


@case("neg")
def _neg(rng):
    a = _leaf(rng, 3, 4)
    return lambda: (-a).sum(), [a]


@case("sub")
def _sub(rng):
    a, b = _leaf(rng, 3, 4), _leaf(rng, 4)
    return lambda: (a - b).sum(), [a, b]


@case("mul")
def _mul(rng):
    a, b = _leaf(rng, 3, 4), _leaf(rng, 3, 4)
    return lambda: (a * b).sum(), [a, b]


@case("div")
def _div(rng):
    a, b = _leaf(rng, 3, 4), _leaf(rng, 3, 4)
    b.data[...] = np.abs(b.data) + 0.5
    return lambda: (a / b).sum(), [a, b]


@case("pow")
def _pow(rng):
    a = _leaf(rng, 3, 4)
    a.data[...] = np.abs(a.data) + 0.5
    # exponent 2 takes the dedicated hot path; 1.7 the general one
    return lambda: ((a**2).sum() + (a**1.7).sum()), [a]


@case("matmul")
def _matmul(rng):
    a, b = _leaf(rng, 3, 4), _leaf(rng, 4, 5)
    return lambda: (a @ b).sum(), [a, b]


@case("exp")
def _exp(rng):
    a = _leaf(rng, 3, 4)
    return lambda: a.exp().sum(), [a]


@case("log")
def _log(rng):
    a = _leaf(rng, 3, 4)
    a.data[...] = np.abs(a.data) + 0.5
    return lambda: a.log().sum(), [a]


@case("tanh")
def _tanh(rng):
    a = _leaf(rng, 3, 4)
    return lambda: a.tanh().sum(), [a]


@case("sigmoid")
def _sigmoid(rng):
    a = _leaf(rng, 3, 4)
    return lambda: a.sigmoid().sum(), [a]


@case("relu")
def _relu(rng):
    a = _leaf(rng, 3, 4)
    a.data[np.abs(a.data) < 0.1] = 0.5  # keep clear of the kink
    return lambda: a.relu().sum(), [a]


@case("clip")
def _clip(rng):
    a = _leaf(rng, 3, 4)
    a.data[np.abs(np.abs(a.data) - 1.0) < 0.1] = 0.0  # clear of boundaries
    return lambda: a.clip(-1.0, 1.0).sum(), [a]


@case("sum")
def _sum(rng):
    a = _leaf(rng, 3, 4, 2)
    return lambda: ((a.sum(axis=1, keepdims=True) * 2.0).sum() + a.sum()), [a]


@case("max")
def _max(rng):
    a = _leaf(rng, 3, 4)
    return lambda: a.max(axis=1).sum(), [a]


@case("reshape")
def _reshape(rng):
    a = _leaf(rng, 3, 4)
    return lambda: (a.reshape(2, 6) * a.reshape(12).reshape(2, 6)).sum(), [a]


@case("transpose")
def _transpose(rng):
    a = _leaf(rng, 3, 4)
    return lambda: (a.transpose(1, 0) @ a).sum(), [a]


@case("getitem")
def _getitem(rng):
    a = _leaf(rng, 4, 5)
    return lambda: (a[1:3, :] * a[0:2, :]).sum(), [a]


@case("getitem_fancy")
def _getitem_fancy(rng):
    a = _leaf(rng, 4, 5)
    idx = np.array([0, 2, 2, 3])
    return lambda: (a[idx] * 1.5).sum(), [a]


@case("unbind")
def _unbind(rng):
    a = _leaf(rng, 3, 4)
    def loss():
        rows = F.unbind(a, axis=0)
        return (rows[0] * rows[2]).sum() + rows[1].sum()
    return loss, [a]


@case("concat")
def _concat(rng):
    a, b = _leaf(rng, 3, 2), _leaf(rng, 3, 4)
    return lambda: (F.concat([a, b], axis=1) ** 2).sum(), [a, b]


@case("stack")
def _stack(rng):
    a, b = _leaf(rng, 3, 4), _leaf(rng, 3, 4)
    return lambda: (F.stack([a, b], axis=0) ** 2).sum(), [a, b]


@case("embedding")
def _embedding(rng):
    w = _leaf(rng, 6, 3)
    idx = np.array([[0, 2, 5], [2, 2, 1]])
    return lambda: (F.embedding(w, idx) ** 2).sum(), [w]


@case("conv1d_im2col")
def _conv1d_im2col(rng):
    x, w, b = _leaf(rng, 2, 6, 3), _leaf(rng, 9, 4), _leaf(rng, 4)
    def loss():
        return (F.conv1d_seq(x, w, b, width=3, pad="same", variant="im2col") ** 2).sum()
    return loss, [x, w, b]


@case("conv1d_width_loop")
def _conv1d_width_loop(rng):
    x, w, b = _leaf(rng, 2, 6, 3), _leaf(rng, 9, 4), _leaf(rng, 4)
    def loss():
        return (F.conv1d_seq(x, w, b, width=3, variant="width_loop") ** 2).sum()
    return loss, [x, w, b]


@case("max_over_time")
def _max_over_time(rng):
    x = _leaf(rng, 3, 5, 4)
    mask = np.arange(5)[None, :] < np.array([5, 3, 1])[:, None]
    return lambda: (F.max_over_time(x, mask=mask) ** 2).sum(), [x]


@case("softmax")
def _softmax(rng):
    x = _leaf(rng, 3, 4)
    weights = rng.normal(0.0, 1.0, size=(3, 4))
    return lambda: (F.softmax(x, axis=-1) * Tensor(weights)).sum(), [x]


@case("log_softmax")
def _log_softmax(rng):
    x = _leaf(rng, 3, 4)
    weights = rng.normal(0.0, 1.0, size=(3, 4))
    return lambda: (F.log_softmax(x, axis=-1) * Tensor(weights)).sum(), [x]


@case("dropout")
def _dropout(rng):
    x = _leaf(rng, 4, 5)
    # fixed mask rng per call so the forward is deterministic across the
    # central-difference evaluations
    def loss():
        return (F.dropout(x, 0.4, np.random.default_rng(7), training=True) ** 2).sum()
    return loss, [x]


@case("gru_step")
def _gru_step(rng):
    hidden = 3
    gx, h, w_h = _leaf(rng, 2, 3 * hidden), _leaf(rng, 2, hidden), _leaf(rng, hidden, 3 * hidden)
    mask = np.array([True, False])
    return lambda: (F.gru_step(gx, h, w_h, mask=mask) ** 2).sum(), [gx, h, w_h]


@case("gru_sequence")
def _gru_sequence(rng):
    batch, time, in_dim, hidden = 2, 4, 3, 3
    x, w_h = _leaf(rng, batch, time, in_dim), _leaf(rng, hidden, 3 * hidden)
    w_x, bias = _leaf(rng, in_dim, 3 * hidden), _leaf(rng, 3 * hidden)
    h0 = np.zeros((batch, hidden))
    mask = np.arange(time)[None, :] < np.array([4, 2])[:, None]
    def loss():
        out = F.gru_sequence(x, h0, w_h, mask=mask, w_x=w_x, bias=bias)
        return (out**2).sum()
    return loss, [x, w_h, w_x, bias]


def test_every_primitive_has_a_gradcheck_case():
    registered = vjps.registered_primitives()
    cases = set(GRADCHECK_CASES)
    missing = registered - cases
    assert not missing, (
        f"primitives registered without a gradcheck case: {sorted(missing)} — "
        "add a builder to GRADCHECK_CASES in this file"
    )
    stale = cases - registered
    assert not stale, f"gradcheck cases for unregistered primitives: {sorted(stale)}"


@pytest.mark.parametrize("primitive", sorted(GRADCHECK_CASES))
def test_primitive_gradcheck(primitive):
    rng = np.random.default_rng(RNG_SEED)
    fn, params = GRADCHECK_CASES[primitive](rng)
    assert_grad_matches(fn, params)


def test_duplicate_registration_raises():
    with pytest.raises(ValueError, match="already registered"):
        vjps.defvjp("add", lambda g, ans, a, b: g, lambda g, ans, a, b: g)
    with pytest.raises(ValueError, match="already registered"):
        vjps.defvjp_fused("concat", lambda g, ans, needs: (g,))


def test_unknown_primitive_is_a_hard_error():
    t = Tensor(np.ones((2, 2)), requires_grad=True)
    out = Tensor._link(np.array(t.data.sum()), (t,), "definitely_not_registered", ())
    with pytest.raises(KeyError, match="definitely_not_registered"):
        out.backward()
