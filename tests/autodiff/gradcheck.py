"""Numerical gradient checking used across the autodiff test suite."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.autodiff import Tensor


def numerical_grad(fn: Callable[[], Tensor], parameter: Tensor, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``parameter``."""
    grad = np.zeros_like(parameter.data)
    flat = parameter.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = fn().item()
        flat[i] = original - eps
        lower = fn().item()
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2.0 * eps)
    return grad


def assert_grad_matches(
    fn: Callable[[], Tensor],
    parameters: list[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> None:
    """Assert autodiff and numerical gradients agree for each parameter."""
    for parameter in parameters:
        parameter.zero_grad()
    loss = fn()
    loss.backward()
    for parameter in parameters:
        assert parameter.grad is not None, f"no gradient for {parameter!r}"
        expected = numerical_grad(fn, parameter)
        np.testing.assert_allclose(
            parameter.grad,
            expected,
            atol=atol,
            rtol=rtol,
            err_msg=f"gradient mismatch for {parameter!r}",
        )
