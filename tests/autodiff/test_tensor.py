"""Unit and property tests for the autodiff Tensor core."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Tensor, is_grad_enabled, no_grad

from .gradcheck import assert_grad_matches


def _rng():
    return np.random.default_rng(0)


class TestBasics:
    def test_wraps_data_as_float64(self):
        t = Tensor([1, 2, 3])
        assert t.data.dtype == np.float64
        assert t.shape == (3,)

    def test_item_requires_scalar(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()
        assert Tensor([[3.5]]).item() == 3.5

    def test_detach_cuts_graph(self):
        a = Tensor([2.0], requires_grad=True)
        b = (a * 3.0).detach()
        c = (b * 2.0).sum()
        c.backward()
        assert a.grad is None

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor([1.0, 2.0]))

    def test_backward_requires_scalar_without_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (a * 2.0).backward()

    def test_backward_grad_shape_mismatch(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = a * 2.0
        with pytest.raises(ValueError):
            out.backward(np.ones((3,)))

    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            b = a * 5.0
        assert is_grad_enabled()
        assert b._op is None

    def test_zeros_ones_constructors(self):
        assert Tensor.zeros(2, 3).shape == (2, 3)
        assert Tensor.ones(4).data.sum() == 4.0


class TestArithmeticGradients:
    def test_add(self):
        a = Tensor(_rng().normal(size=(3, 4)), requires_grad=True)
        b = Tensor(_rng().normal(size=(3, 4)), requires_grad=True)
        assert_grad_matches(lambda: (a + b).sum(), [a, b])

    def test_add_broadcast(self):
        a = Tensor(_rng().normal(size=(3, 4)), requires_grad=True)
        b = Tensor(_rng().normal(size=(4,)), requires_grad=True)
        assert_grad_matches(lambda: (a + b).sum(), [a, b])

    def test_mul_broadcast_scalar(self):
        a = Tensor(_rng().normal(size=(2, 3)), requires_grad=True)
        assert_grad_matches(lambda: (a * 2.5).sum(), [a])

    def test_sub_and_rsub(self):
        a = Tensor(_rng().normal(size=(3,)), requires_grad=True)
        assert_grad_matches(lambda: (5.0 - a).sum(), [a])
        assert_grad_matches(lambda: (a - 5.0).sum(), [a])

    def test_div(self):
        a = Tensor(_rng().normal(size=(3,)) + 3.0, requires_grad=True)
        b = Tensor(_rng().normal(size=(3,)) + 3.0, requires_grad=True)
        assert_grad_matches(lambda: (a / b).sum(), [a, b])

    def test_rdiv(self):
        a = Tensor(_rng().normal(size=(3,)) + 3.0, requires_grad=True)
        assert_grad_matches(lambda: (1.0 / a).sum(), [a])

    def test_pow(self):
        a = Tensor(np.abs(_rng().normal(size=(3,))) + 0.5, requires_grad=True)
        assert_grad_matches(lambda: (a**3).sum(), [a])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_neg(self):
        a = Tensor(_rng().normal(size=(3,)), requires_grad=True)
        assert_grad_matches(lambda: (-a).sum(), [a])

    def test_matmul(self):
        a = Tensor(_rng().normal(size=(3, 4)), requires_grad=True)
        b = Tensor(_rng().normal(size=(4, 2)), requires_grad=True)
        assert_grad_matches(lambda: (a @ b).sum(), [a, b])

    def test_matmul_batched(self):
        a = Tensor(_rng().normal(size=(5, 3, 4)), requires_grad=True)
        b = Tensor(_rng().normal(size=(4, 2)), requires_grad=True)
        assert_grad_matches(lambda: (a @ b).sum(), [a, b])

    def test_matmul_rejects_vectors(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]) @ Tensor([3.0, 4.0])

    def test_diamond_graph_accumulates(self):
        # f(a) = a*a + a*a; df/da = 4a — requires intermediate accumulation.
        a = Tensor([3.0], requires_grad=True)
        b = a * a
        loss = (b + b).sum()
        loss.backward()
        np.testing.assert_allclose(a.grad, [12.0])

    def test_reused_leaf_accumulates(self):
        a = Tensor([2.0], requires_grad=True)
        loss = (a * 3.0 + a * 4.0).sum()
        loss.backward()
        np.testing.assert_allclose(a.grad, [7.0])

    def test_second_backward_does_not_leak_stale_grads(self):
        a = Tensor([1.0], requires_grad=True)
        loss = (a * 2.0).sum()
        loss.backward()
        first = a.grad.copy()
        loss.backward()
        np.testing.assert_allclose(a.grad, 2 * first)


class TestNonlinearities:
    @pytest.mark.parametrize("op", ["exp", "log", "tanh", "sigmoid", "relu"])
    def test_unary_gradients(self, op):
        data = np.abs(_rng().normal(size=(4,))) + 0.5  # positive for log
        a = Tensor(data, requires_grad=True)
        assert_grad_matches(lambda: getattr(a, op)().sum(), [a])

    def test_sigmoid_extreme_values_stable(self):
        a = Tensor([-1000.0, 1000.0])
        out = a.sigmoid().numpy()
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)

    def test_relu_zero_gradient_below_zero(self):
        a = Tensor([-1.0, 2.0], requires_grad=True)
        a.relu().sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])

    def test_clip_gradient_masked(self):
        a = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self):
        a = Tensor(_rng().normal(size=(3, 4)), requires_grad=True)
        assert_grad_matches(lambda: (a.sum(axis=0, keepdims=True) ** 2).sum(), [a])

    def test_sum_multi_axis(self):
        a = Tensor(_rng().normal(size=(2, 3, 4)), requires_grad=True)
        assert_grad_matches(lambda: (a.sum(axis=(0, 2)) ** 2).sum(), [a])

    def test_mean_matches_manual(self):
        a = Tensor(_rng().normal(size=(3, 4)), requires_grad=True)
        assert_grad_matches(lambda: (a.mean(axis=1) ** 2).sum(), [a])

    def test_max_routes_to_single_argmax(self):
        a = Tensor([[1.0, 5.0, 5.0]], requires_grad=True)
        a.max(axis=1).sum().backward()
        # Ties route to the first maximum only.
        np.testing.assert_allclose(a.grad, [[0.0, 1.0, 0.0]])

    def test_max_gradcheck(self):
        a = Tensor(_rng().normal(size=(3, 4)), requires_grad=True)
        assert_grad_matches(lambda: (a.max(axis=1) ** 2).sum(), [a])

    def test_reshape_roundtrip(self):
        a = Tensor(_rng().normal(size=(2, 6)), requires_grad=True)
        assert_grad_matches(lambda: (a.reshape(3, 4) ** 2).sum(), [a])

    def test_transpose_default_reverses(self):
        a = Tensor(_rng().normal(size=(2, 3, 4)), requires_grad=True)
        assert a.transpose().shape == (4, 3, 2)
        assert_grad_matches(lambda: (a.transpose(1, 0, 2) ** 2).sum(), [a])

    def test_getitem_slice(self):
        a = Tensor(_rng().normal(size=(4, 5)), requires_grad=True)
        assert_grad_matches(lambda: (a[1:3, :] ** 2).sum(), [a])

    def test_getitem_fancy_repeated_index_accumulates(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = a[np.array([0, 0, 1])]
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 1.0])


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=4),
    cols=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_sum_gradient_is_ones(rows, cols, seed):
    """d(sum(x))/dx == 1 for every element, any shape."""
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=(rows, cols)), requires_grad=True)
    a.sum().backward()
    np.testing.assert_allclose(a.grad, np.ones((rows, cols)))


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_property_chain_rule_linear(seed):
    """For y = (c*x).sum(), dy/dx == c exactly."""
    rng = np.random.default_rng(seed)
    c = rng.normal(size=(3,))
    x = Tensor(rng.normal(size=(3,)), requires_grad=True)
    (Tensor(c) * x).sum().backward()
    np.testing.assert_allclose(x.grad, c)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_property_softplus_like_composition(seed):
    """Composite expression gradcheck under random inputs."""
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=(3,)), requires_grad=True)

    def fn():
        return ((a.exp() + 1.0).log() * a.sigmoid()).sum()

    assert_grad_matches(fn, [a])
