"""Tests for the neural-network functional ops."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autodiff import Tensor
from repro.autodiff import functional as F

from .gradcheck import assert_grad_matches


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestEmbedding:
    def test_lookup_shape_and_values(self):
        weight = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        idx = np.array([[0, 2], [3, 3]])
        out = F.embedding(weight, idx)
        assert out.shape == (2, 2, 3)
        np.testing.assert_allclose(out.numpy()[0, 1], [6.0, 7.0, 8.0])

    def test_repeated_indices_accumulate_grad(self):
        weight = Tensor(np.zeros((3, 2)), requires_grad=True)
        idx = np.array([1, 1, 2])
        F.embedding(weight, idx).sum().backward()
        np.testing.assert_allclose(weight.grad, [[0, 0], [2, 2], [1, 1]])

    def test_rejects_float_indices(self):
        weight = Tensor(np.zeros((3, 2)))
        with pytest.raises(TypeError):
            F.embedding(weight, np.array([0.5]))

    def test_gradcheck(self):
        weight = Tensor(_rng().normal(size=(5, 3)), requires_grad=True)
        idx = np.array([[0, 4, 2]])
        assert_grad_matches(lambda: (F.embedding(weight, idx) ** 2).sum(), [weight])


class TestConv1dSeq:
    def test_output_shape_valid(self):
        rng = _rng()
        x = Tensor(rng.normal(size=(2, 7, 4)))
        w = Tensor(rng.normal(size=(3 * 4, 6)))
        b = Tensor(np.zeros(6))
        out = F.conv1d_seq(x, w, b, width=3)
        assert out.shape == (2, 5, 6)

    def test_output_shape_same(self):
        rng = _rng()
        x = Tensor(rng.normal(size=(2, 7, 4)))
        w = Tensor(rng.normal(size=(5 * 4, 6)))
        out = F.conv1d_seq(x, w, None, width=5, pad="same")
        assert out.shape == (2, 7, 6)

    def test_matches_naive_convolution(self):
        rng = _rng()
        x = rng.normal(size=(1, 6, 2))
        w = rng.normal(size=(3 * 2, 4))
        out = F.conv1d_seq(Tensor(x), Tensor(w), None, width=3).numpy()
        for t in range(4):
            window = x[0, t : t + 3, :].reshape(-1)
            np.testing.assert_allclose(out[0, t], window @ w, atol=1e-12)

    def test_rejects_short_sequence(self):
        x = Tensor(np.zeros((1, 2, 3)))
        w = Tensor(np.zeros((5 * 3, 1)))
        with pytest.raises(ValueError):
            F.conv1d_seq(x, w, None, width=5)

    def test_rejects_bad_pad(self):
        x = Tensor(np.zeros((1, 5, 3)))
        w = Tensor(np.zeros((3 * 3, 1)))
        with pytest.raises(ValueError):
            F.conv1d_seq(x, w, None, width=3, pad="reflect")

    def test_rejects_weight_shape_mismatch(self):
        x = Tensor(np.zeros((1, 5, 3)))
        w = Tensor(np.zeros((7, 1)))
        with pytest.raises(ValueError):
            F.conv1d_seq(x, w, None, width=3)

    @pytest.mark.parametrize("pad", ["valid", "same"])
    def test_gradcheck(self, pad):
        rng = _rng()
        x = Tensor(rng.normal(size=(2, 6, 3)), requires_grad=True)
        w = Tensor(rng.normal(size=(3 * 3, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(2,)), requires_grad=True)
        assert_grad_matches(
            lambda: (F.conv1d_seq(x, w, b, width=3, pad=pad) ** 2).sum(), [x, w, b]
        )


class TestMaxOverTime:
    def test_basic(self):
        x = Tensor([[[1.0, 9.0], [5.0, 2.0], [3.0, 3.0]]])
        out = F.max_over_time(x)
        np.testing.assert_allclose(out.numpy(), [[5.0, 9.0]])

    def test_mask_excludes_padding(self):
        x = Tensor([[[1.0], [100.0]]])
        mask = np.array([[True, False]])
        out = F.max_over_time(x, mask)
        np.testing.assert_allclose(out.numpy(), [[1.0]])

    def test_mask_all_invalid_raises(self):
        x = Tensor(np.zeros((1, 2, 1)))
        with pytest.raises(ValueError):
            F.max_over_time(x, np.array([[False, False]]))

    def test_mask_shape_mismatch(self):
        x = Tensor(np.zeros((1, 2, 1)))
        with pytest.raises(ValueError):
            F.max_over_time(x, np.zeros((2, 2), dtype=bool))

    def test_gradcheck(self):
        rng = _rng()
        x = Tensor(rng.normal(size=(2, 5, 3)), requires_grad=True)
        mask = np.array([[1, 1, 1, 0, 0], [1, 1, 1, 1, 1]], dtype=bool)
        assert_grad_matches(lambda: (F.max_over_time(x, mask) ** 2).sum(), [x])


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(_rng().normal(size=(4, 5)))
        out = F.softmax(x).numpy()
        np.testing.assert_allclose(out.sum(axis=1), np.ones(4))
        assert (out > 0).all()

    def test_shift_invariance(self):
        x = _rng().normal(size=(3, 4))
        a = F.softmax(Tensor(x)).numpy()
        b = F.softmax(Tensor(x + 1000.0)).numpy()
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_log_softmax_consistent_with_softmax(self):
        x = Tensor(_rng().normal(size=(3, 4)))
        np.testing.assert_allclose(
            np.exp(F.log_softmax(x).numpy()), F.softmax(x).numpy(), atol=1e-12
        )

    def test_softmax_gradcheck(self):
        x = Tensor(_rng().normal(size=(3, 4)), requires_grad=True)
        assert_grad_matches(lambda: (F.softmax(x) ** 2).sum(), [x])

    def test_log_softmax_gradcheck(self):
        x = Tensor(_rng().normal(size=(3, 4)), requires_grad=True)
        assert_grad_matches(lambda: (F.log_softmax(x) ** 2).sum(), [x])

    def test_softmax_axis0(self):
        x = Tensor(_rng().normal(size=(3, 4)))
        np.testing.assert_allclose(F.softmax(x, axis=0).numpy().sum(axis=0), np.ones(4))


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = Tensor(_rng().normal(size=(10, 10)))
        out = F.dropout(x, 0.5, _rng(), training=False)
        assert out is x

    def test_zero_rate_is_identity(self):
        x = Tensor(_rng().normal(size=(4,)))
        assert F.dropout(x, 0.0, _rng(), training=True) is x

    def test_training_scales_kept_units(self):
        x = Tensor(np.ones((2000,)))
        out = F.dropout(x, 0.5, _rng(), training=True).numpy()
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)
        # Keep-rate concentration: ~50% kept.
        assert 0.4 < (out != 0).mean() < 0.6

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor([1.0]), 1.0, _rng(), training=True)

    def test_gradient_uses_same_mask(self):
        x = Tensor(np.ones((100,)), requires_grad=True)
        out = F.dropout(x, 0.5, _rng(7), training=True)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, out.numpy())


class TestJoins:
    def test_concat_values_and_grads(self):
        a = Tensor(_rng().normal(size=(2, 3)), requires_grad=True)
        b = Tensor(_rng().normal(size=(2, 2)), requires_grad=True)
        assert F.concat([a, b], axis=1).shape == (2, 5)
        assert_grad_matches(lambda: (F.concat([a, b], axis=1) ** 2).sum(), [a, b])

    def test_concat_empty_raises(self):
        with pytest.raises(ValueError):
            F.concat([])

    def test_stack_values_and_grads(self):
        a = Tensor(_rng().normal(size=(2, 3)), requires_grad=True)
        b = Tensor(_rng().normal(size=(2, 3)), requires_grad=True)
        assert F.stack([a, b], axis=1).shape == (2, 2, 3)
        assert_grad_matches(lambda: (F.stack([a, b], axis=1) ** 2).sum(), [a, b])

    def test_stack_empty_raises(self):
        with pytest.raises(ValueError):
            F.stack([])


class TestSoftCrossEntropy:
    def test_matches_manual_value(self):
        logits = Tensor(np.array([[2.0, 0.0], [0.0, 1.0]]))
        target = np.array([[1.0, 0.0], [0.5, 0.5]])
        loss = F.cross_entropy_soft(logits, target).item()
        logp = F.log_softmax(logits).numpy()
        expected = -(target * logp).sum(axis=1).mean()
        np.testing.assert_allclose(loss, expected, atol=1e-12)

    def test_weighted_version(self):
        logits = Tensor(np.zeros((2, 2)))
        target = np.array([[1.0, 0.0], [1.0, 0.0]])
        unweighted = F.cross_entropy_soft(logits, target).item()
        weighted = F.cross_entropy_soft(logits, target, weights=np.array([2.0, 0.0])).item()
        np.testing.assert_allclose(weighted, unweighted)  # symmetric case

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            F.cross_entropy_soft(Tensor(np.zeros((2, 3))), np.zeros((2, 2)))
        with pytest.raises(ValueError):
            F.cross_entropy_soft(
                Tensor(np.zeros((2, 3))), np.zeros((2, 3)), weights=np.zeros(3)
            )

    def test_gradcheck(self):
        rng = _rng()
        logits = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        target = np.abs(rng.normal(size=(3, 4)))
        target /= target.sum(axis=1, keepdims=True)
        weights = np.array([1.0, 2.0, 3.0])
        assert_grad_matches(
            lambda: F.cross_entropy_soft(logits, target, weights=weights), [logits]
        )

    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[50.0, 0.0]]))
        target = np.array([[1.0, 0.0]])
        assert F.cross_entropy_soft(logits, target).item() < 1e-8


class TestSequenceSoftCrossEntropy:
    def test_padding_excluded(self):
        logits = Tensor(np.zeros((1, 3, 2)))
        target = np.array([[[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]]])
        full = F.sequence_cross_entropy_soft(
            logits, target, np.array([[1, 1, 1]])
        ).item()
        masked = F.sequence_cross_entropy_soft(
            logits, target, np.array([[1, 1, 0]])
        ).item()
        np.testing.assert_allclose(full, masked)  # uniform logits: same per-token CE
        # but gradients at masked positions must be zero:
        logits2 = Tensor(np.zeros((1, 3, 2)), requires_grad=True)
        F.sequence_cross_entropy_soft(logits2, target, np.array([[1, 1, 0]])).backward()
        np.testing.assert_allclose(logits2.grad[0, 2], 0.0)

    def test_shape_validation(self):
        logits = Tensor(np.zeros((1, 3, 2)))
        with pytest.raises(ValueError):
            F.sequence_cross_entropy_soft(logits, np.zeros((1, 3, 3)), np.ones((1, 3)))
        with pytest.raises(ValueError):
            F.sequence_cross_entropy_soft(logits, np.zeros((1, 3, 2)), np.ones((1, 2)))
        with pytest.raises(ValueError):
            F.sequence_cross_entropy_soft(
                logits, np.zeros((1, 3, 2)), np.ones((1, 3)), weights=np.ones((1, 2))
            )

    def test_gradcheck(self):
        rng = _rng()
        logits = Tensor(rng.normal(size=(2, 4, 3)), requires_grad=True)
        target = np.abs(rng.normal(size=(2, 4, 3)))
        target /= target.sum(axis=-1, keepdims=True)
        mask = np.array([[1, 1, 1, 0], [1, 1, 0, 0]])
        weights = np.abs(rng.normal(size=(2, 4))) + 0.5
        assert_grad_matches(
            lambda: F.sequence_cross_entropy_soft(logits, target, mask, weights=weights),
            [logits],
        )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_property_softmax_is_distribution(seed):
    rng = np.random.default_rng(seed)
    out = F.softmax(Tensor(rng.normal(size=(5, 7)) * 10)).numpy()
    assert np.all(out >= 0)
    np.testing.assert_allclose(out.sum(axis=1), np.ones(5), atol=1e-12)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_property_cross_entropy_lower_bounded_by_entropy(seed):
    """CE(q, p) >= H(q), with equality iff p == q."""
    rng = np.random.default_rng(seed)
    target = np.abs(rng.normal(size=(4, 3))) + 1e-3
    target /= target.sum(axis=1, keepdims=True)
    logits = Tensor(rng.normal(size=(4, 3)))
    ce = F.cross_entropy_soft(logits, target).item()
    entropy = float(-(target * np.log(target)).sum(axis=1).mean())
    assert ce >= entropy - 1e-9
