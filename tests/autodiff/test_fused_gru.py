"""Equivalence tests: fused/packed GRU vs. the per-gate reference cell.

The fused implementation (batched input projection + single-tape-node
packed time loop) must reproduce the original per-gate element-at-a-time
loop bit-for-tolerance (atol 1e-10): outputs and every gradient, with and
without padding masks, on prefix and non-prefix masks.
"""

import numpy as np
import pytest

from repro.autodiff import Tensor, functional as F, tape_node_count
from repro.autodiff.nn.rnn import GRU, GRUCell, gru_reference_forward

from .gradcheck import assert_grad_matches

ATOL = 1e-10


def _rng(seed=0):
    return np.random.default_rng(seed)


def _pair(in_dim=6, hidden=5, seed=42):
    """Same-seed fused GRU and per-gate cell — identical weights."""
    gru = GRU(in_dim, hidden, np.random.default_rng(seed))
    cell = GRUCell(in_dim, hidden, np.random.default_rng(seed))
    return gru, cell


class TestSeedParity:
    def test_same_seed_weights_match_per_gate_blocks(self):
        gru, cell = _pair()
        H = gru.hidden_dim
        for index, gate in enumerate("rzn"):
            np.testing.assert_array_equal(
                gru.w_x.data[:, index * H : (index + 1) * H],
                getattr(cell, f"w_x{gate}").data,
            )
            np.testing.assert_array_equal(
                gru.w_h.data[:, index * H : (index + 1) * H],
                getattr(cell, f"w_h{gate}").data,
            )

    def test_gate_cell_roundtrip(self):
        gru, cell = _pair()
        rebuilt = gru.gate_cell()
        np.testing.assert_array_equal(rebuilt.w_xn.data, cell.w_xn.data)
        np.testing.assert_array_equal(rebuilt.w_hz.data, cell.w_hz.data)


class TestForwardEquivalence:
    @pytest.mark.parametrize("masked", [False, True])
    def test_outputs_match_reference(self, masked):
        gru, cell = _pair()
        rng = _rng(1)
        x = rng.normal(size=(4, 9, 6))
        mask = None
        if masked:
            lengths = np.array([9, 2, 7, 1])
            mask = np.arange(9)[None, :] < lengths[:, None]
        fused = gru(Tensor(x), mask=mask).numpy()
        reference = gru_reference_forward(cell, Tensor(x), mask=mask).numpy()
        np.testing.assert_allclose(fused, reference, atol=ATOL, rtol=0)

    def test_non_prefix_mask_falls_back_and_matches(self):
        gru, cell = _pair()
        rng = _rng(2)
        x = rng.normal(size=(3, 6, 6))
        mask = np.array(  # holes in the middle: not a prefix mask
            [[1, 0, 1, 1, 0, 1], [1, 1, 1, 0, 0, 0], [0, 1, 0, 1, 0, 1]]
        )
        fused = gru(Tensor(x), mask=mask).numpy()
        reference = gru_reference_forward(cell, Tensor(x), mask=mask).numpy()
        np.testing.assert_allclose(fused, reference, atol=ATOL, rtol=0)

    def test_soft_fractional_mask_uses_weighted_carry(self):
        # Fractional mask values must not be collapsed to booleans by the
        # packed-sequence fast path; they take the m-weighted blend.
        gru, cell = _pair()
        rng = _rng(12)
        x = rng.normal(size=(2, 6, 6))
        soft = np.array([[1, 1, 0.5, 0, 0, 0], [1, 0.25, 0, 0, 0, 0]])
        fused = gru(Tensor(x), mask=soft).numpy()
        reference = gru_reference_forward(cell, Tensor(x), mask=soft).numpy()
        np.testing.assert_allclose(fused, reference, atol=ATOL, rtol=0)

    def test_padding_invariance_exact(self):
        gru, _ = _pair()
        rng = _rng(3)
        x_short = rng.normal(size=(1, 4, 6))
        x_long = np.concatenate([x_short, rng.normal(size=(1, 3, 6))], axis=1)
        out_short = gru(Tensor(x_short), mask=np.ones((1, 4))).numpy()
        out_long = gru(Tensor(x_long), mask=np.array([[1, 1, 1, 1, 0, 0, 0]])).numpy()
        np.testing.assert_array_equal(out_short[0, 3], out_long[0, 3])
        np.testing.assert_array_equal(out_long[0, 3], out_long[0, 6])  # frozen


class TestGradientEquivalence:
    @pytest.mark.parametrize("masked", [False, True])
    def test_all_gradients_match_reference(self, masked):
        gru, cell = _pair(in_dim=5, hidden=4, seed=7)
        H = gru.hidden_dim
        rng = _rng(4)
        x = rng.normal(size=(3, 8, 5))
        mask = None
        if masked:
            mask = np.arange(8)[None, :] < np.array([8, 3, 5])[:, None]

        x_fused = Tensor(x, requires_grad=True)
        (gru(x_fused, mask=mask) ** 2).sum().backward()

        x_ref = Tensor(x, requires_grad=True)
        (gru_reference_forward(cell, x_ref, mask=mask) ** 2).sum().backward()

        np.testing.assert_allclose(x_fused.grad, x_ref.grad, atol=ATOL, rtol=0)
        for index, gate in enumerate("rzn"):
            cols = slice(index * H, (index + 1) * H)
            np.testing.assert_allclose(
                gru.w_x.grad[:, cols], getattr(cell, f"w_x{gate}").grad, atol=ATOL, rtol=0
            )
            np.testing.assert_allclose(
                gru.w_h.grad[:, cols], getattr(cell, f"w_h{gate}").grad, atol=ATOL, rtol=0
            )
            np.testing.assert_allclose(
                gru.bias.grad[cols], getattr(cell, f"b_{gate}").grad, atol=ATOL, rtol=0
            )

    def test_numerical_gradcheck_masked(self):
        gru = GRU(2, 3, _rng(5))
        x = Tensor(_rng(6).normal(size=(2, 4, 2)))
        mask = np.array([[1, 1, 1, 0], [1, 1, 0, 0]])
        assert_grad_matches(
            lambda: (gru(x, mask=mask) ** 2).sum(),
            gru.parameters(),
            atol=1e-4,
            rtol=1e-3,
        )


class TestFusedOps:
    def test_gru_step_matches_cell(self):
        gru, cell = _pair(in_dim=4, hidden=3, seed=11)
        rng = _rng(7)
        x_t = rng.normal(size=(5, 4))
        h = rng.normal(size=(5, 3))
        gx = Tensor(x_t @ gru.w_x.data + gru.bias.data)
        fused = F.gru_step(gx, Tensor(h), gru.w_h).numpy()
        reference = cell(Tensor(x_t), Tensor(h)).numpy()
        np.testing.assert_allclose(fused, reference, atol=ATOL, rtol=0)

    def test_unbind_roundtrip_and_gradient(self):
        x = Tensor(_rng(8).normal(size=(2, 3, 4)), requires_grad=True)
        pieces = F.unbind(x, axis=1)
        assert len(pieces) == 3 and pieces[0].shape == (2, 4)
        total = pieces[0].sum() + (pieces[2] * 2.0).sum()
        total.backward()
        expected = np.zeros((2, 3, 4))
        expected[:, 0] = 1.0
        expected[:, 2] = 2.0
        np.testing.assert_array_equal(x.grad, expected)

    def test_no_grad_builds_no_nodes(self):
        from repro.autodiff import no_grad

        gru, _ = _pair()
        x = _rng(9).normal(size=(2, 5, 6))
        before = tape_node_count()
        with no_grad():
            gru(Tensor(x), mask=np.ones((2, 5)))
        assert tape_node_count() == before
