"""Property-based checks for the two ``conv1d_seq`` execution variants.

The width-loop variant accumulates ``width`` shifted ``(B, T_out, D) @
(D, F)`` matmuls instead of materializing the ``(B, T_out, width·D)``
im2col window buffer. Same tape node, same backward contract, same math —
but *not* bit-for-bit: splitting the shared ``width·D`` contraction into
per-offset GEMMs changes BLAS's reduction order, so the two variants agree
only to float64 round-off (measured ≤ ~1e-13 at paper scale against values
of order ``sqrt(width·D)``). The forward/backward cross-checks below pin
that agreement at atol/rtol 1e-11, and the width-loop path is additionally
checked against central-difference numerics (``gradcheck.py``) so the pin
is to ground truth, not just to the sibling implementation.
"""

import numpy as np
import pytest

from repro.autodiff import Tensor, functional as F
from repro.autodiff.functional import (
    CONV1D_VARIANTS,
    IM2COL_ELEMENT_BUDGET,
    _select_conv1d_variant,
)

from .gradcheck import assert_grad_matches

ATOL = RTOL = 1e-11


def random_config(rng):
    """One random (shapes, width, pad, bias?) configuration."""
    width = int(rng.integers(1, 6))
    pad = "valid" if rng.random() < 0.5 else "same"
    batch = int(rng.integers(1, 5))
    dim = int(rng.integers(1, 8))
    feats = int(rng.integers(1, 6))
    low = width if pad == "valid" else 1
    time = int(rng.integers(low, low + 9))
    return batch, time, dim, feats, width, pad, bool(rng.random() < 0.7)


def run_variant(variant, data, weight, bias, width, pad):
    """Forward + backward through a squared loss; returns (out, grads)."""
    x = Tensor(data, requires_grad=True)
    w = Tensor(weight, requires_grad=True)
    b = Tensor(bias, requires_grad=True) if bias is not None else None
    out = F.conv1d_seq(x, w, b, width=width, pad=pad, variant=variant)
    (out**2).sum().backward()
    grads = [x.grad, w.grad] + ([b.grad] if b is not None else [])
    return out.numpy(), grads


class TestVariantEquivalence:
    """Randomized forward/backward agreement between the two variants."""

    def test_random_configs_agree(self):
        rng = np.random.default_rng(20260729)
        for _ in range(40):
            batch, time, dim, feats, width, pad, with_bias = random_config(rng)
            data = rng.normal(size=(batch, time, dim))
            weight = rng.normal(size=(width * dim, feats))
            bias = rng.normal(size=(feats,)) if with_bias else None
            context = f"B={batch} T={time} D={dim} F={feats} w={width} pad={pad} bias={with_bias}"
            out_im2col, grads_im2col = run_variant("im2col", data, weight, bias, width, pad)
            out_loop, grads_loop = run_variant("width_loop", data, weight, bias, width, pad)
            np.testing.assert_allclose(
                out_loop, out_im2col, atol=ATOL, rtol=RTOL, err_msg=f"forward: {context}"
            )
            for name, new, old in zip(("x", "weight", "bias"), grads_loop, grads_im2col):
                np.testing.assert_allclose(
                    new, old, atol=ATOL, rtol=RTOL, err_msg=f"{name} grad: {context}"
                )

    def test_width_one_is_exactly_a_matmul_for_both(self):
        # width == 1 has a single offset: no reduction split, so the two
        # variants really are bit-identical there.
        rng = np.random.default_rng(0)
        data = rng.normal(size=(3, 7, 5))
        weight = rng.normal(size=(5, 4))
        out_im2col, _ = run_variant("im2col", data, weight, None, 1, "valid")
        out_loop, _ = run_variant("width_loop", data, weight, None, 1, "valid")
        np.testing.assert_array_equal(out_loop, out_im2col)


class TestWidthLoopNumerics:
    """The new path is pinned to central-difference ground truth too."""

    @pytest.mark.parametrize("pad", ["valid", "same"])
    @pytest.mark.parametrize("width", [1, 2, 3, 5])
    def test_gradcheck(self, pad, width):
        rng = np.random.default_rng(width * 7 + (pad == "same"))
        time = max(width, 6)
        x = Tensor(rng.normal(size=(2, time, 3)), requires_grad=True)
        w = Tensor(rng.normal(size=(width * 3, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(2,)), requires_grad=True)
        assert_grad_matches(
            lambda: (F.conv1d_seq(x, w, b, width=width, pad=pad, variant="width_loop") ** 2).sum(),
            [x, w, b],
        )

    def test_no_grad_fast_path(self):
        rng = np.random.default_rng(1)
        x = Tensor(rng.normal(size=(2, 6, 3)))
        w = Tensor(rng.normal(size=(9, 2)))
        out = F.conv1d_seq(x, w, None, width=3, variant="width_loop")
        assert out._op is None or not out._tracked


class TestAutoSelection:
    def test_small_problems_pick_im2col(self):
        assert _select_conv1d_variant(2, 6, 3, 4) == "im2col"

    def test_width_one_always_im2col(self):
        assert _select_conv1d_variant(10**6, 10**6, 1, 10**6) == "im2col"

    def test_paper_scale_picks_width_loop(self):
        # Tagger/Kim-CNN scale: B=32, T=50, D=300, width=5.
        assert _select_conv1d_variant(32, 46, 5, 300) == "width_loop"
        assert 32 * 46 * 5 * 300 > IM2COL_ELEMENT_BUDGET

    def test_paper_scale_never_materializes_windows(self, monkeypatch):
        """auto at paper scale must not touch the im2col window builder —
        forward *or* backward."""

        def boom(*args, **kwargs):
            raise AssertionError("im2col window buffer materialized")

        monkeypatch.setattr(F, "_sliding_windows", boom)
        rng = np.random.default_rng(2)
        x = Tensor(rng.normal(size=(32, 50, 300)), requires_grad=True)
        w = Tensor(rng.normal(size=(5 * 300, 16)), requires_grad=True)
        b = Tensor(np.zeros(16), requires_grad=True)
        out = F.conv1d_seq(x, w, b, width=5, pad="same")
        (out**2).sum().backward()
        assert x.grad is not None and w.grad is not None

    def test_bad_variant_rejected(self):
        x = Tensor(np.zeros((1, 5, 3)))
        w = Tensor(np.zeros((9, 1)))
        with pytest.raises(ValueError, match="variant"):
            F.conv1d_seq(x, w, None, width=3, variant="fft")
        assert set(CONV1D_VARIANTS) == {"auto", "im2col", "width_loop"}


class TestLayerAndModelPlumbing:
    def test_conv1dseq_layer_forwards_variant(self):
        from repro.autodiff.nn import Conv1dSeq

        rng = np.random.default_rng(3)
        layer = Conv1dSeq(4, 3, 2, rng, variant="width_loop")
        out = layer(Tensor(rng.normal(size=(2, 6, 4))))
        assert out.shape == (2, 5, 3)
        with pytest.raises(ValueError, match="variant"):
            Conv1dSeq(4, 3, 2, rng, variant="fft")

    def test_text_cnn_config_plumbs_variant(self):
        from repro.models import TextCNN, TextCNNConfig

        rng = np.random.default_rng(4)
        embeddings = rng.normal(size=(30, 6))
        config = TextCNNConfig(feature_maps=3, conv_variant="width_loop")
        model = TextCNN(embeddings, config, rng)
        assert all(conv.variant == "width_loop" for conv in model.convs)
        tokens = rng.integers(0, 30, size=(2, 9))
        logits = model.logits(tokens, np.array([9, 6]))
        assert logits.shape == (2, 2)

    def test_ner_tagger_config_plumbs_variant(self):
        from repro.models import NERTagger, NERTaggerConfig

        rng = np.random.default_rng(5)
        embeddings = rng.normal(size=(30, 6))
        config = NERTaggerConfig(conv_features=4, gru_hidden=3, conv_variant="width_loop")
        model = NERTagger(embeddings, config, rng)
        assert model.conv.variant == "width_loop"
        tokens = rng.integers(0, 30, size=(2, 7))
        logits = model.logits(tokens, np.array([7, 4]))
        assert logits.shape == (2, 7, 9)
