"""Tests for the classifier architectures."""

import numpy as np
import pytest

from repro.autodiff import functional as F
from repro.models import (
    BagOfEmbeddingsClassifier,
    MLPClassifier,
    NERTagger,
    NERTaggerConfig,
    TextCNN,
    TextCNNConfig,
)


def _embeddings(vocab=20, dim=8, seed=0):
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(vocab, dim))
    matrix[0] = 0.0
    return matrix


def _small_cnn(num_classes=2, **overrides):
    config = TextCNNConfig(
        num_classes=num_classes, filter_windows=(2, 3), feature_maps=4, **overrides
    )
    return TextCNN(_embeddings(), config, np.random.default_rng(0))


class TestTextCNN:
    def test_logits_shape(self):
        model = _small_cnn()
        tokens = np.array([[2, 3, 4, 5, 0], [6, 7, 8, 9, 10]])
        lengths = np.array([4, 5])
        assert model.logits(tokens, lengths).shape == (2, 2)

    def test_short_sentence_padded_internally(self):
        model = _small_cnn()
        tokens = np.array([[2]])
        lengths = np.array([1])
        out = model.logits(tokens, lengths)
        assert out.shape == (1, 2)
        assert np.isfinite(out.numpy()).all()

    def test_padding_invariance(self):
        model = _small_cnn()
        model.eval()
        short = model.predict_proba(np.array([[2, 3, 4]]), np.array([3]))
        padded = model.predict_proba(np.array([[2, 3, 4, 0, 0, 0]]), np.array([3]))
        np.testing.assert_allclose(short, padded, atol=1e-12)

    def test_predict_proba_rows_sum_one(self):
        model = _small_cnn()
        proba = model.predict_proba(np.array([[2, 3, 4, 5]]), np.array([4]))
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)

    def test_predict_restores_training_mode(self):
        model = _small_cnn()
        model.train()
        model.predict(np.array([[2, 3, 4]]), np.array([3]))
        assert model.training

    def test_static_embeddings_frozen(self):
        model = _small_cnn()
        names = [name for name, _ in model.named_parameters()]
        assert not any("embedding" in name for name in names)

    def test_nonstatic_embeddings_trainable(self):
        config = TextCNNConfig(filter_windows=(2,), feature_maps=3, static_embeddings=False)
        model = TextCNN(_embeddings(), config, np.random.default_rng(0))
        names = [name for name, _ in model.named_parameters()]
        assert any("embedding" in name for name in names)

    def test_max_norm_constrains_columns(self):
        model = _small_cnn()
        model.output.weight.data *= 100.0
        model.apply_max_norm()
        norms = np.linalg.norm(model.output.weight.data, axis=0)
        assert (norms <= model.config.max_norm + 1e-9).all()

    def test_max_norm_disabled(self):
        config = TextCNNConfig(filter_windows=(2,), feature_maps=3, max_norm=0.0)
        model = TextCNN(_embeddings(), config, np.random.default_rng(0))
        model.output.weight.data *= 100.0
        before = model.output.weight.data.copy()
        model.apply_max_norm()
        np.testing.assert_allclose(model.output.weight.data, before)

    def test_gradients_flow_to_all_parameters(self):
        # Dropout off: with rate 0.5 a conv branch can legitimately receive
        # zero gradient when all its pooled features are dropped.
        model = _small_cnn(dropout=0.0)
        tokens = np.array([[2, 3, 4, 5, 6], [7, 8, 9, 10, 11]])
        loss = F.cross_entropy_soft(
            model.logits(tokens, np.array([5, 5])), np.array([[1.0, 0.0], [0.0, 1.0]])
        )
        loss.backward()
        for name, parameter in model.named_parameters():
            assert parameter.grad is not None, name
            assert np.abs(parameter.grad).sum() > 0, name

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TextCNNConfig(filter_windows=())
        with pytest.raises(ValueError):
            TextCNNConfig(filter_windows=(0,))
        with pytest.raises(ValueError):
            TextCNNConfig(feature_maps=0)


def _small_tagger(num_classes=5):
    config = NERTaggerConfig(num_classes=num_classes, conv_width=3, conv_features=6, gru_hidden=4)
    return NERTagger(_embeddings(), config, np.random.default_rng(0))


class TestNERTagger:
    def test_logits_shape(self):
        model = _small_tagger()
        tokens = np.array([[2, 3, 4, 0], [5, 6, 7, 8]])
        lengths = np.array([3, 4])
        assert model.logits(tokens, lengths).shape == (2, 4, 5)

    def test_predict_trims_to_lengths(self):
        model = _small_tagger()
        tokens = np.array([[2, 3, 4, 0], [5, 6, 7, 8]])
        predictions = model.predict(tokens, np.array([3, 4]))
        assert len(predictions[0]) == 3
        assert len(predictions[1]) == 4

    def test_per_token_proba_normalized(self):
        model = _small_tagger()
        proba = model.predict_proba(np.array([[2, 3, 4]]), np.array([3]))
        np.testing.assert_allclose(proba.sum(axis=-1), 1.0)

    def test_gradients_flow(self):
        model = _small_tagger(num_classes=3)
        tokens = np.array([[2, 3, 4, 5]])
        target = np.tile([1.0, 0.0, 0.0], (1, 4, 1))
        loss = F.sequence_cross_entropy_soft(
            model.logits(tokens, np.array([4])), target, np.ones((1, 4))
        )
        loss.backward()
        grads = [parameter.grad for _, parameter in model.named_parameters()]
        assert all(grad is not None for grad in grads)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NERTaggerConfig(conv_width=0)
        with pytest.raises(ValueError):
            NERTaggerConfig(gru_hidden=0)


class TestBagOfEmbeddings:
    def test_logreg_logits_shape(self):
        model = BagOfEmbeddingsClassifier(_embeddings(), 3, np.random.default_rng(0))
        assert model.logits(np.array([[2, 3, 0]]), np.array([2])).shape == (1, 3)

    def test_mean_pooling_ignores_padding(self):
        model = BagOfEmbeddingsClassifier(_embeddings(), 2, np.random.default_rng(0))
        short = model.predict_proba(np.array([[2, 3]]), np.array([2]))
        padded = model.predict_proba(np.array([[2, 3, 0, 0]]), np.array([2]))
        np.testing.assert_allclose(short, padded, atol=1e-12)

    def test_mlp_has_hidden_layer(self):
        model = MLPClassifier(_embeddings(), 2, 7, np.random.default_rng(0))
        names = [name for name, _ in model.named_parameters()]
        assert any("hidden_layer" in name for name in names)

    def test_mlp_trains_on_separable_data(self):
        from repro.autodiff.optim import Adam

        rng = np.random.default_rng(0)
        emb = np.zeros((4, 8))
        emb[2] = 1.0
        emb[3] = -1.0
        model = MLPClassifier(emb, 2, 8, rng)
        tokens = np.array([[2, 2], [3, 3]] * 8)
        lengths = np.full(16, 2)
        labels = np.array([0, 1] * 8)
        target = np.eye(2)[labels]
        optimizer = Adam(model.parameters(), lr=0.05)
        for _ in range(60):
            optimizer.zero_grad()
            loss = F.cross_entropy_soft(model.logits(tokens, lengths), target)
            loss.backward()
            optimizer.step()
        assert (model.predict(tokens, lengths) == labels).all()
