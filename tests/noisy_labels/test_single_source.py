"""Tests for the single-source noisy-label transfer (§VIII)."""

import numpy as np
import pytest
from dataclasses import replace

from repro.baselines import TrainerConfig
from repro.core import LogicLNCLConfig, constant
from repro.eval import accuracy
from repro.logic import ButRule
from repro.models import TextCNN, TextCNNConfig
from repro.noisy_labels import (
    NoisyLabelLogicLNCL,
    as_single_source_crowd,
    corrupt_labels,
    forward_correction_baseline,
)


def _symmetric_transition(K, rate):
    T = np.full((K, K), rate / (K - 1))
    np.fill_diagonal(T, 1.0 - rate)
    return T


class TestCorruptLabels:
    def test_noise_rate_realized(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=5000)
        noisy = corrupt_labels(rng, labels, _symmetric_transition(2, 0.3))
        assert abs((noisy != labels).mean() - 0.3) < 0.03

    def test_zero_noise_is_identity(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 3, size=100)
        noisy = corrupt_labels(rng, labels, np.eye(3))
        np.testing.assert_array_equal(noisy, labels)

    def test_asymmetric_noise_directional(self):
        rng = np.random.default_rng(0)
        labels = np.zeros(3000, dtype=int)
        T = np.array([[0.6, 0.4], [0.0, 1.0]])
        noisy = corrupt_labels(rng, labels, T)
        assert abs((noisy == 1).mean() - 0.4) < 0.04

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            corrupt_labels(rng, np.array([0]), np.array([[0.5, 0.4], [0.5, 0.5]]))
        with pytest.raises(ValueError):
            corrupt_labels(rng, np.array([5]), np.eye(2))


class TestAsSingleSourceCrowd:
    def test_wraps_as_one_annotator(self):
        crowd = as_single_source_crowd(np.array([0, 1, 1]), 2)
        assert crowd.num_annotators == 1
        np.testing.assert_array_equal(crowd.annotations_per_instance(), [1, 1, 1])

    def test_rejects_matrix_input(self):
        with pytest.raises(ValueError):
            as_single_source_crowd(np.zeros((3, 2), dtype=int), 2)


class TestNoisyLabelLogicLNCL:
    def _noisy_train(self, task, rate, seed=0):
        rng = np.random.default_rng(seed)
        noisy = corrupt_labels(rng, task.train.labels, _symmetric_transition(2, rate))
        return replace(task.train, crowd=as_single_source_crowd(noisy, 2))

    def _config(self, epochs=6):
        return LogicLNCLConfig(
            epochs=epochs, batch_size=32, optimizer="adadelta", learning_rate=1.0,
            lr_decay_every=None, patience=4, C=5.0, imitation=constant(0.3),
        )

    def test_requires_single_source(self, sentiment_task):
        trainer = NoisyLabelLogicLNCL(
            TextCNN(sentiment_task.embeddings, TextCNNConfig(filter_windows=(2,), feature_maps=6),
                    np.random.default_rng(0)),
            self._config(1), np.random.default_rng(0),
        )
        with pytest.raises(ValueError):
            trainer.fit(sentiment_task.train)  # fixture crowd has 12 annotators

    def test_learns_under_noise_and_estimates_transition(self, sentiment_task):
        task = sentiment_task
        train = self._noisy_train(task, rate=0.25)
        trainer = NoisyLabelLogicLNCL(
            TextCNN(task.embeddings, TextCNNConfig(filter_windows=(2, 3), feature_maps=10),
                    np.random.default_rng(0)),
            self._config(), np.random.default_rng(1),
            rule=ButRule(task.but_id),
        )
        trainer.fit(train, dev=task.dev)
        score = accuracy(
            task.test.labels, trainer.predict_teacher(task.test.tokens, task.test.lengths)
        )
        assert score > 0.55
        # The estimated transition should have a dominant diagonal.
        T = trainer.transition_
        assert T.shape == (2, 2)
        assert np.diag(T).mean() > 0.5

    def test_transition_requires_fit(self, sentiment_task):
        trainer = NoisyLabelLogicLNCL(
            TextCNN(sentiment_task.embeddings, TextCNNConfig(filter_windows=(2,), feature_maps=6),
                    np.random.default_rng(0)),
            self._config(1), np.random.default_rng(0),
        )
        with pytest.raises(RuntimeError):
            _ = trainer.transition_


class TestForwardCorrection:
    def test_trains_and_beats_chance(self, sentiment_task):
        task = sentiment_task
        rng = np.random.default_rng(2)
        T = _symmetric_transition(2, 0.25)
        noisy = corrupt_labels(rng, task.train.labels, T)
        train = replace(task.train, crowd=as_single_source_crowd(noisy, 2))
        model = TextCNN(task.embeddings, TextCNNConfig(filter_windows=(2, 3), feature_maps=10),
                        np.random.default_rng(0))
        config = TrainerConfig(epochs=6, batch_size=32, lr_decay_every=None, patience=4)
        history = forward_correction_baseline(model, config, rng, train, T, dev=task.dev)
        assert "best_dev_score" in history
        score = accuracy(task.test.labels, model.predict(task.test.tokens, task.test.lengths))
        assert score > 0.55

    def test_validation(self, sentiment_task):
        model = TextCNN(sentiment_task.embeddings, TextCNNConfig(filter_windows=(2,), feature_maps=6),
                        np.random.default_rng(0))
        config = TrainerConfig(epochs=1)
        with pytest.raises(ValueError):
            forward_correction_baseline(
                model, config, np.random.default_rng(0), sentiment_task.train, np.eye(2)
            )
        rng = np.random.default_rng(0)
        noisy = as_single_source_crowd(sentiment_task.train.labels, 2)
        train = replace(sentiment_task.train, crowd=noisy)
        with pytest.raises(ValueError):
            forward_correction_baseline(
                model, config, rng, train, np.eye(3)
            )
