"""CI wiring for the hot-path benchmark harness.

Runs ``benchmarks/bench_hotpaths.py --smoke`` in a subprocess (fresh
interpreter, exactly as CI would) and fails if it errors — so a change
that breaks any seed-vs-live equivalence check (fused GRU, vectorized
sequence EM, sparse DS EM, batched forward–backward, sparse GLAD/PM/CATD,
the width-loop conv1d step, the float32-vs-float64 dtype twins, the
streaming replay contract, the sharded batch-twin contract, the
multi-core sharded bit-identity gate, the serving recovery gate), or the
harness itself, fails the tier-1 suite. The
smoke run finishes in a few seconds; it measures tiny sizes and makes no
speedup assertions (wall clock on shared CI boxes is not a contract) —
the resource bounds asserted are the peak-memory orderings (sharded
out-of-core below in-memory batch; float32 epochs below float64), which
tracemalloc measures deterministically enough for CI.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def test_bench_hotpaths_smoke_runs_and_writes_json(tmp_path):
    output = tmp_path / "BENCH_hotpaths.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "benchmarks" / "bench_hotpaths.py"),
            "--smoke",
            "--output",
            str(output),
        ],
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
    )
    assert completed.returncode == 0, (
        f"bench_hotpaths --smoke failed\nstdout:\n{completed.stdout}\n"
        f"stderr:\n{completed.stderr}"
    )

    payload = json.loads(output.read_text())
    assert payload["smoke"] is True
    sections = (
        "gru", "sequence_em", "dawid_skene", "forward_backward",
        "glad", "pm_catd", "conv1d", "streaming", "sharded",
    )
    bounds = {
        # Equivalence is asserted inside the harness; re-check it landed.
        # conv1d's two BLAS paths split the width·D reduction differently,
        # so its bound is float64 round-off rather than the 1e-10 the
        # identical-order inference rewrites achieve; streaming is pinned
        # at its documented replay contract (atol 1e-8); sharded regroups
        # per-shard partial sums (atol 1e-9, documented in the bench).
        "conv1d": 1e-9,
        "streaming": 1e-8,
        "sharded": 1e-9,
    }
    for section in sections:
        entry = payload[section]
        assert entry["before_ms"] > 0 and entry["after_ms"] > 0
        assert entry["max_abs_diff"] < bounds.get(section, 1e-10)
    assert payload["conv1d"]["buffer_bytes_avoided"] > 0
    # The streaming section must carry the per-update scaling evidence
    # (timing *relationships* are asserted nowhere — CI boxes are noisy).
    for key in (
        "before_first_update_ms", "before_last_update_ms",
        "after_first_update_ms", "after_last_update_ms",
    ):
        assert payload["streaming"][key] > 0

    # The dtype section: float32 fast-path twins of the TextCNN and CRNN
    # training epochs. Asserted: contract keys present, the float32 run
    # peaks below the float64 run (tape + activations at half width — a
    # deterministic tracemalloc measurement, unlike wall clock, which is
    # asserted nowhere), and the same-seed twins agree at init (the bench
    # itself gates this at 1e-2 before timing).
    for network in ("text_cnn", "crnn"):
        entry = payload["dtype"][network]
        assert entry["before_ms"] > 0 and entry["after_ms"] > 0
        assert entry["speedup"] > 0
        assert entry["after_peak_bytes"] < entry["before_peak_bytes"]
        assert entry["max_abs_logit_diff"] < 1e-2

    # The sharded section's memory claim: out-of-core inference peaks
    # below the in-memory batch run at both scales, and the shard layout
    # really is smaller than the crowd.
    for entry in (payload["sharded"], payload["sharded"]["paper_scale"]):
        assert entry["max_abs_diff"] < 1e-9
        assert entry["after_peak_bytes"] < entry["before_peak_bytes"]
        assert entry["largest_shard_coo_bytes"] < entry["crowd_label_bytes"]
        assert entry["config"]["shards"] >= 2

    # The sharded_parallel section: shape/contract keys only. The smoke
    # config runs the process path with 2 workers, so a passing run proves
    # the pool + shard-handle + broadcast plumbing works end to end (the
    # bench itself asserts bit-identity to the serial sharded run before
    # timing). Deliberately NOT asserted: parallel wall clock beating the
    # serial one — CI boxes have arbitrary core counts, and the payload's
    # config.cpu_count is exactly how a reader contextualizes the numbers.
    entry = payload["sharded_parallel"]
    assert entry["batch_ms"] > 0 and entry["serial_sharded_ms"] > 0
    assert entry["max_abs_diff"] < 1e-9
    assert entry["config"]["cpu_count"] >= 1
    assert entry["config"]["shards"] >= 2
    assert entry["workers"], "worker sweep must not be empty"
    for count, run in entry["workers"].items():
        assert int(count) >= 1
        assert run["ms"] > 0
        assert run["speedup_vs_batch"] > 0
        assert run["speedup_vs_serial_sharded"] > 0

    # The serving section: contract keys only, no latency orderings. The
    # bench's own gate (crash + restart + tail replay vs uninterrupted
    # streams at 1e-10) ran before anything was timed; re-check the
    # recorded diff, that the schedule really interleaved updates with
    # queries, and that the resident budget forced eviction churn into
    # the measured path.
    entry = payload["serving"]
    assert entry["recovery_max_abs_diff"] < 1e-10
    assert entry["update_count"] > 0 and entry["query_count"] > 0
    assert entry["updates_per_sec"] > 0
    assert entry["query_p50_ms"] >= 0
    assert entry["query_p99_ms"] >= entry["query_p50_ms"]
    assert entry["config"]["max_resident"] < entry["config"]["datasets"]
    assert entry["evictions"] > 0
    assert entry["rehydrations"] > 0
    assert entry["checkpoints"] > 0
