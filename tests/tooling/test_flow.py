"""The dataflow tier's own tests: CFG shapes, solver behavior, fact layers.

CFG tests compare whole edge sets against hand-drawn graphs (nodes named
by line number, ``entry``/``exit`` by name — :meth:`CFG.edge_set`), so a
builder regression shows up as a set diff, not a flaky traversal. Solver
tests pin the contract the fact layers rely on: fixpoints on loops,
branch refinement along labeled edges, bottom (``None``) for unreachable
nodes, and a hard stop on non-monotone clients. Fact tests drive
:func:`build_file_flow` on fabricated sources and assert the collected
borrow/publish mutations and checkedness facts directly — the rule-level
behavior is covered by the fixtures in ``test_analysis.py``.
"""

import ast
import textwrap

import pytest

from repro.analysis.engine import SourceFile
from repro.analysis.flow import build_cfg, build_file_flow, iter_functions
from repro.analysis.flow.solver import FixpointDiverged, solve_forward


def cfg_of(source):
    tree = ast.parse(textwrap.dedent(source))
    funcs = list(iter_functions(tree))
    assert len(funcs) == 1
    return build_cfg(funcs[0])


def flow_of(source, rel="src/repro/_fixture.py"):
    return build_file_flow(SourceFile.from_source(textwrap.dedent(source), rel))


# --------------------------------------------------------------------- #
# CFG construction against hand-drawn graphs.
# --------------------------------------------------------------------- #


def test_cfg_if_else_diamond():
    cfg = cfg_of(
        """\
        def f(x):
            if x:
                a = 1
            else:
                a = 2
            return a
        """
    )
    assert cfg.edge_set() == {
        ("entry", 2, None),
        (2, 3, True),
        (2, 5, False),
        (3, 6, None),
        (5, 6, None),
        (6, "exit", None),
    }


def test_cfg_short_circuit_decomposes_into_test_chain():
    # `a and b` must become test(a) --True--> test(b); both false edges
    # join the else target. Conditions on separate lines so the chain is
    # visible in the edge set.
    cfg = cfg_of(
        """\
        def f(a, b):
            if (a
                    and b):
                r = 1
            return r
        """
    )
    assert cfg.edge_set() == {
        ("entry", 2, None),
        (2, 3, True),  # a truthy -> evaluate b (short-circuit edge)
        (2, 5, False),  # a falsy -> skip b entirely
        (3, 4, True),
        (3, 5, False),
        (4, 5, None),
        (5, "exit", None),
    }
    kinds = [node.kind for node in cfg.nodes]
    assert kinds.count("test") == 2


def test_cfg_not_swaps_edge_labels():
    cfg = cfg_of(
        """\
        def f(x):
            if not x:
                return 1
            return 2
        """
    )
    assert cfg.edge_set() == {
        ("entry", 2, None),
        (2, 3, False),  # `not` swaps: body entered on x's False edge
        (2, 4, True),
        (3, "exit", None),
        (4, "exit", None),
    }


def test_cfg_while_else_with_back_edge():
    cfg = cfg_of(
        """\
        def f(n):
            while n:
                n = step(n)
            else:
                n = -1
            return n
        """
    )
    assert cfg.edge_set() == {
        ("entry", 2, None),
        (2, 3, True),
        (3, 2, None),  # loop back edge
        (2, 5, False),  # exhausted -> while-else
        (5, 6, None),
        (6, "exit", None),
    }


def test_cfg_for_break_keeps_direct_exit_edge():
    cfg = cfg_of(
        """\
        def f(items):
            for item in items:
                if item:
                    break
            return items
        """
    )
    assert cfg.edge_set() == {
        ("entry", 2, None),
        (2, 3, True),  # another item -> body
        (3, 4, True),
        (3, 2, False),  # if falls through -> back to header
        (2, 5, False),  # exhausted
        (4, 5, None),  # break jumps straight past the loop
        (5, "exit", None),
    }


def test_cfg_continue_edges_to_loop_head():
    cfg = cfg_of(
        """\
        def f(items):
            for item in items:
                if item:
                    continue
                use(item)
            return items
        """
    )
    assert cfg.edge_set() == {
        ("entry", 2, None),
        (2, 3, True),
        (3, 4, True),
        (4, 2, None),  # continue -> header
        (3, 5, False),
        (5, 2, None),
        (2, 6, False),
        (6, "exit", None),
    }


def test_cfg_try_except_exception_edges():
    cfg = cfg_of(
        """\
        def f(path):
            try:
                data = load(path)
            except OSError:
                data = None
            return data
        """
    )
    assert cfg.edge_set() == {
        ("entry", 3, None),
        (3, 4, "exc"),  # any body statement may raise into the handler
        (3, 6, None),
        (4, 5, None),
        (5, 6, None),
        (6, "exit", None),
    }


def test_cfg_return_routes_through_finally():
    # The return's jump to exit must divert through the finally body —
    # the finally's synthetic join node carries the try statement's line.
    cfg = cfg_of(
        """\
        def f(res):
            try:
                return res.value
            finally:
                res.close()
        """
    )
    assert cfg.edge_set() == {
        ("entry", 3, None),
        (3, 2, None),  # return diverts into the finally join (line 2)
        (2, 5, None),
        (5, "exit", None),
    }


def test_cfg_assert_false_edge_raises():
    cfg = cfg_of(
        """\
        def f(x):
            assert x
            return x
        """
    )
    assert cfg.edge_set() == {
        ("entry", 2, None),
        (2, 3, True),
        (2, "exit", False),  # assertion failure propagates out
        (3, "exit", None),
    }


def test_cfg_uncaught_raise_edges_to_exit():
    cfg = cfg_of(
        """\
        def f(x):
            if x:
                raise ValueError(x)
            return x
        """
    )
    assert cfg.edge_set() == {
        ("entry", 2, None),
        (2, 3, True),
        (3, "exit", None),
        (2, 4, False),
        (4, "exit", None),
    }


# --------------------------------------------------------------------- #
# Solver: fixpoints, refinement, bottom, divergence guard.
# --------------------------------------------------------------------- #


class _LineCollector:
    """May-analysis toy: the set of lines any path traversed to get here."""

    def initial(self, cfg):
        return frozenset()

    def join(self, old, new):
        return new if old is None else old | new

    def transfer(self, node, state):
        if node.lineno is None:
            return state
        return state | {node.lineno}


def test_solver_reaches_fixpoint_on_loop():
    cfg = cfg_of(
        """\
        def f(n):
            while n:
                n = step(n)
            return n
        """
    )
    states = solve_forward(cfg, _LineCollector())
    # The loop head's entry state is the join of the preheader and the
    # back edge, so after convergence it includes the body's line.
    head = next(i for i, n in enumerate(cfg.nodes) if n.kind == "test")
    assert states[head] == frozenset({2, 3})
    assert states[cfg.exit] == frozenset({2, 3, 4})


class _BranchTagger(_LineCollector):
    """Adds refinement: tags which edge of `test` was taken."""

    def refine(self, node, state, label):
        return state | {(node.lineno, label)}


def test_solver_refines_along_labeled_edges():
    cfg = cfg_of(
        """\
        def f(x):
            if x:
                a = 1
            else:
                a = 2
            return a
        """
    )
    states = solve_forward(cfg, _BranchTagger())
    by_line = {
        node.lineno: states[node.index]
        for node in cfg.nodes
        if node.kind == "stmt"
    }
    assert (2, True) in by_line[3] and (2, False) not in by_line[3]
    assert (2, False) in by_line[5] and (2, True) not in by_line[5]
    # The join after the branch sees both refinements (union).
    assert {(2, True), (2, False)} <= by_line[6]


def test_solver_leaves_unreachable_nodes_at_bottom():
    cfg = cfg_of(
        """\
        def f():
            return 1
            x = 3
        """
    )
    states = solve_forward(cfg, _LineCollector())
    dead = next(i for i, n in enumerate(cfg.nodes) if n.lineno == 3)
    assert states[dead] is None


def test_solver_raises_on_non_monotone_analysis():
    class Diverging:
        def initial(self, cfg):
            return 0

        def join(self, old, new):
            return new  # no least-upper-bound: states never stabilize

        def transfer(self, node, state):
            return state + 1

    cfg = cfg_of(
        """\
        def f(n):
            while n:
                n = step(n)
            return n
        """
    )
    with pytest.raises(FixpointDiverged, match="non-monotone"):
        solve_forward(cfg, Diverging(), max_passes=4)


# --------------------------------------------------------------------- #
# Fact layers: borrow/publish taint and optional checkedness.
# --------------------------------------------------------------------- #


def _mutations(source):
    return [m for fn in flow_of(source).functions for m in fn.mutations]


def test_facts_borrow_flows_through_unpacking_and_aliases():
    muts = _mutations(
        """\
        import numpy as np

        def renumber(crowd):
            rows, cols, given = crowd.flat_label_pairs()
            flat = np.asarray(rows)
            flat[0] = 0
        """
    )
    assert [(m.lineno, m.kind) for m in muts] == [(6, "subscript store")]
    assert muts[0].borrowed_from == ("flat_label_pairs()",)


def test_facts_copy_launders_borrowed_taint():
    assert (
        _mutations(
            """\
            def renumber(crowd):
                rows = crowd.flat_label_pairs()[0].copy()
                rows[0] = 0
            """
        )
        == []
    )


def test_facts_mmap_load_is_borrowed_but_explicit_copy_load_is_not():
    bad = _mutations(
        """\
        def patch(path):
            shard = SparseLabelShard.load(path)
            shard.rows.sort()
        """
    )
    assert [(m.lineno, m.kind) for m in bad] == [(3, "mutating call .sort()")]
    assert "mmap" in bad[0].borrowed_from[0]
    assert (
        _mutations(
            """\
            def patch(path):
                shard = SparseLabelShard.load(path, mmap=False)
                shard.rows.sort()
            """
        )
        == []
    )


def test_facts_publication_is_a_program_point():
    # Mutation BEFORE the publishing store is the sanctioned build-up
    # phase; only mutation after the snapshot swap escapes.
    before = _mutations(
        """\
        def publish(entry, result):
            result["state"] = "ready"
            entry.snapshot = (1, result)
        """
    )
    assert before == []
    after = _mutations(
        """\
        def publish(entry, result):
            entry.snapshot = (1, result)
            result["state"] = "stale"
        """
    )
    assert [(m.lineno, m.published_at) for m in after] == [(3, (2,))]


def test_facts_published_comment_marks_any_attribute():
    muts = _mutations(
        """\
        def install(registry, table):
            registry.active = table  # published
            table.clear()
        """
    )
    assert [(m.lineno, m.published_at) for m in muts] == [(3, (2,))]


def test_facts_checkedness_respects_short_circuit_domination():
    flow = flow_of(
        """\
        def step(config):
            if config.grad_clip is not None and config.grad_clip:
                return 1
            if config.grad_clip:
                return 2
            return 0
        """
    )
    tests = [t for fn in flow.functions for t in fn.tests]
    # Two truthiness positions on grad_clip: the guarded conjunct (line 2)
    # and the unguarded test (line 4).
    assert [(t.lineno, ".grad_clip" in t.checked) for t in tests] == [
        (2, True),
        (4, False),
    ]


def test_facts_origins_attribute_assignment_to_local():
    flow = flow_of(
        """\
        def step(config):
            clip = config.grad_clip
            if clip:
                return 1
            return 0
        """
    )
    tests = [t for fn in flow.functions for t in fn.tests]
    assert len(tests) == 1
    assert tests[0].origins == frozenset({"grad_clip"})
    # Calls yield no origins — generic locals stay unattributed.
    flow = flow_of(
        """\
        def loop(stopper, score):
            stop = stopper.update(score)
            if stop:
                return True
            return False
        """
    )
    tests = [t for fn in flow.functions for t in fn.tests]
    assert len(tests) == 1
    assert tests[0].origins == frozenset()


def test_flow_is_computed_once_per_file():
    source = SourceFile.from_source("def f():\n    return 1\n")
    assert source.flow() is source.flow()
