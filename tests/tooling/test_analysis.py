"""The contract-lint engine's own test suite.

Three layers, mirroring how the engine is trusted:

* **self-checked rules** — every registered rule ships a known-bad and a
  known-good fixture, and the meta-test refuses rules without both. The
  ``dtype-literal`` fixtures carry over the exact sample from the retired
  ``tests/tooling/test_no_float64_literals.py`` (PR 7), so the detector
  that guarded the precision policy is still proven to detect before it
  is trusted — now for all eight contracts, not one. Rules that consume
  the dataflow tier (``uses_flow``) must additionally ship a *guarded*
  fixture: same shape as the bad one but saved by a path fact (a
  dominating None-check, an intervening ``.copy()``, mutate-before-
  publish ordering) — proof the rule is actually path-sensitive rather
  than a syntactic pattern match.
* **engine mechanics** — registry semantics (duplicates raise, reserved
  ids refused, KeyError names the catalog), inline ``# lint: ok(...)``
  suppression consumption and staleness, baseline-ratchet comparison in
  both directions, syntax-error resilience, and the CLI's full
  write/check/regress/shrink cycle on a throwaway tree.
* **the repo itself** — ``src``+``tests`` lint clean against the
  committed ``analysis/baseline.json`` in under 10 s, the contract rules
  that were fixed at zero (optional-guard, lock-discipline,
  pickle-boundary, broad-except) stay at zero on ``src``, and the
  autodiff package stays dtype-literal-free with no baseline slack.
"""

import json
import time
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    SourceFile,
    SYNTAX_ERROR_ID,
    UNUSED_SUPPRESSION_ID,
    analyze_paths,
    analyze_sources,
    available_rules,
    compare_to_baseline,
    default_baseline_path,
    get_rule,
    load_baseline,
    register_rule,
    summarize,
    write_baseline,
)
from repro.analysis.__main__ import main as cli_main
from repro.analysis.rules import (
    BroadExceptRule,
    DtypeLiteralRule,
    LockDisciplineRule,
    OptionalGuardRule,
    PickleBoundaryRule,
    PublishEscapeRule,
    ViewMutationRule,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

SRC_FIXTURE = "src/repro/_fixture.py"
TEST_FIXTURE = "tests/test_fixture.py"

# The PR 7 self-check sample, verbatim from test_no_float64_literals.py:
# one violation of each detected shape (import, attribute, string literal).
_S1_BAD = (
    "import numpy as np\n"
    "from numpy import float64\n"
    "a = np.float32(1.0)\n"
    'b = x.astype("float64")\n'
)

# Every rule must prove it fires on bad and stays silent on good — the
# meta-test below keeps this table in lockstep with the registry.
FIXTURES = {
    "dtype-literal": {
        "bad": (_S1_BAD, SRC_FIXTURE, 2),
        "good": (
            "from repro.autodiff.dtypes import resolve_dtype\n"
            "dtype = resolve_dtype(None)\n",
            SRC_FIXTURE,
        ),
    },
    "optional-guard": {
        "bad": (
            "class TrainerConfig:\n"
            "    grad_clip: float | None = None\n"
            "\n"
            "def step(config, grads):\n"
            "    if config.grad_clip:\n"
            "        return grads\n"
            "    return grads\n",
            SRC_FIXTURE,
            5,
        ),
        "good": (
            "class TrainerConfig:\n"
            "    grad_clip: float | None = None\n"
            "\n"
            "def step(config, grads):\n"
            "    if config.grad_clip is not None:\n"
            "        return grads\n"
            "    return grads\n",
            SRC_FIXTURE,
        ),
        # Same truthiness test as bad, but dominated by an `is not None`
        # check via short-circuit — the path-sensitive upgrade's point.
        "guarded": (
            "class TrainerConfig:\n"
            "    grad_clip: float | None = None\n"
            "\n"
            "def step(config, grads):\n"
            "    if config.grad_clip is not None and config.grad_clip:\n"
            "        return grads\n"
            "    return grads\n",
            SRC_FIXTURE,
        ),
    },
    "view-mutation": {
        "bad": (
            "def renumber(crowd):\n"
            "    rows, cols, given = crowd.flat_label_pairs()\n"
            "    rows[0] = 0\n"
            "    return rows\n",
            SRC_FIXTURE,
            3,
        ),
        "good": (
            "def renumber(crowd):\n"
            "    rows = crowd.flat_label_pairs()[0].copy()\n"
            "    rows[0] = 0\n"
            "    return rows\n",
            SRC_FIXTURE,
        ),
        # The mutation only sits on the path where the borrow was
        # laundered — the re-binding kills the taint on that path.
        "guarded": (
            "def renumber(crowd, fresh):\n"
            "    rows = crowd.flat_label_pairs()[0]\n"
            "    if fresh:\n"
            "        rows = rows.copy()\n"
            "        rows[0] = 0\n"
            "    return rows\n",
            SRC_FIXTURE,
        ),
    },
    "publish-escape": {
        "bad": (
            "def publish(entry, version, result):\n"
            "    entry.snapshot = (version, result)\n"
            "    result['state'] = 'stale'\n",
            SRC_FIXTURE,
            3,
        ),
        "good": (
            "def publish(entry, version, result):\n"
            "    entry.snapshot = (version, dict(result))\n"
            "    result['state'] = 'stale'\n",
            SRC_FIXTURE,
        ),
        # Publication is a program point: the build-up mutation happens
        # before the snapshot swap, so nothing escapes.
        "guarded": (
            "def publish(entry, version, result):\n"
            "    result['state'] = 'ready'\n"
            "    entry.snapshot = (version, result)\n",
            SRC_FIXTURE,
        ),
    },
    "lock-discipline": {
        "bad": (
            "import threading\n"
            "\n"
            "class Service:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._entries = {}  # guarded-by: _lock\n"
            "\n"
            "    def peek(self, name):\n"
            "        return self._entries[name]\n",
            SRC_FIXTURE,
            9,
        ),
        "good": (
            "import threading\n"
            "\n"
            "class Service:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._entries = {}  # guarded-by: _lock\n"
            "\n"
            "    def peek(self, name):\n"
            "        with self._lock:\n"
            "            return self._entry_locked(name)\n"
            "\n"
            "    def _entry_locked(self, name):\n"
            "        return self._entries[name]\n",
            SRC_FIXTURE,
        ),
    },
    "pickle-boundary": {
        "bad": (
            "def run_all(executor, items):\n"
            "    return [executor.submit(lambda item: item + 1, item) for item in items]\n",
            SRC_FIXTURE,
            2,
        ),
        "good": (
            "def _task(item):\n"
            "    return item + 1\n"
            "\n"
            "def run_all(executor, items):\n"
            "    return [executor.submit(_task, item) for item in items]\n",
            SRC_FIXTURE,
        ),
    },
    "broad-except": {
        "bad": (
            "def probe():\n"
            "    try:\n"
            "        import scipy.sparse\n"
            "    except Exception:\n"
            "        return False\n"
            "    return True\n",
            SRC_FIXTURE,
            4,
        ),
        "good": (
            "def probe():\n"
            "    try:\n"
            "        import scipy.sparse\n"
            "    except Exception:\n"
            "        # Capability probe: degrade to the slow path on any surprise.\n"
            "        return False\n"
            "    return True\n",
            SRC_FIXTURE,
        ),
    },
    "allclose-atol": {
        "bad": (
            "import numpy as np\n"
            "\n"
            "def test_roundtrip():\n"
            "    np.testing.assert_allclose(1.0, 1.0)\n",
            TEST_FIXTURE,
            4,
        ),
        "good": (
            "import numpy as np\n"
            "\n"
            "def test_roundtrip():\n"
            "    np.testing.assert_allclose(1.0, 1.0, atol=1e-10)\n",
            TEST_FIXTURE,
        ),
    },
}


def run_engine(text, rel):
    """Full-registry analysis of one fabricated source file."""
    return analyze_sources([SourceFile.from_source(text, rel)])


# --------------------------------------------------------------------- #
# Self-checked rules: the meta-test and the per-rule fixtures.
# --------------------------------------------------------------------- #


def test_every_registered_rule_has_fixtures():
    assert len(available_rules()) >= 8
    assert set(available_rules()) == set(FIXTURES), (
        "rule registry and fixture table out of sync — every rule ships "
        "with a known-bad and a known-good fixture, no exceptions"
    )
    for rule_id in available_rules():
        rule = get_rule(rule_id)
        assert rule.description
        assert {"bad", "good"} <= set(FIXTURES[rule_id])
        if getattr(rule, "uses_flow", False):
            assert "guarded" in FIXTURES[rule_id], (
                f"{rule_id} consumes flow facts but ships no guarded-path "
                "fixture — a flow rule must prove it stays silent when a "
                "path fact (dominating check, laundering copy, publish "
                "ordering) saves the bad shape"
            )


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_rule_fires_on_bad_fixture(rule_id):
    text, rel, line = FIXTURES[rule_id]["bad"]
    findings = run_engine(text, rel)
    assert any(f.rule_id == rule_id and f.line == line for f in findings), (
        f"{rule_id} missed its known-bad fixture: {[str(f) for f in findings]}"
    )
    # Findings render as clickable file:line for the CLI.
    hit = next(f for f in findings if f.rule_id == rule_id and f.line == line)
    assert str(hit).startswith(f"{rel}:{line}: [{rule_id}]")


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_rule_silent_on_good_fixture(rule_id):
    text, rel = FIXTURES[rule_id]["good"]
    assert run_engine(text, rel) == []


@pytest.mark.parametrize(
    "rule_id", sorted(r for r in FIXTURES if "guarded" in FIXTURES[r])
)
def test_flow_rule_silent_on_guarded_fixture(rule_id):
    # The bad shape saved by a path fact — what distinguishes a dataflow
    # rule from a syntactic pattern match.
    text, rel = FIXTURES[rule_id]["guarded"]
    assert run_engine(text, rel) == []


def test_dtype_rule_keeps_migrated_self_check():
    # The retired test asserted exactly these three detections; the
    # migrated rule must keep them (plus the bare-name shape).
    findings = run_engine(_S1_BAD, SRC_FIXTURE)
    messages = [f.message for f in findings]
    assert len(findings) == 3
    assert any("import of float64" in m for m in messages)
    assert any("attribute .float32" in m for m in messages)
    assert any("string literal 'float64'" in m for m in messages)


def test_dtype_rule_exempts_policy_module_and_tests():
    assert run_engine(_S1_BAD, "src/repro/autodiff/dtypes.py") == []
    # tests/ may name dtypes freely (they assert on them); only the
    # allclose-atol rule watches the test tree, and this sample has none.
    assert run_engine(_S1_BAD, TEST_FIXTURE) == []


def test_optional_guard_matches_fields_across_files():
    # The PR 4 shape: annotation in a config module, truthiness guard in
    # a consumer module — the prepare() pass must connect them.
    config = SourceFile.from_source(
        "class TrainerConfig:\n    lr_decay_every: int | None = None\n",
        "src/repro/core/config_fixture.py",
    )
    consumer = SourceFile.from_source(
        "def maybe_decay(config, step):\n"
        "    if config.lr_decay_every:\n"
        "        return step\n"
        "    return None\n",
        "src/repro/baselines/consumer_fixture.py",
    )
    findings = analyze_sources([config, consumer])
    assert [f.file for f in findings] == ["src/repro/baselines/consumer_fixture.py"]
    assert findings[0].rule_id == "optional-guard"
    assert findings[0].line == 2


def test_optional_guard_bare_names_stay_file_local():
    # Regression pin: ShardHandle.stop (int | None) must not contaminate
    # an unrelated module's local `stop` bool — bare names only match
    # annotations from the same file.
    decl = SourceFile.from_source(
        "class ShardHandle:\n    stop: int | None = None\n",
        "src/repro/crowd/handle_fixture.py",
    )
    other = SourceFile.from_source(
        "def loop(stopper, score):\n"
        "    stop = stopper.update(score)\n"
        "    if stop:\n"
        "        return True\n"
        "    return False\n",
        "src/repro/core/loop_fixture.py",
    )
    assert analyze_sources([decl, other]) == []


def test_allclose_kwargs_forwarding_is_compliant():
    text = (
        "import numpy as np\n"
        "\n"
        "def check(a, b, **kwargs):\n"
        "    np.testing.assert_allclose(a, b, **kwargs)\n"
    )
    assert run_engine(text, TEST_FIXTURE) == []


# --------------------------------------------------------------------- #
# Engine mechanics: suppressions, registry, syntax errors.
# --------------------------------------------------------------------- #


def test_suppression_consumes_finding():
    text = "import numpy as np\na = np.float32(1.0)  # lint: ok(dtype-literal)\n"
    assert run_engine(text, SRC_FIXTURE) == []


def test_unused_suppression_is_flagged():
    findings = run_engine("x = 1  # lint: ok(dtype-literal)\n", SRC_FIXTURE)
    assert [f.rule_id for f in findings] == [UNUSED_SUPPRESSION_ID]
    assert "stale" in findings[0].message


def test_unknown_rule_suppression_is_flagged():
    findings = run_engine("x = 1  # lint: ok(no-such-rule)\n", SRC_FIXTURE)
    assert [f.rule_id for f in findings] == [UNUSED_SUPPRESSION_ID]
    assert "does not exist" in findings[0].message


def test_comma_separated_suppressions_tracked_independently():
    # One id matches, the other is stale — only the stale one surfaces.
    text = "import numpy as np\na = np.float32(1.0)  # lint: ok(dtype-literal, broad-except)\n"
    findings = run_engine(text, SRC_FIXTURE)
    assert [f.rule_id for f in findings] == [UNUSED_SUPPRESSION_ID]
    assert "broad-except" in findings[0].message


def test_suppression_does_not_double_as_justification():
    # A waived broad-except stays waived through the suppression
    # machinery, not by the waiver comment counting as a justification
    # (which would immediately flag the waiver itself as stale).
    text = (
        "def probe():\n"
        "    try:\n"
        "        import scipy.sparse\n"
        "    except Exception:  # lint: ok(broad-except)\n"
        "        return False\n"
        "    return True\n"
    )
    assert run_engine(text, SRC_FIXTURE) == []


def test_registry_refuses_duplicates():
    with pytest.raises(ValueError, match="already registered"):
        register_rule(DtypeLiteralRule())


def test_registry_reserves_engine_ids():
    class Impostor:
        rule_id = UNUSED_SUPPRESSION_ID
        description = "nope"

        def check(self, source):
            return []

    with pytest.raises(ValueError, match="reserved"):
        register_rule(Impostor())


def test_registry_rejects_non_kebab_ids():
    class BadId:
        rule_id = "Not_Kebab"
        description = "nope"

        def check(self, source):
            return []

    with pytest.raises(ValueError, match="kebab-case"):
        register_rule(BadId())


def test_get_rule_names_the_known_catalog():
    with pytest.raises(KeyError, match="dtype-literal"):
        get_rule("no-such-rule")


def test_syntax_error_reported_not_fatal(tmp_path):
    _seed_repo(tmp_path, "def broken(:\n")
    findings = analyze_paths(["src"], root=tmp_path)
    assert [f.rule_id for f in findings] == [SYNTAX_ERROR_ID]
    assert findings[0].file == "src/repro/mod.py"


# --------------------------------------------------------------------- #
# Baseline-ratchet semantics: strict in both directions.
# --------------------------------------------------------------------- #


def _finding(file, line, rule_id="dtype-literal"):
    return Finding(file=file, line=line, rule_id=rule_id, message="m")


def test_baseline_equal_counts_are_clean():
    findings = [_finding("src/a.py", 3), _finding("src/a.py", 9)]
    new, stale = compare_to_baseline(findings, summarize(findings))
    assert new == [] and stale == {}


def test_baseline_tolerates_line_shifts():
    baseline = summarize([_finding("src/a.py", 3)])
    new, stale = compare_to_baseline([_finding("src/a.py", 30)], baseline)
    assert new == [] and stale == {}


def test_baseline_fails_on_new_findings():
    baseline = summarize([_finding("src/a.py", 3)])
    current = [_finding("src/a.py", 3), _finding("src/a.py", 4)]
    new, stale = compare_to_baseline(current, baseline)
    # Count keys can't attribute which finding is the new one, so every
    # finding of the over-budget key is listed for the human to triage.
    assert len(new) == 2
    assert stale == {}


def test_baseline_fails_on_fixed_but_not_shrunk():
    baseline = summarize([_finding("src/a.py", 3), _finding("src/b.py", 1)])
    new, stale = compare_to_baseline([_finding("src/b.py", 1)], baseline)
    assert new == []
    assert stale == {"src/a.py::dtype-literal": (1, 0)}


def test_baseline_write_load_roundtrip(tmp_path):
    findings = [
        _finding("src/a.py", 3),
        _finding("src/a.py", 7),
        _finding("tests/t.py", 2, "allclose-atol"),
    ]
    path = tmp_path / "analysis" / "baseline.json"
    counts = write_baseline(findings, path)
    assert counts == {"src/a.py::dtype-literal": 2, "tests/t.py::allclose-atol": 1}
    assert load_baseline(path) == counts


def test_baseline_missing_file_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == {}


def test_baseline_rejects_non_mapping(tmp_path):
    path = tmp_path / "b.json"
    path.write_text('["not", "a", "mapping"]')
    with pytest.raises(ValueError, match="file::rule_id"):
        load_baseline(path)


# --------------------------------------------------------------------- #
# The CLI: file:line output and the full ratchet cycle.
# --------------------------------------------------------------------- #


def _seed_repo(tmp_path, source):
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True, exist_ok=True)
    (pkg / "mod.py").write_text(source)
    return pkg / "mod.py"


def test_cli_reports_file_line_rule(tmp_path, capsys):
    _seed_repo(tmp_path, "import numpy as np\nx = np.float64(3.0)\n")
    assert cli_main(["--root", str(tmp_path), "--no-baseline", "src"]) == 1
    assert "src/repro/mod.py:2: [dtype-literal]" in capsys.readouterr().out


def test_cli_baseline_ratchet_cycle(tmp_path, capsys):
    mod = _seed_repo(tmp_path, "import numpy as np\nx = np.float64(3.0)\n")
    root = ["--root", str(tmp_path)]
    # Write the ratchet (this throwaway tree has no tests/, so the
    # subtree write needs --force): the finding is now tolerated.
    assert cli_main(root + ["--write-baseline", "--force", "src"]) == 0
    assert cli_main(root + ["src"]) == 0
    # A second violation exceeds the key's budget and fails.
    mod.write_text("import numpy as np\nx = np.float64(3.0)\ny = np.float32(1.0)\n")
    assert cli_main(root + ["src"]) == 1
    assert "dtype-literal" in capsys.readouterr().out
    # Fixing everything without shrinking the ratchet also fails...
    mod.write_text("x = 3.0\n")
    assert cli_main(root + ["src"]) == 1
    assert "--write-baseline" in capsys.readouterr().out
    # ...until the baseline is regenerated, locking the fix in.
    assert cli_main(root + ["--write-baseline", "--force", "src"]) == 0
    assert cli_main(root + ["src"]) == 0


def test_cli_write_baseline_refuses_subtree_without_force(tmp_path, capsys):
    # The footgun: a ratchet written from a subtree's findings makes the
    # next full run fail on everything else as "new".
    _seed_repo(tmp_path, "import numpy as np\nx = np.float64(3.0)\n")
    root = ["--root", str(tmp_path)]
    assert cli_main(root + ["--write-baseline", "src/repro"]) == 2
    captured = capsys.readouterr()
    assert "--force" in captured.err
    assert not (tmp_path / "analysis" / "baseline.json").exists()
    # --force overrides, for the rare deliberate subtree ratchet.
    assert cli_main(root + ["--write-baseline", "--force", "src/repro"]) == 0
    assert (tmp_path / "analysis" / "baseline.json").exists()


def test_cli_json_format(tmp_path, capsys):
    _seed_repo(tmp_path, "import numpy as np\nx = np.float64(3.0)\n")
    args = ["--root", str(tmp_path), "--no-baseline", "--format", "json", "src"]
    assert cli_main(args) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["total"] == 1
    assert payload["counts_by_rule"] == {"dtype-literal": 1}
    finding = payload["findings"][0]
    assert finding["file"] == "src/repro/mod.py"
    assert finding["line"] == 2
    assert finding["rule_id"] == "dtype-literal"
    assert payload["elapsed_seconds"] >= 0


def test_cli_profile_reports_every_rule(tmp_path, capsys):
    _seed_repo(tmp_path, "x = 1\n")
    assert cli_main(["--root", str(tmp_path), "--no-baseline", "--profile", "src"]) == 0
    out = capsys.readouterr().out
    for rule_id in available_rules():
        assert rule_id in out


def test_cli_json_profile_carries_rule_seconds(tmp_path, capsys):
    _seed_repo(tmp_path, "x = 1\n")
    args = [
        "--root", str(tmp_path), "--no-baseline",
        "--format", "json", "--profile", "src",
    ]
    assert cli_main(args) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload["rule_seconds"]) == set(available_rules())


def test_cli_lists_the_catalog(capsys):
    assert cli_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in available_rules():
        assert rule_id in out


# --------------------------------------------------------------------- #
# The repo itself: the committed ratchet holds and the zeros stay zero.
# --------------------------------------------------------------------- #


def test_full_repo_lints_clean_against_baseline():
    started = time.perf_counter()
    findings = analyze_paths(["src", "tests"], root=REPO_ROOT)
    elapsed = time.perf_counter() - started
    baseline = load_baseline(default_baseline_path(REPO_ROOT))
    assert baseline, "analysis/baseline.json missing — python -m repro.analysis --write-baseline"
    new, stale = compare_to_baseline(findings, baseline)
    assert not new, "findings over the ratchet:\n" + "\n".join(str(f) for f in new)
    assert not stale, (
        f"baseline keys fixed but not shrunk (run --write-baseline): {stale}"
    )
    # No stale waivers, no unparseable files anywhere in the tree.
    assert not any(
        f.rule_id in (UNUSED_SUPPRESSION_ID, SYNTAX_ERROR_ID) for f in findings
    )
    assert elapsed < 10.0, f"lint took {elapsed:.2f}s — tier-1 budget is 10s"


def test_src_contract_rules_hold_at_zero():
    # The S2-S5 contracts are fixed at zero in src/ (PR 4/6/8 fixes hold
    # and the two broad-except sites are justified) — no baseline slack.
    # The PR 10 dataflow rules (S6 view-mutation, S7 publish-escape) join
    # them at zero: no in-place write on a borrowed view and no post-
    # publication mutation anywhere in src/.
    rules = [
        OptionalGuardRule(),
        LockDisciplineRule(),
        PickleBoundaryRule(),
        BroadExceptRule(),
        ViewMutationRule(),
        PublishEscapeRule(),
    ]
    findings = analyze_paths(["src"], root=REPO_ROOT, rules=rules)
    assert findings == [], "\n".join(str(f) for f in findings)


def test_autodiff_holds_dtype_rule_at_zero():
    # The original test's scope: the autodiff package never regresses to
    # raw dtype literals, with no ratchet slack to hide in.
    findings = analyze_paths(
        ["src/repro/autodiff"], root=REPO_ROOT, rules=[DtypeLiteralRule()]
    )
    assert findings == [], "\n".join(str(f) for f in findings)
