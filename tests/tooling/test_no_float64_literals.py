"""AST lint: the dtype policy module is the only place dtypes are named.

Hard-coded ``np.float64`` / ``np.float32`` (or ``"float64"`` string
literals, or ``from numpy import float64``) inside ``repro.autodiff``
bypass the precision policy — exactly the bug this PR fixed in
``Embedding`` (a float32 pretrained matrix silently doubled to float64).
This sweep walks every module under ``src/repro/autodiff`` except
``dtypes.py`` and fails on any such literal, with file:line locations.

Comments and docstrings are free to *talk about* dtypes; only attribute
accesses, exact string constants, and imports are banned.
"""

from __future__ import annotations

import ast
from pathlib import Path

AUTODIFF_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro" / "autodiff"
POLICY_MODULE = "dtypes.py"
BANNED_NAMES = {"float32", "float64"}


def _violations_in(path: Path) -> list[str]:
    tree = ast.parse(path.read_text(), filename=str(path))
    found: list[str] = []

    def report(node: ast.AST, what: str) -> None:
        found.append(f"{path.relative_to(AUTODIFF_ROOT)}:{node.lineno}: {what}")

    for node in ast.walk(tree):
        # np.float64, numpy.float32, xp.float64, ... — any attribute access
        if isinstance(node, ast.Attribute) and node.attr in BANNED_NAMES:
            report(node, f"attribute .{node.attr}")
        # dtype="float64" style string literals (exact match only, so
        # docstrings mentioning dtypes stay legal)
        elif isinstance(node, ast.Constant) and node.value in BANNED_NAMES:
            report(node, f"string literal {node.value!r}")
        # from numpy import float64
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name in BANNED_NAMES:
                    report(node, f"import of {alias.name}")
        # bare float64 name (e.g. after a star import)
        elif isinstance(node, ast.Name) and node.id in BANNED_NAMES:
            report(node, f"bare name {node.id}")
    return found


def test_autodiff_sources_exist():
    modules = list(AUTODIFF_ROOT.rglob("*.py"))
    assert len(modules) > 5, f"expected the autodiff package under {AUTODIFF_ROOT}"
    assert any(m.name == POLICY_MODULE for m in modules)


def test_no_raw_dtype_literals_outside_policy_module():
    violations: list[str] = []
    for module in sorted(AUTODIFF_ROOT.rglob("*.py")):
        if module.name == POLICY_MODULE:
            continue
        violations.extend(_violations_in(module))
    assert not violations, (
        "raw dtype literals inside repro.autodiff (route through "
        "repro.autodiff.dtypes instead):\n  " + "\n  ".join(violations)
    )


def test_lint_actually_detects_violations():
    """Self-check: the walker flags each banned construct."""
    sample = (
        "import numpy as np\n"
        "from numpy import float64\n"
        "a = np.float32(1.0)\n"
        'b = x.astype("float64")\n'
    )
    tmp = AUTODIFF_ROOT / "dtypes.py"  # any real path for relative_to
    tree_violations = []
    probe = tmp.parent / "_probe_for_lint_test.py"
    try:
        probe.write_text(sample)
        tree_violations = _violations_in(probe)
    finally:
        probe.unlink(missing_ok=True)
    kinds = "\n".join(tree_violations)
    assert "import of float64" in kinds
    assert "attribute .float32" in kinds
    assert "string literal 'float64'" in kinds
