"""Test package (enables relative imports across the suite)."""
