"""Tests for the weak-supervision (labeling function) extension."""

import numpy as np
import pytest

from repro.crowd import MISSING
from repro.weak_supervision import (
    ABSTAIN,
    KeywordLF,
    LabelingFunction,
    NoisyOracleLF,
    apply_labeling_functions,
    covered_instances,
)


class TestKeywordLF:
    def test_fires_on_trigger(self):
        lf = KeywordLF("pos", [5, 7], label=1)
        assert lf.vote(np.array([1, 5, 2]), 3) == 1

    def test_abstains_without_trigger(self):
        lf = KeywordLF("pos", [5], label=1)
        assert lf.vote(np.array([1, 2, 3]), 3) == ABSTAIN

    def test_ignores_padding(self):
        lf = KeywordLF("pos", [5], label=1)
        assert lf.vote(np.array([1, 2, 5]), 2) == ABSTAIN  # 5 is beyond length

    def test_validation(self):
        with pytest.raises(ValueError):
            KeywordLF("x", [], label=1)
        with pytest.raises(ValueError):
            KeywordLF("x", [1], label=-2)
        with pytest.raises(ValueError):
            KeywordLF("", [1], label=0)


class TestNoisyOracleLF:
    def test_coverage_and_accuracy_realized(self):
        rng = np.random.default_rng(0)
        truth = rng.integers(0, 2, size=5000)
        lf = NoisyOracleLF("h", truth, 2, coverage=0.6, accuracy=0.8, rng=rng)
        votes = np.array([lf.vote_at(i) for i in range(5000)])
        fired = votes != ABSTAIN
        assert abs(fired.mean() - 0.6) < 0.05
        assert abs((votes[fired] == truth[fired]).mean() - 0.8) < 0.05

    def test_vote_requires_positional_api(self):
        rng = np.random.default_rng(0)
        lf = NoisyOracleLF("h", np.zeros(3, dtype=int), 2, 1.0, 1.0, rng)
        with pytest.raises(TypeError):
            lf.vote(np.array([1]), 1)

    def test_validation(self):
        rng = np.random.default_rng(0)
        truth = np.zeros(3, dtype=int)
        with pytest.raises(ValueError):
            NoisyOracleLF("h", truth, 2, coverage=0.0, accuracy=0.5, rng=rng)
        with pytest.raises(ValueError):
            NoisyOracleLF("h", truth, 2, coverage=0.5, accuracy=1.5, rng=rng)


class TestApplyLabelingFunctions:
    def test_builds_crowd_matrix(self, sentiment_task):
        task = sentiment_task
        pos = [task.vocab.id_of(f"pos{i}") for i in range(10)]
        neg = [task.vocab.id_of(f"neg{i}") for i in range(10)]
        lfs = [KeywordLF("p", pos, 1), KeywordLF("n", neg, 0)]
        crowd = apply_labeling_functions(lfs, task.train)
        assert crowd.num_instances == len(task.train)
        assert crowd.num_annotators == 2
        # Keyword LFs should be much better than chance where they fire.
        observed = crowd.observed_mask
        rows, cols = np.nonzero(observed)
        agreement = (crowd.labels[rows, cols] == task.train.labels[rows]).mean()
        assert agreement > 0.6

    def test_requires_lfs(self, sentiment_task):
        with pytest.raises(ValueError):
            apply_labeling_functions([], sentiment_task.train)

    def test_full_coverage_enforcement(self, sentiment_task):
        lf = KeywordLF("rare", [sentiment_task.vocab.id_of("pos0")], 1)
        with pytest.raises(ValueError):
            apply_labeling_functions([lf], sentiment_task.train, require_full_coverage=True)

    def test_covered_instances_helper(self, sentiment_task):
        lf = KeywordLF("rare", [sentiment_task.vocab.id_of("pos0")], 1)
        crowd = apply_labeling_functions([lf], sentiment_task.train)
        covered = covered_instances(crowd)
        assert 0 < len(covered) < len(sentiment_task.train)
        assert (crowd.labels[covered] != MISSING).any(axis=1).all()

    def test_base_class_is_abstract(self):
        lf = LabelingFunction("x")
        with pytest.raises(NotImplementedError):
            lf.vote(np.array([1]), 1)


class TestLogicLNCLOnWeakSupervision:
    def test_end_to_end_training(self, sentiment_task):
        """Logic-LNCL must run unchanged on LF votes and beat chance."""
        from repro.core import LogicLNCLClassifier, LogicLNCLConfig, constant
        from repro.eval import accuracy
        from repro.logic import ButRule
        from repro.models import TextCNN, TextCNNConfig
        from dataclasses import replace

        task = sentiment_task
        rng = np.random.default_rng(5)
        pos = [task.vocab.id_of(f"pos{i}") for i in range(15)]
        neg = [task.vocab.id_of(f"neg{i}") for i in range(15)]
        lfs = [
            KeywordLF("p", pos, 1),
            KeywordLF("n", neg, 0),
            NoisyOracleLF("h", task.train.labels, 2, coverage=0.7, accuracy=0.75, rng=rng),
        ]
        crowd = apply_labeling_functions(lfs, task.train)
        train = replace(task.train, crowd=crowd)

        trainer = LogicLNCLClassifier(
            TextCNN(task.embeddings, TextCNNConfig(filter_windows=(2, 3), feature_maps=8), rng),
            LogicLNCLConfig(epochs=5, batch_size=32, lr_decay_every=None,
                            imitation=constant(0.3)),
            rng,
            rule=ButRule(task.but_id),
        )
        trainer.fit(train, dev=task.dev)
        test = task.test
        score = accuracy(test.labels, trainer.predict_teacher(test.tokens, test.lengths))
        assert score > 0.55
        # Source-reliability estimates exist for every LF.
        assert trainer.confusions_.shape == (3, 2, 2)
