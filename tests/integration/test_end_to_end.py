"""Integration tests: the full pipeline across package boundaries.

These tests intentionally cross every layer — corpus generation → crowd
simulation → training → both predictors → evaluation — and assert the
relationships the paper's headline claims rest on, at test-suite scale.
"""

import numpy as np
import pytest

from repro.baselines import TrainerConfig, TwoStageClassifier, TwoStageSequenceTagger
from repro.core import (
    LogicLNCLClassifier,
    LogicLNCLConfig,
    LogicLNCLSequenceTagger,
    constant,
    exponential_ramp,
)
from repro.data import CONLL_LABELS
from repro.eval import accuracy, posterior_accuracy, span_f1_score
from repro.inference import MajorityVote, TokenLevelInference, majority_vote_posterior
from repro.logic import ButRule, bio_transition_rules
from repro.models import NERTagger, NERTaggerConfig, TextCNN, TextCNNConfig


def _cls_lncl_config(epochs=8):
    return LogicLNCLConfig(
        epochs=epochs, batch_size=32, optimizer="adadelta", learning_rate=1.0,
        lr_decay_every=None, patience=4, C=5.0, imitation=exponential_ramp(1.0, 0.7),
    )


def _seq_lncl_config(epochs=8):
    return LogicLNCLConfig(
        epochs=epochs, batch_size=32, optimizer="adam", learning_rate=1e-2,
        lr_decay_every=None, patience=4, weighted_loss=True, C=5.0,
        imitation=constant(0.5),
    )


class TestSentimentPipeline:
    @pytest.fixture(scope="class")
    def trained(self, sentiment_task):
        task = sentiment_task
        model = TextCNN(
            task.embeddings, TextCNNConfig(filter_windows=(2, 3), feature_maps=12),
            np.random.default_rng(0),
        )
        trainer = LogicLNCLClassifier(
            model, _cls_lncl_config(), np.random.default_rng(1), rule=ButRule(task.but_id)
        )
        trainer.fit(task.train, dev=task.dev)
        return trainer

    def test_inference_beats_majority_vote(self, sentiment_task, trained):
        mv = posterior_accuracy(
            sentiment_task.train.labels, majority_vote_posterior(sentiment_task.train.crowd)
        )
        ours = posterior_accuracy(sentiment_task.train.labels, trained.inference_posterior())
        assert ours >= mv - 0.01

    def test_teacher_not_worse_than_student_on_average(self, sentiment_task, trained):
        test = sentiment_task.test
        student = accuracy(test.labels, trained.predict_student(test.tokens, test.lengths))
        teacher = accuracy(test.labels, trained.predict_teacher(test.tokens, test.lengths))
        assert teacher >= student - 0.03

    def test_beats_two_stage_baseline_on_inference(self, sentiment_task, trained):
        baseline = TwoStageClassifier(
            TextCNN(
                sentiment_task.embeddings,
                TextCNNConfig(filter_windows=(2, 3), feature_maps=12),
                np.random.default_rng(0),
            ),
            MajorityVote(),
            TrainerConfig(epochs=8, batch_size=32, lr_decay_every=None, patience=4),
            np.random.default_rng(1),
        )
        baseline.fit(sentiment_task.train, sentiment_task.dev)
        base_inf = posterior_accuracy(
            sentiment_task.train.labels, baseline.inference_posterior()
        )
        ours_inf = posterior_accuracy(
            sentiment_task.train.labels, trained.inference_posterior()
        )
        assert ours_inf >= base_inf - 0.01

    def test_posteriors_consistent_with_mixture(self, trained):
        """qf = (1-k)·qa + k·qb must lie between qa and qb componentwise."""
        low = np.minimum(trained.qa_, trained.qb_)
        high = np.maximum(trained.qa_, trained.qb_)
        assert np.all(trained.qf_ >= low - 1e-9)
        assert np.all(trained.qf_ <= high + 1e-9)

    def test_confusions_are_valid_distributions(self, trained):
        np.testing.assert_allclose(trained.confusions_.sum(axis=2), 1.0, atol=1e-9)
        assert np.all(trained.confusions_ >= 0)


class TestNERPipeline:
    @pytest.fixture(scope="class")
    def trained(self, ner_task):
        model = NERTagger(
            ner_task.embeddings, NERTaggerConfig(conv_width=3, conv_features=64, gru_hidden=32),
            np.random.default_rng(0),
        )
        trainer = LogicLNCLSequenceTagger(
            model, _seq_lncl_config(), np.random.default_rng(1),
            rules=bio_transition_rules(CONLL_LABELS),
        )
        trainer.fit(ner_task.train, dev=ner_task.dev)
        return trainer

    def test_inference_beats_token_mv(self, ner_task, trained):
        mv = TokenLevelInference(MajorityVote()).infer(ner_task.train.crowd)
        mv_f1 = span_f1_score(ner_task.train.tags, mv.hard_labels()).f1
        ours_f1 = span_f1_score(
            ner_task.train.tags, [q.argmax(axis=1) for q in trained.inference_posterior()]
        ).f1
        assert ours_f1 >= mv_f1 - 0.01

    def test_teacher_produces_fewer_invalid_transitions(self, ner_task, trained):
        test = ner_task.test

        def invalid(sequences):
            bad = 0
            for seq in sequences:
                previous = "O"
                for tag in seq:
                    name = CONLL_LABELS[int(tag)]
                    if name.startswith("I-") and previous not in (f"B-{name[2:]}", name):
                        bad += 1
                    previous = name
            return bad

        assert invalid(trained.predict_teacher(test.tokens, test.lengths)) <= invalid(
            trained.predict_student(test.tokens, test.lengths)
        )

    def test_beats_two_stage_on_prediction(self, ner_task, trained):
        baseline = TwoStageSequenceTagger(
            NERTagger(
                ner_task.embeddings,
                NERTaggerConfig(conv_width=3, conv_features=64, gru_hidden=32),
                np.random.default_rng(0),
            ),
            TokenLevelInference(MajorityVote()),
            TrainerConfig(epochs=8, batch_size=32, optimizer="adam", learning_rate=1e-2,
                          lr_decay_every=None, patience=4),
            np.random.default_rng(1),
        )
        baseline.fit(ner_task.train, ner_task.dev)
        test = ner_task.test
        base = span_f1_score(test.tags, baseline.predict(test.tokens, test.lengths)).f1
        ours = span_f1_score(test.tags, trained.predict_student(test.tokens, test.lengths)).f1
        # One-stage EM should not lose badly to MV two-stage (paper: it wins).
        assert ours >= base - 0.05

    def test_qb_respects_transition_rules_globally(self, trained):
        """In qb, mass on sentence-initial I-X must be (near) zero."""
        inside_ids = [i for i, name in enumerate(CONLL_LABELS) if name.startswith("I-")]
        initial_mass = np.mean([qb[0, inside_ids].sum() for qb in trained.qb_])
        assert initial_mass < 0.05


class TestDeterminism:
    def test_same_seeds_same_results(self, sentiment_task):
        """The whole stack is driven by explicit RNGs: exact reproducibility."""

        def run():
            model = TextCNN(
                sentiment_task.embeddings,
                TextCNNConfig(filter_windows=(2,), feature_maps=6),
                np.random.default_rng(3),
            )
            trainer = LogicLNCLClassifier(
                model, _cls_lncl_config(epochs=3), np.random.default_rng(4),
                rule=ButRule(sentiment_task.but_id),
            )
            trainer.fit(sentiment_task.train)
            return trainer.qf_.copy(), trainer.model.output.weight.data.copy()

        qf_a, weight_a = run()
        qf_b, weight_b = run()
        np.testing.assert_array_equal(qf_a, qf_b)
        np.testing.assert_array_equal(weight_a, weight_b)
