"""Tests for imitation schedules, configs, and the pseudo-E-step math."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LogicLNCLConfig,
    constant,
    exponential_ramp,
    ner_paper_config,
    posterior_qa,
    sentiment_paper_config,
    sequence_posterior_qa,
    sequence_update_confusions,
    update_confusions,
)
from repro.crowd import MISSING, CrowdLabelMatrix, SequenceCrowdLabels

M = MISSING


class TestSchedules:
    def test_constant(self):
        schedule = constant(0.3)
        assert schedule(1) == 0.3
        assert schedule(100) == 0.3

    def test_constant_validation(self):
        with pytest.raises(ValueError):
            constant(1.5)

    def test_exponential_ramp_paper_sentiment(self):
        schedule = exponential_ramp(1.0, 0.94)
        assert schedule(1) == pytest.approx(1 - 0.94)
        assert schedule(10) == pytest.approx(1 - 0.94**10)
        assert schedule(200) == pytest.approx(1.0, abs=1e-4)

    def test_exponential_ramp_paper_ner_caps(self):
        schedule = exponential_ramp(0.8, 0.90)
        assert schedule(50) == pytest.approx(0.8)

    def test_ramp_monotone(self):
        schedule = exponential_ramp(1.0, 0.9)
        values = [schedule(t) for t in range(1, 30)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_epoch_one_based(self):
        with pytest.raises(ValueError):
            exponential_ramp(1.0, 0.9)(0)

    def test_ramp_validation(self):
        with pytest.raises(ValueError):
            exponential_ramp(2.0, 0.9)
        with pytest.raises(ValueError):
            exponential_ramp(1.0, 1.0)


class TestConfigs:
    def test_sentiment_paper_values(self):
        config = sentiment_paper_config()
        assert config.optimizer == "adadelta"
        assert config.batch_size == 50
        assert config.C == 5.0
        assert config.lr_decay_every == 5
        assert not config.weighted_loss
        assert config.imitation(1) == pytest.approx(0.06)

    def test_ner_paper_values(self):
        config = ner_paper_config()
        assert config.optimizer == "adam"
        assert config.batch_size == 64
        assert config.learning_rate == pytest.approx(1e-3)
        assert config.weighted_loss
        assert config.imitation(100) == pytest.approx(0.8)

    def test_validation(self):
        with pytest.raises(ValueError):
            LogicLNCLConfig(C=-1.0)
        with pytest.raises(ValueError):
            LogicLNCLConfig(confusion_smoothing=-0.1)
        with pytest.raises(ValueError):
            LogicLNCLConfig(optimizer="rmsprop")


class TestUpdateConfusions:
    def test_matches_eq12_hand_computation(self):
        # 3 instances, 1 annotator, 2 classes.
        crowd = CrowdLabelMatrix(np.array([[0], [1], [0]]), 2)
        qf = np.array([[1.0, 0.0], [0.0, 1.0], [0.5, 0.5]])
        pi = update_confusions(qf, crowd, smoothing=0.0)
        # Row 0 (true class 0): mass 1.5; says 0 on instances 0 (1.0) and 2 (0.5).
        np.testing.assert_allclose(pi[0, 0], [1.0, 0.0])
        # Row 1: mass 1.5; says 1 on instance 1 (1.0), says 0 on instance 2 (0.5).
        np.testing.assert_allclose(pi[0, 1], [1 / 3, 2 / 3])

    def test_missing_labels_excluded(self):
        crowd = CrowdLabelMatrix(np.array([[0, M], [M, 1]]), 2)
        qf = np.array([[1.0, 0.0], [0.0, 1.0]])
        pi = update_confusions(qf, crowd, smoothing=0.0)
        np.testing.assert_allclose(pi[0][0], [1.0, 0.0])  # annotator 0, true 0
        np.testing.assert_allclose(pi[1][1], [0.0, 1.0])  # annotator 1, true 1

    def test_smoothing_fills_unobserved_rows(self):
        crowd = CrowdLabelMatrix(np.array([[0]]), 2)
        qf = np.array([[1.0, 0.0]])
        pi = update_confusions(qf, crowd, smoothing=0.01)
        np.testing.assert_allclose(pi[0][1], [0.5, 0.5])  # no true-1 mass → uniform

    def test_rows_are_distributions(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 3, size=(50, 4))
        crowd = CrowdLabelMatrix(labels, 3)
        qf = rng.dirichlet(np.ones(3), size=50)
        pi = update_confusions(qf, crowd)
        np.testing.assert_allclose(pi.sum(axis=2), 1.0, atol=1e-9)

    def test_shape_validation(self):
        crowd = CrowdLabelMatrix(np.array([[0]]), 2)
        with pytest.raises(ValueError):
            update_confusions(np.ones((2, 2)) / 2, crowd)


class TestPosteriorQa:
    def test_matches_eq13_hand_computation(self):
        crowd = CrowdLabelMatrix(np.array([[1]]), 2)
        proba = np.array([[0.5, 0.5]])
        confusions = np.array([[[0.9, 0.1], [0.2, 0.8]]])
        qa = posterior_qa(proba, crowd, confusions)
        # qa(0) ∝ 0.5·π[0,1]=0.05; qa(1) ∝ 0.5·π[1,1]=0.4.
        np.testing.assert_allclose(qa[0], [0.05 / 0.45, 0.4 / 0.45])

    def test_no_annotations_returns_model(self):
        crowd = CrowdLabelMatrix(np.array([[M], [0]]), 2)
        proba = np.array([[0.7, 0.3], [0.7, 0.3]])
        confusions = np.array([[[0.9, 0.1], [0.1, 0.9]]])
        qa = posterior_qa(proba, crowd, confusions)
        np.testing.assert_allclose(qa[0], [0.7, 0.3])

    def test_many_annotators_overrule_model(self):
        labels = np.full((1, 10), 1)
        crowd = CrowdLabelMatrix(labels, 2)
        proba = np.array([[0.9, 0.1]])
        confusions = np.tile(np.array([[0.8, 0.2], [0.2, 0.8]]), (10, 1, 1))
        qa = posterior_qa(proba, crowd, confusions)
        assert qa[0, 1] > 0.99

    def test_confusion_shape_validated(self):
        crowd = CrowdLabelMatrix(np.array([[0]]), 2)
        with pytest.raises(ValueError):
            posterior_qa(np.array([[0.5, 0.5]]), crowd, np.ones((2, 2, 2)) / 2)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_property_rows_normalized(self, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, size=(20, 5))
        crowd = CrowdLabelMatrix(labels, 2)
        proba = rng.dirichlet(np.ones(2), size=20)
        confusions = np.stack(
            [r * np.eye(2) + (1 - r) / 2 for r in rng.uniform(0.5, 0.99, 5)]
        )
        qa = posterior_qa(proba, crowd, confusions)
        np.testing.assert_allclose(qa.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(qa >= 0)


class TestSequenceEM:
    def _crowd(self):
        return SequenceCrowdLabels(
            labels=[np.array([[0, 0], [1, 2]]), np.array([[2, M], [2, M], [0, M]])],
            num_classes=3,
            num_annotators=2,
        )

    def test_confusions_rows_normalized(self):
        crowd = self._crowd()
        qf = [np.full((2, 3), 1 / 3), np.full((3, 3), 1 / 3)]
        pi = sequence_update_confusions(qf, crowd)
        np.testing.assert_allclose(pi.sum(axis=2), 1.0, atol=1e-9)

    def test_posterior_qa_uses_all_annotators(self):
        crowd = self._crowd()
        proba = [np.full((2, 3), 1 / 3), np.full((3, 3), 1 / 3)]
        sharp = np.eye(3) * 0.9 + 0.05
        sharp /= sharp.sum(axis=1, keepdims=True)
        confusions = np.stack([sharp, sharp])
        qa = sequence_posterior_qa(proba, crowd, confusions)
        # First sentence token 0: both annotators said 0 → class 0 wins.
        assert qa[0][0].argmax() == 0
        # Second sentence tokens 0-1: annotator 0 said 2.
        assert qa[1][0].argmax() == 2

    def test_qf_shape_validated(self):
        crowd = self._crowd()
        with pytest.raises(ValueError):
            sequence_update_confusions([np.ones((5, 3)) / 3, np.ones((3, 3)) / 3], crowd)
