"""End-to-end tests for Logic-LNCL (classification)."""

import numpy as np
import pytest

from repro.core import LogicLNCLClassifier, LogicLNCLConfig, constant, exponential_ramp
from repro.eval import accuracy, posterior_accuracy
from repro.logic import ButRule
from repro.models import TextCNN, TextCNNConfig


def _config(epochs=5, **overrides):
    defaults = dict(
        epochs=epochs,
        batch_size=32,
        optimizer="adadelta",
        learning_rate=1.0,
        lr_decay_every=None,
        patience=3,
        C=5.0,
        imitation=exponential_ramp(1.0, 0.7),
    )
    defaults.update(overrides)
    return LogicLNCLConfig(**defaults)


def _model(task, seed=0):
    return TextCNN(
        task.embeddings,
        TextCNNConfig(filter_windows=(2, 3), feature_maps=8),
        np.random.default_rng(seed),
    )


class TestFitBasics:
    def test_requires_crowd_labels(self, sentiment_task):
        trainer = LogicLNCLClassifier(
            _model(sentiment_task), _config(1), np.random.default_rng(0)
        )
        with pytest.raises(ValueError):
            trainer.fit(sentiment_task.dev)  # dev split has no crowd labels

    def test_fit_populates_posteriors(self, sentiment_task):
        trainer = LogicLNCLClassifier(
            _model(sentiment_task), _config(2), np.random.default_rng(0),
            rule=ButRule(sentiment_task.but_id),
        )
        trainer.fit(sentiment_task.train, dev=sentiment_task.dev)
        I = len(sentiment_task.train)
        assert trainer.qa_.shape == (I, 2)
        assert trainer.qb_.shape == (I, 2)
        assert trainer.qf_.shape == (I, 2)
        assert trainer.confusions_.shape == (12, 2, 2)
        np.testing.assert_allclose(trainer.qf_.sum(axis=1), 1.0, atol=1e-9)

    def test_history_records_k_schedule(self, sentiment_task):
        trainer = LogicLNCLClassifier(
            _model(sentiment_task), _config(3, imitation=constant(0.5)),
            np.random.default_rng(0), rule=ButRule(sentiment_task.but_id),
        )
        history = trainer.fit(sentiment_task.train)
        assert history["k"] == [0.5, 0.5, 0.5]

    def test_rule_free_variant_has_zero_k(self, sentiment_task):
        trainer = LogicLNCLClassifier(
            _model(sentiment_task), _config(2), np.random.default_rng(0), rule=None
        )
        history = trainer.fit(sentiment_task.train)
        assert history["k"] == [0.0, 0.0]
        np.testing.assert_allclose(trainer.qa_, trainer.qb_)
        np.testing.assert_allclose(trainer.qa_, trainer.qf_)

    def test_inference_posterior_requires_fit(self, sentiment_task):
        trainer = LogicLNCLClassifier(
            _model(sentiment_task), _config(1), np.random.default_rng(0)
        )
        with pytest.raises(RuntimeError):
            trainer.inference_posterior()

    def test_fixed_qa_shape_validated(self, sentiment_task):
        trainer = LogicLNCLClassifier(
            _model(sentiment_task), _config(1), np.random.default_rng(0),
            fixed_qa=np.ones((3, 2)) / 2,
        )
        with pytest.raises(ValueError):
            trainer.fit(sentiment_task.train)


class TestLearningQuality:
    def test_beats_chance_and_tracks_truth(self, sentiment_task):
        trainer = LogicLNCLClassifier(
            _model(sentiment_task), _config(6), np.random.default_rng(0),
            rule=ButRule(sentiment_task.but_id),
        )
        trainer.fit(sentiment_task.train, dev=sentiment_task.dev)
        test = sentiment_task.test
        student = accuracy(test.labels, trainer.predict_student(test.tokens, test.lengths))
        assert student > 0.6
        inference = posterior_accuracy(
            sentiment_task.train.labels, trainer.inference_posterior()
        )
        assert inference > 0.75

    def test_inference_beats_mv_init(self, sentiment_task):
        from repro.inference import majority_vote_posterior

        mv_acc = posterior_accuracy(
            sentiment_task.train.labels,
            majority_vote_posterior(sentiment_task.train.crowd),
        )
        trainer = LogicLNCLClassifier(
            _model(sentiment_task), _config(6), np.random.default_rng(0),
            rule=ButRule(sentiment_task.but_id),
        )
        trainer.fit(sentiment_task.train, dev=sentiment_task.dev)
        lncl_acc = posterior_accuracy(
            sentiment_task.train.labels, trainer.inference_posterior()
        )
        assert lncl_acc >= mv_acc - 0.02

    def test_confusion_estimates_track_reality(self, sentiment_task):
        from repro.crowd import classification_annotator_report
        from repro.eval import compare_reliability

        trainer = LogicLNCLClassifier(
            _model(sentiment_task), _config(6), np.random.default_rng(0),
            rule=ButRule(sentiment_task.but_id),
        )
        trainer.fit(sentiment_task.train, dev=sentiment_task.dev)
        report = classification_annotator_report(
            sentiment_task.train.crowd, sentiment_task.train.labels
        )
        comparison = compare_reliability(
            trainer.confusions_, report.confusions,
            min_labels=10, counts=report.counts,
        )
        assert comparison.pearson > 0.5


class TestTeacherStudent:
    def test_teacher_equals_student_without_rule(self, sentiment_task):
        trainer = LogicLNCLClassifier(
            _model(sentiment_task), _config(2), np.random.default_rng(0), rule=None
        )
        trainer.fit(sentiment_task.train)
        test = sentiment_task.test
        np.testing.assert_allclose(
            trainer.predict_proba_teacher(test.tokens, test.lengths),
            trainer.predict_proba_student(test.tokens, test.lengths),
        )

    def test_teacher_differs_on_but_sentences(self, sentiment_task):
        trainer = LogicLNCLClassifier(
            _model(sentiment_task), _config(3), np.random.default_rng(0),
            rule=ButRule(sentiment_task.but_id),
        )
        trainer.fit(sentiment_task.train)
        test = sentiment_task.test
        student = trainer.predict_proba_student(test.tokens, test.lengths)
        teacher = trainer.predict_proba_teacher(test.tokens, test.lengths)
        has_but = np.array(
            [
                (test.tokens[i, : test.lengths[i]] == sentiment_task.but_id).any()
                for i in range(len(test))
            ]
        )
        # No groundings → identical; groundings → (generally) adapted.
        np.testing.assert_allclose(student[~has_but], teacher[~has_but], atol=1e-12)
        if has_but.any():
            assert np.abs(student[has_but] - teacher[has_but]).max() > 1e-6


class TestEarlyStopping:
    def test_stops_before_max_epochs_when_saturated(self, sentiment_task):
        trainer = LogicLNCLClassifier(
            _model(sentiment_task),
            _config(30, patience=2, imitation=constant(0.2)),
            np.random.default_rng(0),
            rule=ButRule(sentiment_task.but_id),
        )
        history = trainer.fit(sentiment_task.train, dev=sentiment_task.dev)
        assert len(history["loss"]) <= 30
        assert "best_dev_score" in history

    def test_best_state_restored(self, sentiment_task):
        trainer = LogicLNCLClassifier(
            _model(sentiment_task), _config(6, patience=2), np.random.default_rng(0),
            rule=ButRule(sentiment_task.but_id),
        )
        history = trainer.fit(sentiment_task.train, dev=sentiment_task.dev)
        dev = sentiment_task.dev
        restored = accuracy(dev.labels, trainer.predict_student(dev.tokens, dev.lengths))
        assert restored == pytest.approx(history["best_dev_score"], abs=1e-9)


class TestAblationHooks:
    def test_fixed_qa_stays_fixed(self, sentiment_task):
        from repro.inference import majority_vote_posterior

        mv = majority_vote_posterior(sentiment_task.train.crowd)
        trainer = LogicLNCLClassifier(
            _model(sentiment_task), _config(3), np.random.default_rng(0),
            rule=ButRule(sentiment_task.but_id), fixed_qa=mv,
        )
        trainer.fit(sentiment_task.train)
        np.testing.assert_allclose(trainer.qa_, mv)
        # qb still adapts via the rule.
        assert not np.allclose(trainer.qb_, mv)
