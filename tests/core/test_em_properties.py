"""Property-based tests for the EM math against brute-force references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import posterior_qa, update_confusions
from repro.crowd import MISSING, CrowdLabelMatrix
from repro.logic import chain_marginals, distill_posterior


def _random_crowd(rng, I, J, K, missing_rate=0.4):
    labels = rng.integers(0, K, size=(I, J))
    mask = rng.random((I, J)) < missing_rate
    labels = np.where(mask, MISSING, labels)
    # Guarantee at least one label per instance.
    for i in range(I):
        if (labels[i] == MISSING).all():
            labels[i, rng.integers(J)] = rng.integers(K)
    return CrowdLabelMatrix(labels, K)


def _random_posterior(rng, I, K):
    q = rng.random((I, K)) + 1e-3
    return q / q.sum(axis=1, keepdims=True)


def _brute_force_confusions(qf, crowd, smoothing):
    J, K = crowd.num_annotators, crowd.num_classes
    out = np.zeros((J, K, K))
    for j in range(J):
        counts = np.full((K, K), smoothing)
        for i in range(crowd.num_instances):
            label = crowd.labels[i, j]
            if label == MISSING:
                continue
            for m in range(K):
                counts[m, label] += qf[i, m]
        out[j] = counts / counts.sum(axis=1, keepdims=True)
    return out


def _brute_force_qa(proba, crowd, confusions):
    I, K = proba.shape
    out = np.zeros((I, K))
    for i in range(I):
        for k in range(K):
            value = proba[i, k]
            for j in range(crowd.num_annotators):
                label = crowd.labels[i, j]
                if label != MISSING:
                    value *= confusions[j, k, label]
            out[i, k] = value
        out[i] /= out[i].sum()
    return out


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_property_eq12_matches_brute_force(seed):
    rng = np.random.default_rng(seed)
    crowd = _random_crowd(rng, I=15, J=4, K=3)
    qf = _random_posterior(rng, 15, 3)
    fast = update_confusions(qf, crowd, smoothing=0.05)
    slow = _brute_force_confusions(qf, crowd, smoothing=0.05)
    np.testing.assert_allclose(fast, slow, atol=1e-10)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_property_eq13_matches_brute_force(seed):
    rng = np.random.default_rng(seed)
    crowd = _random_crowd(rng, I=12, J=4, K=3)
    proba = _random_posterior(rng, 12, 3)
    confusions = np.stack(
        [update_confusions(_random_posterior(rng, 12, 3), crowd, 0.1)[j] for j in range(4)]
    )
    fast = posterior_qa(proba, crowd, confusions)
    slow = _brute_force_qa(proba, crowd, confusions)
    np.testing.assert_allclose(fast, slow, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**16), C=st.floats(0.1, 8.0))
def test_property_distillation_reduces_expected_penalty(seed, C):
    """E_qb[penalty] ≤ E_qa[penalty]: the projection moves toward the rules."""
    rng = np.random.default_rng(seed)
    qa = _random_posterior(rng, 8, 4)
    penalties = rng.random((8, 4)) * 2
    qb = distill_posterior(qa, penalties, C)
    expected_before = (qa * penalties).sum(axis=1)
    expected_after = (qb * penalties).sum(axis=1)
    assert np.all(expected_after <= expected_before + 1e-9)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_property_chain_distillation_reduces_invalid_transition_mass(seed):
    """Chain marginals shift mass off rule-violating transitions."""
    from repro.logic import bio_transition_rules

    rng = np.random.default_rng(seed)
    labels = ["O", "B-PER", "I-PER"]
    rules = bio_transition_rules(labels)
    T = 6
    qa = _random_posterior(rng, T, 3)
    qb = chain_marginals(qa, rules.pairwise_potential(5.0), rules.initial_potential(5.0))
    # First-token I-PER mass must not grow.
    assert qb[0, 2] <= qa[0, 2] + 1e-9
    np.testing.assert_allclose(qb.sum(axis=1), 1.0, atol=1e-9)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_property_qa_sharpness_grows_with_annotations(seed):
    """More (consistent) annotations → more confident qa."""
    rng = np.random.default_rng(seed)
    K = 2
    proba = np.array([[0.5, 0.5]])
    sharp = np.array([[0.8, 0.2], [0.2, 0.8]])
    few = CrowdLabelMatrix(np.array([[1, MISSING, MISSING]]), K)
    many = CrowdLabelMatrix(np.array([[1, 1, 1]]), K)
    confusions = np.stack([sharp] * 3)
    qa_few = posterior_qa(proba, few, confusions)
    qa_many = posterior_qa(proba, many, confusions)
    assert qa_many[0, 1] >= qa_few[0, 1]


class TestExamplesCompile:
    """Examples must at least be syntactically valid and importable."""

    @pytest.mark.parametrize(
        "name",
        [
            "quickstart",
            "ner_crowdsourcing",
            "custom_rules",
            "truth_inference_comparison",
            "weak_supervision",
        ],
    )
    def test_example_compiles(self, name):
        import pathlib
        import py_compile

        path = pathlib.Path(__file__).parents[2] / "examples" / f"{name}.py"
        assert path.exists(), path
        py_compile.compile(str(path), doraise=True)
