"""End-to-end tests for Logic-LNCL (sequence tagging / NER)."""

import numpy as np
import pytest

from repro.core import LogicLNCLConfig, LogicLNCLSequenceTagger, constant
from repro.data import CONLL_LABELS, label_index
from repro.eval import span_f1_score
from repro.logic import bio_transition_rules
from repro.models import NERTagger, NERTaggerConfig

IDX = label_index(CONLL_LABELS)


def _config(epochs=3, **overrides):
    defaults = dict(
        epochs=epochs,
        batch_size=32,
        optimizer="adam",
        learning_rate=1e-2,
        lr_decay_every=None,
        patience=5,
        weighted_loss=True,
        C=5.0,
        imitation=constant(0.5),
    )
    defaults.update(overrides)
    return LogicLNCLConfig(**defaults)


def _model(task, seed=0):
    return NERTagger(
        task.embeddings,
        NERTaggerConfig(conv_width=3, conv_features=64, gru_hidden=32),
        np.random.default_rng(seed),
    )


def _rules():
    return bio_transition_rules(CONLL_LABELS)


class TestFitBasics:
    def test_requires_crowd(self, ner_task):
        trainer = LogicLNCLSequenceTagger(
            _model(ner_task), _config(1), np.random.default_rng(0)
        )
        with pytest.raises(ValueError):
            trainer.fit(ner_task.dev)

    def test_posteriors_shapes(self, ner_task):
        trainer = LogicLNCLSequenceTagger(
            _model(ner_task), _config(2), np.random.default_rng(0), rules=_rules()
        )
        trainer.fit(ner_task.train, dev=ner_task.dev)
        assert len(trainer.qf_) == len(ner_task.train)
        for qf, tags in zip(trainer.qf_, ner_task.train.tags):
            assert qf.shape == (len(tags), 9)
            np.testing.assert_allclose(qf.sum(axis=1), 1.0, atol=1e-9)
        assert trainer.confusions_.shape == (8, 9, 9)

    def test_rule_free_variant(self, ner_task):
        trainer = LogicLNCLSequenceTagger(
            _model(ner_task), _config(2), np.random.default_rng(0), rules=None
        )
        history = trainer.fit(ner_task.train)
        assert history["k"] == [0.0, 0.0]
        for qa, qf in zip(trainer.qa_, trainer.qf_):
            np.testing.assert_allclose(qa, qf)


class TestRuleEffects:
    def test_qb_suppresses_invalid_transitions(self, ner_task):
        """After distillation, sentence-initial I-X mass must shrink."""
        trainer = LogicLNCLSequenceTagger(
            _model(ner_task), _config(2), np.random.default_rng(0), rules=_rules()
        )
        trainer.fit(ner_task.train)
        inside_ids = [IDX[name] for name in CONLL_LABELS if name.startswith("I-")]
        qa_initial_mass = np.mean([qa[0, inside_ids].sum() for qa in trainer.qa_])
        qb_initial_mass = np.mean([qb[0, inside_ids].sum() for qb in trainer.qb_])
        assert qb_initial_mass <= qa_initial_mass + 1e-9

    def test_teacher_decodes_valid_sequences_more_often(self, ner_task):
        trainer = LogicLNCLSequenceTagger(
            _model(ner_task), _config(3), np.random.default_rng(0), rules=_rules()
        )
        trainer.fit(ner_task.train, dev=ner_task.dev)
        test = ner_task.test

        def invalid_transitions(sequences):
            bad = 0
            for seq in sequences:
                previous = "O"
                for tag in seq:
                    name = CONLL_LABELS[int(tag)]
                    if name.startswith("I-") and previous not in (
                        f"B-{name[2:]}", name
                    ):
                        bad += 1
                    previous = name
            return bad

        student_bad = invalid_transitions(trainer.predict_student(test.tokens, test.lengths))
        teacher_bad = invalid_transitions(trainer.predict_teacher(test.tokens, test.lengths))
        assert teacher_bad <= student_bad

    def test_learns_better_than_chance(self, ner_task):
        trainer = LogicLNCLSequenceTagger(
            _model(ner_task), _config(8), np.random.default_rng(0), rules=_rules()
        )
        trainer.fit(ner_task.train, dev=ner_task.dev)
        test = ner_task.test
        f1 = span_f1_score(test.tags, trainer.predict_teacher(test.tokens, test.lengths)).f1
        assert f1 > 0.2

    def test_inference_posterior_tracks_truth(self, ner_task):
        trainer = LogicLNCLSequenceTagger(
            _model(ner_task), _config(4), np.random.default_rng(0), rules=_rules()
        )
        trainer.fit(ner_task.train, dev=ner_task.dev)
        predictions = [qf.argmax(axis=1) for qf in trainer.inference_posterior()]
        f1 = span_f1_score(ner_task.train.tags, predictions).f1
        assert f1 > 0.4


class TestEarlyStoppingSequence:
    def test_best_restored(self, ner_task):
        trainer = LogicLNCLSequenceTagger(
            _model(ner_task), _config(4, patience=2), np.random.default_rng(0),
            rules=_rules(),
        )
        history = trainer.fit(ner_task.train, dev=ner_task.dev)
        dev = ner_task.dev
        f1 = span_f1_score(dev.tags, trainer.predict_student(dev.tokens, dev.lengths)).f1
        assert f1 == pytest.approx(history["best_dev_score"], abs=1e-9)


class TestEmptyTrainingSet:
    def test_fit_on_empty_train_is_noop_epochs(self):
        """PR 5 empty-training-set contract extended to the Logic-LNCL
        entry point: zero sentences means no-op epochs (loss 0.0) and an
        untouched (finite) output bias, not an opaque crash."""
        from repro.crowd import SequenceCrowdLabels
        from repro.data.datasets import SequenceTaggingDataset
        from repro.data.vocab import Vocabulary

        rng = np.random.default_rng(0)
        embeddings = rng.normal(size=(30, 8))
        model = NERTagger(
            embeddings,
            NERTaggerConfig(conv_width=3, conv_features=8, gru_hidden=4),
            rng,
        )
        train = SequenceTaggingDataset(
            tokens=np.zeros((0, 7), dtype=np.int64),
            lengths=np.zeros(0, dtype=np.int64),
            tags=[],
            vocab=Vocabulary(["a"]),
            label_names=list(CONLL_LABELS),
            crowd=SequenceCrowdLabels([], num_classes=9, num_annotators=3),
        )
        trainer = LogicLNCLSequenceTagger(model, _config(2), rng, rules=None)
        history = trainer.fit(train)
        assert history["loss"] == [0.0, 0.0]
        assert trainer.qf_ == []
        for value in model.state_dict().values():
            assert np.isfinite(value).all()
