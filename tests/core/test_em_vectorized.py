"""Equivalence tests: vectorized sequence-EM vs. the loop references.

The vectorized Eq. 12 / Eq. 13 implementations (flat token matrix + sparse
incidence / bincount accumulation) must match the per-sentence /
per-annotator loop implementations on random ragged crowds, including the
degenerate cases (annotators who labeled nothing, sentences with a single
annotator).
"""

import numpy as np
import pytest

from repro.core.em import (
    sequence_posterior_qa,
    sequence_posterior_qa_reference,
    sequence_update_confusions,
    sequence_update_confusions_reference,
)
from repro.crowd.types import MISSING, SequenceCrowdLabels


def random_crowd(seed, instances=40, annotators=11, classes=5, t_max=12):
    rng = np.random.default_rng(seed)
    labels = []
    for i in range(instances):
        t = int(rng.integers(1, t_max + 1))
        matrix = np.full((t, annotators), MISSING, dtype=np.int64)
        # 1..4 annotators per sentence; annotator 0 never labels anything.
        chosen = rng.choice(np.arange(1, annotators), size=rng.integers(1, 5), replace=False)
        for j in chosen:
            matrix[:, j] = rng.integers(0, classes, size=t)
        labels.append(matrix)
    crowd = SequenceCrowdLabels(labels, classes, annotators)
    qf = [rng.dirichlet(np.ones(classes), size=m.shape[0]) for m in labels]
    proba = [rng.dirichlet(np.ones(classes), size=m.shape[0]) for m in labels]
    return crowd, qf, proba


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_update_confusions_matches_reference(seed):
    crowd, qf, _ = random_crowd(seed)
    vectorized = sequence_update_confusions(qf, crowd)
    reference = sequence_update_confusions_reference(qf, crowd)
    np.testing.assert_allclose(vectorized, reference, atol=1e-12, rtol=0)
    # Rows are proper distributions.
    np.testing.assert_allclose(vectorized.sum(axis=2), 1.0, atol=1e-12)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_posterior_qa_matches_reference(seed):
    crowd, qf, proba = random_crowd(seed)
    confusions = sequence_update_confusions(qf, crowd)
    vectorized = sequence_posterior_qa(proba, crowd, confusions)
    reference = sequence_posterior_qa_reference(proba, crowd, confusions)
    assert len(vectorized) == len(reference)
    for new, old in zip(vectorized, reference):
        np.testing.assert_allclose(new, old, atol=1e-12, rtol=0)


def test_bincount_fallback_matches_sparse(monkeypatch):
    """Force the scipy-less path and check it agrees with the sparse one."""
    crowd, qf, proba = random_crowd(3)
    confusions = sequence_update_confusions(qf, crowd)
    sparse_post = sequence_posterior_qa(proba, crowd, confusions)

    crowd_no_scipy, _, _ = random_crowd(3)
    monkeypatch.setattr(
        type(crowd_no_scipy), "token_label_incidence", lambda self: None
    )
    fallback_conf = sequence_update_confusions(qf, crowd_no_scipy)
    fallback_post = sequence_posterior_qa(proba, crowd_no_scipy, confusions)
    np.testing.assert_allclose(fallback_conf, confusions, atol=1e-12, rtol=0)
    for a, b in zip(sparse_post, fallback_post):
        np.testing.assert_allclose(a, b, atol=1e-12, rtol=0)


def test_shape_validation_still_raises():
    crowd, qf, _ = random_crowd(4)
    qf[3] = qf[3][:-1]  # truncate one sentence's posterior
    with pytest.raises(ValueError):
        sequence_update_confusions(qf, crowd)


def test_flat_caches_consistent_with_loops():
    crowd, _, _ = random_crowd(5)
    stacked, offsets = crowd.flat_labels()
    assert stacked.shape[0] == sum(m.shape[0] for m in crowd.labels)
    votes_flat = crowd.token_vote_counts_flat()
    for i in range(crowd.num_instances):
        np.testing.assert_array_equal(
            votes_flat[offsets[i] : offsets[i + 1]], crowd.token_vote_counts(i)
        )
        expected = np.nonzero((crowd.labels[i] != MISSING).all(axis=0))[0]
        np.testing.assert_array_equal(crowd.annotators_of(i), expected)
    assert crowd.annotations_per_instance().tolist() == [
        len(crowd.annotators_of(i)) for i in range(crowd.num_instances)
    ]
