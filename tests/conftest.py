"""Shared fixtures: small crowd-labeled sentiment and NER tasks.

Session-scoped so the (comparatively) expensive corpus + crowd simulation
runs once. Tests must not mutate the fixtures; trainers that need a model
build their own from the fixture's embeddings.
"""

import numpy as np
import pytest

from repro.crowd import (
    sample_annotator_pool,
    sample_ner_pool,
    simulate_classification_crowd,
    simulate_ner_crowd,
)
from repro.data import (
    NERCorpusConfig,
    SentimentCorpusConfig,
    make_ner_task,
    make_sentiment_task,
)


@pytest.fixture(scope="session")
def sentiment_task():
    """Sentiment task with crowd labels attached to the training split."""
    rng = np.random.default_rng(1234)
    task = make_sentiment_task(
        rng,
        SentimentCorpusConfig(
            num_train=400, num_dev=120, num_test=120, embedding_dim=24,
            num_positive_words=30, num_negative_words=30, num_neutral_words=60,
        ),
    )
    pool = sample_annotator_pool(rng, 12, 2)
    task.train.crowd = simulate_classification_crowd(
        rng, task.train.labels, pool, mean_labels_per_instance=5.0
    )
    task.annotator_pool = pool
    return task


@pytest.fixture(scope="session")
def ner_task():
    """NER task with token-level crowd labels on the training split."""
    rng = np.random.default_rng(4321)
    task = make_ner_task(
        rng,
        NERCorpusConfig(
            num_train=150, num_dev=40, num_test=40, embedding_dim=24,
            tokens_per_type=20, num_filler_words=40,
        ),
    )
    pool = sample_ner_pool(rng, 8)
    task.train.crowd = simulate_ner_crowd(
        rng, task.train.tags, pool, mean_labels_per_instance=4.0
    )
    task.annotator_pool = pool
    return task
