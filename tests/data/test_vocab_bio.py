"""Tests for Vocabulary and the BIO span utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    CONLL_LABELS,
    PAD_TOKEN,
    UNK_TOKEN,
    Vocabulary,
    bio_from_spans,
    label_index,
    spans_from_bio,
)

IDX = label_index(CONLL_LABELS)


class TestVocabulary:
    def test_specials_reserved(self):
        vocab = Vocabulary()
        assert vocab.pad_id == 0
        assert vocab.unk_id == 1
        assert vocab.token_of(0) == PAD_TOKEN
        assert vocab.token_of(1) == UNK_TOKEN
        assert len(vocab) == 2

    def test_add_idempotent(self):
        vocab = Vocabulary()
        first = vocab.add("hello")
        second = vocab.add("hello")
        assert first == second
        assert len(vocab) == 3

    def test_add_empty_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary().add("")

    def test_unknown_resolves_to_unk(self):
        vocab = Vocabulary(["a"])
        assert vocab.id_of("zzz") == vocab.unk_id

    def test_encode_decode_roundtrip(self):
        vocab = Vocabulary(["the", "cat"])
        ids = vocab.encode(["the", "cat", "the"])
        assert vocab.decode(ids) == ["the", "cat", "the"]

    def test_contains(self):
        vocab = Vocabulary(["x"])
        assert "x" in vocab
        assert "y" not in vocab

    def test_token_of_out_of_range(self):
        with pytest.raises(IndexError):
            Vocabulary().token_of(99)

    def test_constructor_seeds_tokens(self):
        vocab = Vocabulary(["a", "b"])
        assert vocab.id_of("a") == 2
        assert vocab.id_of("b") == 3


class TestSpansFromBio:
    def test_empty_sentence(self):
        assert spans_from_bio(np.array([], dtype=int)) == []

    def test_all_outside(self):
        tags = np.array([IDX["O"]] * 4)
        assert spans_from_bio(tags) == []

    def test_single_entity(self):
        tags = np.array([IDX["O"], IDX["B-PER"], IDX["I-PER"], IDX["O"]])
        assert spans_from_bio(tags) == [("PER", 1, 3)]

    def test_entity_at_end(self):
        tags = np.array([IDX["O"], IDX["B-LOC"]])
        assert spans_from_bio(tags) == [("LOC", 1, 2)]

    def test_adjacent_entities_with_b(self):
        tags = np.array([IDX["B-PER"], IDX["B-PER"]])
        assert spans_from_bio(tags) == [("PER", 0, 1), ("PER", 1, 2)]

    def test_bare_inside_starts_span(self):
        # conlleval-style repair: bare I-ORG becomes a span.
        tags = np.array([IDX["O"], IDX["I-ORG"], IDX["I-ORG"]])
        assert spans_from_bio(tags) == [("ORG", 1, 3)]

    def test_type_switch_splits_span(self):
        tags = np.array([IDX["B-PER"], IDX["I-LOC"]])
        assert spans_from_bio(tags) == [("PER", 0, 1), ("LOC", 1, 2)]

    def test_multiple_types(self):
        tags = np.array(
            [IDX["B-ORG"], IDX["I-ORG"], IDX["O"], IDX["B-MISC"], IDX["O"], IDX["B-LOC"], IDX["I-LOC"]]
        )
        assert spans_from_bio(tags) == [("ORG", 0, 2), ("MISC", 3, 4), ("LOC", 5, 7)]


class TestBioFromSpans:
    def test_renders_single_span(self):
        tags = bio_from_spans([("PER", 1, 3)], 4)
        np.testing.assert_array_equal(
            tags, [IDX["O"], IDX["B-PER"], IDX["I-PER"], IDX["O"]]
        )

    def test_invalid_span_rejected(self):
        with pytest.raises(ValueError):
            bio_from_spans([("PER", 2, 2)], 4)
        with pytest.raises(ValueError):
            bio_from_spans([("PER", 0, 9)], 4)

    def test_unknown_type_rejected(self):
        with pytest.raises(KeyError):
            bio_from_spans([("XYZ", 0, 1)], 2)

    def test_later_spans_overwrite(self):
        tags = bio_from_spans([("PER", 0, 3), ("LOC", 1, 2)], 3)
        assert ("LOC", 1, 2) in spans_from_bio(tags)

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_property_roundtrip_on_wellformed(self, seed):
        """spans→BIO→spans is the identity for non-overlapping spans."""
        rng = np.random.default_rng(seed)
        length = int(rng.integers(5, 20))
        spans = []
        cursor = 0
        while cursor < length - 1:
            if rng.random() < 0.5:
                span_len = int(rng.integers(1, min(4, length - cursor) + 1))
                entity = ["PER", "LOC", "ORG", "MISC"][rng.integers(4)]
                spans.append((entity, cursor, cursor + span_len))
                cursor += span_len + 1  # gap avoids adjacent same-type merging
            else:
                cursor += 1
        tags = bio_from_spans(spans, length)
        assert spans_from_bio(tags) == spans
