"""Tests for the synthetic sentiment and NER corpus generators."""

import numpy as np
import pytest

from repro.data import (
    CONLL_LABELS,
    NERCorpusConfig,
    SentimentCorpusConfig,
    label_index,
    make_ner_task,
    make_sentiment_task,
    spans_from_bio,
)


def _small_sentiment_config(**overrides):
    defaults = dict(num_train=200, num_dev=50, num_test=50, embedding_dim=16)
    defaults.update(overrides)
    return SentimentCorpusConfig(**defaults)


class TestSentimentCorpus:
    def test_split_sizes(self):
        task = make_sentiment_task(np.random.default_rng(0), _small_sentiment_config())
        assert len(task.train) == 200
        assert len(task.dev) == 50
        assert len(task.test) == 50

    def test_labels_binary_and_roughly_balanced(self):
        task = make_sentiment_task(np.random.default_rng(0), _small_sentiment_config())
        labels = task.train.labels
        assert set(np.unique(labels)) <= {0, 1}
        assert 0.3 < labels.mean() < 0.7

    def test_but_sentences_present_at_configured_rate(self):
        config = _small_sentiment_config(num_train=600)
        task = make_sentiment_task(np.random.default_rng(1), config)
        has_but = np.array(
            [
                (task.train.tokens[i, : task.train.lengths[i]] == task.but_id).any()
                for i in range(len(task.train))
            ]
        )
        assert abs(has_but.mean() - config.but_fraction) < 0.07

    def test_but_clause_b_predicts_label(self):
        """In 'A but B' sentences, clause-B polarity words should match the
        label at roughly the configured dominance rate."""
        config = _small_sentiment_config(num_train=800, but_dominance=0.95)
        task = make_sentiment_task(np.random.default_rng(2), config)
        pos_set = {task.vocab.id_of(f"pos{i}") for i in range(config.num_positive_words)}
        neg_set = {task.vocab.id_of(f"neg{i}") for i in range(config.num_negative_words)}
        agree = total = 0
        for i in range(len(task.train)):
            tokens = task.train.tokens[i, : task.train.lengths[i]]
            positions = np.nonzero(tokens == task.but_id)[0]
            if positions.size == 0:
                continue
            clause_b = tokens[positions[-1] + 1 :]
            pos_count = sum(1 for t in clause_b if int(t) in pos_set)
            neg_count = sum(1 for t in clause_b if int(t) in neg_set)
            if pos_count == neg_count:
                continue
            lean = 1 if pos_count > neg_count else 0
            agree += lean == task.train.labels[i]
            total += 1
        assert total > 20
        assert agree / total > 0.75

    def test_embeddings_shape_and_pad_zero(self):
        config = _small_sentiment_config()
        task = make_sentiment_task(np.random.default_rng(0), config)
        assert task.embeddings.shape == (len(task.vocab), config.embedding_dim)
        np.testing.assert_allclose(task.embeddings[0], 0.0)

    def test_no_crowd_attached(self):
        task = make_sentiment_task(np.random.default_rng(0), _small_sentiment_config())
        assert task.train.crowd is None

    def test_deterministic_given_seed(self):
        a = make_sentiment_task(np.random.default_rng(7), _small_sentiment_config())
        b = make_sentiment_task(np.random.default_rng(7), _small_sentiment_config())
        np.testing.assert_array_equal(a.train.tokens, b.train.tokens)
        np.testing.assert_array_equal(a.train.labels, b.train.labels)
        np.testing.assert_allclose(a.embeddings, b.embeddings)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SentimentCorpusConfig(but_fraction=0.8, however_fraction=0.3)
        with pytest.raises(ValueError):
            SentimentCorpusConfig(but_dominance=1.5)
        with pytest.raises(ValueError):
            SentimentCorpusConfig(min_length=10, max_length=5)


def _small_ner_config(**overrides):
    defaults = dict(num_train=120, num_dev=40, num_test=40, embedding_dim=16)
    defaults.update(overrides)
    return NERCorpusConfig(**defaults)


class TestNERCorpus:
    def test_split_sizes_and_labels(self):
        task = make_ner_task(np.random.default_rng(0), _small_ner_config())
        assert len(task.train) == 120
        assert task.label_names == CONLL_LABELS

    def test_tags_are_valid_bio(self):
        task = make_ner_task(np.random.default_rng(0), _small_ner_config())
        idx = label_index(CONLL_LABELS)
        inverse = {v: k for k, v in idx.items()}
        for tags in task.train.tags:
            previous = "O"
            for tag in tags:
                name = inverse[int(tag)]
                if name.startswith("I-"):
                    assert previous in (f"B-{name[2:]}", name), (previous, name)
                previous = name

    def test_every_sentence_has_entities(self):
        task = make_ner_task(np.random.default_rng(1), _small_ner_config())
        for tags in task.train.tags:
            assert len(spans_from_bio(tags)) >= 1

    def test_multi_token_entities_exist(self):
        task = make_ner_task(np.random.default_rng(2), _small_ner_config())
        lengths = [
            end - start
            for tags in task.train.tags
            for _, start, end in spans_from_bio(tags)
        ]
        assert max(lengths) >= 2  # transition rules have work to do

    def test_all_entity_types_appear(self):
        task = make_ner_task(np.random.default_rng(3), _small_ner_config(num_train=200))
        types = {
            span[0] for tags in task.train.tags for span in spans_from_bio(tags)
        }
        assert types == {"PER", "LOC", "ORG", "MISC"}

    def test_ambiguous_tokens_shared_between_pools(self):
        task = make_ner_task(np.random.default_rng(0), _small_ner_config())
        assert any(tok.startswith("amb") for tok in [task.vocab.token_of(i) for i in range(2, len(task.vocab))])

    def test_embeddings_shape(self):
        config = _small_ner_config()
        task = make_ner_task(np.random.default_rng(0), config)
        assert task.embeddings.shape == (len(task.vocab), config.embedding_dim)

    def test_deterministic_given_seed(self):
        a = make_ner_task(np.random.default_rng(5), _small_ner_config())
        b = make_ner_task(np.random.default_rng(5), _small_ner_config())
        np.testing.assert_array_equal(a.train.tokens, b.train.tokens)
        for ta, tb in zip(a.train.tags, b.train.tags):
            np.testing.assert_array_equal(ta, tb)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            NERCorpusConfig(ambiguous_fraction=1.5)
        with pytest.raises(ValueError):
            NERCorpusConfig(min_entities=3, max_entities=1)
        with pytest.raises(ValueError):
            NERCorpusConfig(max_entity_tokens=0)
