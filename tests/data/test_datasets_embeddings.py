"""Tests for dataset containers, padding, loaders, and embeddings."""

import numpy as np
import pytest

from repro.crowd import MISSING, CrowdLabelMatrix
from repro.data import (
    PrototypeEmbeddings,
    SequenceTaggingDataset,
    TextClassificationDataset,
    Vocabulary,
    batch_indices,
    pad_sequences,
)


class TestPadSequences:
    def test_pads_to_longest(self):
        tokens, lengths = pad_sequences([np.array([1, 2]), np.array([3, 4, 5])], pad_id=9)
        np.testing.assert_array_equal(tokens, [[1, 2, 9], [3, 4, 5]])
        np.testing.assert_array_equal(lengths, [2, 3])

    def test_rejects_empty_list(self):
        with pytest.raises(ValueError):
            pad_sequences([])

    def test_rejects_empty_sequence(self):
        with pytest.raises(ValueError):
            pad_sequences([np.array([], dtype=int)])


def _tiny_classification(crowd=None):
    vocab = Vocabulary(["a", "b"])
    return TextClassificationDataset(
        tokens=np.array([[2, 3, 0], [3, 2, 2]]),
        lengths=np.array([2, 3]),
        labels=np.array([0, 1]),
        vocab=vocab,
        num_classes=2,
        crowd=crowd,
    )


class TestTextClassificationDataset:
    def test_mask_from_lengths(self):
        ds = _tiny_classification()
        np.testing.assert_array_equal(ds.mask, [[True, True, False], [True, True, True]])

    def test_row_count_validation(self):
        with pytest.raises(ValueError):
            TextClassificationDataset(
                tokens=np.zeros((2, 3), dtype=int),
                lengths=np.array([1]),
                labels=np.array([0, 1]),
                vocab=Vocabulary(),
                num_classes=2,
            )

    def test_crowd_row_count_validation(self):
        crowd = CrowdLabelMatrix(np.full((3, 2), MISSING), 2)
        with pytest.raises(ValueError):
            _tiny_classification(crowd=crowd)

    def test_subset_slices_everything(self):
        crowd = CrowdLabelMatrix(np.array([[0, MISSING], [1, 0]]), 2)
        ds = _tiny_classification(crowd=crowd)
        sub = ds.subset(np.array([1]))
        assert len(sub) == 1
        assert sub.labels[0] == 1
        assert sub.crowd.num_instances == 1


class TestSequenceTaggingDataset:
    def _tiny(self):
        return SequenceTaggingDataset(
            tokens=np.array([[2, 3, 0], [3, 2, 2]]),
            lengths=np.array([2, 3]),
            tags=[np.array([0, 1]), np.array([0, 1, 2])],
            vocab=Vocabulary(["a", "b"]),
            label_names=["O", "B-PER", "I-PER"],
        )

    def test_tag_length_validation(self):
        with pytest.raises(ValueError):
            SequenceTaggingDataset(
                tokens=np.array([[2, 3]]),
                lengths=np.array([2]),
                tags=[np.array([0])],
                vocab=Vocabulary(),
                label_names=["O", "B-PER"],
            )

    def test_padded_tags(self):
        ds = self._tiny()
        np.testing.assert_array_equal(ds.padded_tags(), [[0, 1, 0], [0, 1, 2]])

    def test_num_classes(self):
        assert self._tiny().num_classes == 3

    def test_subset(self):
        sub = self._tiny().subset(np.array([0]))
        assert len(sub) == 1
        np.testing.assert_array_equal(sub.tags[0], [0, 1])


class TestBatchIndices:
    def test_covers_everything_once(self):
        batches = list(batch_indices(10, 3, shuffle=False))
        joined = np.concatenate(batches)
        np.testing.assert_array_equal(np.sort(joined), np.arange(10))
        assert [len(b) for b in batches] == [3, 3, 3, 1]

    def test_drop_last(self):
        batches = list(batch_indices(10, 3, shuffle=False, drop_last=True))
        assert [len(b) for b in batches] == [3, 3, 3]

    def test_shuffle_requires_rng(self):
        with pytest.raises(ValueError):
            list(batch_indices(10, 3, shuffle=True))

    def test_shuffle_is_permutation(self):
        rng = np.random.default_rng(0)
        joined = np.concatenate(list(batch_indices(10, 4, rng=rng)))
        np.testing.assert_array_equal(np.sort(joined), np.arange(10))

    def test_empty_dataset_yields_no_batches(self):
        # The empty-dataset contract: zero instances is a no-op epoch
        # (callers see zero batches), not an opaque ValueError.
        assert list(batch_indices(0, 3, shuffle=False)) == []
        rng = np.random.default_rng(0)
        assert list(batch_indices(0, 3, rng=rng)) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            list(batch_indices(-1, 3, shuffle=False))
        with pytest.raises(ValueError):
            list(batch_indices(5, 0, shuffle=False))


class TestPrototypeEmbeddings:
    def test_prototype_unit_norm_and_cached(self):
        factory = PrototypeEmbeddings(16, 0.5, np.random.default_rng(0))
        p1 = factory.prototype("x")
        p2 = factory.prototype("x")
        assert p1 is p2
        np.testing.assert_allclose(np.linalg.norm(p1), 1.0)

    def test_opposed_prototypes_anticorrelated(self):
        factory = PrototypeEmbeddings(32, 0.5, np.random.default_rng(0))
        factory.opposed_prototypes("pos", "neg", anticorrelation=0.6)
        cos = factory.prototype("pos") @ factory.prototype("neg")
        assert cos == pytest.approx(-0.6, abs=1e-9)

    def test_vector_mixture_of_roles(self):
        factory = PrototypeEmbeddings(64, 0.0, np.random.default_rng(0))
        a = factory.prototype("a")
        b = factory.prototype("b")
        mixed = factory.vector(["a", "b"])
        np.testing.assert_allclose(mixed, (a + b) / 2, atol=1e-12)

    def test_build_matrix_pad_row_zero(self):
        factory = PrototypeEmbeddings(8, 0.5, np.random.default_rng(0))
        matrix = factory.build_matrix(["a", "a", None])
        np.testing.assert_allclose(matrix[0], 0.0)
        assert matrix.shape == (3, 8)

    def test_same_role_words_cluster(self):
        factory = PrototypeEmbeddings(64, 0.3, np.random.default_rng(0))
        factory.opposed_prototypes("pos", "neg", anticorrelation=0.9)
        pos_words = np.array([factory.vector("pos") for _ in range(20)])
        neg_words = np.array([factory.vector("neg") for _ in range(20)])
        within = pos_words.mean(axis=0) @ factory.prototype("pos")
        across = neg_words.mean(axis=0) @ factory.prototype("pos")
        assert within > across

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            PrototypeEmbeddings(1, 0.5, rng)
        with pytest.raises(ValueError):
            PrototypeEmbeddings(8, -1.0, rng)
        factory = PrototypeEmbeddings(8, 0.5, rng)
        with pytest.raises(ValueError):
            factory.vector([])
        with pytest.raises(ValueError):
            factory.opposed_prototypes("a", "b", anticorrelation=2.0)
