"""Tests for real-dataset file I/O (CoNLL, crowd files, sentiment TSV)."""

import numpy as np
import pytest

from repro.crowd import MISSING
from repro.data import CONLL_LABELS
from repro.data.io import (
    read_conll,
    read_crowd_conll,
    read_crowd_csv,
    read_sentiment_tsv,
    write_conll,
    write_crowd_csv,
)

CONLL_TEXT = """\
John\tB-PER
Smith\tI-PER
visited\tO
Paris\tB-LOC

EU\tB-ORG
rejects\tO
"""


class TestReadConll:
    def test_parses_sentences(self, tmp_path):
        path = tmp_path / "gold.conll"
        path.write_text(CONLL_TEXT)
        ds = read_conll(path)
        assert len(ds) == 2
        assert ds.lengths.tolist() == [4, 2]
        assert [CONLL_LABELS[t] for t in ds.tags[0]] == ["B-PER", "I-PER", "O", "B-LOC"]

    def test_vocab_roundtrip_and_unk(self, tmp_path):
        path = tmp_path / "gold.conll"
        path.write_text(CONLL_TEXT)
        train = read_conll(path)
        other = tmp_path / "dev.conll"
        other.write_text("John\tB-PER\nBerlin\tB-LOC\n")
        dev = read_conll(other, vocab=train.vocab, grow_vocab=False)
        assert dev.tokens[0, 0] == train.vocab.id_of("John")
        assert dev.tokens[0, 1] == train.vocab.unk_id  # Berlin unseen

    def test_unknown_tag_rejected(self, tmp_path):
        path = tmp_path / "bad.conll"
        path.write_text("word\tB-XYZ\n")
        with pytest.raises(ValueError):
            read_conll(path)

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "bad.conll"
        path.write_text("loneword\n")
        with pytest.raises(ValueError):
            read_conll(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.conll"
        path.write_text("\n\n")
        with pytest.raises(ValueError):
            read_conll(path)

    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "gold.conll"
        path.write_text(CONLL_TEXT)
        ds = read_conll(path)
        out = tmp_path / "copy.conll"
        write_conll(ds, out)
        again = read_conll(out)
        np.testing.assert_array_equal(ds.lengths, again.lengths)
        for a, b in zip(ds.tags, again.tags):
            np.testing.assert_array_equal(a, b)


CROWD_CONLL = """\
John\tB-PER\t?\tB-LOC
visited\tO\t?\tO

Paris\tB-LOC\tB-LOC\t?
"""


class TestReadCrowdConll:
    def test_parses_annotator_columns(self, tmp_path):
        path = tmp_path / "crowd.conll"
        path.write_text(CROWD_CONLL)
        crowd = read_crowd_conll(path)
        assert crowd.num_instances == 2
        assert crowd.num_annotators == 3
        np.testing.assert_array_equal(crowd.annotators_of(0), [0, 2])
        np.testing.assert_array_equal(crowd.annotators_of(1), [0, 1])
        assert crowd.labels[0][0, 1] == MISSING

    def test_inconsistent_columns_rejected(self, tmp_path):
        path = tmp_path / "crowd.conll"
        path.write_text("a\tO\tO\nb\tO\n")
        with pytest.raises(ValueError):
            read_crowd_conll(path)

    def test_unknown_tag_rejected(self, tmp_path):
        path = tmp_path / "crowd.conll"
        path.write_text("a\tB-XYZ\n")
        with pytest.raises(ValueError):
            read_crowd_conll(path)

    def test_partial_sentence_annotation_rejected(self, tmp_path):
        # Annotator labels only one token of a two-token sentence.
        path = tmp_path / "crowd.conll"
        path.write_text("a\tO\nb\t?\n")
        with pytest.raises(ValueError):
            read_crowd_conll(path)


class TestSentimentTSV:
    def test_parses_and_encodes(self, tmp_path):
        path = tmp_path / "sent.tsv"
        path.write_text("great fun movie\t1\nterrible waste\t0\n")
        ds = read_sentiment_tsv(path)
        assert len(ds) == 2
        assert ds.labels.tolist() == [1, 0]
        assert ds.vocab.id_of("great") != ds.vocab.unk_id

    def test_label_range_checked(self, tmp_path):
        path = tmp_path / "sent.tsv"
        path.write_text("text\t5\n")
        with pytest.raises(ValueError):
            read_sentiment_tsv(path)

    def test_missing_tab_rejected(self, tmp_path):
        path = tmp_path / "sent.tsv"
        path.write_text("no label here\n")
        with pytest.raises(ValueError):
            read_sentiment_tsv(path)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "sent.tsv"
        path.write_text("\n")
        with pytest.raises(ValueError):
            read_sentiment_tsv(path)


class TestCrowdCSV:
    def test_roundtrip(self, tmp_path, sentiment_task):
        crowd = sentiment_task.train.crowd
        path = tmp_path / "crowd.csv"
        write_crowd_csv(crowd, path)
        again = read_crowd_csv(path, num_classes=crowd.num_classes)
        np.testing.assert_array_equal(crowd.labels, again.labels)

    def test_ragged_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("0,1\n0\n")
        with pytest.raises(ValueError):
            read_crowd_csv(path, 2)

    def test_non_integer_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("0,x\n")
        with pytest.raises(ValueError):
            read_crowd_csv(path, 2)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            read_crowd_csv(path, 2)
