"""Label-stream scenario suite: structure, determinism, and the seeded
behavioural claims each scenario exists to demonstrate."""

import numpy as np
import pytest

from repro.experiments import (
    StreamScenarioConfig,
    run_annotator_drift_scenario,
    run_arrival_order_scenario,
    run_burst_arrival_scenario,
    run_label_stream,
    run_streaming_suite,
    stream_crowd_in_batches,
)
from repro.crowd.types import CrowdLabelMatrix

SMALL = StreamScenarioConfig(
    instances=120, annotators=12, batch_size=30, mean_labels_per_instance=4.0
)


def test_stream_crowd_in_batches_must_cover_exactly():
    crowd = CrowdLabelMatrix(np.zeros((4, 2), dtype=np.int64), 2)
    with pytest.raises(ValueError):
        stream_crowd_in_batches(crowd, [3])
    batches = stream_crowd_in_batches(crowd, [1, 0, 3])
    assert [b.num_instances for b in batches] == [1, 0, 3]


def test_arrival_order_scenario_convergence_is_order_invariant():
    result = run_arrival_order_scenario(seed=0, config=SMALL)
    for name, entry in result["methods"].items():
        # The replay contract at suite scale: converged posteriors agree
        # across arrival orders and batchings.
        assert entry["converged_divergence"] < 1e-8, name
        assert entry["forward"].converged_accuracy is not None
        assert len(entry["forward"].trace) == 4  # 120 / 30


def test_annotator_drift_scenario_decay_tracks_the_regime_change():
    config = StreamScenarioConfig(
        instances=240, annotators=10, batch_size=20,
        mean_labels_per_instance=5.0, drifting_annotators=2, drifted_accuracy=0.25,
    )
    result = run_annotator_drift_scenario(seed=3, config=config)
    reliability = result["drifted_reliability"]
    # The decayed model rates the drifted annotators markedly less
    # reliable than the model that still credits their early, good phase.
    assert reliability["decayed"] < reliability["undecayed"] - 0.1
    assert result["runs"]["decayed"].decay == config.decay
    assert result["runs"]["undecayed"].decay is None


def test_burst_arrival_scenario_is_robust_and_covers_awkward_sizes():
    result = run_burst_arrival_scenario(seed=7, config=SMALL)
    sizes = result["batch_sizes"]
    assert sum(sizes) == SMALL.instances
    assert 0 in sizes and 1 in sizes  # quiet ticks and dribbles occurred
    for name, run in result["methods"].items():
        assert run.final_online_accuracy > 0.5, name  # better than coin flip
        assert run.converged_accuracy is not None
        assert run.trace[-1].observations_seen > 0
    assert set(result["methods"]) == {"MV", "DS", "GLAD"}


def test_suite_runs_end_to_end_and_is_deterministic():
    first = run_streaming_suite(seed=7, config=SMALL)
    second = run_streaming_suite(seed=7, config=SMALL)
    assert set(first) == {"arrival_order", "annotator_drift", "burst_arrivals"}
    a = first["burst_arrivals"]["methods"]["DS"].final_online_accuracy
    b = second["burst_arrivals"]["methods"]["DS"].final_online_accuracy
    assert a == b
