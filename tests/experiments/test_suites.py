"""Tests for the experiment suites that power the benchmark harness.

Runs every method-runner at micro scale to guarantee the benches cannot
fail on plumbing, and checks the reporting primitives.
"""

import numpy as np
import pytest

from repro.experiments import (
    ABLATION_METHODS,
    NER_INFERENCE_METHODS,
    NER_METHODS,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    SENTIMENT_INFERENCE_METHODS,
    SENTIMENT_METHODS,
    NERBenchConfig,
    Row,
    SentimentBenchConfig,
    Table,
    aggregate_runs,
    bench_scale,
    build_ner_data,
    build_sentiment_data,
    run_ner_ablation,
    run_ner_inference_method,
    run_ner_method,
    run_sentiment_ablation,
    run_sentiment_inference_method,
    run_sentiment_method,
)


@pytest.fixture(scope="module")
def micro_sentiment():
    config = SentimentBenchConfig(
        num_train=120, num_dev=40, num_test=40, num_annotators=10,
        epochs=2, feature_maps=6, embedding_dim=16, seeds=(0,),
    )
    return config, build_sentiment_data(0, config)


@pytest.fixture(scope="module")
def micro_ner():
    config = NERBenchConfig(
        num_train=60, num_dev=20, num_test=20, num_annotators=6,
        epochs=2, conv_features=16, gru_hidden=8, embedding_dim=16, seeds=(0,),
    )
    return config, build_ner_data(0, config)


class TestReporting:
    def test_bench_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == 1.0

    def test_bench_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
        assert bench_scale() == 2.5

    def test_bench_scale_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "zero")
        with pytest.raises(ValueError):
            bench_scale()
        monkeypatch.setenv("REPRO_BENCH_SCALE", "-1")
        with pytest.raises(ValueError):
            bench_scale()

    def test_aggregate_runs(self):
        mean, std = aggregate_runs([{"a": 0.5, "b": 1.0}, {"a": 0.7}])
        assert mean["a"] == pytest.approx(0.6)
        assert std["a"] == pytest.approx(0.1)
        assert mean["b"] == pytest.approx(1.0)

    def test_table_render_contains_rows_and_paper_values(self):
        table = Table("demo", metrics=["prediction"])
        table.add(Row("m", {"prediction": 0.5}, {"prediction": 0.01}, {"prediction": 78.0}))
        text = table.render()
        assert "demo" in text
        assert "50.00" in text
        assert "78.00" in text

    def test_table_lookup(self):
        table = Table("demo", metrics=["x"])
        table.add(Row("m", {"x": 0.4}))
        assert table.measured("m", "x") == 0.4
        with pytest.raises(KeyError):
            table.row("other")
        with pytest.raises(KeyError):
            table.measured("m", "y")


class TestSentimentSuite:
    def test_build_attaches_crowd(self, micro_sentiment):
        _, task = micro_sentiment
        assert task.train.crowd is not None
        assert task.train.crowd.num_annotators == 10

    @pytest.mark.parametrize("name", SENTIMENT_METHODS)
    def test_every_method_runs(self, micro_sentiment, name):
        config, task = micro_sentiment
        result = run_sentiment_method(name, task, config, seed=0)
        for value in result.values():
            assert 0.0 <= value <= 1.0
        if name != "Raykar":
            assert "prediction" in result
        assert "inference" in result

    @pytest.mark.parametrize("name", SENTIMENT_INFERENCE_METHODS)
    def test_every_inference_method_runs(self, micro_sentiment, name):
        _, task = micro_sentiment
        result = run_sentiment_inference_method(name, task)
        assert 0.0 <= result["inference"] <= 1.0

    def test_unknown_method_rejected(self, micro_sentiment):
        config, task = micro_sentiment
        with pytest.raises(KeyError):
            run_sentiment_method("nope", task, config, 0)
        with pytest.raises(KeyError):
            run_sentiment_inference_method("nope", task)

    def test_paper_reference_covers_all_methods(self):
        for name in SENTIMENT_METHODS + SENTIMENT_INFERENCE_METHODS:
            assert name in PAPER_TABLE2, name


class TestNERSuite:
    @pytest.mark.parametrize("name", NER_METHODS)
    def test_every_method_runs(self, micro_ner, name):
        config, task = micro_ner
        result = run_ner_method(name, task, config, seed=0)
        assert {"precision", "recall", "f1", "inf_precision", "inf_recall", "inf_f1"} <= set(result)
        for value in result.values():
            assert 0.0 <= value <= 1.0

    @pytest.mark.parametrize("name", NER_INFERENCE_METHODS)
    def test_every_inference_method_runs(self, micro_ner, name):
        _, task = micro_ner
        result = run_ner_inference_method(name, task)
        assert 0.0 <= result["inf_f1"] <= 1.0

    def test_unknown_method_rejected(self, micro_ner):
        config, task = micro_ner
        with pytest.raises(KeyError):
            run_ner_method("nope", task, config, 0)

    def test_paper_reference_covers_all_methods(self):
        for name in NER_METHODS + NER_INFERENCE_METHODS:
            assert name in PAPER_TABLE3, name


class TestAblationSuite:
    @pytest.mark.parametrize("name", ABLATION_METHODS)
    def test_sentiment_ablations_run(self, micro_sentiment, name):
        config, task = micro_sentiment
        result = run_sentiment_ablation(name, task, config, seed=0)
        assert set(result) == {"prediction", "inference"}

    @pytest.mark.parametrize(
        "name", [m for m in ABLATION_METHODS if m not in ("GLAD-Rule",)]
    )
    def test_ner_ablations_run(self, micro_ner, name):
        # GLAD-Rule trains an extra AggNet pass; covered by the bench itself.
        config, task = micro_ner
        result = run_ner_ablation(name, task, config, seed=0)
        assert set(result) == {"prediction", "inference"}

    def test_paper_reference_covers_all_ablations(self):
        assert set(ABLATION_METHODS) == set(PAPER_TABLE4)

    def test_unknown_ablation_rejected(self, micro_sentiment):
        config, task = micro_sentiment
        with pytest.raises(KeyError):
            run_sentiment_ablation("nope", task, config, 0)
