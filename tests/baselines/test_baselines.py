"""Tests for the LNCL competitor methods and shared training machinery."""

import numpy as np
import pytest

from repro.baselines import (
    AggNetClassifier,
    AggNetSequenceTagger,
    CrowdLayerClassifier,
    CrowdLayerSequenceTagger,
    DeepMultiNetworkClassifier,
    EarlyStopping,
    RaykarClassifier,
    TrainerConfig,
    TwoStageClassifier,
    TwoStageSequenceTagger,
    build_optimizer,
    train_gold_classifier,
    train_gold_tagger,
)
from repro.core import LogicLNCLConfig, constant
from repro.eval import accuracy, posterior_accuracy, span_f1_score
from repro.inference import GLAD, HMMCrowd, MajorityVote, TokenLevelInference
from repro.logic import ButRule
from repro.models import (
    BagOfEmbeddingsClassifier,
    NERTagger,
    NERTaggerConfig,
    TextCNN,
    TextCNNConfig,
)


def _cls_config(epochs=5, **overrides):
    defaults = dict(
        epochs=epochs, batch_size=32, optimizer="adadelta", learning_rate=1.0,
        lr_decay_every=None, patience=3,
    )
    defaults.update(overrides)
    return TrainerConfig(**defaults)


def _lncl_config(epochs=5, **overrides):
    defaults = dict(
        epochs=epochs, batch_size=32, optimizer="adadelta", learning_rate=1.0,
        lr_decay_every=None, patience=3, C=5.0, imitation=constant(0.3),
    )
    defaults.update(overrides)
    return LogicLNCLConfig(**defaults)


def _cnn(task, seed=0):
    return TextCNN(
        task.embeddings, TextCNNConfig(filter_windows=(2, 3), feature_maps=8),
        np.random.default_rng(seed),
    )


def _tagger(task, seed=0):
    return NERTagger(
        task.embeddings, NERTaggerConfig(conv_width=3, conv_features=64, gru_hidden=32),
        np.random.default_rng(seed),
    )


def _seq_config(epochs=5, **overrides):
    defaults = dict(
        epochs=epochs, batch_size=32, optimizer="adam", learning_rate=1e-2,
        lr_decay_every=None, patience=5,
    )
    defaults.update(overrides)
    return TrainerConfig(**defaults)


class TestTrainerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainerConfig(batch_size=0)
        with pytest.raises(ValueError):
            TrainerConfig(optimizer="lion")
        with pytest.raises(ValueError):
            TrainerConfig(patience=0)

    @pytest.mark.parametrize("name", ["adadelta", "adam", "sgd"])
    def test_build_optimizer_variants(self, name, sentiment_task):
        model = _cnn(sentiment_task)
        optimizer, schedule = build_optimizer(
            model.parameters(), TrainerConfig(optimizer=name, learning_rate=0.5)
        )
        assert optimizer.lr == 0.5
        assert schedule is not None  # default decay every 5

    def test_no_schedule_when_disabled(self, sentiment_task):
        model = _cnn(sentiment_task)
        _, schedule = build_optimizer(
            model.parameters(), TrainerConfig(lr_decay_every=None)
        )
        assert schedule is None


class TestEarlyStopping:
    def test_stops_after_patience(self, sentiment_task):
        model = _cnn(sentiment_task)
        stopper = EarlyStopping(model, patience=2)
        assert not stopper.update(0.5)
        assert not stopper.update(0.4)
        assert stopper.update(0.3)

    def test_restores_best_parameters(self, sentiment_task):
        model = _cnn(sentiment_task)
        stopper = EarlyStopping(model, patience=5)
        stopper.update(0.9)
        best = model.output.weight.data.copy()
        model.output.weight.data += 100.0
        stopper.update(0.1)
        stopper.restore_best()
        np.testing.assert_allclose(model.output.weight.data, best)


class TestGold:
    def test_classifier_learns(self, sentiment_task):
        model = _cnn(sentiment_task)
        history = train_gold_classifier(
            model, _cls_config(12, patience=12), np.random.default_rng(0),
            sentiment_task.train, sentiment_task.dev,
        )
        test = sentiment_task.test
        assert accuracy(test.labels, model.predict(test.tokens, test.lengths)) > 0.6
        assert "best_dev_score" in history

    def test_tagger_learns(self, ner_task):
        model = _tagger(ner_task)
        train_gold_tagger(
            model, _seq_config(10, patience=10), np.random.default_rng(0),
            ner_task.train, ner_task.dev,
        )
        test = ner_task.test
        f1 = span_f1_score(test.tags, model.predict(test.tokens, test.lengths)).f1
        assert f1 > 0.3


class TestTwoStage:
    def test_mv_classifier(self, sentiment_task):
        method = TwoStageClassifier(
            _cnn(sentiment_task), MajorityVote(), _cls_config(6), np.random.default_rng(0)
        )
        method.fit(sentiment_task.train, sentiment_task.dev)
        test = sentiment_task.test
        assert accuracy(test.labels, method.predict(test.tokens, test.lengths)) > 0.55
        inference = posterior_accuracy(
            sentiment_task.train.labels, method.inference_posterior()
        )
        assert inference > 0.75

    def test_glad_classifier_runs(self, sentiment_task):
        method = TwoStageClassifier(
            _cnn(sentiment_task), GLAD(em_iterations=5), _cls_config(2),
            np.random.default_rng(0),
        )
        method.fit(sentiment_task.train)
        assert method.inference_posterior().shape == (len(sentiment_task.train), 2)

    def test_requires_crowd(self, sentiment_task):
        method = TwoStageClassifier(
            _cnn(sentiment_task), MajorityVote(), _cls_config(1), np.random.default_rng(0)
        )
        with pytest.raises(ValueError):
            method.fit(sentiment_task.dev)

    def test_mv_t_teacher_changes_predictions(self, sentiment_task):
        """MV-t: test-time rule adaptation must act on but-sentences."""
        plain = TwoStageClassifier(
            _cnn(sentiment_task), MajorityVote(), _cls_config(4), np.random.default_rng(0)
        )
        plain.fit(sentiment_task.train)
        with_rule = TwoStageClassifier(
            _cnn(sentiment_task), MajorityVote(), _cls_config(4), np.random.default_rng(0),
            test_rule=ButRule(sentiment_task.but_id),
        )
        with_rule.fit(sentiment_task.train)
        test = sentiment_task.test
        base = with_rule.predict_proba(test.tokens, test.lengths)
        assert base.shape == (len(test), 2)

    def test_sequence_two_stage_with_hmm(self, ner_task):
        method = TwoStageSequenceTagger(
            _tagger(ner_task), HMMCrowd(max_iterations=5), _seq_config(6),
            np.random.default_rng(0),
        )
        method.fit(ner_task.train, ner_task.dev)
        predictions = [p.argmax(axis=1) for p in method.inference_posteriors()]
        f1 = span_f1_score(ner_task.train.tags, predictions).f1
        assert f1 > 0.4

    def test_sequence_two_stage_token_mv(self, ner_task):
        method = TwoStageSequenceTagger(
            _tagger(ner_task), TokenLevelInference(MajorityVote()), _seq_config(6),
            np.random.default_rng(0),
        )
        method.fit(ner_task.train, ner_task.dev)
        test = ner_task.test
        f1 = span_f1_score(test.tags, method.predict(test.tokens, test.lengths)).f1
        assert f1 > 0.15


class TestAggNetRaykar:
    def test_aggnet_is_rule_free(self, sentiment_task):
        method = AggNetClassifier(_cnn(sentiment_task), _lncl_config(3), np.random.default_rng(0))
        assert method.rule is None
        history = method.fit(sentiment_task.train)
        assert history["k"] == [0.0, 0.0, 0.0]

    def test_raykar_uses_logreg(self, sentiment_task):
        method = RaykarClassifier(
            sentiment_task.embeddings, 2, _lncl_config(3), np.random.default_rng(0)
        )
        assert isinstance(method.model, BagOfEmbeddingsClassifier)
        method.fit(sentiment_task.train)
        inference = posterior_accuracy(
            sentiment_task.train.labels, method.inference_posterior()
        )
        assert inference > 0.7

    def test_aggnet_sequence_runs(self, ner_task):
        method = AggNetSequenceTagger(
            _tagger(ner_task), _lncl_config(3, optimizer="adam", learning_rate=1e-2, weighted_loss=True),
            np.random.default_rng(0),
        )
        method.fit(ner_task.train)
        assert method.rules is None
        assert len(method.qf_) == len(ner_task.train)


class TestCrowdLayer:
    @pytest.mark.parametrize("variant", ["MW", "VW", "VW-B"])
    def test_variants_run_and_learn(self, sentiment_task, variant):
        method = CrowdLayerClassifier(
            _cnn(sentiment_task), variant, _cls_config(4), np.random.default_rng(0),
            pretrain_epochs=2,
        )
        method.fit(sentiment_task.train, sentiment_task.dev)
        test = sentiment_task.test
        score = accuracy(test.labels, method.predict(test.tokens, test.lengths))
        assert score > 0.5
        assert method.inference_posterior().shape == (len(sentiment_task.train), 2)

    def test_invalid_variant_rejected(self, sentiment_task):
        with pytest.raises(ValueError):
            CrowdLayerClassifier(
                _cnn(sentiment_task), "XX", _cls_config(1), np.random.default_rng(0)
            )

    def test_mw_initialized_to_identity(self, sentiment_task):
        method = CrowdLayerClassifier(
            _cnn(sentiment_task), "MW", _cls_config(1), np.random.default_rng(0),
            pretrain_epochs=0,
        )
        method.fit(sentiment_task.train)
        # After one epoch the matrix moved, but its shape must be (K, J*K).
        assert method.layer.matrix.shape == (2, 12 * 2)

    def test_no_pretrain_variant(self, sentiment_task):
        method = CrowdLayerClassifier(
            _cnn(sentiment_task), "MW", _cls_config(2), np.random.default_rng(0),
            pretrain_epochs=0,
        )
        history = method.fit(sentiment_task.train)
        assert history["pretrain"] is None

    def test_sequence_crowd_layer(self, ner_task):
        method = CrowdLayerSequenceTagger(
            _tagger(ner_task), "MW", _seq_config(8), np.random.default_rng(0),
            pretrain_epochs=5,
        )
        method.fit(ner_task.train, ner_task.dev)
        test = ner_task.test
        f1 = span_f1_score(test.tags, method.predict(test.tokens, test.lengths)).f1
        assert f1 > 0.1
        assert len(method.inference_posteriors()) == len(ner_task.train)


class TestDLDN:
    def test_ensemble_runs(self, sentiment_task):
        def factory():
            return BagOfEmbeddingsClassifier(
                sentiment_task.embeddings, 2, np.random.default_rng(7)
            )

        method = DeepMultiNetworkClassifier(
            factory, _cls_config(3), np.random.default_rng(0), min_labels=30
        )
        method.fit(sentiment_task.train, sentiment_task.dev)
        test = sentiment_task.test
        proba = method.predict_proba(test.tokens, test.lengths)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)
        assert accuracy(test.labels, method.predict(test.tokens, test.lengths)) > 0.5

    def test_weighted_variant_weights_sum_to_one(self, sentiment_task):
        def factory():
            return BagOfEmbeddingsClassifier(
                sentiment_task.embeddings, 2, np.random.default_rng(7)
            )

        method = DeepMultiNetworkClassifier(
            factory, _cls_config(2), np.random.default_rng(0), weighted=True, min_labels=30
        )
        method.fit(sentiment_task.train)
        np.testing.assert_allclose(method.member_weights_.sum(), 1.0)

    def test_min_labels_too_high_rejected(self, sentiment_task):
        method = DeepMultiNetworkClassifier(
            lambda: BagOfEmbeddingsClassifier(sentiment_task.embeddings, 2, np.random.default_rng(0)),
            _cls_config(1), np.random.default_rng(0), min_labels=10**6,
        )
        with pytest.raises(ValueError):
            method.fit(sentiment_task.train)

    def test_predict_before_fit_rejected(self, sentiment_task):
        method = DeepMultiNetworkClassifier(
            lambda: None, _cls_config(1), np.random.default_rng(0)
        )
        with pytest.raises(RuntimeError):
            method.predict(sentiment_task.test.tokens, sentiment_task.test.lengths)
