"""Trainer-config validation and empty-dataset regression tests.

Two confirmed trainer-layer bugs pinned here:

* ``TrainerConfig`` used to accept ``grad_clip=0.0`` (which the truthiness
  guard ``if config.grad_clip:`` then silently treated as "no clipping"),
  negative learning rates, and ``lr_decay_every=0`` (silently disabling
  the schedule). Zero is now rejected up front; ``None`` is the one way
  to disable a feature, and the runtime guards check ``is not None``.
* ``predict_proba_batched`` / ``predict_sequence_proba_batched`` raised
  ``ValueError`` from ``batch_indices`` on empty datasets; they now
  return ``(0, K)`` / ``(0, T, K)`` — matching the I = 0 tolerance all
  inference methods gained in PR 3.
"""

import numpy as np
import pytest

from repro.baselines.common import (
    TrainerConfig,
    build_optimizer,
    predict_proba_batched,
    predict_sequence_proba_batched,
)
from repro.models.mlp import MLPClassifier
from repro.models.ner_crnn import NERTagger, NERTaggerConfig


class TestTrainerConfigValidation:
    def test_defaults_are_valid(self):
        TrainerConfig()

    @pytest.mark.parametrize("grad_clip", [0.0, -1.0])
    def test_nonpositive_grad_clip_rejected(self, grad_clip):
        with pytest.raises(ValueError, match="grad_clip"):
            TrainerConfig(grad_clip=grad_clip)

    def test_none_grad_clip_disables_clipping(self):
        assert TrainerConfig(grad_clip=None).grad_clip is None

    @pytest.mark.parametrize("learning_rate", [0.0, -0.5])
    def test_nonpositive_learning_rate_rejected(self, learning_rate):
        with pytest.raises(ValueError, match="learning rate"):
            TrainerConfig(learning_rate=learning_rate)

    @pytest.mark.parametrize("lr_decay_every", [0, -3])
    def test_nonpositive_decay_period_rejected(self, lr_decay_every):
        with pytest.raises(ValueError, match="lr_decay_every"):
            TrainerConfig(lr_decay_every=lr_decay_every)

    @pytest.mark.parametrize("lr_decay_factor", [0.0, -0.5, 1.5])
    def test_bad_decay_factor_rejected(self, lr_decay_factor):
        with pytest.raises(ValueError, match="lr_decay_factor"):
            TrainerConfig(lr_decay_factor=lr_decay_factor)

    def test_none_decay_period_disables_schedule(self):
        config = TrainerConfig(lr_decay_every=None)
        _, schedule = build_optimizer(_classifier().parameters(), config)
        assert schedule is None

    def test_decay_period_of_one_builds_a_schedule(self):
        # Regression for the truthiness guard: a valid small period must
        # not be confused with "disabled".
        _, schedule = build_optimizer(
            _classifier().parameters(), TrainerConfig(lr_decay_every=1)
        )
        assert schedule is not None


def _classifier():
    rng = np.random.default_rng(0)
    return MLPClassifier(rng.normal(size=(30, 8)), num_classes=3, hidden=16, rng=rng)


def _tagger():
    rng = np.random.default_rng(1)
    config = NERTaggerConfig(num_classes=5, conv_features=12, gru_hidden=6)
    return NERTagger(rng.normal(size=(30, 8)), config, rng)


class TestEmptyDatasetPrediction:
    def test_classifier_empty_dataset_returns_empty_proba(self):
        proba = predict_proba_batched(
            _classifier(),
            np.zeros((0, 7), dtype=np.int64),
            np.zeros(0, dtype=np.int64),
        )
        assert proba.shape == (0, 3)

    def test_tagger_empty_dataset_returns_empty_proba(self):
        proba = predict_sequence_proba_batched(
            _tagger(),
            np.zeros((0, 9), dtype=np.int64),
            np.zeros(0, dtype=np.int64),
        )
        assert proba.shape == (0, 9, 5)

    def test_nonempty_path_unchanged(self):
        rng = np.random.default_rng(2)
        tokens = rng.integers(0, 30, size=(5, 7))
        lengths = rng.integers(1, 8, size=5)
        proba = predict_proba_batched(_classifier(), tokens, lengths, batch_size=2)
        assert proba.shape == (5, 3)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-12)
