"""Trainer-config validation and empty-dataset regression tests.

Two confirmed trainer-layer bugs pinned here:

* ``TrainerConfig`` used to accept ``grad_clip=0.0`` (which the truthiness
  guard ``if config.grad_clip:`` then silently treated as "no clipping"),
  negative learning rates, and ``lr_decay_every=0`` (silently disabling
  the schedule). Zero is now rejected up front; ``None`` is the one way
  to disable a feature, and the runtime guards check ``is not None``.
* ``predict_proba_batched`` / ``predict_sequence_proba_batched`` raised
  ``ValueError`` from ``batch_indices`` on empty datasets; they now
  return ``(0, K)`` / ``(0, T, K)`` — matching the I = 0 tolerance all
  inference methods gained in PR 3.
"""

import numpy as np
import pytest

from repro.baselines.common import (
    TrainerConfig,
    build_optimizer,
    predict_proba_batched,
    predict_sequence_proba_batched,
)
from repro.crowd.types import CrowdLabelMatrix
from repro.models.mlp import MLPClassifier
from repro.models.ner_crnn import NERTagger, NERTaggerConfig


class TestTrainerConfigValidation:
    def test_defaults_are_valid(self):
        TrainerConfig()

    @pytest.mark.parametrize("grad_clip", [0.0, -1.0])
    def test_nonpositive_grad_clip_rejected(self, grad_clip):
        with pytest.raises(ValueError, match="grad_clip"):
            TrainerConfig(grad_clip=grad_clip)

    def test_none_grad_clip_disables_clipping(self):
        assert TrainerConfig(grad_clip=None).grad_clip is None

    @pytest.mark.parametrize("learning_rate", [0.0, -0.5])
    def test_nonpositive_learning_rate_rejected(self, learning_rate):
        with pytest.raises(ValueError, match="learning rate"):
            TrainerConfig(learning_rate=learning_rate)

    @pytest.mark.parametrize("lr_decay_every", [0, -3])
    def test_nonpositive_decay_period_rejected(self, lr_decay_every):
        with pytest.raises(ValueError, match="lr_decay_every"):
            TrainerConfig(lr_decay_every=lr_decay_every)

    @pytest.mark.parametrize("lr_decay_factor", [0.0, -0.5, 1.5])
    def test_bad_decay_factor_rejected(self, lr_decay_factor):
        with pytest.raises(ValueError, match="lr_decay_factor"):
            TrainerConfig(lr_decay_factor=lr_decay_factor)

    def test_none_decay_period_disables_schedule(self):
        config = TrainerConfig(lr_decay_every=None)
        _, schedule = build_optimizer(_classifier().parameters(), config)
        assert schedule is None

    def test_decay_period_of_one_builds_a_schedule(self):
        # Regression for the truthiness guard: a valid small period must
        # not be confused with "disabled".
        _, schedule = build_optimizer(
            _classifier().parameters(), TrainerConfig(lr_decay_every=1)
        )
        assert schedule is not None


def _classifier():
    rng = np.random.default_rng(0)
    return MLPClassifier(rng.normal(size=(30, 8)), num_classes=3, hidden=16, rng=rng)


def _tagger():
    rng = np.random.default_rng(1)
    config = NERTaggerConfig(num_classes=5, conv_features=12, gru_hidden=6)
    return NERTagger(rng.normal(size=(30, 8)), config, rng)


class TestEmptyDatasetPrediction:
    def test_classifier_empty_dataset_returns_empty_proba(self):
        proba = predict_proba_batched(
            _classifier(),
            np.zeros((0, 7), dtype=np.int64),
            np.zeros(0, dtype=np.int64),
        )
        assert proba.shape == (0, 3)

    def test_tagger_empty_dataset_returns_empty_proba(self):
        proba = predict_sequence_proba_batched(
            _tagger(),
            np.zeros((0, 9), dtype=np.int64),
            np.zeros(0, dtype=np.int64),
        )
        assert proba.shape == (0, 9, 5)

    def test_nonempty_path_unchanged(self):
        rng = np.random.default_rng(2)
        tokens = rng.integers(0, 30, size=(5, 7))
        lengths = rng.integers(1, 8, size=5)
        proba = predict_proba_batched(_classifier(), tokens, lengths, batch_size=2)
        assert proba.shape == (5, 3)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-12)


class TestEmptyTrainingSet:
    """PR 5 contract: an empty training set is a sequence of no-op epochs
    (loss 0.0, zero optimizer steps), not an opaque ``batch_indices``
    ValueError — extending PR 4's empty-dataset tolerance from the
    prediction sweeps to the training entry points."""

    def _empty_classification(self):
        return (
            np.zeros((0, 7), dtype=np.int64),   # tokens
            np.zeros(0, dtype=np.int64),        # lengths
            np.zeros(0, dtype=np.int64),        # hard targets
        )

    def test_fit_classifier_empty_train_is_noop(self):
        from repro.baselines.common import fit_classifier

        model = _classifier()
        before = {k: v.copy() for k, v in model.state_dict().items()}
        tokens, lengths, targets = self._empty_classification()
        history = fit_classifier(
            model, TrainerConfig(epochs=3), np.random.default_rng(0),
            tokens, lengths, targets,
        )
        assert history["loss"] == [0.0, 0.0, 0.0]
        for key, value in model.state_dict().items():
            np.testing.assert_array_equal(value, before[key])

    def test_fit_classifier_empty_train_with_dev_early_stops(self):
        from repro.baselines.common import fit_classifier

        model = _classifier()
        rng = np.random.default_rng(1)
        dev = (rng.integers(0, 30, size=(4, 7)), np.full(4, 7), rng.integers(0, 3, size=4))
        tokens, lengths, targets = self._empty_classification()
        history = fit_classifier(
            model, TrainerConfig(epochs=20, patience=2), rng,
            tokens, lengths, targets, dev=dev,
        )
        # The dev score never improves past epoch 1, so patience stops
        # training; EarlyStopping tolerates the stream of no-op epochs.
        assert len(history["loss"]) == 3  # 1 best + 2 bad epochs
        assert np.isfinite(history["best_dev_score"])

    def test_fit_tagger_empty_train_is_noop_and_keeps_finite_bias(self):
        from repro.baselines.common import fit_tagger

        model = _tagger()
        history = fit_tagger(
            model, TrainerConfig(epochs=2, optimizer="adam", learning_rate=1e-3),
            np.random.default_rng(2),
            np.zeros((0, 9), dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros((0, 9, 5)),
        )
        assert history["loss"] == [0.0, 0.0]
        # The majority-prior bias init must be skipped (0/0 would be NaN).
        for value in model.state_dict().values():
            assert np.isfinite(value).all()

    def test_epoch_runners_report_zero_loss_zero_steps(self):
        from repro.baselines.common import (
            build_optimizer,
            run_classification_epoch,
            run_sequence_epoch,
        )

        model = _classifier()
        config = TrainerConfig()
        optimizer, _ = build_optimizer(model.parameters(), config)
        loss = run_classification_epoch(
            model, optimizer,
            np.zeros((0, 7), dtype=np.int64), np.zeros(0, dtype=np.int64),
            np.zeros((0, 3)), np.random.default_rng(3), config,
        )
        assert loss == 0.0
        tagger = _tagger()
        optimizer, _ = build_optimizer(tagger.parameters(), config)
        loss = run_sequence_epoch(
            tagger, optimizer,
            np.zeros((0, 9), dtype=np.int64), np.zeros(0, dtype=np.int64),
            np.zeros((0, 9, 5)), np.random.default_rng(4), config,
        )
        assert loss == 0.0

    def test_crowd_layer_empty_train_fits_without_error(self):
        from repro.baselines.crowd_layer import CrowdLayerClassifier
        from repro.data.datasets import TextClassificationDataset
        from repro.data.vocab import Vocabulary

        vocab = Vocabulary(["a"])
        train = TextClassificationDataset(
            tokens=np.zeros((0, 7), dtype=np.int64),
            lengths=np.zeros(0, dtype=np.int64),
            labels=np.zeros(0, dtype=np.int64),
            vocab=vocab,
            num_classes=3,
            crowd=CrowdLabelMatrix(np.zeros((0, 4), dtype=np.int64), 3),
        )
        method = CrowdLayerClassifier(
            _classifier(), "MW", TrainerConfig(epochs=2), np.random.default_rng(5),
            pretrain_epochs=1,
        )
        history = method.fit(train)
        assert history["loss"] == [0.0, 0.0]
        assert method.train_proba_.shape == (0, 3)
