"""Regression tests: evaluation paths must build zero autodiff tape nodes.

Uses the engine's monotonic tape-entry counter. A stray tracked op inside
a prediction sweep silently costs memory and time every EM round, so this
is pinned as a hard invariant.
"""

import numpy as np

from repro.autodiff import Tensor, tape_node_count
from repro.baselines.common import (
    predict_proba_batched,
    predict_sequence_proba_batched,
)
from repro.models.mlp import MLPClassifier
from repro.models.ner_crnn import NERTagger, NERTaggerConfig


def _classifier():
    rng = np.random.default_rng(0)
    embeddings = rng.normal(size=(30, 8))
    return MLPClassifier(embeddings, num_classes=3, hidden=16, rng=rng)


def _tagger():
    rng = np.random.default_rng(1)
    embeddings = rng.normal(size=(30, 8))
    config = NERTaggerConfig(num_classes=5, conv_features=12, gru_hidden=6)
    return NERTagger(embeddings, config, rng)


def test_classification_eval_builds_zero_tape_nodes():
    model = _classifier()
    rng = np.random.default_rng(2)
    tokens = rng.integers(0, 30, size=(40, 7))
    lengths = rng.integers(1, 8, size=40)
    before = tape_node_count()
    probabilities = predict_proba_batched(model, tokens, lengths, batch_size=16)
    assert tape_node_count() == before
    assert probabilities.shape == (40, 3)
    np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, atol=1e-12)


def test_sequence_eval_builds_zero_tape_nodes():
    model = _tagger()
    rng = np.random.default_rng(3)
    tokens = rng.integers(0, 30, size=(20, 9))
    lengths = rng.integers(1, 10, size=20)
    before = tape_node_count()
    probabilities = predict_sequence_proba_batched(model, tokens, lengths, batch_size=8)
    assert tape_node_count() == before
    assert probabilities.shape == (20, 9, 5)


def test_training_path_still_records_nodes():
    """Counter sanity: the tracked path must register tape entries."""
    model = _tagger()
    rng = np.random.default_rng(4)
    tokens = rng.integers(0, 30, size=(4, 6))
    lengths = np.array([6, 4, 3, 1])
    before = tape_node_count()
    logits = model.logits(tokens, lengths)
    assert tape_node_count() > before
    assert isinstance(logits, Tensor)
