"""Logic-LNCL for classification (paper Algorithm 1).

The EM-alike iterative logic knowledge distillation framework:

* **Pseudo-M-step** — one epoch of mini-batch training of the neural
  classifier against the mixed target ``qf`` (Eq. 8/10/11), followed by the
  closed-form annotator update (Eq. 12);
* **Pseudo-E-step** — Bayes posterior ``qa`` (Eq. 13), rule-distilled
  posterior ``qb`` (Eq. 15 via posterior regularization), and the mixture
  ``qf = (1-k)·qa + k·qb`` (Eq. 9) with the imitation schedule ``k(t)``.

``rule=None`` recovers the rule-free EM baseline — this is exactly the
paper's *w/o-Rule* ablation and algorithmically the AggNet baseline (deep
classifier + confusion-matrix EM). Passing ``fixed_qa`` freezes the truth
posterior (the *MV-Rule* / *GLAD-Rule* ablations, which distill rules from
a static posterior instead of the iteratively refined one).

Two predictors are exported (paper §III-C "Implementation details"):

* **student** — the trained network ``p(t|x; Θ)``;
* **teacher** — the network's prediction adapted by Eq. 15 at test time
  (replace ``qa`` with ``p(t|x)``), which the paper finds strictly better.
"""

from __future__ import annotations

import numpy as np

from ..baselines.common import (
    EarlyStopping,
    build_optimizer,
    predict_proba_batched,
    run_classification_epoch,
)
from ..data.datasets import TextClassificationDataset
from ..eval.classification import accuracy
from ..inference.majority_vote import majority_vote_posterior
from ..logic.distillation import distill_posterior
from ..logic.sentiment_rules import ButRule
from ..models.base import TextClassifier
from .config import LogicLNCLConfig
from .em import posterior_qa, update_confusions

__all__ = ["LogicLNCLClassifier"]


class LogicLNCLClassifier:
    """Classification instantiation of Logic-LNCL.

    Parameters
    ----------
    model:
        The neural classifier (paper: Kim-CNN for sentiment).
    config:
        Hyper-parameters (Table I); see
        :func:`repro.core.config.sentiment_paper_config`.
    rng:
        Generator driving batching (weights/dropout RNGs live in the model).
    rule:
        The groundable logic rule (:class:`~repro.logic.ButRule`), or None
        for the rule-free w/o-Rule / AggNet variant.
    fixed_qa:
        Optional frozen truth posterior ``(I, K)`` replacing the Eq. 13
        inference (MV-Rule / GLAD-Rule ablations).
    """

    def __init__(
        self,
        model: TextClassifier,
        config: LogicLNCLConfig,
        rng: np.random.Generator,
        rule: ButRule | None = None,
        fixed_qa: np.ndarray | None = None,
    ) -> None:
        self.model = model
        self.config = config
        self.rng = rng
        self.rule = rule
        self.fixed_qa = fixed_qa
        # Populated by fit():
        self.confusions_: np.ndarray | None = None
        self.qa_: np.ndarray | None = None
        self.qb_: np.ndarray | None = None
        self.qf_: np.ndarray | None = None
        self.history_: dict | None = None

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def fit(
        self,
        train: TextClassificationDataset,
        dev: TextClassificationDataset | None = None,
    ) -> dict:
        """Run Algorithm 1; returns the training history.

        Early stopping (patience from the config) monitors the *student*'s
        dev accuracy and restores the best epoch's parameters and
        posteriors.
        """
        crowd = train.crowd
        if crowd is None:
            raise ValueError("training dataset carries no crowd labels")
        if self.fixed_qa is not None and self.fixed_qa.shape != (
            len(train),
            self.model.num_classes,
        ):
            raise ValueError("fixed_qa shape does not match the training set")

        tokens, lengths = train.tokens, train.lengths
        weights = (
            crowd.annotations_per_instance().astype(np.float64)
            if self.config.weighted_loss
            else None
        )

        # Algorithm 1, line 1: initialize qf with majority voting.
        qf = majority_vote_posterior(crowd)
        qa = qf.copy()
        qb = qf.copy()
        confusions = update_confusions(qf, crowd, self.config.confusion_smoothing)

        optimizer, schedule = build_optimizer(self.model.parameters(), self.config)
        stopper = EarlyStopping(self.model, self.config.patience) if dev is not None else None
        best_extras: dict | None = None
        history: dict = {"loss": [], "dev_score": [], "k": []}

        for epoch in range(1, self.config.epochs + 1):
            # Pseudo-M-step (classifier): Eq. 11 mini-batch updates on Eq. 8/10.
            loss = run_classification_epoch(
                self.model, optimizer, tokens, lengths, qf, self.rng, self.config,
                weights=weights,
            )
            history["loss"].append(loss)
            if schedule is not None:
                schedule.step()

            # Pseudo-M-step (annotators): Eq. 12 with the current qf.
            confusions = update_confusions(qf, crowd, self.config.confusion_smoothing)

            # Pseudo-E-step: Eq. 13 → Eq. 15 → Eq. 9.
            proba = predict_proba_batched(self.model, tokens, lengths)
            qa = self.fixed_qa if self.fixed_qa is not None else posterior_qa(
                proba, crowd, confusions
            )
            if self.rule is not None:
                penalties = self.rule.penalties(tokens, lengths, self.model.predict_proba)
                qb = distill_posterior(qa, penalties, self.config.C)
                k = self.config.imitation(epoch)
            else:
                qb = qa
                k = 0.0
            history["k"].append(k)
            qf = (1.0 - k) * qa + k * qb

            if stopper is not None:
                score = accuracy(dev.labels, self.model.predict(dev.tokens, dev.lengths))
                history["dev_score"].append(score)
                improved = score > stopper.best_score
                stop = stopper.update(score)
                if improved:
                    best_extras = {
                        "confusions": confusions.copy(),
                        "qa": np.array(qa, copy=True),
                        "qb": np.array(qb, copy=True),
                        "qf": np.array(qf, copy=True),
                    }
                if stop:
                    break

        if stopper is not None:
            stopper.restore_best()
            history["best_dev_score"] = stopper.best_score
            if best_extras is not None:
                confusions = best_extras["confusions"]
                qa, qb, qf = best_extras["qa"], best_extras["qb"], best_extras["qf"]

        self.confusions_ = confusions
        self.qa_, self.qb_, self.qf_ = qa, qb, qf
        self.history_ = history
        return history

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #
    def predict_proba_student(self, tokens: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """``p(t|x; Θ)`` — the plain network prediction."""
        return predict_proba_batched(self.model, tokens, lengths)

    def predict_student(self, tokens: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        return self.predict_proba_student(tokens, lengths).argmax(axis=1)

    def predict_proba_teacher(self, tokens: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """Eq. 15 applied at test time with ``qa := p(t|x; Θ)``."""
        proba = self.predict_proba_student(tokens, lengths)
        if self.rule is None:
            return proba
        penalties = self.rule.penalties(tokens, lengths, self.model.predict_proba)
        return distill_posterior(proba, penalties, self.config.C)

    def predict_teacher(self, tokens: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        return self.predict_proba_teacher(tokens, lengths).argmax(axis=1)

    # ------------------------------------------------------------------ #
    def inference_posterior(self) -> np.ndarray:
        """``qf(t)`` on the training set — the paper's Inference metric."""
        if self.qf_ is None:
            raise RuntimeError("fit() has not been run")
        return self.qf_
