"""Pseudo-E-step posterior math shared by the classification and sequence
variants of Logic-LNCL (and by the AggNet/Raykar baselines, which are the
rule-free special case).

* :func:`update_confusions` — the Eq. 12 closed form: re-estimate every
  annotator's confusion matrix from the current final posterior ``qf``.
* :func:`posterior_qa` — the Eq. 13 Bayes update: combine the network's
  prediction with annotator likelihoods.

Sequence versions treat each (sentence, token) as an instance whose
annotator set is the sentence's annotator set.

Performance: the sequence functions are fully vectorized. The ragged
per-sentence label matrices are flattened once into a cached ``(ΣT_i, J)``
token × annotator matrix (:meth:`SequenceCrowdLabels.flat_labels`); the
confusion-count scatter (Eq. 12) and the per-annotator log-likelihood
gather (Eq. 13) then reduce to a handful of ``bincount``/fancy-index calls
over the ``(token, annotator)`` pairs that actually carry labels — no
Python loop over sentences or annotators. The original loop
implementations are kept as ``*_reference`` functions: they are the
executable specification, used by the equivalence tests and as the
"before" side of ``benchmarks/bench_hotpaths.py``.
"""

from __future__ import annotations

import numpy as np

from ..crowd.types import MISSING, CrowdLabelMatrix, SequenceCrowdLabels

__all__ = [
    "update_confusions",
    "posterior_qa",
    "sequence_update_confusions",
    "sequence_posterior_qa",
    "sequence_update_confusions_reference",
    "sequence_posterior_qa_reference",
]


def update_confusions(
    qf: np.ndarray, crowd: CrowdLabelMatrix, smoothing: float = 0.01
) -> np.ndarray:
    """Eq. 12: ``π_jmn = Σ_i qf(t_i=m)·1[y_ij=n] / Σ_i qf(t_i=m)·1[y_ij≠∅]``.

    Laplace ``smoothing`` keeps rows proper for annotators with few (or no)
    labels for some true class.
    """
    qf = np.asarray(qf, dtype=np.float64)
    if qf.shape != (crowd.num_instances, crowd.num_classes):
        raise ValueError(
            f"qf shape {qf.shape} != ({crowd.num_instances}, {crowd.num_classes})"
        )
    one_hot = crowd.one_hot()                                 # (I, J, K)
    numerator = np.einsum("im,ijn->jmn", qf, one_hot) + smoothing
    row_sums = numerator.sum(axis=2, keepdims=True)
    # Rows with no mass (annotator never labeled anything attributed to
    # class m, and smoothing == 0) fall back to uniform.
    K = crowd.num_classes
    return np.where(row_sums > 0, numerator / np.where(row_sums > 0, row_sums, 1.0), 1.0 / K)


def posterior_qa(
    proba: np.ndarray, crowd: CrowdLabelMatrix, confusions: np.ndarray
) -> np.ndarray:
    """Eq. 13: ``qa(t_i=k) ∝ p(t_i=k|x_i;Θ) · Π_{j∈J(i)} π_j[k, y_ij]``.

    Computed in log space for stability; instances with no annotations
    reduce to the network prediction.
    """
    proba = np.asarray(proba, dtype=np.float64)
    I, K = proba.shape
    if confusions.shape != (crowd.num_annotators, K, K):
        raise ValueError(
            f"confusions shape {confusions.shape} != ({crowd.num_annotators}, {K}, {K})"
        )
    one_hot = crowd.one_hot()
    log_likelihood = np.einsum("ijn,jkn->ik", one_hot, np.log(confusions + 1e-300))
    log_posterior = np.log(proba + 1e-300) + log_likelihood
    log_posterior -= log_posterior.max(axis=1, keepdims=True)
    posterior = np.exp(log_posterior)
    posterior /= posterior.sum(axis=1, keepdims=True)
    return posterior


def _stack_ragged(arrays: list[np.ndarray], crowd: SequenceCrowdLabels) -> np.ndarray:
    """Validate per-sentence arrays against the crowd and stack to (ΣT_i, K)."""
    K = crowd.num_classes
    for i, item in enumerate(arrays):
        shape = item.shape if isinstance(item, np.ndarray) else np.asarray(item).shape
        if shape != (crowd.labels[i].shape[0], K):
            raise ValueError(f"entry {i} shape {shape} mismatches sentence")
    if not arrays:
        return np.zeros((0, K))
    return np.concatenate(arrays, axis=0).astype(np.float64, copy=False)


def sequence_update_confusions(
    qf: list[np.ndarray], crowd: SequenceCrowdLabels, smoothing: float = 0.01
) -> np.ndarray:
    """Token-level Eq. 12 over all sentences, vectorized.

    Every labeled ``(token, annotator)`` pair contributes the token's
    posterior row ``qf[t, :]`` to ``counts[j, :, y_tj]``. Grouping pairs by
    the composite key ``j * K + y`` turns the whole scatter into one
    ``bincount`` per true class — K calls total, independent of I and J.
    Matches :func:`sequence_update_confusions_reference` exactly.
    """
    K = crowd.num_classes
    J = crowd.num_annotators
    gamma = _stack_ragged(qf, crowd)                          # (N, K)
    incidence = crowd.token_label_incidence()                 # (N, J·K) sparse
    if incidence is not None:
        summed = np.asarray(incidence.T @ gamma)              # one spMM
    else:  # scipy unavailable: bincount per true class
        tokens, annotators, given = crowd.flat_label_pairs()
        key = annotators * K + given
        gathered = gamma[tokens]
        summed = np.empty((J * K, K))
        for m in range(K):
            summed[:, m] = np.bincount(key, weights=gathered[:, m], minlength=J * K)
    # summed[(j, n), m] → counts[j, m, n]
    counts = summed.reshape(J, K, K).transpose(0, 2, 1) + smoothing
    return counts / counts.sum(axis=2, keepdims=True)


def sequence_posterior_qa(
    proba: list[np.ndarray], crowd: SequenceCrowdLabels, confusions: np.ndarray
) -> list[np.ndarray]:
    """Token-level Eq. 13 for every sentence, vectorized.

    The per-annotator likelihood rows ``log π_j[:, y_tj]`` are gathered for
    all labeled ``(token, annotator)`` pairs in one fancy index and summed
    into each token with one ``bincount`` per class. Matches
    :func:`sequence_posterior_qa_reference` exactly.
    """
    K = crowd.num_classes
    J = crowd.num_annotators
    log_confusions = np.log(confusions + 1e-300)              # (J, K, K)
    p = _stack_ragged(proba, crowd)                           # (N, K)
    _, offsets = crowd.flat_labels()
    log_posterior = np.log(p + 1e-300)
    # (J·K, K): row (j, y) holds log π_j[:, y] — the per-class likelihood
    # of annotator j emitting label y.
    by_label = np.ascontiguousarray(log_confusions.transpose(0, 2, 1)).reshape(J * K, K)
    incidence = crowd.token_label_incidence()                 # (N, J·K) sparse
    if incidence is not None:
        log_posterior += np.asarray(incidence @ by_label)     # one spMM
    else:  # scipy unavailable: bincount per class
        tokens, annotators, given = crowd.flat_label_pairs()
        if tokens.size:
            contrib = by_label[annotators * K + given]
            N = log_posterior.shape[0]
            for k in range(K):
                log_posterior[:, k] += np.bincount(tokens, weights=contrib[:, k], minlength=N)
    log_posterior -= log_posterior.max(axis=1, keepdims=True)
    posterior = np.exp(log_posterior)
    posterior /= posterior.sum(axis=1, keepdims=True)
    return [
        posterior[offsets[i] : offsets[i + 1]] for i in range(crowd.num_instances)
    ]


def sequence_update_confusions_reference(
    qf: list[np.ndarray], crowd: SequenceCrowdLabels, smoothing: float = 0.01
) -> np.ndarray:
    """Pre-vectorization token-level Eq. 12 (per-sentence/annotator loops).

    Kept as the executable specification for equivalence tests and the
    benchmark baseline; use :func:`sequence_update_confusions`.
    """
    K = crowd.num_classes
    counts = np.full((crowd.num_annotators, K, K), smoothing)
    for i in range(crowd.num_instances):
        gamma = np.asarray(qf[i])
        if gamma.shape != (crowd.labels[i].shape[0], K):
            raise ValueError(f"qf[{i}] shape {gamma.shape} mismatches sentence")
        matrix = crowd.labels[i]
        for j in crowd.annotators_of(i):
            np.add.at(counts[j].T, matrix[:, j], gamma)
    return counts / counts.sum(axis=2, keepdims=True)


def sequence_posterior_qa_reference(
    proba: list[np.ndarray], crowd: SequenceCrowdLabels, confusions: np.ndarray
) -> list[np.ndarray]:
    """Pre-vectorization token-level Eq. 13 (per-sentence loop).

    Kept as the executable specification for equivalence tests and the
    benchmark baseline; use :func:`sequence_posterior_qa`.
    """
    log_confusions = np.log(confusions + 1e-300)
    out: list[np.ndarray] = []
    for i in range(crowd.num_instances):
        p = np.asarray(proba[i], dtype=np.float64)
        matrix = crowd.labels[i]
        log_posterior = np.log(p + 1e-300)
        for j in crowd.annotators_of(i):
            log_posterior = log_posterior + log_confusions[j][:, matrix[:, j]].T
        log_posterior -= log_posterior.max(axis=1, keepdims=True)
        posterior = np.exp(log_posterior)
        posterior /= posterior.sum(axis=1, keepdims=True)
        out.append(posterior)
    return out
