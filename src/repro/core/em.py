"""Pseudo-E-step posterior math shared by the classification and sequence
variants of Logic-LNCL (and by the AggNet/Raykar baselines, which are the
rule-free special case).

* :func:`update_confusions` — the Eq. 12 closed form: re-estimate every
  annotator's confusion matrix from the current final posterior ``qf``.
* :func:`posterior_qa` — the Eq. 13 Bayes update: combine the network's
  prediction with annotator likelihoods.

Sequence versions treat each (sentence, token) as an instance whose
annotator set is the sentence's annotator set.
"""

from __future__ import annotations

import numpy as np

from ..crowd.types import CrowdLabelMatrix, SequenceCrowdLabels

__all__ = [
    "update_confusions",
    "posterior_qa",
    "sequence_update_confusions",
    "sequence_posterior_qa",
]


def update_confusions(
    qf: np.ndarray, crowd: CrowdLabelMatrix, smoothing: float = 0.01
) -> np.ndarray:
    """Eq. 12: ``π_jmn = Σ_i qf(t_i=m)·1[y_ij=n] / Σ_i qf(t_i=m)·1[y_ij≠∅]``.

    Laplace ``smoothing`` keeps rows proper for annotators with few (or no)
    labels for some true class.
    """
    qf = np.asarray(qf, dtype=np.float64)
    if qf.shape != (crowd.num_instances, crowd.num_classes):
        raise ValueError(
            f"qf shape {qf.shape} != ({crowd.num_instances}, {crowd.num_classes})"
        )
    one_hot = crowd.one_hot()                                 # (I, J, K)
    numerator = np.einsum("im,ijn->jmn", qf, one_hot) + smoothing
    row_sums = numerator.sum(axis=2, keepdims=True)
    # Rows with no mass (annotator never labeled anything attributed to
    # class m, and smoothing == 0) fall back to uniform.
    K = crowd.num_classes
    return np.where(row_sums > 0, numerator / np.where(row_sums > 0, row_sums, 1.0), 1.0 / K)


def posterior_qa(
    proba: np.ndarray, crowd: CrowdLabelMatrix, confusions: np.ndarray
) -> np.ndarray:
    """Eq. 13: ``qa(t_i=k) ∝ p(t_i=k|x_i;Θ) · Π_{j∈J(i)} π_j[k, y_ij]``.

    Computed in log space for stability; instances with no annotations
    reduce to the network prediction.
    """
    proba = np.asarray(proba, dtype=np.float64)
    I, K = proba.shape
    if confusions.shape != (crowd.num_annotators, K, K):
        raise ValueError(
            f"confusions shape {confusions.shape} != ({crowd.num_annotators}, {K}, {K})"
        )
    one_hot = crowd.one_hot()
    log_likelihood = np.einsum("ijn,jkn->ik", one_hot, np.log(confusions + 1e-300))
    log_posterior = np.log(proba + 1e-300) + log_likelihood
    log_posterior -= log_posterior.max(axis=1, keepdims=True)
    posterior = np.exp(log_posterior)
    posterior /= posterior.sum(axis=1, keepdims=True)
    return posterior


def sequence_update_confusions(
    qf: list[np.ndarray], crowd: SequenceCrowdLabels, smoothing: float = 0.01
) -> np.ndarray:
    """Token-level Eq. 12 over all sentences."""
    K = crowd.num_classes
    counts = np.full((crowd.num_annotators, K, K), smoothing)
    for i in range(crowd.num_instances):
        gamma = np.asarray(qf[i])
        if gamma.shape != (crowd.labels[i].shape[0], K):
            raise ValueError(f"qf[{i}] shape {gamma.shape} mismatches sentence")
        matrix = crowd.labels[i]
        for j in crowd.annotators_of(i):
            np.add.at(counts[j].T, matrix[:, j], gamma)
    return counts / counts.sum(axis=2, keepdims=True)


def sequence_posterior_qa(
    proba: list[np.ndarray], crowd: SequenceCrowdLabels, confusions: np.ndarray
) -> list[np.ndarray]:
    """Token-level Eq. 13 for every sentence."""
    log_confusions = np.log(confusions + 1e-300)
    out: list[np.ndarray] = []
    for i in range(crowd.num_instances):
        p = np.asarray(proba[i], dtype=np.float64)
        matrix = crowd.labels[i]
        log_posterior = np.log(p + 1e-300)
        for j in crowd.annotators_of(i):
            log_posterior = log_posterior + log_confusions[j][:, matrix[:, j]].T
        log_posterior -= log_posterior.max(axis=1, keepdims=True)
        posterior = np.exp(log_posterior)
        posterior /= posterior.sum(axis=1, keepdims=True)
        out.append(posterior)
    return out
