"""Pseudo-E-step posterior math shared by the classification and sequence
variants of Logic-LNCL (and by the AggNet/Raykar baselines, which are the
rule-free special case).

* :func:`update_confusions` — the Eq. 12 closed form: re-estimate every
  annotator's confusion matrix from the current final posterior ``qf``.
* :func:`posterior_qa` — the Eq. 13 Bayes update: combine the network's
  prediction with annotator likelihoods.

Sequence versions treat each (sentence, token) as an instance whose
annotator set is the sentence's annotator set.

Performance: all four functions run on the shared sparse-crowd kernels of
:mod:`repro.inference.primitives` — the same confusion-count scatter and
log-likelihood gather that DS/IBCC/HMM-Crowd/BSC-seq use. Both crowd
containers cache their flat COO views (``flat_label_pairs`` plus a sparse
instance × (annotator, label) incidence), so each update is one
sparse–dense product (or one ``bincount`` per class without scipy) — no
Python loop over instances, sentences, or annotators. The original loop
implementations are kept as ``*_reference`` functions: they are the
executable specification, used by the equivalence tests and as the
"before" side of ``benchmarks/bench_hotpaths.py``.
"""

from __future__ import annotations

import numpy as np

from ..crowd.types import MISSING, CrowdLabelMatrix, SequenceCrowdLabels
from ..inference.primitives import (
    confusion_counts,
    emission_log_likelihood,
    normalize_log_posterior,
    split_by_offsets,
)

__all__ = [
    "update_confusions",
    "posterior_qa",
    "sequence_update_confusions",
    "sequence_posterior_qa",
    "sequence_update_confusions_reference",
    "sequence_posterior_qa_reference",
]


def update_confusions(
    qf: np.ndarray, crowd: CrowdLabelMatrix, smoothing: float = 0.01
) -> np.ndarray:
    """Eq. 12: ``π_jmn = Σ_i qf(t_i=m)·1[y_ij=n] / Σ_i qf(t_i=m)·1[y_ij≠∅]``.

    Laplace ``smoothing`` keeps rows proper for annotators with few (or no)
    labels for some true class.
    """
    qf = np.asarray(qf, dtype=np.float64)
    if qf.shape != (crowd.num_instances, crowd.num_classes):
        raise ValueError(
            f"qf shape {qf.shape} != ({crowd.num_instances}, {crowd.num_classes})"
        )
    numerator = confusion_counts(qf, crowd) + smoothing
    row_sums = numerator.sum(axis=2, keepdims=True)
    # Rows with no mass (annotator never labeled anything attributed to
    # class m, and smoothing == 0) fall back to uniform.
    K = crowd.num_classes
    return np.where(row_sums > 0, numerator / np.where(row_sums > 0, row_sums, 1.0), 1.0 / K)


def posterior_qa(
    proba: np.ndarray, crowd: CrowdLabelMatrix, confusions: np.ndarray
) -> np.ndarray:
    """Eq. 13: ``qa(t_i=k) ∝ p(t_i=k|x_i;Θ) · Π_{j∈J(i)} π_j[k, y_ij]``.

    Computed in log space for stability; instances with no annotations
    reduce to the network prediction.
    """
    proba = np.asarray(proba, dtype=np.float64)
    I, K = proba.shape
    if confusions.shape != (crowd.num_annotators, K, K):
        raise ValueError(
            f"confusions shape {confusions.shape} != ({crowd.num_annotators}, {K}, {K})"
        )
    log_likelihood = emission_log_likelihood(crowd, np.log(confusions + 1e-300))
    return normalize_log_posterior(np.log(proba + 1e-300) + log_likelihood)


def _stack_ragged(arrays: list[np.ndarray], crowd: SequenceCrowdLabels) -> np.ndarray:
    """Validate per-sentence arrays against the crowd and stack to (ΣT_i, K)."""
    K = crowd.num_classes
    for i, item in enumerate(arrays):
        shape = item.shape if isinstance(item, np.ndarray) else np.asarray(item).shape
        if shape != (crowd.labels[i].shape[0], K):
            raise ValueError(f"entry {i} shape {shape} mismatches sentence")
    if not arrays:
        return np.zeros((0, K))
    return np.concatenate(arrays, axis=0).astype(np.float64, copy=False)


def sequence_update_confusions(
    qf: list[np.ndarray], crowd: SequenceCrowdLabels, smoothing: float = 0.01
) -> np.ndarray:
    """Token-level Eq. 12 over all sentences, vectorized.

    Every labeled ``(token, annotator)`` pair contributes the token's
    posterior row ``qf[t, :]`` to ``counts[j, :, y_tj]`` — the shared
    :func:`repro.inference.primitives.confusion_counts` kernel (one sparse
    matmul, or one ``bincount`` per true class without scipy). Matches
    :func:`sequence_update_confusions_reference` exactly.
    """
    gamma = _stack_ragged(qf, crowd)                          # (N, K)
    counts = confusion_counts(gamma, crowd) + smoothing
    return counts / counts.sum(axis=2, keepdims=True)


def sequence_posterior_qa(
    proba: list[np.ndarray], crowd: SequenceCrowdLabels, confusions: np.ndarray
) -> list[np.ndarray]:
    """Token-level Eq. 13 for every sentence, vectorized.

    The per-annotator likelihood rows ``log π_j[:, y_tj]`` are gathered and
    summed into each token by the shared
    :func:`repro.inference.primitives.emission_log_likelihood` kernel (one
    sparse matmul, or one ``bincount`` per class without scipy). Matches
    :func:`sequence_posterior_qa_reference` exactly.
    """
    p = _stack_ragged(proba, crowd)                           # (N, K)
    _, offsets = crowd.flat_labels()
    log_posterior = np.log(p + 1e-300)
    log_posterior += emission_log_likelihood(crowd, np.log(confusions + 1e-300))
    return split_by_offsets(normalize_log_posterior(log_posterior), offsets)


def sequence_update_confusions_reference(
    qf: list[np.ndarray], crowd: SequenceCrowdLabels, smoothing: float = 0.01
) -> np.ndarray:
    """Pre-vectorization token-level Eq. 12 (per-sentence/annotator loops).

    Kept as the executable specification for equivalence tests and the
    benchmark baseline; use :func:`sequence_update_confusions`.
    """
    K = crowd.num_classes
    counts = np.full((crowd.num_annotators, K, K), smoothing)
    for i in range(crowd.num_instances):
        gamma = np.asarray(qf[i])
        if gamma.shape != (crowd.labels[i].shape[0], K):
            raise ValueError(f"qf[{i}] shape {gamma.shape} mismatches sentence")
        matrix = crowd.labels[i]
        for j in crowd.annotators_of(i):
            np.add.at(counts[j].T, matrix[:, j], gamma)
    return counts / counts.sum(axis=2, keepdims=True)


def sequence_posterior_qa_reference(
    proba: list[np.ndarray], crowd: SequenceCrowdLabels, confusions: np.ndarray
) -> list[np.ndarray]:
    """Pre-vectorization token-level Eq. 13 (per-sentence loop).

    Kept as the executable specification for equivalence tests and the
    benchmark baseline; use :func:`sequence_posterior_qa`.
    """
    log_confusions = np.log(confusions + 1e-300)
    out: list[np.ndarray] = []
    for i in range(crowd.num_instances):
        p = np.asarray(proba[i], dtype=np.float64)
        matrix = crowd.labels[i]
        log_posterior = np.log(p + 1e-300)
        for j in crowd.annotators_of(i):
            log_posterior = log_posterior + log_confusions[j][:, matrix[:, j]].T
        log_posterior -= log_posterior.max(axis=1, keepdims=True)
        posterior = np.exp(log_posterior)
        posterior /= posterior.sum(axis=1, keepdims=True)
        out.append(posterior)
    return out
