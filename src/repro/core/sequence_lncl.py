"""Logic-LNCL for sequence tagging (the paper's NER instantiation).

Identical EM-alike structure to the classification variant, with three
sequence-specific pieces:

* token-level annotator confusion matrices (Eq. 12/13 per token);
* the Eq. 15 projection couples *adjacent* labels through the BIO
  transition rules (Eq. 18–19), so ``qb``'s per-token marginals are
  computed exactly with the chain forward–backward DP
  (:func:`repro.logic.chain_marginals`) — the "dynamic programming for
  efficient computation in Equation 15" the paper describes;
* the Eq. 10 weighted loss uses each sentence's annotator count as the
  per-token weight (Table I selects the weighted objective for NER).
"""

from __future__ import annotations

import numpy as np

from ..baselines.common import (
    EarlyStopping,
    build_optimizer,
    predict_sequence_proba_batched,
    run_sequence_epoch,
)
from ..data.datasets import SequenceTaggingDataset
from ..eval.ner_f1 import span_f1_score
from ..logic.distillation import chain_marginals
from ..logic.ner_rules import TransitionRules
from ..models.base import SequenceTagger
from .config import LogicLNCLConfig
from .em import sequence_posterior_qa, sequence_update_confusions

__all__ = ["LogicLNCLSequenceTagger"]


class LogicLNCLSequenceTagger:
    """Sequence-tagging instantiation of Logic-LNCL.

    Parameters
    ----------
    model:
        The neural tagger (paper: CNN+GRU).
    config:
        Hyper-parameters (Table I); see
        :func:`repro.core.config.ner_paper_config`.
    rules:
        Compiled BIO transition rules, or None for the rule-free
        w/o-Rule / AggNet variant.
    fixed_qa:
        Optional frozen per-sentence truth posteriors (list of ``(T_i, K)``)
        for the MV-Rule-style ablations.
    """

    def __init__(
        self,
        model: SequenceTagger,
        config: LogicLNCLConfig,
        rng: np.random.Generator,
        rules: TransitionRules | None = None,
        fixed_qa: list[np.ndarray] | None = None,
    ) -> None:
        self.model = model
        self.config = config
        self.rng = rng
        self.rules = rules
        self.fixed_qa = fixed_qa
        self.confusions_: np.ndarray | None = None
        self.qa_: list[np.ndarray] | None = None
        self.qb_: list[np.ndarray] | None = None
        self.qf_: list[np.ndarray] | None = None
        self.history_: dict | None = None

    # ------------------------------------------------------------------ #
    def _distill(self, qa: list[np.ndarray]) -> list[np.ndarray]:
        """Per-sentence Eq. 15 marginals via the chain DP."""
        pairwise = self.rules.pairwise_potential(self.config.C)
        initial = self.rules.initial_potential(self.config.C)
        return [chain_marginals(q, pairwise, initial) for q in qa]

    @staticmethod
    def _mix(qa: list[np.ndarray], qb: list[np.ndarray], k: float) -> list[np.ndarray]:
        return [(1.0 - k) * a + k * b for a, b in zip(qa, qb)]

    @staticmethod
    def _pad_targets(posteriors: list[np.ndarray], max_time: int, num_classes: int) -> np.ndarray:
        """Stack ragged per-sentence posteriors into ``(I, T, K)``.

        Padded rows get a uniform distribution; they are masked from the
        loss so the value is irrelevant — uniform keeps them harmless.
        """
        out = np.full((len(posteriors), max_time, num_classes), 1.0 / num_classes)
        for i, posterior in enumerate(posteriors):
            out[i, : posterior.shape[0], :] = posterior
        return out

    def _token_mv(self, crowd) -> list[np.ndarray]:
        """Token-level majority vote over all sentences in one pass."""
        votes = crowd.token_vote_counts_flat().astype(np.float64)   # (ΣT_i, K)
        totals = votes.sum(axis=1, keepdims=True)
        uniform = np.full_like(votes, 1.0 / crowd.num_classes)
        flat = np.where(totals > 0, votes / np.where(totals > 0, totals, 1.0), uniform)
        _, offsets = crowd.flat_labels()
        return [flat[offsets[i] : offsets[i + 1]] for i in range(crowd.num_instances)]

    # ------------------------------------------------------------------ #
    def fit(
        self,
        train: SequenceTaggingDataset,
        dev: SequenceTaggingDataset | None = None,
    ) -> dict:
        """Run Algorithm 1 on a sequence crowd; returns training history."""
        crowd = train.crowd
        if crowd is None:
            raise ValueError("training dataset carries no crowd labels")
        K = self.model.num_classes
        tokens, lengths = train.tokens, train.lengths
        max_time = tokens.shape[1]

        weights = None
        if self.config.weighted_loss:
            per_sentence = crowd.annotations_per_instance().astype(np.float64)
            weights = np.repeat(per_sentence[:, None], max_time, axis=1)

        qf = self._token_mv(crowd)
        qa, qb = qf, qf
        confusions = sequence_update_confusions(qf, crowd, self.config.confusion_smoothing)

        if hasattr(self.model, "initialize_output_bias") and qf:
            priors = np.concatenate(qf, axis=0).sum(axis=0)
            if priors.sum() > 0:  # empty training set: keep the default bias
                self.model.initialize_output_bias(priors / priors.sum())

        optimizer, schedule = build_optimizer(self.model.parameters(), self.config)
        stopper = EarlyStopping(self.model, self.config.patience) if dev is not None else None
        best_extras: dict | None = None
        history: dict = {"loss": [], "dev_score": [], "k": []}

        for epoch in range(1, self.config.epochs + 1):
            targets = self._pad_targets(qf, max_time, K)
            loss = run_sequence_epoch(
                self.model, optimizer, tokens, lengths, targets, self.rng, self.config,
                weights=weights,
            )
            history["loss"].append(loss)
            if schedule is not None:
                schedule.step()

            confusions = sequence_update_confusions(qf, crowd, self.config.confusion_smoothing)

            proba = predict_sequence_proba_batched(self.model, tokens, lengths)
            proba_list = [proba[i, : int(lengths[i])] for i in range(len(lengths))]
            qa = (
                self.fixed_qa
                if self.fixed_qa is not None
                else sequence_posterior_qa(proba_list, crowd, confusions)
            )
            if self.rules is not None:
                qb = self._distill(qa)
                k = self.config.imitation(epoch)
            else:
                qb = qa
                k = 0.0
            history["k"].append(k)
            qf = self._mix(qa, qb, k)

            if stopper is not None:
                predictions = self.model.predict(dev.tokens, dev.lengths)
                score = span_f1_score(dev.tags, predictions).f1
                history["dev_score"].append(score)
                improved = score > stopper.best_score
                stop = stopper.update(score)
                if improved:
                    best_extras = {
                        "confusions": confusions.copy(),
                        "qa": [np.array(q, copy=True) for q in qa],
                        "qb": [np.array(q, copy=True) for q in qb],
                        "qf": [np.array(q, copy=True) for q in qf],
                    }
                if stop:
                    break

        if stopper is not None:
            stopper.restore_best()
            history["best_dev_score"] = stopper.best_score
            if best_extras is not None:
                confusions = best_extras["confusions"]
                qa, qb, qf = best_extras["qa"], best_extras["qb"], best_extras["qf"]

        self.confusions_ = confusions
        self.qa_, self.qb_, self.qf_ = qa, qb, qf
        self.history_ = history
        return history

    # ------------------------------------------------------------------ #
    def predict_student(self, tokens: np.ndarray, lengths: np.ndarray) -> list[np.ndarray]:
        """Plain network predictions, trimmed to sentence lengths."""
        return self.model.predict(tokens, lengths)

    def predict_teacher(self, tokens: np.ndarray, lengths: np.ndarray) -> list[np.ndarray]:
        """Eq. 15 at test time: chain-DP marginals of the rule-adapted
        network prediction, decoded per token."""
        proba = predict_sequence_proba_batched(self.model, tokens, lengths)
        if self.rules is None:
            return [proba[i, : int(lengths[i])].argmax(axis=1) for i in range(len(lengths))]
        pairwise = self.rules.pairwise_potential(self.config.C)
        initial = self.rules.initial_potential(self.config.C)
        out = []
        for i in range(len(lengths)):
            marginals = chain_marginals(proba[i, : int(lengths[i])], pairwise, initial)
            out.append(marginals.argmax(axis=1))
        return out

    def inference_posterior(self) -> list[np.ndarray]:
        """``qf(t)`` on the training sentences (Inference metric)."""
        if self.qf_ is None:
            raise RuntimeError("fit() has not been run")
        return self.qf_
