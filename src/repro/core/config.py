"""Logic-LNCL configuration (paper Table I).

``sentiment_paper_config`` and ``ner_paper_config`` encode the exact
hyper-parameters of Table I; benches reuse them with smaller epoch budgets
but identical method-defining values (C, k(t), optimizer family, patience).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines.common import TrainerConfig
from .schedules import ImitationSchedule, exponential_ramp

__all__ = ["LogicLNCLConfig", "sentiment_paper_config", "ner_paper_config"]


@dataclass
class LogicLNCLConfig(TrainerConfig):
    """Training + distillation hyper-parameters.

    Attributes
    ----------
    C:
        Posterior-regularization strength of Eq. 14/15 (paper: 5.0 on both
        datasets).
    imitation:
        Schedule for the mixing weight ``k`` of Eq. 9.
    confusion_smoothing:
        Laplace pseudo-count in the Eq. 12 confusion update, keeping rows
        proper for annotators with few labels.
    """

    C: float = 5.0
    imitation: ImitationSchedule = field(default_factory=lambda: exponential_ramp(1.0, 0.94))
    confusion_smoothing: float = 0.01

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.C < 0:
            raise ValueError(f"C must be non-negative, got {self.C}")
        if self.confusion_smoothing < 0:
            raise ValueError("confusion smoothing must be non-negative")


def sentiment_paper_config(epochs: int = 30) -> LogicLNCLConfig:
    """Table I, sentiment column: Adadelta lr 1.0 halved every 5 epochs,
    batch 50, k(t) = min{1, 1-0.94^t}, C = 5, patience 5, unweighted loss
    (Eq. 6/8)."""
    return LogicLNCLConfig(
        epochs=epochs,
        batch_size=50,
        optimizer="adadelta",
        learning_rate=1.0,
        lr_decay_every=5,
        lr_decay_factor=0.5,
        patience=5,
        weighted_loss=False,
        C=5.0,
        imitation=exponential_ramp(1.0, 0.94),
    )


def ner_paper_config(epochs: int = 30) -> LogicLNCLConfig:
    """Table I, NER column: Adam 1e-3, batch 64, k(t) = min{0.8, 1-0.90^t},
    C = 5, patience 5, annotation-weighted loss (Eq. 5/10)."""
    return LogicLNCLConfig(
        epochs=epochs,
        batch_size=64,
        optimizer="adam",
        learning_rate=1e-3,
        lr_decay_every=None,
        patience=5,
        weighted_loss=True,
        C=5.0,
        imitation=exponential_ramp(0.8, 0.90),
    )
