"""Imitation-strength schedules k(t) (paper Table I).

The pseudo-M-step mixes the two learning targets with
``qf = (1-k)·qa + k·qb`` (Eq. 9); ``k`` may be constant or grow over
epochs. The paper uses ``k(t) = min{1, 1 - 0.94^t}`` on sentiment and
``min{0.8, 1 - 0.90^t}`` on NER — the rule influence ramps up as the
classifier (whose predictions feed the rule groundings) becomes
trustworthy.
"""

from __future__ import annotations

__all__ = ["ImitationSchedule", "constant", "exponential_ramp"]


class ImitationSchedule:
    """Callable epoch → k mapping; epochs are 1-based."""

    def __init__(self, fn, description: str) -> None:
        self._fn = fn
        self.description = description

    def __call__(self, epoch: int) -> float:
        if epoch < 1:
            raise ValueError(f"epochs are 1-based, got {epoch}")
        value = float(self._fn(epoch))
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"schedule produced k={value} outside [0, 1] at epoch {epoch}")
        return value

    def __repr__(self) -> str:
        return f"ImitationSchedule({self.description})"


def constant(k: float) -> ImitationSchedule:
    """Fixed imitation strength."""
    if not 0.0 <= k <= 1.0:
        raise ValueError(f"k must be in [0, 1], got {k}")
    return ImitationSchedule(lambda epoch: k, f"k={k}")


def exponential_ramp(limit: float, base: float) -> ImitationSchedule:
    """``k(t) = min(limit, 1 - base^t)`` — the paper's schedule family."""
    if not 0.0 <= limit <= 1.0:
        raise ValueError(f"limit must be in [0, 1], got {limit}")
    if not 0.0 < base < 1.0:
        raise ValueError(f"base must be in (0, 1), got {base}")
    return ImitationSchedule(
        lambda epoch: min(limit, 1.0 - base**epoch),
        f"min({limit}, 1 - {base}^t)",
    )
