"""Logic-LNCL: the paper's primary contribution.

Public surface::

    from repro.core import (
        LogicLNCLClassifier, LogicLNCLSequenceTagger,
        LogicLNCLConfig, sentiment_paper_config, ner_paper_config,
        constant, exponential_ramp,
    )

Performance: the sequence pseudo-E/M steps are array-at-a-time. Ragged
per-sentence crowd labels are flattened once into cached ``(ΣT_i, J)``
token matrices (plus a sparse token × (annotator, label) incidence), so
the Eq. 12 confusion update and Eq. 13 posterior are a handful of NumPy /
sparse-matmul calls rather than per-sentence Python loops — see
:mod:`repro.core.em` (the ``*_reference`` functions preserve the original
loop semantics and anchor the equivalence tests). The matching ``semantics
unchanged`` argument for the fused GRU lives in
:mod:`repro.autodiff.functional.gru_sequence`.
"""

from .config import LogicLNCLConfig, ner_paper_config, sentiment_paper_config
from .em import (
    posterior_qa,
    sequence_posterior_qa,
    sequence_update_confusions,
    update_confusions,
)
from .logic_lncl import LogicLNCLClassifier
from .schedules import ImitationSchedule, constant, exponential_ramp
from .sequence_lncl import LogicLNCLSequenceTagger

__all__ = [
    "LogicLNCLClassifier",
    "LogicLNCLSequenceTagger",
    "LogicLNCLConfig",
    "sentiment_paper_config",
    "ner_paper_config",
    "ImitationSchedule",
    "constant",
    "exponential_ramp",
    "update_confusions",
    "posterior_qa",
    "sequence_update_confusions",
    "sequence_posterior_qa",
]
