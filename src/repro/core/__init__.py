"""Logic-LNCL: the paper's primary contribution.

Public surface::

    from repro.core import (
        LogicLNCLClassifier, LogicLNCLSequenceTagger,
        LogicLNCLConfig, sentiment_paper_config, ner_paper_config,
        constant, exponential_ramp,
    )
"""

from .config import LogicLNCLConfig, ner_paper_config, sentiment_paper_config
from .em import (
    posterior_qa,
    sequence_posterior_qa,
    sequence_update_confusions,
    update_confusions,
)
from .logic_lncl import LogicLNCLClassifier
from .schedules import ImitationSchedule, constant, exponential_ramp
from .sequence_lncl import LogicLNCLSequenceTagger

__all__ = [
    "LogicLNCLClassifier",
    "LogicLNCLSequenceTagger",
    "LogicLNCLConfig",
    "sentiment_paper_config",
    "ner_paper_config",
    "ImitationSchedule",
    "constant",
    "exponential_ramp",
    "update_confusions",
    "posterior_qa",
    "sequence_update_confusions",
    "sequence_posterior_qa",
]
