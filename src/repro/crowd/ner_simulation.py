"""Crowd-annotation simulator for NER (substitution S2, sequence version).

The paper (§VI-A1) describes three error types crowd annotators make on the
CoNLL-2003 NER (MTurk) dataset:

  (i)   *ignore errors* — an entity is not annotated at all;
  (ii)  *boundary errors* — right entity type, wrong span boundaries;
  (iii) *span type errors* — right span, wrong entity type.

We simulate annotators as per-annotator rates for those three error types,
plus a small token-level noise rate that produces the stray invalid tags
(e.g. bare ``I-X``) the transition rules of Eq. 18–19 are designed to fix.
Annotator quality spans the paper's reported range (per-annotator F1 from
17.6% to 89.1%); annotator activity is heavy-tailed like the sentiment
crowd.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.bio import CONLL_LABELS, bio_from_spans, spans_from_bio
from .types import MISSING, SequenceCrowdLabels

__all__ = ["NERAnnotatorProfile", "NERAnnotatorPool", "sample_ner_pool", "simulate_ner_crowd"]


@dataclass
class NERAnnotatorProfile:
    """Error-rate profile of one simulated NER annotator."""

    ignore_rate: float
    boundary_rate: float
    type_rate: float
    token_noise_rate: float

    def __post_init__(self) -> None:
        for field_name in ("ignore_rate", "boundary_rate", "type_rate", "token_noise_rate"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1], got {value}")


@dataclass
class NERAnnotatorPool:
    """A simulated NER crowd: profiles plus activity weights."""

    profiles: list[NERAnnotatorProfile]
    activity: np.ndarray

    def __post_init__(self) -> None:
        self.activity = np.asarray(self.activity, dtype=np.float64)
        if self.activity.shape != (len(self.profiles),):
            raise ValueError("activity must have one weight per annotator")
        if np.any(self.activity <= 0):
            raise ValueError("activity weights must be positive")

    @property
    def num_annotators(self) -> int:
        return len(self.profiles)


_NER_QUALITY_MIXTURE = (
    # (probability, ignore, boundary, type, token_noise) ranges — tuned so
    # per-annotator F1 spans roughly 0.15..0.9 like the paper reports.
    (0.20, (0.02, 0.10), (0.02, 0.10), (0.02, 0.08), (0.000, 0.005)),  # experts
    (0.40, (0.10, 0.30), (0.05, 0.20), (0.05, 0.15), (0.002, 0.010)),  # good
    (0.25, (0.30, 0.55), (0.10, 0.30), (0.10, 0.25), (0.005, 0.020)),  # mediocre
    (0.15, (0.55, 0.85), (0.20, 0.40), (0.20, 0.40), (0.010, 0.040)),  # poor
)


def sample_ner_pool(
    rng: np.random.Generator,
    num_annotators: int,
    zipf_exponent: float = 1.0,
) -> NERAnnotatorPool:
    """Sample a heterogeneous pool of NER annotators."""
    if num_annotators < 1:
        raise ValueError(f"need at least one annotator, got {num_annotators}")
    probabilities = np.array([component[0] for component in _NER_QUALITY_MIXTURE])
    components = rng.choice(len(_NER_QUALITY_MIXTURE), size=num_annotators, p=probabilities)
    profiles = []
    for component in components:
        _, ignore, boundary, span_type, noise = _NER_QUALITY_MIXTURE[component]
        profiles.append(
            NERAnnotatorProfile(
                ignore_rate=rng.uniform(*ignore),
                boundary_rate=rng.uniform(*boundary),
                type_rate=rng.uniform(*span_type),
                token_noise_rate=rng.uniform(*noise),
            )
        )
    ranks = rng.permutation(num_annotators) + 1
    activity = ranks.astype(np.float64) ** (-zipf_exponent)
    return NERAnnotatorPool(profiles=profiles, activity=activity)


def _entity_types(labels: list[str]) -> list[str]:
    return sorted({name[2:] for name in labels if name.startswith("B-")})


def corrupt_tags(
    rng: np.random.Generator,
    tags: np.ndarray,
    profile: NERAnnotatorProfile,
    labels: list[str] = CONLL_LABELS,
) -> np.ndarray:
    """Apply one annotator's error profile to a gold tag sequence."""
    length = len(tags)
    spans = spans_from_bio(tags, labels)
    types = _entity_types(labels)
    kept: list[tuple[str, int, int]] = []
    for entity, start, end in spans:
        if rng.random() < profile.ignore_rate:
            continue  # (i) ignore error: entity vanishes
        if rng.random() < profile.type_rate and len(types) > 1:
            # (iii) span type error: swap to another entity type.
            others = [t for t in types if t != entity]
            entity = others[rng.integers(len(others))]
        if rng.random() < profile.boundary_rate:
            # (ii) boundary error: jitter one of the boundaries by one token.
            if rng.random() < 0.5:
                start = max(0, min(start + int(rng.integers(-1, 2)), end - 1))
            else:
                end = min(length, max(end + int(rng.integers(-1, 2)), start + 1))
        kept.append((entity, start, end))
    noisy = bio_from_spans(kept, length, labels)
    if profile.token_noise_rate > 0:
        flip = rng.random(length) < profile.token_noise_rate
        if flip.any():
            noisy = noisy.copy()
            noisy[flip] = rng.integers(0, len(labels), size=int(flip.sum()))
    return noisy


def simulate_ner_crowd(
    rng: np.random.Generator,
    true_tags: list[np.ndarray],
    pool: NERAnnotatorPool,
    mean_labels_per_instance: float = 4.0,
    min_labels_per_instance: int = 1,
    labels: list[str] = CONLL_LABELS,
) -> SequenceCrowdLabels:
    """Simulate token-level crowd labels for a tagged corpus.

    Each sentence is assigned a Poisson number of annotators (clipped to
    ``[min, J]``, probability proportional to activity); each assigned
    annotator labels every token of the sentence through
    :func:`corrupt_tags`.
    """
    if mean_labels_per_instance < min_labels_per_instance:
        raise ValueError("mean labels per instance below the minimum")
    J = pool.num_annotators
    K = len(labels)
    selection_probability = pool.activity / pool.activity.sum()
    out: list[np.ndarray] = []
    for tags in true_tags:
        tags = np.asarray(tags)
        count = int(
            np.clip(
                rng.poisson(mean_labels_per_instance - min_labels_per_instance)
                + min_labels_per_instance,
                min_labels_per_instance,
                J,
            )
        )
        annotators = rng.choice(J, size=count, replace=False, p=selection_probability)
        matrix = np.full((len(tags), J), MISSING, dtype=np.int64)
        for j in annotators:
            matrix[:, j] = corrupt_tags(rng, tags, pool.profiles[j], labels)
        out.append(matrix)
    return SequenceCrowdLabels(out, num_classes=K, num_annotators=J)
