"""Crowd-annotation simulator for classification tasks (substitution S2).

The real Sentiment Polarity (MTurk) dataset cannot be downloaded offline,
so we simulate the annotation process the paper's model family assumes and
that Fig. 4 characterizes empirically:

* each annotator j has a latent confusion matrix Π(j) (paper Eq. 2);
* annotator quality is heterogeneous — a mix of experts, good workers,
  mediocre workers, and near-random spammers (Fig. 4b shows accuracies
  from ~0.2 to 1.0 with a median around 0.8, including annotator 193 whose
  matrix is essentially uniform);
* annotator *activity* is heavy-tailed — a few workers contribute
  thousands of labels, most contribute a handful (Fig. 4a);
* every instance receives a small number of labels (5.55 on average for
  the sentiment dataset).

The simulator samples a pool of annotators from that mixture, then labels
each instance by drawing a subset of annotators (without replacement,
probability proportional to activity) and sampling each label from the
annotator's confusion row for the true class.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .types import MISSING, CrowdLabelMatrix

__all__ = [
    "AnnotatorPool",
    "sample_confusion_matrix",
    "sample_annotator_pool",
    "simulate_classification_crowd",
]


@dataclass
class AnnotatorPool:
    """A simulated crowd: per-annotator confusion matrices and activity.

    Attributes
    ----------
    confusions:
        ``(J, K, K)``; row m of matrix j is the distribution of annotator
        j's label given true class m (paper Eq. 2).
    activity:
        ``(J,)`` positive sampling weights (heavy-tailed).
    """

    confusions: np.ndarray
    activity: np.ndarray

    def __post_init__(self) -> None:
        self.confusions = np.asarray(self.confusions, dtype=np.float64)
        self.activity = np.asarray(self.activity, dtype=np.float64)
        if self.confusions.ndim != 3 or self.confusions.shape[1] != self.confusions.shape[2]:
            raise ValueError(f"confusions must be (J, K, K), got {self.confusions.shape}")
        if self.activity.shape != (self.confusions.shape[0],):
            raise ValueError("activity must have one weight per annotator")
        if np.any(self.activity <= 0):
            raise ValueError("activity weights must be positive")
        rows = self.confusions.sum(axis=2)
        if not np.allclose(rows, 1.0, atol=1e-8):
            raise ValueError("confusion rows must sum to 1")

    @property
    def num_annotators(self) -> int:
        return self.confusions.shape[0]

    @property
    def num_classes(self) -> int:
        return self.confusions.shape[1]

    def accuracies(self) -> np.ndarray:
        """Mean diagonal of each annotator's confusion matrix, shape ``(J,)``."""
        return np.einsum("jkk->j", self.confusions) / self.num_classes


def sample_confusion_matrix(
    rng: np.random.Generator,
    accuracy: float,
    num_classes: int,
    concentration: float = 8.0,
) -> np.ndarray:
    """Sample a confusion matrix with a target mean diagonal.

    Each row is Dirichlet-distributed around "``accuracy`` on the diagonal,
    the rest spread over other classes", so annotators are not perfectly
    symmetric (matching the skewed matrices in paper Fig. 6a).
    """
    if not 0.0 < accuracy < 1.0:
        raise ValueError(f"accuracy must be in (0, 1), got {accuracy}")
    if num_classes < 2:
        raise ValueError(f"need at least 2 classes, got {num_classes}")
    matrix = np.zeros((num_classes, num_classes))
    off_mass = (1.0 - accuracy) / (num_classes - 1)
    for m in range(num_classes):
        alpha = np.full(num_classes, off_mass * concentration)
        alpha[m] = accuracy * concentration
        matrix[m] = rng.dirichlet(alpha)
    return matrix


_QUALITY_MIXTURE = (
    # (probability, accuracy low, accuracy high) — tuned to reproduce the
    # Fig. 4b accuracy spread (0.2..1.0, median ~0.8, spammers near 0.5).
    (0.15, 0.92, 0.98),  # experts
    (0.45, 0.75, 0.92),  # good workers
    (0.25, 0.55, 0.75),  # mediocre workers
    (0.15, 0.40, 0.55),  # spammers / adversarial-ish
)


def sample_annotator_pool(
    rng: np.random.Generator,
    num_annotators: int,
    num_classes: int,
    zipf_exponent: float = 1.1,
) -> AnnotatorPool:
    """Sample a heterogeneous annotator pool.

    Quality comes from the four-component mixture above; activity follows a
    shuffled Zipf law with the given exponent (heavy tail: the busiest
    annotators label orders of magnitude more than the median, Fig. 4a).
    """
    if num_annotators < 1:
        raise ValueError(f"need at least one annotator, got {num_annotators}")
    probabilities = np.array([component[0] for component in _QUALITY_MIXTURE])
    components = rng.choice(len(_QUALITY_MIXTURE), size=num_annotators, p=probabilities)
    confusions = np.zeros((num_annotators, num_classes, num_classes))
    for j, component in enumerate(components):
        _, low, high = _QUALITY_MIXTURE[component]
        accuracy = rng.uniform(low, high)
        confusions[j] = sample_confusion_matrix(rng, accuracy, num_classes)
    ranks = rng.permutation(num_annotators) + 1
    activity = ranks.astype(np.float64) ** (-zipf_exponent)
    return AnnotatorPool(confusions=confusions, activity=activity)


def simulate_classification_crowd(
    rng: np.random.Generator,
    true_labels: np.ndarray,
    pool: AnnotatorPool,
    mean_labels_per_instance: float = 5.55,
    min_labels_per_instance: int = 1,
) -> CrowdLabelMatrix:
    """Simulate crowd labels for a classification dataset.

    Parameters
    ----------
    true_labels:
        ``(I,)`` ground-truth class ids.
    pool:
        The annotator pool (confusions + activity).
    mean_labels_per_instance:
        Average redundancy; the sentiment dataset averages 5.55. Counts are
        Poisson-distributed around this mean, clipped to
        ``[min_labels_per_instance, J]``.
    """
    true_labels = np.asarray(true_labels)
    if true_labels.ndim != 1:
        raise ValueError(f"true_labels must be 1-D, got shape {true_labels.shape}")
    if mean_labels_per_instance < min_labels_per_instance:
        raise ValueError("mean labels per instance below the minimum")
    J = pool.num_annotators
    K = pool.num_classes
    if true_labels.min() < 0 or true_labels.max() >= K:
        raise ValueError(f"true labels out of range [0, {K})")

    I = true_labels.shape[0]
    labels = np.full((I, J), MISSING, dtype=np.int64)
    selection_probability = pool.activity / pool.activity.sum()
    counts = rng.poisson(mean_labels_per_instance - min_labels_per_instance, size=I)
    counts = np.clip(counts + min_labels_per_instance, min_labels_per_instance, J)
    for i in range(I):
        annotators = rng.choice(J, size=counts[i], replace=False, p=selection_probability)
        row = pool.confusions[annotators, true_labels[i], :]
        # Vectorized categorical draw per selected annotator.
        cumulative = row.cumsum(axis=1)
        draws = rng.random(len(annotators))[:, None]
        labels[i, annotators] = (draws < cumulative).argmax(axis=1)
    return CrowdLabelMatrix(labels, K)
