"""Containers for crowd-annotated data.

The paper's notation: dataset ``D = {x_i, y_i}`` where ``y_i`` is a vector of
labels from ``J`` annotators and ``y_{ij} = 0`` marks "annotator j did not
label instance i". Because our class ids are 0-based we use ``-1`` as the
missing sentinel instead (``MISSING``); conversion helpers are provided.

Two containers cover the paper's two tasks:

* :class:`CrowdLabelMatrix` — instance-level categorical labels
  (sentiment classification); a dense ``(I, J)`` integer matrix.
* :class:`SequenceCrowdLabels` — token-level label sequences (NER); a list
  of per-instance ``(T_i, J)`` matrices, since sentences have ragged
  lengths. An annotator labels either a whole sentence or none of it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MISSING", "CrowdLabelMatrix", "SequenceCrowdLabels"]

MISSING = -1


class CrowdLabelMatrix:
    """Dense instance × annotator label matrix with a missing sentinel.

    Parameters
    ----------
    labels:
        ``(I, J)`` integer array; entries are class ids in ``[0, K)`` or
        :data:`MISSING`.
    num_classes:
        Number of classes ``K``.

    The labels are treated as immutable after construction (every mutating
    operation, e.g. :meth:`subset`, builds a new container), which lets the
    flat COO views below — the ``(n_obs,)`` index arrays of
    :meth:`flat_label_pairs` and the sparse instance × (annotator, label)
    incidence of :meth:`label_incidence` — be computed once and cached.
    Vote counts, one-hot expansion, and the confusion-count/E-step kernels
    in :mod:`repro.inference.primitives` all run off these views as single
    bincounts/matmuls instead of ``(I, J, K)`` dense scans.
    """

    def __init__(self, labels: np.ndarray, num_classes: int) -> None:
        labels = np.asarray(labels)
        if labels.ndim != 2:
            raise ValueError(f"labels must be (I, J), got shape {labels.shape}")
        if not np.issubdtype(labels.dtype, np.integer):
            raise TypeError(f"labels must be integers, got {labels.dtype}")
        if num_classes < 2:
            raise ValueError(f"need at least 2 classes, got {num_classes}")
        valid = (labels == MISSING) | ((labels >= 0) & (labels < num_classes))
        if not valid.all():
            bad = labels[~valid]
            raise ValueError(f"labels out of range [0, {num_classes}): {np.unique(bad)}")
        self.labels = labels.astype(np.int64)
        self.num_classes = int(num_classes)

    # ------------------------------------------------------------------ #
    @property
    def num_instances(self) -> int:
        return self.labels.shape[0]

    @property
    def num_annotators(self) -> int:
        return self.labels.shape[1]

    @property
    def observed_mask(self) -> np.ndarray:
        """Boolean ``(I, J)``: which cells carry a label (cached)."""
        cached = getattr(self, "_observed_mask_cache", None)
        if cached is None:
            cached = self.labels != MISSING
            self._observed_mask_cache = cached
        return cached

    def annotations_per_instance(self) -> np.ndarray:
        """``num(J(i))`` of paper Eq. 5: labels per instance, shape ``(I,)``."""
        return self.observed_mask.sum(axis=1)

    def annotations_per_annotator(self) -> np.ndarray:
        """Number of instances each annotator labeled, shape ``(J,)``."""
        return self.observed_mask.sum(axis=0)

    def total_annotations(self) -> int:
        return int(self.observed_mask.sum())

    def flat_label_pairs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached ``(instance, annotator, label)`` triples of observed cells.

        The ``(n_obs,)`` COO view of the matrix; the shared kernels in
        :mod:`repro.inference.primitives` scatter/gather over these triples
        instead of scanning the dense ``(I, J)`` matrix (or its ``(I, J, K)``
        one-hot expansion) every EM round.
        """
        cached = getattr(self, "_flat_pairs_cache", None)
        if cached is None:
            rows, cols = np.nonzero(self.observed_mask)
            cached = (rows, cols, self.labels[rows, cols])
            self._flat_pairs_cache = cached
        return cached

    def label_incidence(self):
        """Cached sparse ``(I, J·K)`` incidence of observed labels.

        Entry ``(i, j·K + y)`` is 1 when annotator ``j`` gave instance ``i``
        label ``y`` — the classification twin of
        :meth:`SequenceCrowdLabels.token_label_incidence`. Confusion-count
        accumulation and the per-instance log-likelihood gather are then
        single sparse–dense products. Returns None when scipy is
        unavailable (callers fall back to bincount accumulation).
        """
        cached = getattr(self, "_incidence_cache", None)
        if cached is None:
            try:
                from scipy.sparse import csr_matrix
            except ImportError:
                cached = (None,)
            else:
                rows, cols, given = self.flat_label_pairs()
                group = cols * self.num_classes + given
                matrix = csr_matrix(
                    (np.ones(rows.size), (rows, group)),
                    shape=(self.num_instances, self.num_annotators * self.num_classes),
                )
                cached = (matrix,)
            self._incidence_cache = cached
        return cached[0]

    def vote_counts(self) -> np.ndarray:
        """Per-instance class vote counts, shape ``(I, K)``."""
        rows, _, given = self.flat_label_pairs()
        key = rows * self.num_classes + given
        counts = np.bincount(key, minlength=self.num_instances * self.num_classes)
        return counts.reshape(self.num_instances, self.num_classes)

    def one_hot(self) -> np.ndarray:
        """``(I, J, K)`` one-hot labels (zero rows where missing)."""
        out = np.zeros((self.num_instances, self.num_annotators, self.num_classes))
        rows, cols, given = self.flat_label_pairs()
        out[rows, cols, given] = 1.0
        return out

    def subset(self, indices: np.ndarray) -> "CrowdLabelMatrix":
        """Restrict to a subset of instances (annotator axis unchanged)."""
        return CrowdLabelMatrix(self.labels[np.asarray(indices)], self.num_classes)

    def annotator_confusion(self, truth: np.ndarray, annotator: int) -> np.ndarray:
        """Empirical row-normalized confusion matrix of one annotator.

        These are the "Real" matrices of paper Fig. 6/7(a): row m = true
        class, column n = annotator's label, conditioned on having labeled.
        Rows with no observations fall back to uniform.
        """
        truth = np.asarray(truth)
        if truth.shape != (self.num_instances,):
            raise ValueError(f"truth must be ({self.num_instances},), got {truth.shape}")
        K = self.num_classes
        counts = np.zeros((K, K))
        observed = self.observed_mask[:, annotator]
        for m in range(K):
            mask = observed & (truth == m)
            given = self.labels[mask, annotator]
            np.add.at(counts[m], given, 1.0)
        row_sums = counts.sum(axis=1, keepdims=True)
        uniform = np.full((K, K), 1.0 / K)
        return np.where(row_sums > 0, counts / np.where(row_sums > 0, row_sums, 1), uniform)

    # ------------------------------------------------------------------ #
    @staticmethod
    def from_paper_convention(labels_1based: np.ndarray, num_classes: int) -> "CrowdLabelMatrix":
        """Convert the paper's 1-based labels (0 = missing) to this container."""
        labels_1based = np.asarray(labels_1based)
        converted = np.where(labels_1based == 0, MISSING, labels_1based - 1)
        return CrowdLabelMatrix(converted.astype(np.int64), num_classes)

    def to_paper_convention(self) -> np.ndarray:
        """Export as the paper's 1-based convention (0 = missing)."""
        return np.where(self.labels == MISSING, 0, self.labels + 1)


@dataclass
class SequenceCrowdLabels:
    """Token-level crowd labels for ragged sentences.

    Attributes
    ----------
    labels:
        List (length I) of ``(T_i, J)`` integer arrays; a column is either
        all :data:`MISSING` (annotator skipped the sentence) or fully
        labeled.
    num_classes:
        Number of tag classes ``K``.
    num_annotators:
        Number of annotators ``J``.
    """

    labels: list[np.ndarray]
    num_classes: int
    num_annotators: int

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError(f"need at least 2 classes, got {self.num_classes}")
        for i, matrix in enumerate(self.labels):
            matrix = np.asarray(matrix)
            if matrix.ndim != 2 or matrix.shape[1] != self.num_annotators:
                raise ValueError(
                    f"instance {i}: expected (T_i, {self.num_annotators}), got {matrix.shape}"
                )
            valid = (matrix == MISSING) | ((matrix >= 0) & (matrix < self.num_classes))
            if not valid.all():
                raise ValueError(f"instance {i}: labels out of range")
            # Columns must be fully labeled or fully missing.
            col_missing = (matrix == MISSING).sum(axis=0)
            partial = (col_missing > 0) & (col_missing < matrix.shape[0])
            if partial.any():
                raise ValueError(
                    f"instance {i}: annotators {np.nonzero(partial)[0]} labeled "
                    "only part of the sentence"
                )
            self.labels[i] = matrix.astype(np.int64)

    @property
    def num_instances(self) -> int:
        return len(self.labels)

    def flat_labels(self) -> tuple[np.ndarray, np.ndarray]:
        """All sentences stacked: ``((ΣT_i, J) labels, (I+1,) row offsets)``.

        Sentence ``i`` occupies rows ``offsets[i]:offsets[i+1]``. The result
        is cached — the label matrices are treated as immutable (every
        mutating operation, e.g. :meth:`subset`, builds a new container).
        This flat view is what the vectorized EM updates in
        :mod:`repro.core.em` and the token-level inference adapters operate
        on instead of per-sentence Python loops.
        """
        cached = getattr(self, "_flat_cache", None)
        if cached is None:
            sizes = np.fromiter(
                (matrix.shape[0] for matrix in self.labels), dtype=np.int64, count=len(self.labels)
            )
            offsets = np.zeros(len(self.labels) + 1, dtype=np.int64)
            np.cumsum(sizes, out=offsets[1:])
            stacked = (
                np.concatenate(self.labels, axis=0)
                if self.labels
                else np.zeros((0, self.num_annotators), dtype=np.int64)
            )
            cached = (stacked, offsets)
            self._flat_cache = cached
        return cached

    def flat_label_pairs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached ``(token, annotator, label)`` triples of all observed labels.

        ``token`` indexes rows of :meth:`flat_labels`; the triples drive the
        vectorized EM scatter/gather in :mod:`repro.core.em` without
        re-scanning the ``(ΣT_i, J)`` matrix every round.
        """
        cached = getattr(self, "_flat_pairs_cache", None)
        if cached is None:
            stacked, _ = self.flat_labels()
            tokens, annotators = np.nonzero(stacked != MISSING)
            cached = (tokens, annotators, stacked[tokens, annotators])
            self._flat_pairs_cache = cached
        return cached

    def token_label_incidence(self):
        """Cached sparse ``(ΣT_i, J·K)`` incidence of observed labels.

        Entry ``(t, j·K + y)`` is 1 when annotator ``j`` gave token ``t``
        label ``y``. Both sequence-EM updates are then single sparse–dense
        products (see :mod:`repro.core.em`). Returns None when scipy is
        unavailable (callers fall back to bincount accumulation).
        """
        cached = getattr(self, "_incidence_cache", None)
        if cached is None:
            try:
                from scipy.sparse import csr_matrix
            except ImportError:
                cached = (None,)
            else:
                tokens, annotators, given = self.flat_label_pairs()
                stacked, _ = self.flat_labels()
                group = annotators * self.num_classes + given
                matrix = csr_matrix(
                    (np.ones(tokens.size), (tokens, group)),
                    shape=(stacked.shape[0], self.num_annotators * self.num_classes),
                )
                cached = (matrix,)
            self._incidence_cache = cached
        return cached[0]

    def annotator_mask(self) -> np.ndarray:
        """Boolean ``(I, J)``: which annotators labeled each sentence (cached)."""
        cached = getattr(self, "_annotator_mask_cache", None)
        if cached is None:
            stacked, offsets = self.flat_labels()
            observed = stacked != MISSING
            # Columns are all-or-none per sentence, so "any token labeled"
            # equals "sentence labeled"; reduceat sums per-sentence blocks.
            nonempty = offsets[:-1] < offsets[1:]
            cached = np.zeros((self.num_instances, self.num_annotators), dtype=bool)
            if nonempty.any():
                sums = np.add.reduceat(observed, offsets[:-1][nonempty], axis=0)
                cached[nonempty] = sums > 0
            self._annotator_mask_cache = cached
        return cached

    def annotators_of(self, instance: int) -> np.ndarray:
        """Indices of annotators who labeled this sentence."""
        return np.nonzero(self.annotator_mask()[instance])[0]

    def annotations_per_instance(self) -> np.ndarray:
        """Annotators per sentence, shape ``(I,)``."""
        return self.annotator_mask().sum(axis=1)

    def annotations_per_annotator(self) -> np.ndarray:
        """Sentences labeled by each annotator, shape ``(J,)``."""
        return self.annotator_mask().sum(axis=0)

    def token_vote_counts_flat(self) -> np.ndarray:
        """Per-token class vote counts over all sentences, shape ``(ΣT_i, K)``.

        Row blocks follow :meth:`flat_labels` offsets; one ``bincount`` per
        class replaces the per-sentence / per-annotator scatter loops.
        """
        stacked, _ = self.flat_labels()
        tokens, _, votes = self.flat_label_pairs()
        key = tokens * self.num_classes + votes
        counts = np.bincount(key, minlength=stacked.shape[0] * self.num_classes)
        return counts.reshape(stacked.shape[0], self.num_classes)

    def token_vote_counts(self, instance: int) -> np.ndarray:
        """Per-token class vote counts for one sentence, shape ``(T_i, K)``."""
        matrix = self.labels[instance]
        T = matrix.shape[0]
        counts = np.zeros((T, self.num_classes), dtype=np.int64)
        for j in self.annotators_of(instance):
            np.add.at(counts, (np.arange(T), matrix[:, j]), 1)
        return counts

    def subset(self, indices: np.ndarray) -> "SequenceCrowdLabels":
        """Restrict to a subset of sentences."""
        picked = [self.labels[int(i)] for i in np.asarray(indices)]
        return SequenceCrowdLabels(picked, self.num_classes, self.num_annotators)

    def annotator_confusion(self, truth: list[np.ndarray], annotator: int) -> np.ndarray:
        """Token-level confusion matrix of one annotator vs ground truth."""
        K = self.num_classes
        counts = np.zeros((K, K))
        for i in range(self.num_instances):
            if annotator not in set(self.annotators_of(i).tolist()):
                continue
            given = self.labels[i][:, annotator]
            true = np.asarray(truth[i])
            np.add.at(counts, (true, given), 1.0)
        row_sums = counts.sum(axis=1, keepdims=True)
        uniform = np.full((K, K), 1.0 / K)
        return np.where(row_sums > 0, counts / np.where(row_sums > 0, row_sums, 1), uniform)
