"""Containers for crowd-annotated data.

The paper's notation: dataset ``D = {x_i, y_i}`` where ``y_i`` is a vector of
labels from ``J`` annotators and ``y_{ij} = 0`` marks "annotator j did not
label instance i". Because our class ids are 0-based we use ``-1`` as the
missing sentinel instead (``MISSING``); conversion helpers are provided.

Two containers cover the paper's two tasks:

* :class:`CrowdLabelMatrix` — instance-level categorical labels
  (sentiment classification); a dense ``(I, J)`` integer matrix.
* :class:`SequenceCrowdLabels` — token-level label sequences (NER); a list
  of per-instance ``(T_i, J)`` matrices, since sentences have ragged
  lengths. An annotator labels either a whole sentence or none of it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MISSING", "CrowdLabelMatrix", "SequenceCrowdLabels"]

MISSING = -1


def _validate_label_block(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Validate one ``(n, J)`` block of labels; returns it as int64."""
    labels = np.asarray(labels)
    if labels.ndim != 2:
        raise ValueError(f"labels must be (I, J), got shape {labels.shape}")
    if not np.issubdtype(labels.dtype, np.integer):
        raise TypeError(f"labels must be integers, got {labels.dtype}")
    valid = (labels == MISSING) | ((labels >= 0) & (labels < num_classes))
    if not valid.all():
        bad = labels[~valid]
        raise ValueError(f"labels out of range [0, {num_classes}): {np.unique(bad)}")
    return labels.astype(np.int64)


class CrowdLabelMatrix:
    """Dense instance × annotator label matrix with a missing sentinel.

    Parameters
    ----------
    labels:
        ``(I, J)`` integer array; entries are class ids in ``[0, K)`` or
        :data:`MISSING`.
    num_classes:
        Number of classes ``K``.

    The labels are treated as immutable after construction (every mutating
    operation, e.g. :meth:`subset`, builds a new container), which lets the
    flat COO views below — the ``(n_obs,)`` index arrays of
    :meth:`flat_label_pairs` and the sparse instance × (annotator, label)
    incidence of :meth:`label_incidence` — be computed once and cached.
    Vote counts, one-hot expansion, and the confusion-count/E-step kernels
    in :mod:`repro.inference.primitives` all run off these views as single
    bincounts/matmuls instead of ``(I, J, K)`` dense scans.

    The one sanctioned mutation is :meth:`extend` — the streaming append
    path — which adds whole instances and updates every populated cache
    incrementally (O(new observations) of cache *computation*; already-built
    views are carried over, never recomputed from scratch).

    The read-only-views contract is machine-checked: the accessors named
    in ``repro.analysis.flow.facts.BORROWING_CALLS`` (``shards``,
    ``iter_shards``, ``flat_label_pairs``, ``label_incidence``,
    ``vote_counts``, ...) seed "borrowed" taint in the lint engine's
    dataflow tier, and any in-place write reaching a borrowed view
    without an intervening ``.copy()`` is a ``view-mutation`` finding.
    """

    def __init__(self, labels: np.ndarray, num_classes: int) -> None:
        if num_classes < 2:
            raise ValueError(f"need at least 2 classes, got {num_classes}")
        self.labels = _validate_label_block(labels, num_classes)
        self.num_classes = int(num_classes)

    # ------------------------------------------------------------------ #
    @property
    def num_instances(self) -> int:
        return self.labels.shape[0]

    @property
    def num_annotators(self) -> int:
        return self.labels.shape[1]

    @property
    def observed_mask(self) -> np.ndarray:
        """Boolean ``(I, J)``: which cells carry a label (cached)."""
        cached = getattr(self, "_observed_mask_cache", None)
        if cached is None:
            cached = self.labels != MISSING
            self._observed_mask_cache = cached
        return cached

    def annotations_per_instance(self) -> np.ndarray:
        """``num(J(i))`` of paper Eq. 5: labels per instance, shape ``(I,)``."""
        return self.observed_mask.sum(axis=1)

    def annotations_per_annotator(self) -> np.ndarray:
        """Number of instances each annotator labeled, shape ``(J,)``."""
        return self.observed_mask.sum(axis=0)

    def total_annotations(self) -> int:
        return int(self.observed_mask.sum())

    def flat_label_pairs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached ``(instance, annotator, label)`` triples of observed cells.

        The ``(n_obs,)`` COO view of the matrix; the shared kernels in
        :mod:`repro.inference.primitives` scatter/gather over these triples
        instead of scanning the dense ``(I, J)`` matrix (or its ``(I, J, K)``
        one-hot expansion) every EM round.
        """
        cached = getattr(self, "_flat_pairs_cache", None)
        if cached is None:
            rows, cols = np.nonzero(self.observed_mask)
            cached = (rows, cols, self.labels[rows, cols])
            self._flat_pairs_cache = cached
        return cached

    def label_incidence(self):
        """Cached sparse ``(I, J·K)`` incidence of observed labels.

        Entry ``(i, j·K + y)`` is 1 when annotator ``j`` gave instance ``i``
        label ``y`` — the classification twin of
        :meth:`SequenceCrowdLabels.token_label_incidence`. Confusion-count
        accumulation and the per-instance log-likelihood gather are then
        single sparse–dense products. Returns None when scipy is
        unavailable (callers fall back to bincount accumulation).
        """
        cached = getattr(self, "_incidence_cache", None)
        if cached is None:
            try:
                from scipy.sparse import csr_matrix
            except ImportError:
                cached = (None,)
            else:
                rows, cols, given = self.flat_label_pairs()
                group = cols * self.num_classes + given
                matrix = csr_matrix(
                    (np.ones(rows.size), (rows, group)),
                    shape=(self.num_instances, self.num_annotators * self.num_classes),
                )
                cached = (matrix,)
            self._incidence_cache = cached
        return cached[0]

    def vote_counts(self) -> np.ndarray:
        """Per-instance class vote counts, shape ``(I, K)`` (cached view —
        treat as read-only, like the other cached views)."""
        cached = getattr(self, "_vote_counts_cache", None)
        if cached is None:
            rows, _, given = self.flat_label_pairs()
            key = rows * self.num_classes + given
            counts = np.bincount(key, minlength=self.num_instances * self.num_classes)
            cached = counts.reshape(self.num_instances, self.num_classes)
            self._vote_counts_cache = cached
        return cached

    def one_hot(self) -> np.ndarray:
        """``(I, J, K)`` one-hot labels (zero rows where missing)."""
        out = np.zeros((self.num_instances, self.num_annotators, self.num_classes))
        rows, cols, given = self.flat_label_pairs()
        out[rows, cols, given] = 1.0
        return out

    def subset(self, indices: np.ndarray) -> "CrowdLabelMatrix":
        """Restrict to a subset of instances (annotator axis unchanged)."""
        return CrowdLabelMatrix(self.labels[np.asarray(indices)], self.num_classes)

    def shards(self, num_shards: int) -> list:
        """Split into ``num_shards`` contiguous zero-copy shard views.

        Sizing follows ``np.array_split``: near-equal shards, the first
        ``I % num_shards`` one instance larger; when ``num_shards > I``
        the surplus shards are empty (legal — the map-reduce layer treats
        them as contributing nothing). Shard caches are slices of this
        container's caches; see :mod:`repro.crowd.sharding`.
        """
        from .sharding import CrowdShard, partition_bounds

        return [
            CrowdShard(self, start, stop)
            for start, stop in partition_bounds(self.num_instances, num_shards)
        ]

    def iter_shards(self, max_observations: int):
        """Lazily yield contiguous shard views of bounded observation count.

        Each shard carries at most ``max_observations`` observed labels —
        except that every shard holds at least one instance, so a single
        instance with more labels than the budget still ships alone. An
        empty crowd yields one empty shard. The generator is one-shot;
        multi-pass consumers (every iterative sharded method) should wrap
        it in a callable: ``lambda: crowd.iter_shards(n)``.
        """
        from .sharding import CrowdShard

        if max_observations < 1:
            raise ValueError(f"need a positive observation budget, got {max_observations}")
        I = self.num_instances
        if I == 0:
            yield CrowdShard(self, 0, 0)
            return
        per_instance = self.annotations_per_instance()
        start = 0
        while start < I:
            stop = start + 1
            budget = max_observations - int(per_instance[start])
            while stop < I and int(per_instance[stop]) <= budget:
                budget -= int(per_instance[stop])
                stop += 1
            yield CrowdShard(self, start, stop)
            start = stop

    def extend(self, new_labels: np.ndarray) -> "CrowdLabelMatrix":
        """Append whole instances in place — the streaming ingest path.

        ``new_labels`` is ``(n_new, J)`` with the same annotator axis and
        label convention as the constructor. Every *populated* cache is
        updated incrementally rather than invalidated: the observed mask,
        vote counts, and COO triples of the new block are computed in
        O(new observations) and appended to the existing views, and the
        sparse incidence gains the new block's rows via a sparse vstack.
        Unbuilt caches stay unbuilt (they build lazily over the full
        matrix on first use). Returns ``self`` for chaining.
        """
        block = _validate_label_block(new_labels, self.num_classes)
        if block.shape[1] != self.num_annotators:
            raise ValueError(
                f"new labels must keep the annotator axis "
                f"({self.num_annotators}), got {block.shape[1]}"
            )
        old_instances = self.num_instances
        mask_cache = getattr(self, "_observed_mask_cache", None)
        pairs_cache = getattr(self, "_flat_pairs_cache", None)
        incidence_cache = getattr(self, "_incidence_cache", None)
        votes_cache = getattr(self, "_vote_counts_cache", None)
        self.labels = np.concatenate([self.labels, block], axis=0)

        block_mask = block != MISSING
        if mask_cache is not None:
            self._observed_mask_cache = np.concatenate([mask_cache, block_mask], axis=0)
        rows, cols = np.nonzero(block_mask)
        given = block[rows, cols]
        if pairs_cache is not None:
            self._flat_pairs_cache = (
                np.concatenate([pairs_cache[0], rows + old_instances]),
                np.concatenate([pairs_cache[1], cols]),
                np.concatenate([pairs_cache[2], given]),
            )
        if votes_cache is not None:
            key = rows * self.num_classes + given
            counts = np.bincount(key, minlength=block.shape[0] * self.num_classes)
            self._vote_counts_cache = np.concatenate(
                [votes_cache, counts.reshape(block.shape[0], self.num_classes)], axis=0
            )
        if incidence_cache is not None and incidence_cache[0] is not None:
            from scipy.sparse import csr_matrix, vstack

            group = cols * self.num_classes + given
            block_incidence = csr_matrix(
                (np.ones(rows.size), (rows, group)),
                shape=(block.shape[0], self.num_annotators * self.num_classes),
            )
            self._incidence_cache = (
                vstack([incidence_cache[0], block_incidence], format="csr"),
            )
        return self

    def annotator_confusion(self, truth: np.ndarray, annotator: int) -> np.ndarray:
        """Empirical row-normalized confusion matrix of one annotator.

        These are the "Real" matrices of paper Fig. 6/7(a): row m = true
        class, column n = annotator's label, conditioned on having labeled.
        Rows with no observations fall back to uniform.
        """
        truth = np.asarray(truth)
        if truth.shape != (self.num_instances,):
            raise ValueError(f"truth must be ({self.num_instances},), got {truth.shape}")
        K = self.num_classes
        counts = np.zeros((K, K))
        observed = self.observed_mask[:, annotator]
        for m in range(K):
            mask = observed & (truth == m)
            given = self.labels[mask, annotator]
            np.add.at(counts[m], given, 1.0)
        row_sums = counts.sum(axis=1, keepdims=True)
        uniform = np.full((K, K), 1.0 / K)
        return np.where(row_sums > 0, counts / np.where(row_sums > 0, row_sums, 1), uniform)

    # ------------------------------------------------------------------ #
    @staticmethod
    def from_paper_convention(labels_1based: np.ndarray, num_classes: int) -> "CrowdLabelMatrix":
        """Convert the paper's 1-based labels (0 = missing) to this container."""
        labels_1based = np.asarray(labels_1based)
        converted = np.where(labels_1based == 0, MISSING, labels_1based - 1)
        return CrowdLabelMatrix(converted.astype(np.int64), num_classes)

    def to_paper_convention(self) -> np.ndarray:
        """Export as the paper's 1-based convention (0 = missing)."""
        return np.where(self.labels == MISSING, 0, self.labels + 1)


@dataclass
class SequenceCrowdLabels:
    """Token-level crowd labels for ragged sentences.

    Attributes
    ----------
    labels:
        List (length I) of ``(T_i, J)`` integer arrays; a column is either
        all :data:`MISSING` (annotator skipped the sentence) or fully
        labeled.
    num_classes:
        Number of tag classes ``K``.
    num_annotators:
        Number of annotators ``J``.
    """

    labels: list[np.ndarray]
    num_classes: int
    num_annotators: int

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError(f"need at least 2 classes, got {self.num_classes}")
        for i, matrix in enumerate(self.labels):
            self.labels[i] = self._validate_sentence(matrix, i)

    def _validate_sentence(self, matrix: np.ndarray, index: int) -> np.ndarray:
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[1] != self.num_annotators:
            raise ValueError(
                f"instance {index}: expected (T_i, {self.num_annotators}), got {matrix.shape}"
            )
        valid = (matrix == MISSING) | ((matrix >= 0) & (matrix < self.num_classes))
        if not valid.all():
            raise ValueError(f"instance {index}: labels out of range")
        # Columns must be fully labeled or fully missing.
        col_missing = (matrix == MISSING).sum(axis=0)
        partial = (col_missing > 0) & (col_missing < matrix.shape[0])
        if partial.any():
            raise ValueError(
                f"instance {index}: annotators {np.nonzero(partial)[0]} labeled "
                "only part of the sentence"
            )
        return matrix.astype(np.int64)

    @property
    def num_instances(self) -> int:
        return len(self.labels)

    def flat_labels(self) -> tuple[np.ndarray, np.ndarray]:
        """All sentences stacked: ``((ΣT_i, J) labels, (I+1,) row offsets)``.

        Sentence ``i`` occupies rows ``offsets[i]:offsets[i+1]``. The result
        is cached — the label matrices are treated as immutable (every
        mutating operation, e.g. :meth:`subset`, builds a new container),
        with one sanctioned exception: :meth:`append_labels`, the streaming
        ingest path, which *replaces* the cached views with incrementally
        grown ones. Don't hold a returned view across an append.
        This flat view is what the vectorized EM updates in
        :mod:`repro.core.em` and the token-level inference adapters operate
        on instead of per-sentence Python loops.
        """
        cached = getattr(self, "_flat_cache", None)
        if cached is None:
            sizes = np.fromiter(
                (matrix.shape[0] for matrix in self.labels), dtype=np.int64, count=len(self.labels)
            )
            offsets = np.zeros(len(self.labels) + 1, dtype=np.int64)
            np.cumsum(sizes, out=offsets[1:])
            stacked = (
                np.concatenate(self.labels, axis=0)
                if self.labels
                else np.zeros((0, self.num_annotators), dtype=np.int64)
            )
            cached = (stacked, offsets)
            self._flat_cache = cached
        return cached

    def flat_label_pairs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached ``(token, annotator, label)`` triples of all observed labels.

        ``token`` indexes rows of :meth:`flat_labels`; the triples drive the
        vectorized EM scatter/gather in :mod:`repro.core.em` without
        re-scanning the ``(ΣT_i, J)`` matrix every round.
        """
        cached = getattr(self, "_flat_pairs_cache", None)
        if cached is None:
            stacked, _ = self.flat_labels()
            tokens, annotators = np.nonzero(stacked != MISSING)
            cached = (tokens, annotators, stacked[tokens, annotators])
            self._flat_pairs_cache = cached
        return cached

    def token_label_incidence(self):
        """Cached sparse ``(ΣT_i, J·K)`` incidence of observed labels.

        Entry ``(t, j·K + y)`` is 1 when annotator ``j`` gave token ``t``
        label ``y``. Both sequence-EM updates are then single sparse–dense
        products (see :mod:`repro.core.em`). Returns None when scipy is
        unavailable (callers fall back to bincount accumulation).
        """
        cached = getattr(self, "_incidence_cache", None)
        if cached is None:
            try:
                from scipy.sparse import csr_matrix
            except ImportError:
                cached = (None,)
            else:
                tokens, annotators, given = self.flat_label_pairs()
                stacked, _ = self.flat_labels()
                group = annotators * self.num_classes + given
                matrix = csr_matrix(
                    (np.ones(tokens.size), (tokens, group)),
                    shape=(stacked.shape[0], self.num_annotators * self.num_classes),
                )
                cached = (matrix,)
            self._incidence_cache = cached
        return cached[0]

    def annotator_mask(self) -> np.ndarray:
        """Boolean ``(I, J)``: which annotators labeled each sentence (cached)."""
        cached = getattr(self, "_annotator_mask_cache", None)
        if cached is None:
            stacked, offsets = self.flat_labels()
            observed = stacked != MISSING
            # Columns are all-or-none per sentence, so "any token labeled"
            # equals "sentence labeled"; reduceat sums per-sentence blocks.
            nonempty = offsets[:-1] < offsets[1:]
            cached = np.zeros((self.num_instances, self.num_annotators), dtype=bool)
            if nonempty.any():
                sums = np.add.reduceat(observed, offsets[:-1][nonempty], axis=0)
                cached[nonempty] = sums > 0
            self._annotator_mask_cache = cached
        return cached

    def annotators_of(self, instance: int) -> np.ndarray:
        """Indices of annotators who labeled this sentence."""
        return np.nonzero(self.annotator_mask()[instance])[0]

    def annotations_per_instance(self) -> np.ndarray:
        """Annotators per sentence, shape ``(I,)``."""
        return self.annotator_mask().sum(axis=1)

    def annotations_per_annotator(self) -> np.ndarray:
        """Sentences labeled by each annotator, shape ``(J,)``."""
        return self.annotator_mask().sum(axis=0)

    def token_vote_counts_flat(self) -> np.ndarray:
        """Per-token class vote counts over all sentences, shape ``(ΣT_i, K)``.

        Row blocks follow :meth:`flat_labels` offsets; one ``bincount`` per
        class replaces the per-sentence / per-annotator scatter loops.
        """
        stacked, _ = self.flat_labels()
        tokens, _, votes = self.flat_label_pairs()
        key = tokens * self.num_classes + votes
        counts = np.bincount(key, minlength=stacked.shape[0] * self.num_classes)
        return counts.reshape(stacked.shape[0], self.num_classes)

    def token_vote_counts(self, instance: int) -> np.ndarray:
        """Per-token class vote counts for one sentence, shape ``(T_i, K)``."""
        matrix = self.labels[instance]
        T = matrix.shape[0]
        counts = np.zeros((T, self.num_classes), dtype=np.int64)
        for j in self.annotators_of(instance):
            np.add.at(counts, (np.arange(T), matrix[:, j]), 1)
        return counts

    def subset(self, indices: np.ndarray) -> "SequenceCrowdLabels":
        """Restrict to a subset of sentences."""
        picked = [self.labels[int(i)] for i in np.asarray(indices)]
        return SequenceCrowdLabels(picked, self.num_classes, self.num_annotators)

    def shards(self, num_shards: int) -> list:
        """Split into ``num_shards`` contiguous zero-copy sentence-range
        views (``np.array_split`` sizing, like
        :meth:`CrowdLabelMatrix.shards`)."""
        from .sharding import SequenceCrowdShard, partition_bounds

        return [
            SequenceCrowdShard(self, start, stop)
            for start, stop in partition_bounds(self.num_instances, num_shards)
        ]

    def iter_shards(self, max_observations: int):
        """Lazily yield contiguous sentence-range views carrying at most
        ``max_observations`` observed token labels each (at least one
        sentence per shard; one-shot — wrap in a callable for multi-pass
        use, like :meth:`CrowdLabelMatrix.iter_shards`)."""
        from .sharding import SequenceCrowdShard

        if max_observations < 1:
            raise ValueError(f"need a positive observation budget, got {max_observations}")
        I = self.num_instances
        if I == 0:
            yield SequenceCrowdShard(self, 0, 0)
            return
        _, offsets = self.flat_labels()
        lengths = np.diff(offsets)
        per_sentence = self.annotations_per_instance() * lengths
        start = 0
        while start < I:
            stop = start + 1
            budget = max_observations - int(per_sentence[start])
            while stop < I and int(per_sentence[stop]) <= budget:
                budget -= int(per_sentence[stop])
                stop += 1
            yield SequenceCrowdShard(self, start, stop)
            start = stop

    def append_labels(self, new_labels: list[np.ndarray]) -> "SequenceCrowdLabels":
        """Append whole sentences in place — the streaming ingest path.

        The sequence twin of :meth:`CrowdLabelMatrix.extend`: each matrix in
        ``new_labels`` is a ``(T_i, J)`` sentence under the constructor's
        convention. Populated caches (flat stack + offsets, COO triples,
        token incidence, annotator mask) are updated incrementally in
        O(new observations) of cache computation; unbuilt caches stay
        unbuilt. Returns ``self`` for chaining.
        """
        start = self.num_instances
        validated = [
            self._validate_sentence(matrix, start + i) for i, matrix in enumerate(new_labels)
        ]
        flat_cache = getattr(self, "_flat_cache", None)
        pairs_cache = getattr(self, "_flat_pairs_cache", None)
        incidence_cache = getattr(self, "_incidence_cache", None)
        mask_cache = getattr(self, "_annotator_mask_cache", None)
        self.labels.extend(validated)
        if not validated:
            return self

        block = np.concatenate(validated, axis=0)
        if flat_cache is not None:
            old_stacked, old_offsets = flat_cache
            sizes = np.fromiter(
                (matrix.shape[0] for matrix in validated), dtype=np.int64, count=len(validated)
            )
            new_offsets = old_offsets[-1] + np.cumsum(sizes)
            self._flat_cache = (
                np.concatenate([old_stacked, block], axis=0),
                np.concatenate([old_offsets, new_offsets]),
            )
        tokens, annotators = np.nonzero(block != MISSING)
        given = block[tokens, annotators]
        old_tokens = (
            int(flat_cache[1][-1])
            if flat_cache is not None
            else sum(matrix.shape[0] for matrix in self.labels[:start])
        )
        if pairs_cache is not None:
            self._flat_pairs_cache = (
                np.concatenate([pairs_cache[0], tokens + old_tokens]),
                np.concatenate([pairs_cache[1], annotators]),
                np.concatenate([pairs_cache[2], given]),
            )
        if incidence_cache is not None and incidence_cache[0] is not None:
            from scipy.sparse import csr_matrix, vstack

            group = annotators * self.num_classes + given
            block_incidence = csr_matrix(
                (np.ones(tokens.size), (tokens, group)),
                shape=(block.shape[0], self.num_annotators * self.num_classes),
            )
            self._incidence_cache = (
                vstack([incidence_cache[0], block_incidence], format="csr"),
            )
        if mask_cache is not None:
            new_mask = np.zeros((len(validated), self.num_annotators), dtype=bool)
            for i, matrix in enumerate(validated):
                if matrix.shape[0]:
                    new_mask[i] = (matrix != MISSING).any(axis=0)
            self._annotator_mask_cache = np.concatenate([mask_cache, new_mask], axis=0)
        return self

    def annotator_confusion(self, truth: list[np.ndarray], annotator: int) -> np.ndarray:
        """Token-level confusion matrix of one annotator vs ground truth."""
        K = self.num_classes
        counts = np.zeros((K, K))
        for i in range(self.num_instances):
            if annotator not in set(self.annotators_of(i).tolist()):
                continue
            given = self.labels[i][:, annotator]
            true = np.asarray(truth[i])
            np.add.at(counts, (true, given), 1.0)
        row_sums = counts.sum(axis=1, keepdims=True)
        uniform = np.full((K, K), 1.0 / K)
        return np.where(row_sums > 0, counts / np.where(row_sums > 0, row_sums, 1), uniform)
