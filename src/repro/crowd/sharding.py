"""Shard views over the crowd containers — the data layer of shard-and-merge
truth inference.

The inference kernels in :mod:`repro.inference.primitives` consume a small
container surface: the flat COO triples, the (optional) sparse incidence,
vote counts, and a handful of counting helpers. A *shard* is anything that
exposes that surface over a slice of a crowd; the map-reduce EM layer in
:mod:`repro.inference.sharding` never touches a whole crowd directly, so
inference memory is bounded by the largest shard plus the O(I·K) posterior
it is asked to produce.

Three shard flavors cover the deployment spectrum:

* :class:`CrowdShard` / :class:`SequenceCrowdShard` — zero-copy
  contiguous-range views of an in-memory container, produced by
  ``shards(n)`` / ``iter_shards(max_observations)`` on the containers.
  Every cached view (COO triples, incidence, vote counts, masks) is a
  slice of the *parent's* cache: building a cache through one shard
  populates the parent once and every sibling shares it. Only the
  localized row-index array is fresh memory (O(shard observations)).
* :class:`SparseLabelShard` — a standalone shard defined directly by its
  COO triples, with no dense ``(I, J)`` matrix behind it. This is the
  out-of-core interchange format: a worker that loads a shard from disk
  needs exactly what the kernels consume, so it ships the triples and
  skips densification entirely. :meth:`SparseLabelShard.save` /
  :meth:`SparseLabelShard.load` give it a durable on-disk form (a
  header+COO ``.npy`` stream that loads as a memmap, or ``.npz``).
* :class:`ShardHandle` — a picklable *descriptor* of an on-disk shard:
  path, optional instance range in file coordinates, and dimensions. A
  worker process receives the handle (a few ints and a string), opens the
  memmap itself via :meth:`ShardHandle.open`, and never ships label
  arrays across the pickle boundary. :func:`save_shard_handles` writes a
  whole crowd as ONE row-sorted COO file and returns range handles over
  it — the out-of-core parallel form the process-based map in
  :mod:`repro.inference.sharding` consumes.

Shards hold references into their parent's caches; do not ``extend`` /
``append_labels`` on the parent while shard views are alive.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .types import MISSING, CrowdLabelMatrix, SequenceCrowdLabels

__all__ = [
    "CrowdShard",
    "SequenceCrowdShard",
    "SparseLabelShard",
    "ShardHandle",
    "as_sparse_shard",
    "save_shard_handles",
    "partition_bounds",
]


def partition_bounds(total: int, num_shards: int) -> list[tuple[int, int]]:
    """Contiguous near-equal ``[start, stop)`` ranges covering ``total``.

    ``np.array_split`` sizing: the first ``total % num_shards`` ranges are
    one element larger; when ``num_shards > total`` the surplus ranges are
    empty. The single source of truth for every contiguous shard layout
    (both containers' ``shards(n)`` and the out-of-core benches).
    """
    if num_shards < 1:
        raise ValueError(f"need at least one shard, got {num_shards}")
    base, extra = divmod(total, num_shards)
    bounds, start = [], 0
    for index in range(num_shards):
        stop = start + base + (1 if index < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


_FAST_CSR_STATE: dict[str, bool | None] = {"ok": None}


def _fast_csr(data, indices, indptr, shape):
    """CSR from already-canonical arrays, skipping constructor validation.

    Out-of-core shards rebuild their incidence every pass, and scipy's
    public constructor spends as long re-validating canonical input as the
    two spMMs it feeds. The bypass is probed once per process against the
    validating constructor (a tiny build + matmul comparison); if the
    installed scipy disagrees or errors, every later call takes the public
    constructor instead.
    """
    from scipy.sparse import csr_matrix

    def bypass(data, indices, indptr, shape):
        matrix = csr_matrix.__new__(csr_matrix)
        matrix.data = data
        matrix.indices = indices
        matrix.indptr = indptr
        matrix._shape = shape
        return matrix

    if _FAST_CSR_STATE["ok"] is None:
        try:
            probe_args = (
                np.ones(3),
                np.array([0, 2, 1], dtype=np.int32),
                np.array([0, 2, 3], dtype=np.int32),
                (2, 3),
            )
            probe = bypass(*probe_args)
            reference = csr_matrix(probe_args[:3], shape=probe_args[3])
            dense = np.arange(6, dtype=np.float64).reshape(3, 2)
            ok = (
                np.abs(probe @ dense - reference @ dense).max() == 0.0
                and np.abs(probe.T @ np.ones((2, 2)) - reference.T @ np.ones((2, 2))).max() == 0.0
            )
            _FAST_CSR_STATE["ok"] = bool(ok)
        except Exception:
            # Capability probe: any scipy surprise (missing, ABI change,
            # internals moved) must degrade to the validated-constructor
            # slow path, never crash the import or the caller.
            _FAST_CSR_STATE["ok"] = False
    if _FAST_CSR_STATE["ok"]:
        return bypass(data, indices, indptr, shape)
    return csr_matrix((data, indices, indptr), shape=shape)


class CrowdShard:
    """Zero-copy view of a contiguous instance range of a
    :class:`~repro.crowd.types.CrowdLabelMatrix`.

    Instance indices are local to the shard (``0 .. num_instances``);
    :attr:`start` records the parent offset. The COO slice bounds come
    from one ``searchsorted`` against the parent's cached (row-sorted)
    triples; the annotator/label columns of :meth:`flat_label_pairs` are
    views into the parent arrays, and :meth:`vote_counts` /
    :attr:`observed_mask` are plain row slices of the parent caches.
    """

    def __init__(self, parent: CrowdLabelMatrix, start: int, stop: int) -> None:
        if not 0 <= start <= stop <= parent.num_instances:
            raise ValueError(
                f"shard range [{start}, {stop}) outside [0, {parent.num_instances}]"
            )
        self.parent = parent
        self.start = int(start)
        self.stop = int(stop)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"CrowdShard([{self.start}:{self.stop}) of {self.parent.num_instances})"

    # -- container surface ------------------------------------------------ #
    @property
    def num_classes(self) -> int:
        return self.parent.num_classes

    @property
    def num_annotators(self) -> int:
        return self.parent.num_annotators

    @property
    def num_instances(self) -> int:
        return self.stop - self.start

    @property
    def labels(self) -> np.ndarray:
        """``(n, J)`` label block — a view of the parent matrix."""
        return self.parent.labels[self.start : self.stop]

    @property
    def observed_mask(self) -> np.ndarray:
        return self.parent.observed_mask[self.start : self.stop]

    def _coo_bounds(self) -> tuple[int, int]:
        cached = getattr(self, "_coo_bounds_cache", None)
        if cached is None:
            rows, _, _ = self.parent.flat_label_pairs()
            cached = (
                int(np.searchsorted(rows, self.start, side="left")),
                int(np.searchsorted(rows, self.stop, side="left")),
            )
            self._coo_bounds_cache = cached
        return cached

    def flat_label_pairs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Shard-local ``(instance, annotator, label)`` triples (cached).

        The annotator and label arrays are slices of the parent's cached
        triples; only the localized instance index is new memory.
        """
        cached = getattr(self, "_flat_pairs_cache", None)
        if cached is None:
            rows, annotators, given = self.parent.flat_label_pairs()
            lo, hi = self._coo_bounds()
            cached = (rows[lo:hi] - self.start, annotators[lo:hi], given[lo:hi])
            self._flat_pairs_cache = cached
        return cached

    def label_incidence(self):
        """Row slice of the parent's sparse incidence (cached; None without
        scipy)."""
        cached = getattr(self, "_incidence_cache", None)
        if cached is None:
            parent = self.parent.label_incidence()
            cached = (None,) if parent is None else (parent[self.start : self.stop],)
            self._incidence_cache = cached
        return cached[0]

    def vote_counts(self) -> np.ndarray:
        """``(n, K)`` per-instance vote counts — a row slice of the parent
        cache (read-only, like every cached view)."""
        return self.parent.vote_counts()[self.start : self.stop]

    def annotations_per_instance(self) -> np.ndarray:
        rows, _, _ = self.flat_label_pairs()
        return np.bincount(rows, minlength=self.num_instances)

    def annotations_per_annotator(self) -> np.ndarray:
        _, annotators, _ = self.flat_label_pairs()
        return np.bincount(annotators, minlength=self.num_annotators)

    def total_annotations(self) -> int:
        lo, hi = self._coo_bounds()
        return hi - lo

    def to_matrix(self) -> CrowdLabelMatrix:
        """Materialize as a standalone container (copies the label block)."""
        return CrowdLabelMatrix(self.labels.copy(), self.num_classes)

    def to_sparse(self) -> "SparseLabelShard":
        """Export as a standalone COO shard (the out-of-core format)."""
        rows, annotators, given = self.flat_label_pairs()
        return SparseLabelShard(
            rows.copy(), annotators.copy(), given.copy(),
            num_instances=self.num_instances,
            num_annotators=self.num_annotators,
            num_classes=self.num_classes,
        )


class SequenceCrowdShard:
    """Zero-copy view of a contiguous sentence range of a
    :class:`~repro.crowd.types.SequenceCrowdLabels`.

    Token indices are local to the shard; sentence ``i`` of the shard is
    parent sentence ``start + i``. All flat views are slices of the
    parent's caches with one localized offset/token-index array each.
    """

    def __init__(self, parent: SequenceCrowdLabels, start: int, stop: int) -> None:
        if not 0 <= start <= stop <= parent.num_instances:
            raise ValueError(
                f"shard range [{start}, {stop}) outside [0, {parent.num_instances}]"
            )
        self.parent = parent
        self.start = int(start)
        self.stop = int(stop)

    @property
    def num_classes(self) -> int:
        return self.parent.num_classes

    @property
    def num_annotators(self) -> int:
        return self.parent.num_annotators

    @property
    def num_instances(self) -> int:
        return self.stop - self.start

    @property
    def labels(self) -> list[np.ndarray]:
        return self.parent.labels[self.start : self.stop]

    def _token_bounds(self) -> tuple[int, int]:
        _, offsets = self.parent.flat_labels()
        return int(offsets[self.start]), int(offsets[self.stop])

    def flat_labels(self) -> tuple[np.ndarray, np.ndarray]:
        """Shard-local ``((ΣT_i, J) stacked labels, (n+1,) offsets)``."""
        cached = getattr(self, "_flat_cache", None)
        if cached is None:
            stacked, offsets = self.parent.flat_labels()
            lo, hi = self._token_bounds()
            cached = (stacked[lo:hi], offsets[self.start : self.stop + 1] - lo)
            self._flat_cache = cached
        return cached

    def flat_label_pairs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Shard-local ``(token, annotator, label)`` triples (cached)."""
        cached = getattr(self, "_flat_pairs_cache", None)
        if cached is None:
            tokens, annotators, given = self.parent.flat_label_pairs()
            lo, hi = self._token_bounds()
            a = int(np.searchsorted(tokens, lo, side="left"))
            b = int(np.searchsorted(tokens, hi, side="left"))
            cached = (tokens[a:b] - lo, annotators[a:b], given[a:b])
            self._flat_pairs_cache = cached
        return cached

    def token_label_incidence(self):
        """Token-row slice of the parent's sparse incidence (cached)."""
        cached = getattr(self, "_incidence_cache", None)
        if cached is None:
            parent = self.parent.token_label_incidence()
            if parent is None:
                cached = (None,)
            else:
                lo, hi = self._token_bounds()
                cached = (parent[lo:hi],)
            self._incidence_cache = cached
        return cached[0]

    def annotator_mask(self) -> np.ndarray:
        return self.parent.annotator_mask()[self.start : self.stop]

    def annotations_per_instance(self) -> np.ndarray:
        return self.annotator_mask().sum(axis=1)

    def annotations_per_annotator(self) -> np.ndarray:
        return self.annotator_mask().sum(axis=0)

    def token_vote_counts_flat(self) -> np.ndarray:
        """Per-token vote counts over the shard's sentences, ``(ΣT_i, K)``."""
        stacked, _ = self.flat_labels()
        tokens, _, votes = self.flat_label_pairs()
        key = tokens * self.num_classes + votes
        counts = np.bincount(key, minlength=stacked.shape[0] * self.num_classes)
        return counts.reshape(stacked.shape[0], self.num_classes)

    def total_annotations(self) -> int:
        return self.flat_label_pairs()[0].size

    def to_sequence_labels(self) -> SequenceCrowdLabels:
        """Materialize as a standalone container (copies the sentences)."""
        return SequenceCrowdLabels(
            [matrix.copy() for matrix in self.labels],
            self.num_classes,
            self.num_annotators,
        )


class SparseLabelShard:
    """Standalone crowd shard defined by its COO triples — no dense matrix.

    The out-of-core interchange format: a shard loaded from disk carries
    exactly what the kernels consume, ``(instance, annotator, label)``
    triples plus dimensions, so construction is O(observations) with no
    ``(I, J)`` densification. Triples need not be sorted; instances with
    no triples are simply unlabeled.

    Parameters
    ----------
    rows, annotators, labels:
        ``(n_obs,)`` integer arrays: local instance index in
        ``[0, num_instances)``, annotator in ``[0, num_annotators)``,
        label in ``[0, num_classes)``.
    sparse_incidence:
        When False, :meth:`label_incidence` always returns None and the
        kernels take their bincount path — the right choice for throwaway
        shards rebuilt every pass, where a per-pass CSR construction would
        dominate the kernel time.
    """

    def __init__(
        self,
        rows: np.ndarray,
        annotators: np.ndarray,
        labels: np.ndarray,
        num_instances: int,
        num_annotators: int,
        num_classes: int,
        sparse_incidence: bool = True,
    ) -> None:
        if num_classes < 2:
            raise ValueError(f"need at least 2 classes, got {num_classes}")
        if num_instances < 0 or num_annotators < 1:
            raise ValueError("need non-negative instances and at least one annotator")
        rows = np.asarray(rows, dtype=np.int64)
        annotators = np.asarray(annotators, dtype=np.int64)
        labels = np.asarray(labels, dtype=np.int64)
        if not rows.shape == annotators.shape == labels.shape or rows.ndim != 1:
            raise ValueError("rows/annotators/labels must be equal-length 1-D arrays")
        for name, values, bound in (
            ("rows", rows, num_instances),
            ("annotators", annotators, num_annotators),
            ("labels", labels, num_classes),
        ):
            if values.size and (values.min() < 0 or values.max() >= bound):
                raise ValueError(f"{name} out of range [0, {bound})")
        self._rows = rows
        self._annotators = annotators
        self._labels = labels
        self.num_instances = int(num_instances)
        self.num_annotators = int(num_annotators)
        self.num_classes = int(num_classes)
        self._sparse_incidence = bool(sparse_incidence)
        self._rows_sorted: bool | None = None  # unknown until probed

    @classmethod
    def _trusted(
        cls,
        rows,
        annotators,
        labels,
        num_instances: int,
        num_annotators: int,
        num_classes: int,
        sparse_incidence: bool = True,
        rows_sorted: bool | None = None,
    ) -> "SparseLabelShard":
        """Construct without the O(n_obs) range validation.

        For triples that were validated when written (:meth:`load`,
        :meth:`ShardHandle.open`): re-validating a memmap-backed shard
        would fault in every page of a file the caller asked to map
        lazily. Arrays are stored as given — memmap views stay memmaps.
        """
        shard = cls.__new__(cls)
        shard._rows = rows
        shard._annotators = annotators
        shard._labels = labels
        shard.num_instances = int(num_instances)
        shard.num_annotators = int(num_annotators)
        shard.num_classes = int(num_classes)
        shard._sparse_incidence = bool(sparse_incidence)
        shard._rows_sorted = rows_sorted
        return shard

    def _rows_are_sorted(self) -> bool:
        """Whether the triples are row-sorted (probed once, then cached;
        save/load carry the answer in the file header so memmap loads
        never scan)."""
        if self._rows_sorted is None:
            self._rows_sorted = bool(
                self._rows.size == 0 or (np.diff(self._rows) >= 0).all()
            )
        return self._rows_sorted

    def __getstate__(self) -> dict:
        """Pickle the triples and dimensions, never the built caches.

        Workers receiving a shard must not pay for a serialized CSR
        incidence — in particular one that ``sparse_incidence=False``
        promised to skip — and memmap-backed triples materialize to plain
        arrays (a pickle cannot carry a file mapping).
        """
        state = self.__dict__.copy()
        state.pop("_incidence_cache", None)
        state["_rows"] = np.asarray(self._rows)
        state["_annotators"] = np.asarray(self._annotators)
        state["_labels"] = np.asarray(self._labels)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Shards pickled by older code lack the sortedness hint.
        self.__dict__.setdefault("_rows_sorted", None)

    @classmethod
    def from_dense(cls, labels: np.ndarray, num_classes: int, **kwargs) -> "SparseLabelShard":
        """Build from a dense ``(I, J)`` block under the
        :class:`~repro.crowd.types.CrowdLabelMatrix` convention."""
        labels = np.asarray(labels)
        rows, annotators = np.nonzero(labels != MISSING)
        return cls(
            rows, annotators, labels[rows, annotators],
            num_instances=labels.shape[0],
            num_annotators=labels.shape[1],
            num_classes=num_classes,
            **kwargs,
        )

    def flat_label_pairs(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return self._rows, self._annotators, self._labels

    def label_incidence(self):
        if not self._sparse_incidence:
            return None
        cached = getattr(self, "_incidence_cache", None)
        if cached is None:
            try:
                from scipy.sparse import csr_matrix
            except ImportError:
                cached = (None,)
            else:
                group = self._annotators * self.num_classes + self._labels
                shape = (self.num_instances, self.num_annotators * self.num_classes)
                data = np.ones(self._rows.size)
                if self._rows.size and self._rows_are_sorted():
                    # Row-sorted triples (the common case: shards cut from
                    # a row-major scan) admit a direct CSR build — the
                    # indptr is one searchsorted, no COO→CSR sort, and no
                    # constructor re-validation (see _fast_csr).
                    indptr = np.searchsorted(
                        self._rows, np.arange(self.num_instances + 1)
                    ).astype(np.int32)
                    indices = group.astype(np.int32)
                    cached = (_fast_csr(data, indices, indptr, shape),)
                else:
                    cached = (csr_matrix((data, (self._rows, group)), shape=shape),)
            self._incidence_cache = cached
        return cached[0]

    def vote_counts(self) -> np.ndarray:
        key = self._rows * self.num_classes + self._labels
        counts = np.bincount(key, minlength=self.num_instances * self.num_classes)
        return counts.reshape(self.num_instances, self.num_classes)

    def annotations_per_instance(self) -> np.ndarray:
        return np.bincount(self._rows, minlength=self.num_instances)

    def annotations_per_annotator(self) -> np.ndarray:
        return np.bincount(self._annotators, minlength=self.num_annotators)

    def total_annotations(self) -> int:
        return int(self._rows.size)

    def to_matrix(self) -> CrowdLabelMatrix:
        """Densify to a standalone ``(I, J)`` container.

        The inverse of :meth:`from_dense` / :func:`as_sparse_shard` for
        shards without duplicate ``(instance, annotator)`` triples — the
        rehydration path for serving-layer checkpoints, which always
        write from a :class:`~repro.crowd.types.CrowdLabelMatrix`. With
        duplicate cells the last triple wins (numpy fancy-assignment
        order), so round-tripping a deduplicated source is exact.
        """
        labels = np.full(
            (self.num_instances, self.num_annotators), MISSING, dtype=np.int64
        )
        labels[np.asarray(self._rows), np.asarray(self._annotators)] = np.asarray(
            self._labels
        )
        return CrowdLabelMatrix(labels, self.num_classes)

    # -- on-disk format ---------------------------------------------------- #
    def save(self, path) -> str:
        """Persist as a standalone shard file; returns the path written.

        Two layouts, chosen by extension:

        * default (``.npy`` or anything else): the header+COO stream —
          two consecutive arrays in one file written with
          :func:`numpy.lib.format.write_array`, an int64 header
          ``[magic, version, I, J, K, sparse_incidence, row_sorted,
          n_obs]`` followed by the ``(3, n_obs)`` int64 COO block (rows,
          annotators, labels as contiguous rows). ``load(mmap=True)``
          reads the tiny header and memmaps the block in place.
        * ``.npz``: :func:`numpy.savez` with named members — the interop
          form; loads without mmap (numpy cannot map zip members).
        """
        path = str(path)
        header_fields = np.array(
            [
                _SHARD_FILE_MAGIC,
                _SHARD_FORMAT_VERSION,
                self.num_instances,
                self.num_annotators,
                self.num_classes,
                int(self._sparse_incidence),
                int(self._rows_are_sorted()),
                self._rows.size,
            ],
            dtype=np.int64,
        )
        if path.endswith(".npz"):
            np.savez(
                path,
                meta=header_fields,
                rows=np.asarray(self._rows, dtype=np.int64),
                annotators=np.asarray(self._annotators, dtype=np.int64),
                labels=np.asarray(self._labels, dtype=np.int64),
            )
            return path
        coo = np.empty((3, self._rows.size), dtype=np.int64)
        coo[0] = self._rows
        coo[1] = self._annotators
        coo[2] = self._labels
        with open(path, "wb") as stream:
            np.lib.format.write_array(stream, header_fields, version=(1, 0))
            np.lib.format.write_array(stream, coo, version=(1, 0))
        return path

    @classmethod
    def load(cls, path, mmap: bool = True) -> "SparseLabelShard":
        """Load a shard written by :meth:`save`.

        For the header+COO layout, ``mmap=True`` (the default) maps the
        COO block read-only instead of reading it — opening a shard costs
        one header read, and triples page in as the kernels touch them.
        The triples were range-validated when written, so loading skips
        the O(n_obs) constructor validation (which would fault in every
        page). ``.npz`` files always load eagerly.

        A memmapped shard borrows the *file*: in-place writes through it
        would corrupt the shard for every other handle, so the lint
        engine's dataflow tier seeds ``mmap=True`` loads as borrowed and
        flags such writes as ``view-mutation`` findings; pass
        ``mmap=False`` (an eager private copy) if mutation is the point.
        """
        path = str(path)
        if path.endswith(".npz"):
            with np.load(path) as payload:
                meta = payload["meta"]
                _check_shard_header(meta, path)
                return cls._trusted(
                    payload["rows"], payload["annotators"], payload["labels"],
                    num_instances=int(meta[2]),
                    num_annotators=int(meta[3]),
                    num_classes=int(meta[4]),
                    sparse_incidence=bool(meta[5]),
                    rows_sorted=bool(meta[6]),
                )
        with open(path, "rb") as stream:
            meta = np.lib.format.read_array(stream)
            _check_shard_header(meta, path)
            n_obs = int(meta[7])
            if n_obs == 0:
                coo = np.zeros((3, 0), dtype=np.int64)
            elif not mmap:
                coo = np.lib.format.read_array(stream)
            else:
                version = np.lib.format.read_magic(stream)
                if version != (1, 0):  # pragma: no cover - we always write 1.0
                    raise ValueError(f"unsupported npy version {version} in {path}")
                shape, fortran, dtype = np.lib.format.read_array_header_1_0(stream)
                coo = np.memmap(
                    path, dtype=dtype, mode="r", offset=stream.tell(),
                    shape=shape, order="F" if fortran else "C",
                )
            if coo.shape != (3, n_obs):
                raise ValueError(
                    f"shard file {path}: header promises {n_obs} observations, "
                    f"COO block has shape {coo.shape}"
                )
            return cls._trusted(
                coo[0], coo[1], coo[2],
                num_instances=int(meta[2]),
                num_annotators=int(meta[3]),
                num_classes=int(meta[4]),
                sparse_incidence=bool(meta[5]),
                rows_sorted=bool(meta[6]),
            )


_SHARD_FILE_MAGIC = 0x53485244  # "SHRD"
_SHARD_FORMAT_VERSION = 1


def _check_shard_header(meta: np.ndarray, path: str) -> None:
    if meta.shape != (8,) or int(meta[0]) != _SHARD_FILE_MAGIC:
        raise ValueError(f"{path} is not a shard file (bad header)")
    if int(meta[1]) != _SHARD_FORMAT_VERSION:
        raise ValueError(
            f"{path}: shard format version {int(meta[1])} "
            f"(this build reads {_SHARD_FORMAT_VERSION})"
        )


def as_sparse_shard(crowd) -> SparseLabelShard:
    """Export any shard-protocol object as a standalone COO shard.

    :class:`SparseLabelShard` passes through; :class:`CrowdShard` uses its
    ``to_sparse``; anything else exposing ``flat_label_pairs`` plus the
    three dimensions (e.g. a whole :class:`~repro.crowd.types.
    CrowdLabelMatrix`) is wrapped around its triples without copying.
    """
    if isinstance(crowd, SparseLabelShard):
        return crowd
    if hasattr(crowd, "to_sparse"):
        return crowd.to_sparse()
    rows, annotators, given = crowd.flat_label_pairs()
    return SparseLabelShard(
        rows, annotators, given,
        num_instances=crowd.num_instances,
        num_annotators=crowd.num_annotators,
        num_classes=crowd.num_classes,
    )


@dataclass(frozen=True)
class ShardHandle:
    """Picklable descriptor of an on-disk shard (or one row range of it).

    The unit of work the process-based map ships to workers: a path plus
    a few ints. The worker calls :meth:`open`, which memmaps the file and
    localizes the ``[start, stop)`` instance range itself — label arrays
    never cross the pickle boundary. ``start``/``stop`` are in *file*
    coordinates; ``None`` means the whole file. Range handles require a
    row-sorted file (the header records sortedness): localization is then
    one binary search instead of a full-file scan.

    ``num_instances`` (and the other dims) are declared up front so
    planners can size work without touching the file; :meth:`open`
    cross-checks them against the header. ``sparse_incidence=None``
    inherits the flag the file was saved with; a bool overrides it (e.g.
    force the bincount path for shards re-opened every pass).
    """

    path: str
    num_instances: int
    num_annotators: int
    num_classes: int
    start: int | None = None
    stop: int | None = None
    mmap: bool = True
    sparse_incidence: bool | None = None

    def open(self) -> SparseLabelShard:
        """Open the file and return the described (sub-)shard."""
        shard = SparseLabelShard.load(self.path, mmap=self.mmap)
        if (shard.num_annotators, shard.num_classes) != (
            self.num_annotators,
            self.num_classes,
        ):
            raise ValueError(
                f"{self.path}: file dims (J={shard.num_annotators}, "
                f"K={shard.num_classes}) disagree with handle "
                f"(J={self.num_annotators}, K={self.num_classes})"
            )
        sparse_incidence = (
            shard._sparse_incidence
            if self.sparse_incidence is None
            else self.sparse_incidence
        )
        if self.start is None and self.stop is None:
            if shard.num_instances != self.num_instances:
                raise ValueError(
                    f"{self.path}: file holds {shard.num_instances} instances, "
                    f"handle declares {self.num_instances}"
                )
            if sparse_incidence != shard._sparse_incidence:
                shard._sparse_incidence = sparse_incidence
            return shard
        start = 0 if self.start is None else int(self.start)
        stop = shard.num_instances if self.stop is None else int(self.stop)
        if not 0 <= start <= stop <= shard.num_instances:
            raise ValueError(
                f"{self.path}: handle range [{start}, {stop}) outside "
                f"[0, {shard.num_instances}]"
            )
        if stop - start != self.num_instances:
            raise ValueError(
                f"{self.path}: handle range [{start}, {stop}) holds "
                f"{stop - start} instances, handle declares {self.num_instances}"
            )
        if not shard._rows_are_sorted():
            raise ValueError(
                f"{self.path}: range handles need a row-sorted shard file "
                "(save_shard_handles sorts; re-save this file through it)"
            )
        rows = shard._rows
        lo = int(np.searchsorted(rows, start, side="left"))
        hi = int(np.searchsorted(rows, stop, side="left"))
        # Localized rows are fresh memory (O(range observations)); the
        # annotator/label columns stay views of the mapped file.
        return SparseLabelShard._trusted(
            np.asarray(rows[lo:hi], dtype=np.int64) - start,
            shard._annotators[lo:hi],
            shard._labels[lo:hi],
            num_instances=stop - start,
            num_annotators=shard.num_annotators,
            num_classes=shard.num_classes,
            sparse_incidence=sparse_incidence,
            rows_sorted=True,
        )


def save_shard_handles(
    crowd,
    path,
    num_shards: int,
    mmap: bool = True,
    sparse_incidence: bool | None = None,
) -> list[ShardHandle]:
    """Write ``crowd`` as ONE row-sorted COO shard file; return range handles.

    The out-of-core parallel form: one file on disk, ``num_shards``
    contiguous near-equal instance ranges over it (the same
    :func:`partition_bounds` split as ``crowd.shards(n)``), each described
    by a :class:`ShardHandle` a worker process opens independently.
    Accepts anything :func:`as_sparse_shard` does; triples are sorted by
    row before writing (stable, so within-instance order is preserved)
    because range localization binary-searches the row column.
    """
    sparse = as_sparse_shard(crowd)
    if not sparse._rows_are_sorted():
        order = np.argsort(sparse._rows, kind="stable")
        sparse = SparseLabelShard._trusted(
            sparse._rows[order],
            sparse._annotators[order],
            sparse._labels[order],
            num_instances=sparse.num_instances,
            num_annotators=sparse.num_annotators,
            num_classes=sparse.num_classes,
            sparse_incidence=sparse._sparse_incidence,
            rows_sorted=True,
        )
    path = sparse.save(path)
    return [
        ShardHandle(
            path=path,
            num_instances=stop - start,
            num_annotators=sparse.num_annotators,
            num_classes=sparse.num_classes,
            start=start,
            stop=stop,
            mmap=mmap,
            sparse_incidence=sparse_incidence,
        )
        for start, stop in partition_bounds(sparse.num_instances, num_shards)
    ]
