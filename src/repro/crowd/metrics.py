"""Annotator-statistics reports (paper Fig. 4 and the "Real" matrices of
Fig. 6/7).

Given a crowd-label container plus ground truth, these helpers compute each
annotator's volume and quality, boxplot summaries, and empirical confusion
matrices — the quantities the paper visualizes to characterize its two
crowds and to validate Logic-LNCL's reliability estimates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.bio import CONLL_LABELS
from ..eval.ner_f1 import span_f1_score
from .types import CrowdLabelMatrix, SequenceCrowdLabels

__all__ = [
    "BoxplotStats",
    "boxplot_stats",
    "classification_annotator_report",
    "sequence_annotator_report",
]


@dataclass
class BoxplotStats:
    """Five-number summary (plus mean) of one distribution."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float

    @staticmethod
    def from_values(values: np.ndarray) -> "BoxplotStats":
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            raise ValueError("cannot summarize an empty array")
        q1, median, q3 = np.percentile(values, [25, 50, 75])
        return BoxplotStats(
            minimum=float(values.min()),
            q1=float(q1),
            median=float(median),
            q3=float(q3),
            maximum=float(values.max()),
            mean=float(values.mean()),
        )

    def row(self) -> str:
        """One-line rendering used by the Fig. 4 bench."""
        return (
            f"min={self.minimum:.3f} q1={self.q1:.3f} med={self.median:.3f} "
            f"q3={self.q3:.3f} max={self.maximum:.3f} mean={self.mean:.3f}"
        )


def boxplot_stats(values: np.ndarray) -> BoxplotStats:
    """Convenience alias for :meth:`BoxplotStats.from_values`."""
    return BoxplotStats.from_values(values)


@dataclass
class _AnnotatorReport:
    counts: np.ndarray
    quality: np.ndarray          # accuracy (classification) or F1 (sequences);
                                 # NaN for annotators with no labels at all
    confusions: np.ndarray       # (J, K, K) empirical confusion matrices

    def _require_selection(self, values: np.ndarray, what: str, min_labels: int) -> np.ndarray:
        if values.size == 0:
            busiest = int(self.counts.max()) if self.counts.size else 0
            raise ValueError(
                f"no annotator passes min_labels={min_labels} for {what} "
                f"(crowd has {self.counts.size} annotators; the busiest "
                f"labeled {busiest} instances)"
            )
        return values

    def count_stats(self, min_labels: int = 1) -> BoxplotStats:
        selected = self.counts[self.counts >= min_labels]
        return boxplot_stats(self._require_selection(selected, "count_stats", min_labels))

    def quality_stats(self, min_labels: int = 1) -> BoxplotStats:
        # Zero-label annotators carry quality NaN ("no data"), not 0.0
        # ("always wrong"); they are excluded here even at min_labels=0 so
        # they can never drag the Fig. 4 boxplots down.
        keep = (self.counts >= min_labels) & ~np.isnan(self.quality)
        return boxplot_stats(
            self._require_selection(self.quality[keep], "quality_stats", min_labels)
        )

    def top_annotators(self, n: int) -> np.ndarray:
        """Indices of the n most active annotators (Fig. 6/7a selection).

        Stable sort so tied volumes keep ascending annotator order — the
        selection must not reshuffle across platforms/numpy versions.
        """
        return np.argsort(-self.counts, kind="stable")[:n]

    def overall_reliability(self) -> np.ndarray:
        """Mean diagonal of each confusion matrix (Fig. 6/7b y-axis)."""
        K = self.confusions.shape[1]
        return np.einsum("jkk->j", self.confusions) / K


def classification_annotator_report(
    crowd: CrowdLabelMatrix, truth: np.ndarray
) -> _AnnotatorReport:
    """Per-annotator volume, accuracy, and confusion for classification."""
    truth = np.asarray(truth)
    counts = crowd.annotations_per_annotator()
    J = crowd.num_annotators
    # NaN = "never labeled anything": distinct from an accuracy of 0.0,
    # which means "labeled and always wrong".
    accuracy = np.full(J, np.nan)
    confusions = np.zeros((J, crowd.num_classes, crowd.num_classes))
    observed = crowd.observed_mask
    for j in range(J):
        mask = observed[:, j]
        if mask.any():
            accuracy[j] = float((crowd.labels[mask, j] == truth[mask]).mean())
        confusions[j] = crowd.annotator_confusion(truth, j)
    return _AnnotatorReport(counts=counts, quality=accuracy, confusions=confusions)


def sequence_annotator_report(
    crowd: SequenceCrowdLabels,
    truth: list[np.ndarray],
    labels: list[str] = CONLL_LABELS,
) -> _AnnotatorReport:
    """Per-annotator volume, span F1, and token confusion for sequences."""
    J = crowd.num_annotators
    counts = crowd.annotations_per_annotator()
    f1 = np.full(J, np.nan)  # NaN = labeled no sentences (see classification twin)
    confusions = np.zeros((J, crowd.num_classes, crowd.num_classes))
    predictions_per_annotator: list[list[np.ndarray]] = [[] for _ in range(J)]
    truths_per_annotator: list[list[np.ndarray]] = [[] for _ in range(J)]
    for i in range(crowd.num_instances):
        for j in crowd.annotators_of(i):
            predictions_per_annotator[j].append(crowd.labels[i][:, j])
            truths_per_annotator[j].append(np.asarray(truth[i]))
    for j in range(J):
        if predictions_per_annotator[j]:
            f1[j] = span_f1_score(
                truths_per_annotator[j], predictions_per_annotator[j], labels
            ).f1
        confusions[j] = crowd.annotator_confusion(truth, j)
    return _AnnotatorReport(counts=counts, quality=f1, confusions=confusions)
