"""Crowdsourcing substrate: label containers, simulators, annotator reports."""

from .metrics import (
    BoxplotStats,
    boxplot_stats,
    classification_annotator_report,
    sequence_annotator_report,
)
from .ner_simulation import (
    NERAnnotatorPool,
    NERAnnotatorProfile,
    sample_ner_pool,
    simulate_ner_crowd,
)
from .simulation import (
    AnnotatorPool,
    sample_annotator_pool,
    sample_confusion_matrix,
    simulate_classification_crowd,
)
from .sharding import (
    CrowdShard,
    SequenceCrowdShard,
    ShardHandle,
    SparseLabelShard,
    as_sparse_shard,
    save_shard_handles,
)
from .types import MISSING, CrowdLabelMatrix, SequenceCrowdLabels

__all__ = [
    "MISSING",
    "CrowdLabelMatrix",
    "SequenceCrowdLabels",
    "CrowdShard",
    "SequenceCrowdShard",
    "SparseLabelShard",
    "ShardHandle",
    "as_sparse_shard",
    "save_shard_handles",
    "AnnotatorPool",
    "sample_confusion_matrix",
    "sample_annotator_pool",
    "simulate_classification_crowd",
    "NERAnnotatorProfile",
    "NERAnnotatorPool",
    "sample_ner_pool",
    "simulate_ner_crowd",
    "BoxplotStats",
    "boxplot_stats",
    "classification_annotator_report",
    "sequence_annotator_report",
]
