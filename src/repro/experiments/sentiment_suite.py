"""Sentiment experiment suite: data assembly and the Table II method zoo.

One place builds the (simulated) Sentiment Polarity (MTurk) benchmark and
runs every compared method with the paper's hyper-parameters, so Table II,
the Table IV ablations, Fig. 6 and the sample-efficiency experiment all
share identical plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines import (
    CrowdLayerClassifier,
    RaykarClassifier,
    TrainerConfig,
    TwoStageClassifier,
    train_gold_classifier,
)
from ..core import LogicLNCLClassifier, sentiment_paper_config
from ..crowd import sample_annotator_pool, simulate_classification_crowd
from ..data import SentimentCorpusConfig, SentimentTask, make_sentiment_task
from ..eval import accuracy, posterior_accuracy
from ..inference import build_method_table, get_method
from ..logic import ButRule
from ..models import TextCNN, TextCNNConfig

__all__ = [
    "SentimentBenchConfig",
    "build_sentiment_data",
    "run_sentiment_method",
    "sentiment_inference_table",
    "SENTIMENT_METHODS",
    "SENTIMENT_INFERENCE_METHODS",
    "PAPER_TABLE2",
]

# Paper Table II (accuracy %, averaged over 50 runs).
PAPER_TABLE2: dict[str, dict[str, float]] = {
    "MV-Classifier": {"prediction": 78.08, "inference": 88.58},
    "GLAD-Classifier": {"prediction": 78.45, "inference": 91.76},
    "Raykar": {"inference": 91.48},
    "AggNet": {"prediction": 78.47, "inference": 91.63},
    "CL (VW)": {"prediction": 78.22, "inference": 88.00},
    "CL (VW-B)": {"prediction": 78.04, "inference": 87.51},
    "CL (MW)": {"prediction": 78.28, "inference": 88.30},
    "Logic-LNCL-student": {"prediction": 78.85, "inference": 91.82},
    "Logic-LNCL-teacher": {"prediction": 79.22, "inference": 91.82},
    "MV": {"inference": 88.58},
    "DS": {"inference": 91.48},
    "GLAD": {"inference": 91.76},
    "PM": {"inference": 89.66},
    "CATD": {"inference": 91.49},
    "Gold": {"prediction": 79.26, "inference": 100.0},
}


@dataclass
class SentimentBenchConfig:
    """Scaled-down benchmark sizes (DESIGN.md §4 scaling policy).

    The paper uses 4,999 train sentences, 203 annotators, 30 epochs, 50
    seeds on a V100; defaults here run the whole Table II suite in minutes
    on CPU. Method-defining hyper-parameters (C, k(t), optimizer families,
    patience) stay at paper values via :func:`sentiment_paper_config`.
    """

    num_train: int = 1200
    num_dev: int = 300
    num_test: int = 300
    num_annotators: int = 60
    mean_labels_per_instance: float = 5.55
    epochs: int = 15
    feature_maps: int = 32
    embedding_dim: int = 32
    seeds: tuple[int, ...] = (0, 1, 2)
    corpus: SentimentCorpusConfig | None = field(default=None, repr=False)

    def corpus_config(self) -> SentimentCorpusConfig:
        if self.corpus is not None:
            return self.corpus
        return SentimentCorpusConfig(
            num_train=self.num_train,
            num_dev=self.num_dev,
            num_test=self.num_test,
            embedding_dim=self.embedding_dim,
        )


def build_sentiment_data(seed: int, config: SentimentBenchConfig) -> SentimentTask:
    """Corpus + simulated MTurk crowd for one seed."""
    rng = np.random.default_rng(seed)
    task = make_sentiment_task(rng, config.corpus_config())
    pool = sample_annotator_pool(rng, config.num_annotators, 2)
    task.train.crowd = simulate_classification_crowd(
        rng, task.train.labels, pool, config.mean_labels_per_instance
    )
    return task


def _cnn(task: SentimentTask, config: SentimentBenchConfig, seed: int) -> TextCNN:
    return TextCNN(
        task.embeddings,
        TextCNNConfig(feature_maps=config.feature_maps),
        np.random.default_rng(seed + 1000),
    )


def _trainer_config(config: SentimentBenchConfig) -> TrainerConfig:
    paper = sentiment_paper_config(epochs=config.epochs)
    return TrainerConfig(
        epochs=paper.epochs,
        batch_size=paper.batch_size,
        optimizer=paper.optimizer,
        learning_rate=paper.learning_rate,
        lr_decay_every=paper.lr_decay_every,
        lr_decay_factor=paper.lr_decay_factor,
        patience=paper.patience,
    )


def _score_two_stage(method: TwoStageClassifier, task: SentimentTask) -> dict[str, float]:
    test = task.test
    return {
        "prediction": accuracy(test.labels, method.predict(test.tokens, test.lengths)),
        "inference": posterior_accuracy(task.train.labels, method.inference_posterior()),
    }


def run_sentiment_method(
    name: str, task: SentimentTask, config: SentimentBenchConfig, seed: int
) -> dict[str, float]:
    """Train and score one Table II method on one seeded dataset.

    Returns a metric dict with ``prediction`` (test accuracy) and/or
    ``inference`` (training-set truth-estimate accuracy), as in Table II.
    """
    rng = np.random.default_rng(seed + 2000)
    test, train, dev = task.test, task.train, task.dev
    lncl_config = sentiment_paper_config(epochs=config.epochs)

    if name == "MV-Classifier":
        method = TwoStageClassifier(_cnn(task, config, seed), get_method("MV"), _trainer_config(config), rng)
        method.fit(train, dev)
        return _score_two_stage(method, task)
    if name == "GLAD-Classifier":
        method = TwoStageClassifier(_cnn(task, config, seed), get_method("GLAD"), _trainer_config(config), rng)
        method.fit(train, dev)
        return _score_two_stage(method, task)
    if name == "Raykar":
        method = RaykarClassifier(task.embeddings, 2, lncl_config, rng)
        method.fit(train, dev)
        # Paper reports inference only for Raykar.
        return {"inference": posterior_accuracy(train.labels, method.inference_posterior())}
    if name == "AggNet":
        method = LogicLNCLClassifier(_cnn(task, config, seed), lncl_config, rng, rule=None)
        method.fit(train, dev)
        return {
            "prediction": accuracy(test.labels, method.predict_student(test.tokens, test.lengths)),
            "inference": posterior_accuracy(train.labels, method.inference_posterior()),
        }
    if name.startswith("CL ("):
        variant = name[4:-1]
        method = CrowdLayerClassifier(
            _cnn(task, config, seed), variant, _trainer_config(config), rng, pretrain_epochs=5
        )
        method.fit(train, dev)
        return {
            "prediction": accuracy(test.labels, method.predict(test.tokens, test.lengths)),
            "inference": posterior_accuracy(train.labels, method.inference_posterior()),
        }
    if name in ("Logic-LNCL-student", "Logic-LNCL-teacher"):
        method = LogicLNCLClassifier(
            _cnn(task, config, seed), lncl_config, rng, rule=ButRule(task.but_id)
        )
        method.fit(train, dev)
        predict = method.predict_teacher if name.endswith("teacher") else method.predict_student
        return {
            "prediction": accuracy(test.labels, predict(test.tokens, test.lengths)),
            "inference": posterior_accuracy(train.labels, method.inference_posterior()),
        }
    if name == "Gold":
        model = _cnn(task, config, seed)
        train_gold_classifier(model, _trainer_config(config), rng, train, dev)
        return {
            "prediction": accuracy(test.labels, model.predict(test.tokens, test.lengths)),
            "inference": 1.0,
        }
    raise KeyError(f"unknown sentiment method {name!r}")


def sentiment_inference_table() -> dict[str, object]:
    """The Table II truth-inference block, built from the registry."""
    return build_method_table(SENTIMENT_INFERENCE_METHODS, kind="classification")


def run_sentiment_inference_method(name: str, task: SentimentTask) -> dict[str, float]:
    """Score one pure truth-inference method (Table II lower block).

    Methods resolve through :mod:`repro.inference.registry`; any name in
    ``available_methods("classification")`` works here.
    """
    result = get_method(name, kind="classification").infer(task.train.crowd)
    return {"inference": posterior_accuracy(task.train.labels, result.posterior)}


SENTIMENT_METHODS = [
    "MV-Classifier",
    "GLAD-Classifier",
    "Raykar",
    "AggNet",
    "CL (VW)",
    "CL (VW-B)",
    "CL (MW)",
    "Logic-LNCL-student",
    "Logic-LNCL-teacher",
    "Gold",
]

SENTIMENT_INFERENCE_METHODS = ["MV", "DS", "GLAD", "PM", "CATD"]
