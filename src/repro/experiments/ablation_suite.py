"""Table IV ablation suite.

Variants (paper §VI-B "Ablation study"):

* **MV-Rule / GLAD-Rule** — distill the same rules, but from a *static*
  truth posterior (MV / GLAD; AggNet stands in for GLAD on NER, as in the
  paper) instead of the iteratively refined ``qa``;
* **w/o-Rule** — ablate the distillation entirely (the EM baseline);
* **MV-t** — plain MV-Classifier whose test predictions get the Eq. 15
  teacher adaptation;
* **our-other-rules** — deliberately weaker/wrong rules: "however" instead
  of "but" for sentiment; only the Eq. 18 transition rule (at full weight)
  for NER;
* **Logic-LNCL-{student, teacher}** — the full method.
"""

from __future__ import annotations

import numpy as np

from ..baselines import TrainerConfig, TwoStageClassifier, TwoStageSequenceTagger
from ..core import LogicLNCLClassifier, LogicLNCLSequenceTagger, ner_paper_config, sentiment_paper_config
from ..data import CONLL_LABELS
from ..eval import accuracy, posterior_accuracy, span_f1_score
from ..inference import get_method, majority_vote_posterior
from ..logic import ButRule, bio_transition_rules
from .ner_suite import NERBenchConfig, _lncl_config, _tagger, _trainer_config as _ner_trainer_config
from .sentiment_suite import SentimentBenchConfig, _cnn, _trainer_config as _sent_trainer_config

__all__ = [
    "ABLATION_METHODS",
    "PAPER_TABLE4",
    "run_sentiment_ablation",
    "run_ner_ablation",
]

# Paper Table IV: sentiment prediction/inference, NER prediction/inference (%).
PAPER_TABLE4: dict[str, dict[str, float]] = {
    "MV-Rule": {"sent_prediction": 78.41, "sent_inference": 88.96,
                "ner_prediction": 47.66, "ner_inference": 61.63},
    "GLAD-Rule": {"sent_prediction": 78.62, "sent_inference": 91.74,
                  "ner_prediction": 61.65, "ner_inference": 77.52},
    "w/o-Rule": {"sent_prediction": 78.47, "sent_inference": 91.63,
                 "ner_prediction": 60.11, "ner_inference": 75.28},
    "MV-t": {"sent_prediction": 78.83, "sent_inference": 88.58,
             "ner_prediction": 46.77, "ner_inference": 67.27},
    "our-other-rules-student": {"sent_prediction": 78.79, "sent_inference": 91.72,
                                "ner_prediction": 50.71, "ner_inference": 75.07},
    "our-other-rules-teacher": {"sent_prediction": 78.79, "sent_inference": 91.72,
                                "ner_prediction": 1.23, "ner_inference": 75.07},
    "Logic-LNCL-student": {"sent_prediction": 78.85, "sent_inference": 91.82,
                           "ner_prediction": 62.69, "ner_inference": 79.14},
    "Logic-LNCL-teacher": {"sent_prediction": 79.22, "sent_inference": 91.82,
                           "ner_prediction": 64.06, "ner_inference": 79.14},
}

ABLATION_METHODS = list(PAPER_TABLE4)


def run_sentiment_ablation(
    name: str, task, config: SentimentBenchConfig, seed: int
) -> dict[str, float]:
    """One Table IV variant on the sentiment task → prediction/inference."""
    rng = np.random.default_rng(seed + 3000)
    train, dev, test = task.train, task.dev, task.test
    lncl_config = sentiment_paper_config(epochs=config.epochs)
    but_rule = ButRule(task.but_id)

    def scored(method: LogicLNCLClassifier, teacher: bool) -> dict[str, float]:
        method.fit(train, dev)
        predict = method.predict_teacher if teacher else method.predict_student
        return {
            "prediction": accuracy(test.labels, predict(test.tokens, test.lengths)),
            "inference": posterior_accuracy(train.labels, method.inference_posterior()),
        }

    if name == "MV-Rule":
        fixed = majority_vote_posterior(train.crowd)
        return scored(
            LogicLNCLClassifier(_cnn(task, config, seed), lncl_config, rng,
                                rule=but_rule, fixed_qa=fixed),
            teacher=False,
        )
    if name == "GLAD-Rule":
        fixed = get_method("GLAD").infer(train.crowd).posterior
        return scored(
            LogicLNCLClassifier(_cnn(task, config, seed), lncl_config, rng,
                                rule=but_rule, fixed_qa=fixed),
            teacher=False,
        )
    if name == "w/o-Rule":
        return scored(
            LogicLNCLClassifier(_cnn(task, config, seed), lncl_config, rng, rule=None),
            teacher=False,
        )
    if name == "MV-t":
        method = TwoStageClassifier(
            _cnn(task, config, seed), get_method("MV"), _sent_trainer_config(config), rng,
            test_rule=but_rule, C=lncl_config.C,
        )
        method.fit(train, dev)
        return {
            "prediction": accuracy(
                test.labels, method.predict_proba(test.tokens, test.lengths).argmax(axis=1)
            ),
            "inference": posterior_accuracy(train.labels, method.inference_posterior()),
        }
    if name.startswith("our-other-rules"):
        however_rule = ButRule(task.however_id)
        return scored(
            LogicLNCLClassifier(_cnn(task, config, seed), lncl_config, rng, rule=however_rule),
            teacher=name.endswith("teacher"),
        )
    if name in ("Logic-LNCL-student", "Logic-LNCL-teacher"):
        return scored(
            LogicLNCLClassifier(_cnn(task, config, seed), lncl_config, rng, rule=but_rule),
            teacher=name.endswith("teacher"),
        )
    raise KeyError(f"unknown ablation {name!r}")


def run_ner_ablation(name: str, task, config: NERBenchConfig, seed: int) -> dict[str, float]:
    """One Table IV variant on the NER task → prediction/inference (F1)."""
    rng = np.random.default_rng(seed + 3000)
    train, dev, test = task.train, task.dev, task.test
    lncl_config = _lncl_config(config)
    rules = bio_transition_rules(CONLL_LABELS)

    def scored(method: LogicLNCLSequenceTagger, teacher: bool) -> dict[str, float]:
        method.fit(train, dev)
        predict = method.predict_teacher if teacher else method.predict_student
        prediction = span_f1_score(test.tags, predict(test.tokens, test.lengths)).f1
        inference = span_f1_score(
            train.tags, [q.argmax(axis=1) for q in method.inference_posterior()]
        ).f1
        return {"prediction": prediction, "inference": inference}

    if name == "MV-Rule":
        fixed = [
            posterior
            for posterior in get_method("MV", kind="sequence").infer(train.crowd).posteriors
        ]
        return scored(
            LogicLNCLSequenceTagger(_tagger(task, config, seed), lncl_config, rng,
                                    rules=rules, fixed_qa=fixed),
            teacher=False,
        )
    if name == "GLAD-Rule":
        # GLAD is binary-only; the paper substitutes AggNet's posterior on NER.
        aggnet = LogicLNCLSequenceTagger(
            _tagger(task, config, seed + 7), lncl_config, np.random.default_rng(seed + 7000),
            rules=None,
        )
        aggnet.fit(train, dev)
        return scored(
            LogicLNCLSequenceTagger(_tagger(task, config, seed), lncl_config, rng,
                                    rules=rules, fixed_qa=aggnet.inference_posterior()),
            teacher=False,
        )
    if name == "w/o-Rule":
        return scored(
            LogicLNCLSequenceTagger(_tagger(task, config, seed), lncl_config, rng, rules=None),
            teacher=False,
        )
    if name == "MV-t":
        method = TwoStageSequenceTagger(
            _tagger(task, config, seed), get_method("MV", kind="sequence"),
            _ner_trainer_config(config), rng, test_rules=rules, C=lncl_config.C,
        )
        method.fit(train, dev)
        prediction = span_f1_score(test.tags, method.predict(test.tokens, test.lengths)).f1
        inference = span_f1_score(
            train.tags, [p.argmax(axis=1) for p in method.inference_posteriors()]
        ).f1
        return {"prediction": prediction, "inference": inference}
    if name.startswith("our-other-rules"):
        bad_rules = bio_transition_rules(CONLL_LABELS, only_begin_rule=True)
        return scored(
            LogicLNCLSequenceTagger(_tagger(task, config, seed), lncl_config, rng, rules=bad_rules),
            teacher=name.endswith("teacher"),
        )
    if name in ("Logic-LNCL-student", "Logic-LNCL-teacher"):
        return scored(
            LogicLNCLSequenceTagger(_tagger(task, config, seed), lncl_config, rng, rules=rules),
            teacher=name.endswith("teacher"),
        )
    raise KeyError(f"unknown ablation {name!r}")
