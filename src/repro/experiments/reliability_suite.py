"""Fig. 6/7 reproduction: annotator-reliability recovery by Logic-LNCL.

Trains Logic-LNCL, compares its Eq. 12 confusion-matrix estimates against
the empirical ("Real") matrices, and reports the Pearson correlation of
overall reliability — the quantity the paper's scatter plots annotate
(≈0.923 on sentiment, ≈0.911 on NER).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import LogicLNCLClassifier, LogicLNCLSequenceTagger, ner_paper_config, sentiment_paper_config
from ..crowd import classification_annotator_report, sequence_annotator_report
from ..data import CONLL_LABELS
from ..eval import compare_reliability
from ..logic import ButRule, bio_transition_rules
from .ner_suite import NERBenchConfig, _lncl_config, _tagger, build_ner_data
from .sentiment_suite import SentimentBenchConfig, _cnn, build_sentiment_data

__all__ = ["ReliabilityResult", "run_fig6_sentiment", "run_fig7_ner"]

PAPER_FIG6_PEARSON = 0.923
PAPER_FIG7_PEARSON = 0.911


@dataclass
class ReliabilityResult:
    """Outcome of one reliability-recovery experiment."""

    pearson: float
    confusion_mae: float
    top_annotators: np.ndarray          # most-active annotator indices
    estimated_top: np.ndarray           # (n, K, K) estimates for those
    real_top: np.ndarray                # (n, K, K) empirical matrices
    paper_pearson: float


def run_fig6_sentiment(
    config: SentimentBenchConfig, seed: int = 0, top_n: int = 6, min_labels: int = 6
) -> ReliabilityResult:
    """Fig. 6: sentiment annotator confusion estimation + reliability scatter.

    ``top_n`` = 6 and ``min_labels`` > 5 follow the paper's selection (the
    six most active annotators for 6a; annotators with more than five
    labels for 6b).
    """
    task = build_sentiment_data(seed, config)
    trainer = LogicLNCLClassifier(
        _cnn(task, config, seed),
        sentiment_paper_config(epochs=config.epochs),
        np.random.default_rng(seed + 2000),
        rule=ButRule(task.but_id),
    )
    trainer.fit(task.train, dev=task.dev)
    report = classification_annotator_report(task.train.crowd, task.train.labels)
    comparison = compare_reliability(
        trainer.confusions_, report.confusions, min_labels=min_labels, counts=report.counts
    )
    top = report.top_annotators(top_n)
    return ReliabilityResult(
        pearson=comparison.pearson,
        confusion_mae=comparison.mae,
        top_annotators=top,
        estimated_top=trainer.confusions_[top],
        real_top=report.confusions[top],
        paper_pearson=PAPER_FIG6_PEARSON,
    )


def run_fig7_ner(
    config: NERBenchConfig, seed: int = 0, top_n: int = 4, min_labels: int = 1
) -> ReliabilityResult:
    """Fig. 7: NER annotator confusion estimation + reliability scatter.

    The paper's Fig. 7b includes *all* annotators (min_labels=1) and shows
    the four most active in 7a.
    """
    task = build_ner_data(seed, config)
    trainer = LogicLNCLSequenceTagger(
        _tagger(task, config, seed),
        _lncl_config(config),
        np.random.default_rng(seed + 2000),
        rules=bio_transition_rules(CONLL_LABELS),
    )
    trainer.fit(task.train, dev=task.dev)
    report = sequence_annotator_report(task.train.crowd, task.train.tags)
    comparison = compare_reliability(
        trainer.confusions_, report.confusions, min_labels=min_labels, counts=report.counts
    )
    top = report.top_annotators(top_n)
    return ReliabilityResult(
        pearson=comparison.pearson,
        confusion_mae=comparison.mae,
        top_annotators=top,
        estimated_top=trainer.confusions_[top],
        real_top=report.confusions[top],
        paper_pearson=PAPER_FIG7_PEARSON,
    )
