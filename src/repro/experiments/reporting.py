"""Table formatting for the benchmark harness.

Every bench regenerates one paper artifact and prints rows in the paper's
layout next to the paper's reported numbers, so "shape" agreement (who
wins, by roughly what factor) is visible at a glance.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

__all__ = ["Row", "Table", "bench_scale", "aggregate_runs"]


def bench_scale() -> float:
    """Global scale multiplier for bench workloads.

    ``REPRO_BENCH_SCALE`` (default 1.0) multiplies corpus sizes and seed
    counts; set 2-4 on a fast machine for tighter estimates.
    """
    try:
        scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError as exc:
        raise ValueError("REPRO_BENCH_SCALE must be a number") from exc
    if scale <= 0:
        raise ValueError("REPRO_BENCH_SCALE must be positive")
    return scale


@dataclass
class Row:
    """One method's row: measured mean±std per metric plus paper reference."""

    method: str
    measured: dict[str, float]
    std: dict[str, float] = field(default_factory=dict)
    paper: dict[str, float] = field(default_factory=dict)

    def cell(self, metric: str) -> str:
        value = self.measured.get(metric)
        if value is None:
            return "   -  "
        spread = self.std.get(metric)
        if spread is None:
            return f"{100 * value:6.2f}"
        return f"{100 * value:6.2f}±{100 * spread:4.2f}"

    def paper_cell(self, metric: str) -> str:
        value = self.paper.get(metric)
        return "   -  " if value is None else f"{value:6.2f}"


@dataclass
class Table:
    """A paper table/figure reproduction: title, metric columns, rows."""

    title: str
    metrics: list[str]
    rows: list[Row] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, row: Row) -> None:
        self.rows.append(row)

    def render(self) -> str:
        width = max([len(r.method) for r in self.rows] + [18])
        header_cells = []
        for metric in self.metrics:
            header_cells.append(f"{metric + ' (ours)':>14}")
            header_cells.append(f"{metric + ' (paper)':>16}")
        lines = [
            "=" * 100,
            self.title,
            "=" * 100,
            f"{'method':<{width}}" + "".join(header_cells),
            "-" * 100,
        ]
        for row in self.rows:
            cells = []
            for metric in self.metrics:
                cells.append(f"{row.cell(metric):>14}")
                cells.append(f"{row.paper_cell(metric):>16}")
            lines.append(f"{row.method:<{width}}" + "".join(cells))
        if self.notes:
            lines.append("-" * 100)
            lines.extend(f"note: {note}" for note in self.notes)
        lines.append("=" * 100)
        return "\n".join(lines)

    def row(self, method: str) -> Row:
        for row in self.rows:
            if row.method == method:
                return row
        raise KeyError(f"no row named {method!r}")

    def measured(self, method: str, metric: str) -> float:
        value = self.row(method).measured.get(metric)
        if value is None:
            raise KeyError(f"{method!r} has no measured {metric!r}")
        return value


def aggregate_runs(runs: list[dict[str, float]]) -> tuple[dict[str, float], dict[str, float]]:
    """Mean and std per metric over seeded runs (skips missing metrics)."""
    keys = {key for run in runs for key in run}
    mean: dict[str, float] = {}
    std: dict[str, float] = {}
    for key in keys:
        values = [run[key] for run in runs if key in run]
        mean[key] = float(np.mean(values))
        std[key] = float(np.std(values))
    return mean, std
