"""Experiment suites regenerating every table and figure of the paper.

One module per artifact family (see DESIGN.md §3 experiment index):

* :mod:`sentiment_suite` — Table II methods and data assembly;
* :mod:`ner_suite` — Table III;
* :mod:`ablation_suite` — Table IV;
* :mod:`reliability_suite` — Fig. 6 / Fig. 7;
* :mod:`sample_efficiency` — the §VI-B sample-efficiency experiment;
* :mod:`streaming_suite` — label-stream scenarios (arrival order,
  annotator drift, burst arrivals) for the online inference subsystem;
* :mod:`reporting` — table rendering with paper-vs-measured columns.

The ``benchmarks/`` directory contains the pytest-benchmark entry points
that drive these suites and print the paper-format tables.
"""

from .ablation_suite import (
    ABLATION_METHODS,
    PAPER_TABLE4,
    run_ner_ablation,
    run_sentiment_ablation,
)
from .ner_suite import (
    NER_INFERENCE_METHODS,
    NER_INFERENCE_OVERRIDES,
    NER_METHODS,
    PAPER_TABLE3,
    NERBenchConfig,
    build_ner_data,
    ner_inference_table,
    run_ner_inference_method,
    run_ner_method,
)
from .reliability_suite import ReliabilityResult, run_fig6_sentiment, run_fig7_ner
from .reporting import Row, Table, aggregate_runs, bench_scale
from .sample_efficiency import (
    SampleEfficiencyResult,
    run_ner_sample_efficiency,
    run_sentiment_sample_efficiency,
)
from .sentiment_suite import (
    PAPER_TABLE2,
    SENTIMENT_INFERENCE_METHODS,
    SENTIMENT_METHODS,
    SentimentBenchConfig,
    build_sentiment_data,
    run_sentiment_method,
)
from .sentiment_suite import run_sentiment_inference_method, sentiment_inference_table
from .streaming_suite import (
    StreamRunResult,
    StreamScenarioConfig,
    StreamUpdateRecord,
    run_annotator_drift_scenario,
    run_arrival_order_scenario,
    run_burst_arrival_scenario,
    run_label_stream,
    run_streaming_suite,
    stream_crowd_in_batches,
)

__all__ = [
    "Row",
    "Table",
    "aggregate_runs",
    "bench_scale",
    "SentimentBenchConfig",
    "build_sentiment_data",
    "run_sentiment_method",
    "run_sentiment_inference_method",
    "sentiment_inference_table",
    "SENTIMENT_METHODS",
    "SENTIMENT_INFERENCE_METHODS",
    "PAPER_TABLE2",
    "NERBenchConfig",
    "build_ner_data",
    "run_ner_method",
    "run_ner_inference_method",
    "ner_inference_table",
    "NER_METHODS",
    "NER_INFERENCE_METHODS",
    "NER_INFERENCE_OVERRIDES",
    "PAPER_TABLE3",
    "ABLATION_METHODS",
    "PAPER_TABLE4",
    "run_sentiment_ablation",
    "run_ner_ablation",
    "ReliabilityResult",
    "run_fig6_sentiment",
    "run_fig7_ner",
    "SampleEfficiencyResult",
    "run_sentiment_sample_efficiency",
    "run_ner_sample_efficiency",
    "StreamScenarioConfig",
    "StreamUpdateRecord",
    "StreamRunResult",
    "stream_crowd_in_batches",
    "run_label_stream",
    "run_arrival_order_scenario",
    "run_annotator_drift_scenario",
    "run_burst_arrival_scenario",
    "run_streaming_suite",
]
