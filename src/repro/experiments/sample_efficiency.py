"""§VI-B "Advantage of sample-efficiency" reproduction.

The paper shows Logic-LNCL matches (slightly exceeds) the best competitor's
full-data generalization with strictly fewer training samples — e.g.
4,300/3,300 of the 4,999 sentiment samples for the student/teacher. This
suite sweeps training-set fractions and records, per method, test accuracy
(or F1) at each fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .ner_suite import NERBenchConfig, build_ner_data, run_ner_method
from .sentiment_suite import SentimentBenchConfig, build_sentiment_data, run_sentiment_method

__all__ = ["SampleEfficiencyResult", "run_sentiment_sample_efficiency", "run_ner_sample_efficiency"]


@dataclass
class SampleEfficiencyResult:
    """Per-method score curves over training-set fractions."""

    fractions: list[float]
    scores: dict[str, list[float]]          # method → score per fraction
    full_data_reference: dict[str, float]   # method → full-data score

    def samples_to_match(self, method: str, reference_method: str, total: int) -> int | None:
        """Smallest sample count where ``method`` ≥ the reference's
        full-data score (None when never matched)."""
        target = self.full_data_reference[reference_method]
        for fraction, score in zip(self.fractions, self.scores[method]):
            if score >= target:
                return int(round(fraction * total))
        return None


def _subset_task(task, fraction: float, rng: np.random.Generator):
    """Clone the task with a random training subset (dev/test untouched)."""
    from dataclasses import replace

    n = len(task.train)
    keep = rng.choice(n, size=max(2, int(round(fraction * n))), replace=False)
    keep.sort()
    return replace(task, train=task.train.subset(keep))


def run_sentiment_sample_efficiency(
    config: SentimentBenchConfig,
    fractions: list[float],
    methods: list[str],
    reference_method: str,
    seed: int = 0,
) -> SampleEfficiencyResult:
    """Sweep training fractions on sentiment; 'prediction' is the score."""
    task = build_sentiment_data(seed, config)
    subset_rng = np.random.default_rng(seed + 9000)
    full_reference = {
        reference_method: run_sentiment_method(reference_method, task, config, seed)["prediction"]
    }
    scores: dict[str, list[float]] = {m: [] for m in methods}
    for fraction in fractions:
        sub = _subset_task(task, fraction, subset_rng)
        for method in methods:
            scores[method].append(run_sentiment_method(method, sub, config, seed)["prediction"])
    return SampleEfficiencyResult(fractions, scores, full_reference)


def run_ner_sample_efficiency(
    config: NERBenchConfig,
    fractions: list[float],
    methods: list[str],
    reference_method: str,
    seed: int = 0,
) -> SampleEfficiencyResult:
    """Sweep training fractions on NER; span F1 is the score."""
    task = build_ner_data(seed, config)
    subset_rng = np.random.default_rng(seed + 9000)
    full_reference = {
        reference_method: run_ner_method(reference_method, task, config, seed)["f1"]
    }
    scores: dict[str, list[float]] = {m: [] for m in methods}
    for fraction in fractions:
        sub = _subset_task(task, fraction, subset_rng)
        for method in methods:
            scores[method].append(run_ner_method(method, sub, config, seed)["f1"])
    return SampleEfficiencyResult(fractions, scores, full_reference)
