"""NER experiment suite: data assembly and the Table III method zoo."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines import (
    CrowdLayerSequenceTagger,
    TrainerConfig,
    TwoStageSequenceTagger,
    train_gold_tagger,
)
from ..core import LogicLNCLSequenceTagger, ner_paper_config
from ..crowd import sample_ner_pool, simulate_ner_crowd
from ..data import CONLL_LABELS, NERCorpusConfig, NERTask, make_ner_task
from ..eval import span_f1_score
from ..inference import build_method_table, get_method
from ..logic import bio_transition_rules
from ..models import NERTagger, NERTaggerConfig

__all__ = [
    "NERBenchConfig",
    "build_ner_data",
    "run_ner_method",
    "run_ner_inference_method",
    "ner_inference_table",
    "NER_METHODS",
    "NER_INFERENCE_METHODS",
    "NER_INFERENCE_OVERRIDES",
    "PAPER_TABLE3",
]

# Paper Table III (%, averaged over 30 runs). P/R/F1 for prediction and
# inference. Entries marked in the paper as reported-from-other-work are
# included for reference display only.
PAPER_TABLE3: dict[str, dict[str, float]] = {
    "MV-Classifier": {"precision": 65.14, "recall": 45.98, "f1": 53.89,
                      "inf_precision": 79.12, "inf_recall": 58.50, "inf_f1": 67.27},
    "AggNet": {"precision": 61.67, "recall": 58.64, "f1": 60.09,
               "inf_precision": 77.19, "inf_recall": 73.02, "inf_f1": 75.04},
    "CL (VW, 5)": {"precision": 69.37, "recall": 52.11, "f1": 59.32,
                   "inf_precision": 79.19, "inf_recall": 71.72, "inf_f1": 75.25},
    "CL (VW-B, 5)": {"precision": 58.23, "recall": 59.92, "f1": 58.97,
                     "inf_precision": 75.27, "inf_recall": 73.41, "inf_f1": 74.30},
    "CL (MW, 5)": {"precision": 62.98, "recall": 61.57, "f1": 62.19,
                   "inf_precision": 78.37, "inf_recall": 75.14, "inf_f1": 76.70},
    "CL (MW, 1)": {"precision": 53.75, "recall": 44.70, "f1": 48.19,
                   "inf_precision": 61.93, "inf_recall": 50.21, "inf_f1": 54.42},
    "Logic-LNCL-student": {"precision": 66.53, "recall": 59.29, "f1": 62.69,
                           "inf_precision": 84.90, "inf_recall": 74.11, "inf_f1": 79.14},
    "Logic-LNCL-teacher": {"precision": 70.10, "recall": 58.99, "f1": 64.06,
                           "inf_precision": 84.90, "inf_recall": 74.11, "inf_f1": 79.14},
    "MV": {"inf_precision": 79.12, "inf_recall": 58.50, "inf_f1": 67.27},
    "DS": {"inf_precision": 79.0, "inf_recall": 70.4, "inf_f1": 74.4},
    "IBCC": {"inf_precision": 79.0, "inf_recall": 70.4, "inf_f1": 74.4},
    "BSC-seq": {"inf_precision": 80.3, "inf_recall": 74.8, "inf_f1": 77.4},
    "HMM-Crowd": {"inf_precision": 77.40, "inf_recall": 72.29, "inf_f1": 74.76},
    "Gold": {"precision": 72.52, "recall": 73.51, "f1": 72.98,
             "inf_precision": 100.0, "inf_recall": 100.0, "inf_f1": 100.0},
}


@dataclass
class NERBenchConfig:
    """Scaled-down NER benchmark (paper: 5,985 sentences, 47 annotators)."""

    num_train: int = 500
    num_dev: int = 150
    num_test: int = 150
    num_annotators: int = 25
    mean_labels_per_instance: float = 4.0
    epochs: int = 12
    conv_features: int = 64
    gru_hidden: int = 32
    embedding_dim: int = 32
    learning_rate: float = 1e-2
    seeds: tuple[int, ...] = (0, 1)
    corpus: NERCorpusConfig | None = field(default=None, repr=False)

    def corpus_config(self) -> NERCorpusConfig:
        if self.corpus is not None:
            return self.corpus
        return NERCorpusConfig(
            num_train=self.num_train,
            num_dev=self.num_dev,
            num_test=self.num_test,
            embedding_dim=self.embedding_dim,
        )


def build_ner_data(seed: int, config: NERBenchConfig) -> NERTask:
    """Corpus + simulated MTurk crowd for one seed."""
    rng = np.random.default_rng(seed)
    task = make_ner_task(rng, config.corpus_config())
    pool = sample_ner_pool(rng, config.num_annotators)
    task.train.crowd = simulate_ner_crowd(
        rng, task.train.tags, pool, config.mean_labels_per_instance
    )
    return task


def _tagger(task: NERTask, config: NERBenchConfig, seed: int) -> NERTagger:
    return NERTagger(
        task.embeddings,
        NERTaggerConfig(conv_features=config.conv_features, gru_hidden=config.gru_hidden),
        np.random.default_rng(seed + 1000),
    )


def _trainer_config(config: NERBenchConfig) -> TrainerConfig:
    return TrainerConfig(
        epochs=config.epochs,
        batch_size=64,
        optimizer="adam",
        learning_rate=config.learning_rate,
        lr_decay_every=None,
        patience=5,
    )


def _lncl_config(config: NERBenchConfig):
    lncl = ner_paper_config(epochs=config.epochs)
    lncl.learning_rate = config.learning_rate  # scaled task trains faster at 1e-2
    return lncl


def _prf(truth, predictions, prefix="") -> dict[str, float]:
    score = span_f1_score(truth, predictions)
    return {
        f"{prefix}precision": score.precision,
        f"{prefix}recall": score.recall,
        f"{prefix}f1": score.f1,
    }


def run_ner_method(
    name: str, task: NERTask, config: NERBenchConfig, seed: int
) -> dict[str, float]:
    """Train and score one Table III method on one seeded dataset."""
    rng = np.random.default_rng(seed + 2000)
    train, dev, test = task.train, task.dev, task.test
    rules = bio_transition_rules(CONLL_LABELS)

    if name == "MV-Classifier":
        method = TwoStageSequenceTagger(
            _tagger(task, config, seed), get_method("MV", kind="sequence"),
            _trainer_config(config), rng,
        )
        method.fit(train, dev)
        out = _prf(test.tags, method.predict(test.tokens, test.lengths))
        out.update(
            _prf(train.tags, [p.argmax(axis=1) for p in method.inference_posteriors()], "inf_")
        )
        return out
    if name == "AggNet":
        method = LogicLNCLSequenceTagger(_tagger(task, config, seed), _lncl_config(config), rng, rules=None)
        method.fit(train, dev)
        out = _prf(test.tags, method.predict_student(test.tokens, test.lengths))
        out.update(_prf(train.tags, [q.argmax(axis=1) for q in method.inference_posterior()], "inf_"))
        return out
    if name.startswith("CL ("):
        variant, pretrain = name[4:-1].split(", ")
        method = CrowdLayerSequenceTagger(
            _tagger(task, config, seed), variant, _trainer_config(config), rng,
            pretrain_epochs=int(pretrain),
        )
        method.fit(train, dev)
        out = _prf(test.tags, method.predict(test.tokens, test.lengths))
        out.update(
            _prf(train.tags, [p.argmax(axis=1) for p in method.inference_posteriors()], "inf_")
        )
        return out
    if name in ("Logic-LNCL-student", "Logic-LNCL-teacher"):
        method = LogicLNCLSequenceTagger(
            _tagger(task, config, seed), _lncl_config(config), rng, rules=rules
        )
        method.fit(train, dev)
        predict = method.predict_teacher if name.endswith("teacher") else method.predict_student
        out = _prf(test.tags, predict(test.tokens, test.lengths))
        out.update(_prf(train.tags, [q.argmax(axis=1) for q in method.inference_posterior()], "inf_"))
        return out
    if name == "Gold":
        model = _tagger(task, config, seed)
        train_gold_tagger(model, _trainer_config(config), rng, train, dev)
        out = _prf(test.tags, model.predict(test.tokens, test.lengths))
        out.update({"inf_precision": 1.0, "inf_recall": 1.0, "inf_f1": 1.0})
        return out
    raise KeyError(f"unknown NER method {name!r}")


# Suite-level iteration budgets for the sequential methods (bench scale).
NER_INFERENCE_OVERRIDES = {
    "BSC-seq": {"max_iterations": 15},
    "HMM-Crowd": {"max_iterations": 15},
}


def ner_inference_table() -> dict[str, object]:
    """The Table III truth-inference block, built from the registry."""
    return build_method_table(
        NER_INFERENCE_METHODS, kind="sequence", overrides=NER_INFERENCE_OVERRIDES
    )


def run_ner_inference_method(name: str, task: NERTask) -> dict[str, float]:
    """Score one sequence truth-inference method (Table III lower block).

    Methods resolve through :mod:`repro.inference.registry`; any name in
    ``available_methods("sequence")`` works here.
    """
    method = get_method(name, kind="sequence", **NER_INFERENCE_OVERRIDES.get(name, {}))
    result = method.infer(task.train.crowd)
    return _prf(task.train.tags, result.hard_labels(), "inf_")


NER_METHODS = [
    "MV-Classifier",
    "AggNet",
    "CL (VW, 5)",
    "CL (VW-B, 5)",
    "CL (MW, 5)",
    "CL (MW, 1)",
    "Logic-LNCL-student",
    "Logic-LNCL-teacher",
    "Gold",
]

NER_INFERENCE_METHODS = ["MV", "DS", "IBCC", "BSC-seq", "HMM-Crowd"]
