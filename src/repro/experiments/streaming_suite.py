"""Label-stream scenarios: online truth inference under realistic arrivals.

The batch suites replay the paper's tables on a frozen crowd; this suite
stresses the *streaming* subsystem (:mod:`repro.inference.streaming`) the
way a live annotation pipeline would, on crowds drawn from the same
simulator the batch experiments use (:mod:`repro.crowd.simulation`):

* **arrival order** — the same crowd streamed in two different orders and
  batchings; online accuracy traces may differ, but the converged
  posteriors must be arrival-invariant (the replay contract, exercised at
  suite scale);
* **annotator drift** — the most active annotators degrade to near-random
  mid-stream; a decayed stream tracks the regime change while the
  undecayed stream keeps crediting stale reputations;
* **burst arrivals** — heavy-tailed batch sizes with quiet (empty) ticks
  and single-instance dribbles, the arrival pattern that breaks naive
  "rebuild everything per batch" serving.

Every scenario records a per-update trace (batch size, observations seen,
online accuracy against the simulator's ground truth so far) plus final
online / converged accuracies, so regressions in online quality are
visible, not just crashes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..crowd.simulation import (
    AnnotatorPool,
    sample_annotator_pool,
    simulate_classification_crowd,
)
from ..crowd.types import CrowdLabelMatrix
from ..inference import get_method

__all__ = [
    "StreamScenarioConfig",
    "StreamUpdateRecord",
    "StreamRunResult",
    "stream_crowd_in_batches",
    "burst_batch_sizes",
    "run_label_stream",
    "run_arrival_order_scenario",
    "run_annotator_drift_scenario",
    "run_burst_arrival_scenario",
    "run_streaming_suite",
]


@dataclass
class StreamScenarioConfig:
    """Knobs shared by the stream scenarios (sized for quick full runs;
    tests shrink them further)."""

    instances: int = 400
    annotators: int = 20
    num_classes: int = 2
    batch_size: int = 40
    mean_labels_per_instance: float = 5.0
    # Drift scenario: this many of the most active annotators drop to
    # near-random accuracy halfway through the stream.
    drifting_annotators: int = 3
    drifted_accuracy: float = 0.3
    decay: float = 0.6


@dataclass
class StreamUpdateRecord:
    """One ``partial_fit`` step of a scenario run."""

    update: int
    batch_instances: int
    observations_seen: int
    online_accuracy: float  # hard labels vs truth over everything seen


@dataclass
class StreamRunResult:
    """One streaming method driven through one scenario."""

    scenario: str
    method: str
    decay: float | None
    trace: list[StreamUpdateRecord] = field(default_factory=list)
    final_online_accuracy: float = 0.0
    final_confusions: np.ndarray | None = None
    converged_accuracy: float | None = None
    converged_posterior: np.ndarray | None = None


def stream_crowd_in_batches(crowd: CrowdLabelMatrix, sizes) -> list[CrowdLabelMatrix]:
    """Slice a crowd into arrival batches (sizes must cover it exactly)."""
    sizes = list(sizes)
    if sum(sizes) != crowd.num_instances:
        raise ValueError(f"batch sizes {sum(sizes)} != {crowd.num_instances} instances")
    batches, start = [], 0
    for size in sizes:
        batches.append(crowd.subset(np.arange(start, start + size)))
        start += size
    return batches


def burst_batch_sizes(rng: np.random.Generator, total: int, batch_size: int) -> list[int]:
    """Heavy-tailed arrival sizes covering ``total`` instances exactly.

    The burst-arrival pattern shared by :func:`run_burst_arrival_scenario`
    and the serving workload generator (:mod:`repro.serving.workload`):
    each tick is a quiet poll (size 0, p=0.25), a single-instance dribble
    (p=0.30), or a burst of up to ``4 * batch_size`` instances.
    """
    sizes: list[int] = []
    remaining = total
    while remaining > 0:
        roll = rng.random()
        if roll < 0.25:
            size = 0  # quiet tick: the pipeline polls, nothing arrived
        elif roll < 0.55:
            size = 1  # dribble
        else:
            size = int(rng.integers(2, 4 * batch_size))  # burst
        size = min(size, remaining)
        sizes.append(size)
        remaining -= size
    return sizes


def run_label_stream(
    method_name: str,
    batches: list[CrowdLabelMatrix],
    truth: np.ndarray,
    scenario: str,
    decay: float | None = None,
    converge: bool = True,
    **overrides,
) -> StreamRunResult:
    """Drive one streaming method over a prepared arrival sequence.

    ``truth`` is aligned with the concatenated batches. With ``converge``,
    the run ends with ``fit_to_convergence()`` and reports its accuracy
    next to the purely-online one.
    """
    stream = get_method(method_name, kind="streaming", decay=decay, **overrides)
    run = StreamRunResult(scenario=scenario, method=method_name, decay=decay)
    seen = 0
    for index, batch in enumerate(batches):
        stream.partial_fit(batch)
        seen += batch.num_instances
        predicted = stream.result(refresh=True).hard_labels()
        accuracy = float((predicted == truth[:seen]).mean()) if seen else 1.0
        run.trace.append(
            StreamUpdateRecord(
                update=index + 1,
                batch_instances=batch.num_instances,
                observations_seen=stream.observations_seen,
                online_accuracy=accuracy,
            )
        )
    run.final_online_accuracy = run.trace[-1].online_accuracy if run.trace else 1.0
    run.final_confusions = stream.result().confusions
    if converge:
        converged = stream.fit_to_convergence()
        labels = converged.hard_labels()
        run.converged_accuracy = float((labels == truth[: len(labels)]).mean()) if seen else 1.0
        run.converged_posterior = converged.posterior
    return run


def _simulated_crowd(rng: np.random.Generator, config: StreamScenarioConfig):
    truth = rng.integers(0, config.num_classes, size=config.instances)
    pool = sample_annotator_pool(rng, config.annotators, config.num_classes)
    crowd = simulate_classification_crowd(
        rng, truth, pool, mean_labels_per_instance=config.mean_labels_per_instance
    )
    return truth, pool, crowd


def _even_batches(total: int, batch_size: int) -> list[int]:
    sizes = [batch_size] * (total // batch_size)
    if total % batch_size:
        sizes.append(total % batch_size)
    return sizes


def run_arrival_order_scenario(
    seed: int = 0,
    config: StreamScenarioConfig | None = None,
    methods: tuple[str, ...] = ("MV", "DS"),
) -> dict:
    """Same crowd, two arrival orders: converged posteriors must agree."""
    config = config or StreamScenarioConfig()
    rng = np.random.default_rng(seed)
    truth, _, crowd = _simulated_crowd(rng, config)
    order = rng.permutation(config.instances)
    shuffled_crowd, shuffled_truth = crowd.subset(order), truth[order]

    results: dict = {"scenario": "arrival-order", "methods": {}}
    for name in methods:
        forward = run_label_stream(
            name,
            stream_crowd_in_batches(crowd, _even_batches(config.instances, config.batch_size)),
            truth,
            scenario="arrival-order/forward",
        )
        shuffled = run_label_stream(
            name,
            stream_crowd_in_batches(
                shuffled_crowd, _even_batches(config.instances, config.batch_size * 2)
            ),
            shuffled_truth,
            scenario="arrival-order/shuffled",
        )
        # Arrival-invariance at convergence, per instance (undo the shuffle).
        divergence = float(
            np.abs(forward.converged_posterior[order] - shuffled.converged_posterior).max()
        )
        results["methods"][name] = {
            "forward": forward,
            "shuffled": shuffled,
            "converged_divergence": divergence,
        }
    return results


def run_annotator_drift_scenario(
    seed: int = 0, config: StreamScenarioConfig | None = None
) -> dict:
    """Prolific annotators degrade mid-stream; compare decayed vs undecayed DS.

    Returns the two runs plus each model's final estimated reliability
    (mean confusion diagonal) of the drifted annotators — the decayed
    stream should rate them near-random, the undecayed one should not.
    """
    config = config or StreamScenarioConfig()
    rng = np.random.default_rng(seed)
    half = config.instances // 2
    truth = rng.integers(0, config.num_classes, size=config.instances)
    pool = sample_annotator_pool(rng, config.annotators, config.num_classes)
    drifted = np.argsort(pool.activity)[::-1][: config.drifting_annotators]

    degraded_confusions = pool.confusions.copy()
    K = config.num_classes
    off = (1.0 - config.drifted_accuracy) / (K - 1)
    degraded_confusions[drifted] = np.full((K, K), off) + np.eye(K) * (
        config.drifted_accuracy - off
    )
    degraded_pool = AnnotatorPool(confusions=degraded_confusions, activity=pool.activity)

    before = simulate_classification_crowd(
        rng, truth[:half], pool, config.mean_labels_per_instance
    )
    after = simulate_classification_crowd(
        rng, truth[half:], degraded_pool, config.mean_labels_per_instance
    )
    crowd = CrowdLabelMatrix(before.labels, K).extend(after.labels)
    batches = stream_crowd_in_batches(crowd, _even_batches(config.instances, config.batch_size))

    runs = {}
    reliability = {}
    for label, decay in (("undecayed", None), ("decayed", config.decay)):
        run = run_label_stream("DS", batches, truth, "annotator-drift", decay=decay, converge=False)
        runs[label] = run
        reliability[label] = float(
            np.mean([np.diag(run.final_confusions[j]).mean() for j in drifted])
        )
    return {
        "scenario": "annotator-drift",
        "drifted_annotators": drifted,
        "runs": runs,
        "drifted_reliability": reliability,
    }


def run_burst_arrival_scenario(
    seed: int = 0,
    config: StreamScenarioConfig | None = None,
    methods: tuple[str, ...] = ("MV", "DS", "GLAD"),
) -> dict:
    """Heavy-tailed arrivals: bursts, quiet ticks, single-label dribbles."""
    config = config or StreamScenarioConfig()
    rng = np.random.default_rng(seed)
    truth, _, crowd = _simulated_crowd(rng, config)

    sizes = burst_batch_sizes(rng, config.instances, config.batch_size)
    batches = stream_crowd_in_batches(crowd, sizes)

    results: dict = {"scenario": "burst-arrivals", "batch_sizes": sizes, "methods": {}}
    for name in methods:
        if name == "GLAD" and config.num_classes != 2:
            continue
        results["methods"][name] = run_label_stream(name, batches, truth, "burst-arrivals")
    return results


def run_streaming_suite(seed: int = 0, config: StreamScenarioConfig | None = None) -> dict:
    """All three stream scenarios on one seeded simulator draw family."""
    return {
        "arrival_order": run_arrival_order_scenario(seed, config),
        "annotator_drift": run_annotator_drift_scenario(seed + 1, config),
        "burst_arrivals": run_burst_arrival_scenario(seed + 2, config),
    }
