"""Probabilistic soft logic (PSL) substrate and Logic-LNCL distillation math.

Public surface::

    from repro.logic import (
        Atom, Rule, RuleSet,
        soft_and, soft_or, soft_not, soft_implies,
        distill_posterior, chain_marginals,
        ButRule, TransitionRules, bio_transition_rules,
    )
"""

from .distillation import chain_marginals, distill_posterior
from .formula import And, Atom, Formula, Implies, Not, Or
from .ner_rules import TransitionRules, bio_transition_rules
from .operators import soft_and, soft_implies, soft_not, soft_or, validate_truth
from .rules import Grounding, Rule, RuleSet
from .sentiment_rules import ButRule

__all__ = [
    "Formula",
    "Atom",
    "Not",
    "And",
    "Or",
    "Implies",
    "Rule",
    "RuleSet",
    "Grounding",
    "soft_and",
    "soft_or",
    "soft_not",
    "soft_implies",
    "validate_truth",
    "distill_posterior",
    "chain_marginals",
    "ButRule",
    "TransitionRules",
    "bio_transition_rules",
]
