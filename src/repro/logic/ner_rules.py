"""BIO label-transition rules for sequence tagging (paper Eq. 18–19).

For every entity type X the paper introduces two weighted implications::

    equal(t_i, I-X) => equal(t_{i-1}, B-X)     (weight 0.8)
    equal(t_i, I-X) => equal(t_{i-1}, I-X)     (weight 0.2)

Grounded on a pair of adjacent labels these have hard truth values, so the
aggregate Eq. 15 penalty for a transition ``prev → cur`` is

    penalty(prev, cur) = Σ_l w_l (1 - v_l(prev, cur))

which is zero unless ``cur`` is an I-X label, and for ``cur = I-X`` equals::

    0.2   if prev == B-X       (rule 19 violated)
    0.8   if prev == I-X       (rule 18 violated)
    1.0   otherwise            (both violated)

These penalties form a K×K matrix used as the pairwise potential
``exp(-C·penalty)`` of the chain DP in
:func:`repro.logic.distillation.chain_marginals`. A companion *initial*
penalty vector encodes that a sentence cannot begin with I-X.

The ablation "our-other-rules" keeps only Eq. 18 at full weight (the paper's
"unrealistic assumption that each label type should be preceded by the same
label type and without other possibilities").
"""

from __future__ import annotations

import numpy as np

from .formula import Atom
from .rules import Rule, RuleSet

__all__ = ["TransitionRules", "bio_transition_rules"]


class TransitionRules:
    """Compiled BIO transition rules for one label vocabulary.

    Parameters
    ----------
    labels:
        Label names, e.g. ``["O", "B-PER", "I-PER", ...]``. Inside labels
        must start with ``"I-"`` and begin labels with ``"B-"``; everything
        else is treated as outside.
    begin_weight:
        Weight of the "preceded by B-X" rule (paper: 0.8).
    inside_weight:
        Weight of the "preceded by I-X" rule (paper: 0.2).
    """

    def __init__(
        self,
        labels: list[str],
        begin_weight: float = 0.8,
        inside_weight: float = 0.2,
    ) -> None:
        for weight in (begin_weight, inside_weight):
            if not 0.0 <= weight <= 1.0:
                raise ValueError(f"rule weights must be in [0, 1], got {weight}")
        self.labels = list(labels)
        self.begin_weight = float(begin_weight)
        self.inside_weight = float(inside_weight)
        self._index = {name: i for i, name in enumerate(self.labels)}
        if len(self._index) != len(self.labels):
            raise ValueError("duplicate label names")
        self.penalty_matrix = self._build_penalty_matrix()
        self.initial_penalty = self._build_initial_penalty()

    # ------------------------------------------------------------------ #
    def _inside_pairs(self) -> list[tuple[int, int | None, int | None]]:
        """For each I-X label: (its index, index of B-X, index of I-X)."""
        pairs = []
        for name, idx in self._index.items():
            if not name.startswith("I-"):
                continue
            entity = name[2:]
            begin_idx = self._index.get(f"B-{entity}")
            pairs.append((idx, begin_idx, idx))
        return pairs

    def _build_penalty_matrix(self) -> np.ndarray:
        K = len(self.labels)
        penalty = np.zeros((K, K))
        for inside_idx, begin_idx, self_idx in self._inside_pairs():
            # Both rules violated by default...
            penalty[:, inside_idx] = self.begin_weight + self.inside_weight
            # ...the begin rule is satisfied when prev == B-X,
            if begin_idx is not None:
                penalty[begin_idx, inside_idx] = self.inside_weight
            # ...the inside rule when prev == I-X.
            penalty[self_idx, inside_idx] = self.begin_weight
        return penalty

    def _build_initial_penalty(self) -> np.ndarray:
        """Sentence-initial I-X violates both rules (no previous token)."""
        K = len(self.labels)
        initial = np.zeros(K)
        for inside_idx, _, _ in self._inside_pairs():
            initial[inside_idx] = self.begin_weight + self.inside_weight
        return initial

    # ------------------------------------------------------------------ #
    def pairwise_potential(self, C: float) -> np.ndarray:
        """``exp(-C · penalty)`` transition potential for the chain DP."""
        if C < 0:
            raise ValueError(f"C must be non-negative, got {C}")
        return np.exp(-C * self.penalty_matrix)

    def initial_potential(self, C: float) -> np.ndarray:
        """``exp(-C · initial_penalty)`` first-token potential."""
        if C < 0:
            raise ValueError(f"C must be non-negative, got {C}")
        return np.exp(-C * self.initial_penalty)

    def as_rule_set(self) -> RuleSet:
        """Export the transitions as generic PSL rules (for inspection).

        Atoms are named ``cur=<label>`` / ``prev=<label>``; interpretations
        assign hard 0/1 truths. Used by tests to cross-check the compiled
        penalty matrix against the generic engine.
        """
        rules = RuleSet()
        for name in self.labels:
            if not name.startswith("I-"):
                continue
            entity = name[2:]
            cur = Atom(f"cur={name}")
            begin_name = f"B-{entity}"
            if begin_name in self._index:
                rules.add(
                    Rule(
                        f"{name}->prev={begin_name}",
                        cur >> Atom(f"prev={begin_name}"),
                        weight=self.begin_weight,
                    )
                )
            rules.add(
                Rule(
                    f"{name}->prev={name}",
                    cur >> Atom(f"prev={name}"),
                    weight=self.inside_weight,
                )
            )
        return rules

    def interpretation(self, prev_label: str, cur_label: str) -> dict[str, float]:
        """Hard interpretation of one grounded transition (for as_rule_set)."""
        interp: dict[str, float] = {}
        for name in self.labels:
            interp[f"cur={name}"] = 1.0 if name == cur_label else 0.0
            interp[f"prev={name}"] = 1.0 if name == prev_label else 0.0
        return interp


def bio_transition_rules(
    labels: list[str],
    begin_weight: float = 0.8,
    inside_weight: float = 0.2,
    only_begin_rule: bool = False,
) -> TransitionRules:
    """Build :class:`TransitionRules`, optionally in the ablation variant.

    Parameters
    ----------
    only_begin_rule:
        When true, keep only the Eq. 18 rule ("I-X must be preceded by B-X")
        at weight 1.0 — the paper's "our-other-rules" NER ablation.
    """
    if only_begin_rule:
        return TransitionRules(labels, begin_weight=1.0, inside_weight=0.0)
    return TransitionRules(labels, begin_weight=begin_weight, inside_weight=inside_weight)
