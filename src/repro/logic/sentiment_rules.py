"""The "A-but-B" contrastive-sentiment rule (paper Eq. 16–17).

For a sentence with an "A but B" structure, the sentiment of the whole
sentence should agree with the sentiment of clause B::

    positive(S) => σΘ(clause B)+        (weight 1)
    negative(S) => σΘ(clause B)-        (weight 1)

so the rule value for candidate label ``k`` is the classifier's own
probability that clause B has label ``k``, and the Eq. 15 penalty becomes
``w · (1 - σΘ(B)_k)``. Sentences without the trigger word produce no
grounding (zero penalty, hence ``qb = qa``).

The ablation "our-other-rules" replaces the trigger word "but" with the
weaker "however"; this class is parameterized by trigger token so both the
main experiment and the ablation use the same code path.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["ButRule"]


class ButRule:
    """Groundable A-but-B rule over tokenized sentences.

    Parameters
    ----------
    trigger_id:
        Vocabulary id of the contrast conjunction ("but"; "however" in the
        ablation).
    num_classes:
        Number of sentiment classes ``K`` (2 in the paper).
    weight:
        Rule credibility ``w`` (paper sets 1.0 for both polarity rules).
    pad_id:
        Vocabulary id used for padding clause-B batches.
    """

    def __init__(self, trigger_id: int, num_classes: int = 2, weight: float = 1.0, pad_id: int = 0) -> None:
        if not 0.0 <= weight <= 1.0:
            raise ValueError(f"rule weight must be in [0, 1], got {weight}")
        if num_classes < 2:
            raise ValueError(f"need at least two classes, got {num_classes}")
        self.trigger_id = int(trigger_id)
        self.num_classes = int(num_classes)
        self.weight = float(weight)
        self.pad_id = int(pad_id)

    def clause_b(self, tokens: np.ndarray, length: int) -> np.ndarray | None:
        """Return the token ids after the *last* trigger, or None.

        Uses the last occurrence: in nested contrasts the final clause
        dominates. An empty clause (trigger is the final token) yields no
        grounding.
        """
        valid = np.asarray(tokens[:length])
        positions = np.nonzero(valid == self.trigger_id)[0]
        if positions.size == 0:
            return None
        start = int(positions[-1]) + 1
        if start >= length:
            return None
        return valid[start:length]

    def groundings(self, token_batch: np.ndarray, lengths: np.ndarray) -> list[tuple[int, np.ndarray]]:
        """All (instance index, clause-B tokens) pairs in a batch."""
        out: list[tuple[int, np.ndarray]] = []
        for i in range(token_batch.shape[0]):
            clause = self.clause_b(token_batch[i], int(lengths[i]))
            if clause is not None:
                out.append((i, clause))
        return out

    def penalties(
        self,
        token_batch: np.ndarray,
        lengths: np.ndarray,
        predict_proba: Callable[[np.ndarray, np.ndarray], np.ndarray],
    ) -> np.ndarray:
        """Eq. 15 penalties ``Σ_l w_l (1 - v_l)`` for a batch.

        Parameters
        ----------
        token_batch:
            ``(B, T)`` integer token ids (padded).
        lengths:
            ``(B,)`` true sentence lengths.
        predict_proba:
            Classifier callable ``(tokens, lengths) → (n, K)`` used to score
            clause B (the σΘ of Eq. 16–17). It is the *current* network, so
            distillation sharpens as the classifier improves.

        Returns
        -------
        ``(B, K)`` penalty array; rows without a grounding are zero.
        """
        token_batch = np.asarray(token_batch)
        lengths = np.asarray(lengths)
        if token_batch.ndim != 2:
            raise ValueError(f"token_batch must be (B, T), got {token_batch.shape}")
        if lengths.shape != (token_batch.shape[0],):
            raise ValueError("lengths must have one entry per instance")

        grounded = self.groundings(token_batch, lengths)
        penalties = np.zeros((token_batch.shape[0], self.num_classes))
        if not grounded:
            return penalties

        clause_lengths = np.array([len(clause) for _, clause in grounded])
        max_len = int(clause_lengths.max())
        clause_batch = np.full((len(grounded), max_len), self.pad_id, dtype=token_batch.dtype)
        for row, (_, clause) in enumerate(grounded):
            clause_batch[row, : len(clause)] = clause

        proba = np.asarray(predict_proba(clause_batch, clause_lengths))
        if proba.shape != (len(grounded), self.num_classes):
            raise ValueError(
                f"predict_proba returned shape {proba.shape}, expected "
                f"({len(grounded)}, {self.num_classes})"
            )
        for row, (instance_idx, _) in enumerate(grounded):
            # v_l(x, t=k) = σΘ(clause B)_k; penalty = w · (1 - v).
            penalties[instance_idx] = self.weight * (1.0 - proba[row])
        return penalties
