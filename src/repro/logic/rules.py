"""Weighted PSL rules, groundings, and rule sets.

The paper works with a weighted rule set ``R = {(R_l, w_l)}`` where
``w_l ∈ [0, 1]`` is the rule's credibility. When a rule template is applied
to concrete data instances it produces *groundings*; the Logic-LNCL
pseudo-E-step needs, for every instance ``i`` and candidate label ``t``, the
rule value ``v_l(x_i, t)`` (``= 1 - d_l``, where ``d_l`` is PSL's "distance
to satisfaction").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

import numpy as np

from .formula import Formula

__all__ = ["Rule", "Grounding", "RuleSet"]


@dataclass
class Grounding:
    """One instantiation of a rule on concrete data.

    Attributes
    ----------
    interpretation:
        Atom name → soft truth mapping for everything except the latent
        label atoms (those are filled per candidate label at query time).
    """

    rule_name: str
    interpretation: dict[str, float] = field(default_factory=dict)


class Rule:
    """A weighted first-order soft-logic rule.

    Parameters
    ----------
    name:
        Identifier used in reports.
    formula:
        The rule body, a :class:`~repro.logic.formula.Formula`.
    weight:
        Credibility ``w_l ∈ [0, 1]``.
    """

    def __init__(self, name: str, formula: Formula, weight: float = 1.0) -> None:
        if not 0.0 <= weight <= 1.0:
            raise ValueError(f"rule weight must be in [0, 1], got {weight}")
        self.name = name
        self.formula = formula
        self.weight = float(weight)

    def value(self, interpretation: Mapping[str, float]):
        """Rule value ``v_l`` — the soft truth of the formula."""
        return self.formula.truth(interpretation)

    def distance_to_satisfaction(self, interpretation: Mapping[str, float]):
        """PSL's ``d_l = 1 - v_l``; zero when fully satisfied."""
        return 1.0 - np.asarray(self.value(interpretation))

    def __repr__(self) -> str:
        return f"Rule({self.name!r}, weight={self.weight})"


class RuleSet:
    """An ordered collection of weighted rules.

    Provides the aggregate penalty the Logic-LNCL distillation step needs:
    ``penalty(interp) = Σ_l w_l (1 - v_l(interp))`` (the exponent of paper
    Eq. 15, before scaling by the regularization strength ``C``).
    """

    def __init__(self, rules: Iterable[Rule] = ()) -> None:
        self.rules: list[Rule] = list(rules)
        names = [rule.name for rule in self.rules]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate rule names in {names}")

    def add(self, rule: Rule) -> "RuleSet":
        if any(existing.name == rule.name for existing in self.rules):
            raise ValueError(f"duplicate rule name {rule.name!r}")
        self.rules.append(rule)
        return self

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self):
        return iter(self.rules)

    def penalty(self, interpretation: Mapping[str, float]):
        """``Σ_l w_l · (1 - v_l)`` under one interpretation."""
        total = 0.0
        for rule in self.rules:
            total = total + rule.weight * rule.distance_to_satisfaction(interpretation)
        return total

    def ground_penalties(
        self,
        groundings: Iterable[Grounding],
        label_atoms: Callable[[int], dict[str, float]],
        num_classes: int,
    ) -> np.ndarray:
        """Penalty of each grounding for each candidate latent label.

        Parameters
        ----------
        groundings:
            Groundings whose interpretations lack the label atoms.
        label_atoms:
            Callable mapping a candidate class index to the atom values that
            encode "the latent label is this class".
        num_classes:
            Number of candidate classes ``K``.

        Returns
        -------
        ``(len(groundings), K)`` array of ``Σ_l w_l (1 - v_l)``.
        """
        grounding_list = list(groundings)
        out = np.zeros((len(grounding_list), num_classes))
        by_name = {rule.name: rule for rule in self.rules}
        for g_idx, grounding in enumerate(grounding_list):
            rule = by_name.get(grounding.rule_name)
            if rule is None:
                raise KeyError(f"grounding references unknown rule {grounding.rule_name!r}")
            for k in range(num_classes):
                interpretation = dict(grounding.interpretation)
                interpretation.update(label_atoms(k))
                out[g_idx, k] = rule.weight * float(
                    rule.distance_to_satisfaction(interpretation)
                )
        return out
