"""A small text DSL for first-order soft-logic rules.

Lets rules be written the way the paper prints them::

    parse_formula("friend(B,A) & votesFor(A,P) >> votesFor(B,P)")

Grammar (in decreasing precedence)::

    atom     := identifier [ '(' args ')' ]       e.g. votesFor(A,P)
    unary    := '~' unary | atom | '(' expr ')'
    conj     := unary ('&' unary)*
    disj     := conj ('|' conj)*
    expr     := disj ('>>' disj)*                 (right-associative)

Atoms keep their full surface text (including the argument list) as the
atom name, so interpretations are keyed exactly by what was written.
"""

from __future__ import annotations

import re

from .formula import Atom, Formula
from .rules import Rule

__all__ = ["parse_formula", "parse_rule", "RuleSyntaxError"]


class RuleSyntaxError(ValueError):
    """Raised when rule text cannot be parsed."""


_TOKEN_PATTERN = re.compile(
    r"\s*(?:(?P<implies>>>)|(?P<and>&)|(?P<or>\|)|(?P<not>~)"
    r"|(?P<lparen>\()|(?P<rparen>\))"
    r"|(?P<atom>[A-Za-z_][A-Za-z0-9_\-]*(?:\([^()]*\))?))"
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None or match.end() == position:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise RuleSyntaxError(f"cannot tokenize rule text at: {remainder!r}")
        kind = match.lastgroup
        tokens.append((kind, match.group(kind)))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]], text: str) -> None:
        self.tokens = tokens
        self.text = text
        self.position = 0

    def _peek(self) -> str | None:
        if self.position >= len(self.tokens):
            return None
        return self.tokens[self.position][0]

    def _advance(self) -> tuple[str, str]:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def _expect(self, kind: str) -> tuple[str, str]:
        if self._peek() != kind:
            found = self._peek() or "end of input"
            raise RuleSyntaxError(f"expected {kind} but found {found} in {self.text!r}")
        return self._advance()

    # expr := disj ('>>' disj)*  — right-associative implication chain
    def parse_expr(self) -> Formula:
        left = self.parse_disj()
        if self._peek() == "implies":
            self._advance()
            right = self.parse_expr()
            return left >> right
        return left

    def parse_disj(self) -> Formula:
        left = self.parse_conj()
        while self._peek() == "or":
            self._advance()
            left = left | self.parse_conj()
        return left

    def parse_conj(self) -> Formula:
        left = self.parse_unary()
        while self._peek() == "and":
            self._advance()
            left = left & self.parse_unary()
        return left

    def parse_unary(self) -> Formula:
        kind = self._peek()
        if kind == "not":
            self._advance()
            return ~self.parse_unary()
        if kind == "lparen":
            self._advance()
            inner = self.parse_expr()
            self._expect("rparen")
            return inner
        if kind == "atom":
            return Atom(self._advance()[1])
        found = kind or "end of input"
        raise RuleSyntaxError(f"unexpected {found} in {self.text!r}")


def parse_formula(text: str) -> Formula:
    """Parse rule text into a :class:`~repro.logic.formula.Formula`."""
    tokens = _tokenize(text)
    if not tokens:
        raise RuleSyntaxError("empty rule text")
    parser = _Parser(tokens, text)
    formula = parser.parse_expr()
    if parser.position != len(tokens):
        leftover = tokens[parser.position :]
        raise RuleSyntaxError(f"trailing tokens {leftover} in {text!r}")
    return formula


def parse_rule(text: str, weight: float = 1.0, name: str | None = None) -> Rule:
    """Parse rule text into a weighted :class:`~repro.logic.rules.Rule`."""
    return Rule(name or text.strip(), parse_formula(text), weight=weight)
