"""Posterior regularization with logic rules (paper Eq. 14–15).

The pseudo-E-step projects the model posterior ``qa(t)`` onto the subspace
that (softly) respects the rule set, solving

    min_{qb, ξ≥0}  KL(qb ‖ qa) + C Σ_l ξ_l
    s.t.           w_l (1 - E_qb[v_l(x, t)]) ≤ ξ_l

whose closed form (paper Eq. 15) is

    qb(t) ∝ qa(t) · exp{ -C Σ_l w_l (1 - v_l(x, t)) }.

Two computational realizations are provided:

* :func:`distill_posterior` — per-instance categorical labels
  (sentiment classification); penalties are a dense ``(B, K)`` array.
* :func:`chain_marginals` — label *sequences* whose rules couple adjacent
  labels (the NER transition rules). Enumerating all ``K^T`` sequences is
  intractable, but the regularized joint factorizes over a chain, so the
  per-token marginals of ``qb`` are computed exactly with the
  forward–backward dynamic program the paper alludes to ("we can use
  dynamic programming for efficient computation in Equation 15").
"""

from __future__ import annotations

import numpy as np

__all__ = ["distill_posterior", "chain_marginals"]


def distill_posterior(qa: np.ndarray, penalties: np.ndarray, C: float) -> np.ndarray:
    """Closed-form solution of Eq. 15 for categorical posteriors.

    Parameters
    ----------
    qa:
        ``(B, K)`` rows of the model posterior (each row sums to 1).
    penalties:
        ``(B, K)`` of ``Σ_l w_l (1 - v_l(x_i, t=k))``; zero rows mean "no
        rule grounded on this instance", which leaves ``qb = qa``.
    C:
        Regularization strength (paper uses 5.0 on both datasets).

    Returns
    -------
    ``(B, K)`` rule-regularized posterior ``qb``.
    """
    qa = np.asarray(qa, dtype=np.float64)
    penalties = np.asarray(penalties, dtype=np.float64)
    if qa.shape != penalties.shape:
        raise ValueError(f"qa shape {qa.shape} != penalties shape {penalties.shape}")
    if C < 0:
        raise ValueError(f"C must be non-negative, got {C}")
    if np.any(penalties < -1e-9):
        raise ValueError("penalties must be non-negative")

    # Subtract the row minimum before exponentiating for numerical safety;
    # the normalization absorbs the constant.
    shifted = penalties - penalties.min(axis=1, keepdims=True)
    unnormalized = qa * np.exp(-C * shifted)
    norm = unnormalized.sum(axis=1, keepdims=True)
    # If qa put all mass on infinitely-penalized labels the row could vanish;
    # fall back to qa for those rows rather than dividing by zero.
    degenerate = norm[:, 0] <= 0
    out = np.where(degenerate[:, None], qa, unnormalized / np.where(norm > 0, norm, 1.0))
    return out


def chain_marginals(
    unary: np.ndarray,
    pairwise: np.ndarray,
    initial: np.ndarray | None = None,
) -> np.ndarray:
    """Exact per-token marginals of a linear-chain distribution.

    The chain is ``q(t_1..T) ∝ Π_s unary[s, t_s] · Π_s pairwise[t_{s-1}, t_s]
    · initial[t_1]``; with ``unary = qa`` and
    ``pairwise = exp(-C · transition_penalty)`` this yields the sequence
    version of Eq. 15.

    Parameters
    ----------
    unary:
        ``(T, K)`` non-negative per-token potentials (typically ``qa``).
    pairwise:
        ``(K, K)`` non-negative transition potentials, ``pairwise[prev, cur]``.
    initial:
        Optional ``(K,)`` potential applied to the first token (encodes
        "sentence-initial I-X is invalid"). Defaults to all-ones.

    Returns
    -------
    ``(T, K)`` marginals, each row normalized to sum to one.
    """
    unary = np.asarray(unary, dtype=np.float64)
    pairwise = np.asarray(pairwise, dtype=np.float64)
    if unary.ndim != 2:
        raise ValueError(f"unary must be (T, K), got shape {unary.shape}")
    T, K = unary.shape
    if pairwise.shape != (K, K):
        raise ValueError(f"pairwise must be ({K}, {K}), got {pairwise.shape}")
    if np.any(unary < 0) or np.any(pairwise < 0):
        raise ValueError("potentials must be non-negative")
    if initial is None:
        initial = np.ones(K)
    else:
        initial = np.asarray(initial, dtype=np.float64)
        if initial.shape != (K,):
            raise ValueError(f"initial must be ({K},), got {initial.shape}")

    # Scaled forward-backward to avoid underflow on long sentences.
    alpha = np.zeros((T, K))
    alpha[0] = unary[0] * initial
    scale = alpha[0].sum()
    if scale <= 0:
        raise ValueError("first-token potentials sum to zero; chain has no support")
    alpha[0] /= scale
    for s in range(1, T):
        alpha[s] = unary[s] * (alpha[s - 1] @ pairwise)
        scale = alpha[s].sum()
        if scale <= 0:
            raise ValueError(f"chain has no support at position {s}")
        alpha[s] /= scale

    beta = np.zeros((T, K))
    beta[T - 1] = 1.0
    for s in range(T - 2, -1, -1):
        beta[s] = pairwise @ (unary[s + 1] * beta[s + 1])
        scale = beta[s].sum()
        if scale <= 0:
            raise ValueError(f"chain has no support at position {s} (backward)")
        beta[s] /= scale

    marginals = alpha * beta
    marginals /= marginals.sum(axis=1, keepdims=True)
    return marginals
