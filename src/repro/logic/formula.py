"""First-order soft-logic formula AST with Łukasiewicz semantics.

A formula is built from :class:`Atom` leaves combined with ``&``, ``|``,
``~`` and ``>>`` (implication). Truth evaluation takes an *interpretation*:
a mapping from atom names to soft truth values in [0, 1] (floats or
equally-shaped NumPy arrays, evaluated elementwise).

Example (the paper's Eq. 3)::

    friend = Atom("friend(B,A)")
    votes_a = Atom("votesFor(A,P)")
    votes_b = Atom("votesFor(B,P)")
    rule_body = (friend & votes_a) >> votes_b
    rule_body.truth({"friend(B,A)": 1.0, "votesFor(A,P)": 0.9,
                     "votesFor(B,P)": 0.4})
"""

from __future__ import annotations

from typing import Mapping


from .operators import soft_and, soft_implies, soft_not, soft_or, validate_truth

__all__ = ["Formula", "Atom", "Not", "And", "Or", "Implies"]


class Formula:
    """Base class for soft-logic formulas."""

    def truth(self, interpretation: Mapping[str, float]):
        """Soft truth value of the formula under ``interpretation``."""
        raise NotImplementedError

    def atoms(self) -> set[str]:
        """Names of all atoms appearing in the formula."""
        raise NotImplementedError

    # Operator sugar ---------------------------------------------------- #
    def __and__(self, other: "Formula") -> "And":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Or":
        return Or(self, other)

    def __invert__(self) -> "Not":
        return Not(self)

    def __rshift__(self, other: "Formula") -> "Implies":
        return Implies(self, other)


class Atom(Formula):
    """A named atom whose soft truth comes from the interpretation."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("atom name must be non-empty")
        self.name = name

    def truth(self, interpretation: Mapping[str, float]):
        if self.name not in interpretation:
            raise KeyError(f"interpretation missing atom {self.name!r}")
        return validate_truth(interpretation[self.name], f"atom {self.name!r}")

    def atoms(self) -> set[str]:
        return {self.name}

    def __repr__(self) -> str:
        return f"Atom({self.name!r})"


class Not(Formula):
    """Łukasiewicz negation."""

    def __init__(self, operand: Formula) -> None:
        self.operand = operand

    def truth(self, interpretation):
        return soft_not(self.operand.truth(interpretation))

    def atoms(self) -> set[str]:
        return self.operand.atoms()

    def __repr__(self) -> str:
        return f"~{self.operand!r}"


class _Binary(Formula):
    _symbol = "?"
    _op = staticmethod(lambda a, b: a)

    def __init__(self, left: Formula, right: Formula) -> None:
        self.left = left
        self.right = right

    def truth(self, interpretation):
        return type(self)._op(self.left.truth(interpretation), self.right.truth(interpretation))

    def atoms(self) -> set[str]:
        return self.left.atoms() | self.right.atoms()

    def __repr__(self) -> str:
        return f"({self.left!r} {self._symbol} {self.right!r})"


class And(_Binary):
    """Łukasiewicz conjunction."""

    _symbol = "&"
    _op = staticmethod(soft_and)


class Or(_Binary):
    """Łukasiewicz disjunction."""

    _symbol = "|"
    _op = staticmethod(soft_or)


class Implies(_Binary):
    """Łukasiewicz implication (``body >> head``)."""

    _symbol = "=>"
    _op = staticmethod(soft_implies)
