"""Łukasiewicz soft-logic operators (paper Eq. 4).

Probabilistic Soft Logic relaxes Boolean connectives to the interval
[0, 1]::

    I(l1 & l2) = max(0, I(l1) + I(l2) - 1)
    I(l1 | l2) = min(1, I(l1) + I(l2))
    I(~l1)     = 1 - I(l1)

Implication ``a => b`` is defined as ``~a | b``, giving
``min(1, 1 - I(a) + I(b))`` — fully satisfied whenever the consequent's
truth is at least the antecedent's.

All operators accept floats or NumPy arrays (elementwise).
"""

from __future__ import annotations

import numpy as np

__all__ = ["soft_and", "soft_or", "soft_not", "soft_implies", "validate_truth"]


def validate_truth(value, name: str = "truth value"):
    """Check that ``value`` lies in [0, 1]; returns it as float/ndarray."""
    arr = np.asarray(value, dtype=np.float64)
    if np.any(arr < -1e-12) or np.any(arr > 1.0 + 1e-12):
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")
    clipped = np.clip(arr, 0.0, 1.0)
    return float(clipped) if clipped.ndim == 0 else clipped


def soft_and(a, b):
    """Łukasiewicz t-norm: ``max(0, a + b - 1)``."""
    return np.maximum(0.0, np.asarray(a, dtype=np.float64) + b - 1.0)


def soft_or(a, b):
    """Łukasiewicz t-conorm: ``min(1, a + b)``."""
    return np.minimum(1.0, np.asarray(a, dtype=np.float64) + b)


def soft_not(a):
    """Łukasiewicz negation: ``1 - a``."""
    return 1.0 - np.asarray(a, dtype=np.float64)


def soft_implies(a, b):
    """Łukasiewicz implication ``a => b``: ``min(1, 1 - a + b)``."""
    return np.minimum(1.0, 1.0 - np.asarray(a, dtype=np.float64) + b)
