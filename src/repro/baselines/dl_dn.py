"""DL-DN / DL-WDN (Guan et al., AAAI 2018): "Who said what".

Train one network per crowd annotator on that annotator's own labels, then
aggregate the member networks' predictions at test time:

* **DN** — uniform averaging of member softmax outputs;
* **WDN** — weighted averaging, weights from each annotator's estimated
  reliability (agreement of their labels with the majority vote, a
  label-free proxy for accuracy).

Annotators below ``min_labels`` are skipped — a network trained on a
handful of labels is noise (and the real crowd's long tail makes this the
dominant case).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..baselines.common import TrainerConfig, fit_classifier, predict_proba_batched
from ..data.datasets import TextClassificationDataset
from ..inference.majority_vote import majority_vote_posterior
from ..models.base import TextClassifier

__all__ = ["DeepMultiNetworkClassifier"]


class DeepMultiNetworkClassifier:
    """DL-DN (uniform) or DL-WDN (weighted) ensemble.

    Parameters
    ----------
    model_factory:
        Zero-argument callable producing a fresh base network per annotator.
    weighted:
        False → DL-DN; True → DL-WDN.
    min_labels:
        Minimum labels an annotator needs to receive a member network.
    """

    def __init__(
        self,
        model_factory: Callable[[], TextClassifier],
        config: TrainerConfig,
        rng: np.random.Generator,
        weighted: bool = False,
        min_labels: int = 20,
    ) -> None:
        if min_labels < 1:
            raise ValueError("min_labels must be >= 1")
        self.model_factory = model_factory
        self.config = config
        self.rng = rng
        self.weighted = weighted
        self.min_labels = min_labels
        self.members_: list[TextClassifier] = []
        self.member_weights_: np.ndarray | None = None

    def fit(
        self,
        train: TextClassificationDataset,
        dev: TextClassificationDataset | None = None,
    ) -> dict:
        crowd = train.crowd
        if crowd is None:
            raise ValueError("training dataset carries no crowd labels")
        counts = crowd.annotations_per_annotator()
        eligible = np.nonzero(counts >= self.min_labels)[0]
        if eligible.size == 0:
            raise ValueError(
                f"no annotator has >= {self.min_labels} labels; lower min_labels"
            )

        mv_hard = majority_vote_posterior(crowd).argmax(axis=1)
        dev_triple = (dev.tokens, dev.lengths, dev.labels) if dev is not None else None
        self.members_ = []
        weights = []
        history: dict = {"members": []}
        for j in eligible:
            mask = crowd.observed_mask[:, j]
            model = self.model_factory()
            member_history = fit_classifier(
                model,
                self.config,
                self.rng,
                train.tokens[mask],
                train.lengths[mask],
                crowd.labels[mask, j],
                dev_triple,
            )
            self.members_.append(model)
            history["members"].append(
                {"annotator": int(j), "labels": int(mask.sum()), **member_history}
            )
            # Reliability proxy: agreement with MV on the annotator's items.
            agreement = float((crowd.labels[mask, j] == mv_hard[mask]).mean())
            weights.append(max(agreement, 1e-3))
        weights = np.asarray(weights)
        self.member_weights_ = (
            weights / weights.sum() if self.weighted else np.full(len(weights), 1.0 / len(weights))
        )
        return history

    def predict_proba(self, tokens: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        if not self.members_:
            raise RuntimeError("fit() has not been run")
        stacked = np.stack(
            [predict_proba_batched(member, tokens, lengths) for member in self.members_]
        )
        return np.einsum("m,mik->ik", self.member_weights_, stacked)

    def predict(self, tokens: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        return self.predict_proba(tokens, lengths).argmax(axis=1)
