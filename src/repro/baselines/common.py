"""Shared training machinery: optimizer construction, epoch loops, early
stopping. Used by every LNCL method (two-stage, EM family, CrowdLayer,
DL-DN, Gold) and by Logic-LNCL itself.

Hyper-parameter defaults follow Table I of the paper; the dev set picks the
early-stopping epoch with patience 5 for *all* methods, exactly as §VI-A3
describes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autodiff import functional as F
from ..autodiff import no_grad
from ..autodiff.dtypes import canonical_dtype, default_dtype
from ..autodiff.nn import Module
from ..autodiff.optim import SGD, Adadelta, Adam, Optimizer, StepDecay, clip_grad_norm
from ..data.loaders import batch_indices
from ..eval.classification import accuracy
from ..eval.ner_f1 import span_f1_score
from ..models.base import SequenceTagger, TextClassifier

__all__ = [
    "TrainerConfig",
    "build_optimizer",
    "EarlyStopping",
    "run_classification_epoch",
    "run_sequence_epoch",
    "predict_proba_batched",
    "predict_sequence_proba_batched",
    "fit_classifier",
    "fit_tagger",
]


@dataclass
class TrainerConfig:
    """Generic training hyper-parameters.

    Sentiment paper values: Adadelta, lr 1.0 halved every 5 epochs, batch
    50, 30 epochs, patience 5. NER: Adam 1e-3, batch 64, 30 epochs,
    patience 5.

    ``dtype`` sets the training precision: "float64" (default) is the
    reference path every equivalence test is pinned to; "float32" is the
    fast path (~2x GEMM throughput, half the tape memory). Epoch runners
    scope the autodiff ambient default to this dtype, so scalar constants
    and loss coercions inside the loop follow the configured precision.
    Note the model's own parameter dtype is fixed at construction (via
    ``MLPConfig``/``TextCNNConfig``/``NERTaggerConfig``); for a full
    fast-path run, set both to "float32".
    """

    epochs: int = 30
    batch_size: int = 50
    optimizer: str = "adadelta"
    learning_rate: float = 1.0
    lr_decay_every: int | None = 5
    lr_decay_factor: float = 0.5
    patience: int = 5
    grad_clip: float | None = 5.0
    weighted_loss: bool = False  # Eq. 10 (num annotators) vs Eq. 8
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("need at least one epoch")
        if self.batch_size < 1:
            raise ValueError("batch size must be positive")
        if self.optimizer not in ("adadelta", "adam", "sgd"):
            raise ValueError(f"unknown optimizer {self.optimizer!r}")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError(f"learning rate must be positive, got {self.learning_rate}")
        # None disables a feature; zero is a silent misconfiguration (a 0.0
        # clip threshold or a 0-epoch decay period used to be treated as
        # "off" by truthiness guards downstream).
        if self.lr_decay_every is not None and self.lr_decay_every < 1:
            raise ValueError(
                f"lr_decay_every must be >= 1 or None to disable, got {self.lr_decay_every}"
            )
        if not 0.0 < self.lr_decay_factor <= 1.0:
            raise ValueError(f"lr_decay_factor must be in (0, 1], got {self.lr_decay_factor}")
        if self.grad_clip is not None and self.grad_clip <= 0:
            raise ValueError(
                f"grad_clip must be positive or None to disable, got {self.grad_clip}"
            )
        self.dtype = canonical_dtype(self.dtype).name


def build_optimizer(parameters, config: TrainerConfig) -> tuple[Optimizer, StepDecay | None]:
    """Instantiate the optimizer (and LR schedule) named by the config."""
    if config.optimizer == "adadelta":
        optimizer: Optimizer = Adadelta(parameters, lr=config.learning_rate)
    elif config.optimizer == "adam":
        optimizer = Adam(parameters, lr=config.learning_rate)
    else:
        optimizer = SGD(parameters, lr=config.learning_rate)
    schedule = None
    if config.lr_decay_every is not None:
        schedule = StepDecay(optimizer, every=config.lr_decay_every, factor=config.lr_decay_factor)
    return optimizer, schedule


class EarlyStopping:
    """Patience-based early stopping that snapshots the best parameters."""

    def __init__(self, model: Module, patience: int) -> None:
        self.model = model
        self.patience = patience
        self.best_score = -np.inf
        self.best_state: dict | None = None
        self.bad_epochs = 0

    def update(self, score: float) -> bool:
        """Record an epoch's dev score; returns True when training should stop."""
        if score > self.best_score:
            self.best_score = score
            self.best_state = self.model.state_dict()
            self.bad_epochs = 0
            return False
        self.bad_epochs += 1
        return self.bad_epochs >= self.patience

    def restore_best(self) -> None:
        if self.best_state is not None:
            self.model.load_state_dict(self.best_state)


def run_classification_epoch(
    model: TextClassifier,
    optimizer: Optimizer,
    tokens: np.ndarray,
    lengths: np.ndarray,
    targets: np.ndarray,
    rng: np.random.Generator,
    config: TrainerConfig,
    weights: np.ndarray | None = None,
) -> float:
    """One epoch of soft-target training (paper Eq. 8 / Eq. 10 + Eq. 11).

    Returns the mean training loss. ``targets`` is the ``(I, K)`` learning
    target — ``qf(t)`` for EM-family methods, one-hot labels otherwise.
    An empty training set is a no-op epoch: loss 0.0, zero optimizer
    steps (``batch_indices`` yields no batches), parameters untouched.
    """
    model.train()
    total_loss = 0.0
    batches = 0
    with default_dtype(config.dtype):
        for batch in batch_indices(len(lengths), config.batch_size, rng=rng):
            optimizer.zero_grad()
            logits = model.logits(tokens[batch], lengths[batch])
            batch_weights = weights[batch] if weights is not None else None
            loss = F.cross_entropy_soft(logits, targets[batch], weights=batch_weights)
            loss.backward()
            if config.grad_clip is not None:
                clip_grad_norm(optimizer.parameters, config.grad_clip)
            optimizer.step()
            if hasattr(model, "apply_max_norm"):
                model.apply_max_norm()
            total_loss += loss.item()
            batches += 1
    return total_loss / max(batches, 1)


def run_sequence_epoch(
    model: SequenceTagger,
    optimizer: Optimizer,
    tokens: np.ndarray,
    lengths: np.ndarray,
    targets: np.ndarray,
    rng: np.random.Generator,
    config: TrainerConfig,
    weights: np.ndarray | None = None,
) -> float:
    """One epoch of per-token soft-target training.

    ``targets`` is ``(I, T, K)``; padded positions are masked from the loss.
    ``weights`` (``(I, T)``) carries per-token annotator counts for Eq. 10.
    Empty training sets are no-op epochs, as in
    :func:`run_classification_epoch`.
    """
    model.train()
    max_time = tokens.shape[1]
    position = np.arange(max_time)[None, :]
    total_loss = 0.0
    batches = 0
    with default_dtype(config.dtype):
        for batch in batch_indices(len(lengths), config.batch_size, rng=rng):
            optimizer.zero_grad()
            logits = model.logits(tokens[batch], lengths[batch])
            mask = position < lengths[batch][:, None]
            batch_weights = weights[batch] if weights is not None else None
            loss = F.sequence_cross_entropy_soft(
                logits, targets[batch], mask, weights=batch_weights
            )
            loss.backward()
            if config.grad_clip is not None:
                clip_grad_norm(optimizer.parameters, config.grad_clip)
            optimizer.step()
            total_loss += loss.item()
            batches += 1
    return total_loss / max(batches, 1)


def predict_proba_batched(
    model: TextClassifier, tokens: np.ndarray, lengths: np.ndarray, batch_size: int = 256
) -> np.ndarray:
    """``(I, K)`` probabilities computed in evaluation batches.

    Runs under :class:`no_grad` end to end (belt and braces on top of the
    model's own guard), so evaluation sweeps build zero tape nodes even if
    a model subclass forgets its own guard. An empty dataset yields an
    empty ``(0, K)`` result — the same I = 0 tolerance the inference
    methods have — instead of tripping ``batch_indices``'s size check.
    """
    if len(lengths) == 0:
        return np.zeros((0, model.num_classes))
    with no_grad():
        pieces = [
            model.predict_proba(tokens[batch], lengths[batch])
            for batch in batch_indices(len(lengths), batch_size, shuffle=False)
        ]
    return np.concatenate(pieces, axis=0)


def predict_sequence_proba_batched(
    model: SequenceTagger, tokens: np.ndarray, lengths: np.ndarray, batch_size: int = 128
) -> np.ndarray:
    """``(I, T, K)`` per-token probabilities in evaluation batches.

    Guarded by :class:`no_grad` like :func:`predict_proba_batched`; this is
    the pseudo-E-step's prediction sweep, so a stray tape here would cost
    memory every EM round. An empty dataset yields ``(0, T, K)`` rather
    than a ``batch_indices`` error.
    """
    if len(lengths) == 0:
        return np.zeros((0, tokens.shape[1], model.num_classes))
    with no_grad():
        pieces = [
            model.predict_proba(tokens[batch], lengths[batch])
            for batch in batch_indices(len(lengths), batch_size, shuffle=False)
        ]
    return np.concatenate(pieces, axis=0)


def fit_classifier(
    model: TextClassifier,
    config: TrainerConfig,
    rng: np.random.Generator,
    tokens: np.ndarray,
    lengths: np.ndarray,
    targets: np.ndarray,
    dev: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    weights: np.ndarray | None = None,
) -> dict:
    """Supervised training against fixed (possibly soft) targets.

    Used by Gold, the two-stage methods, and DL-DN member networks. With a
    dev triple ``(tokens, lengths, labels)``, applies early stopping and
    restores the best snapshot.

    Returns a history dict with per-epoch losses and dev scores.
    """
    if targets.ndim == 1:  # hard labels → one-hot
        targets = np.eye(model.num_classes)[targets]
    optimizer, schedule = build_optimizer(model.parameters(), config)
    stopper = EarlyStopping(model, config.patience) if dev is not None else None
    history: dict = {"loss": [], "dev_score": []}
    for _ in range(config.epochs):
        loss = run_classification_epoch(
            model, optimizer, tokens, lengths, targets, rng, config, weights=weights
        )
        history["loss"].append(loss)
        if schedule is not None:
            schedule.step()
        if stopper is not None:
            dev_tokens, dev_lengths, dev_labels = dev
            score = accuracy(dev_labels, model.predict(dev_tokens, dev_lengths))
            history["dev_score"].append(score)
            if stopper.update(score):
                break
    if stopper is not None:
        stopper.restore_best()
        history["best_dev_score"] = stopper.best_score
    return history


def fit_tagger(
    model: SequenceTagger,
    config: TrainerConfig,
    rng: np.random.Generator,
    tokens: np.ndarray,
    lengths: np.ndarray,
    targets: np.ndarray,
    dev: tuple[np.ndarray, np.ndarray, list[np.ndarray]] | None = None,
    weights: np.ndarray | None = None,
) -> dict:
    """Supervised sequence training; dev metric is strict span F1."""
    if targets.ndim == 2:  # hard tags → one-hot (padding rows become class 0)
        targets = np.eye(model.num_classes)[targets]
    if hasattr(model, "initialize_output_bias"):
        mask = np.arange(tokens.shape[1])[None, :] < lengths[:, None]
        priors = (targets * mask[:, :, None]).sum(axis=(0, 1))
        if priors.sum() > 0:  # empty training set: keep the default bias
            model.initialize_output_bias(priors / priors.sum())
    optimizer, schedule = build_optimizer(model.parameters(), config)
    stopper = EarlyStopping(model, config.patience) if dev is not None else None
    history: dict = {"loss": [], "dev_score": []}
    for _ in range(config.epochs):
        loss = run_sequence_epoch(
            model, optimizer, tokens, lengths, targets, rng, config, weights=weights
        )
        history["loss"].append(loss)
        if schedule is not None:
            schedule.step()
        if stopper is not None:
            dev_tokens, dev_lengths, dev_tags = dev
            predictions = model.predict(dev_tokens, dev_lengths)
            score = span_f1_score(dev_tags, predictions).f1
            history["dev_score"].append(score)
            if stopper.update(score):
                break
    if stopper is not None:
        stopper.restore_best()
        history["best_dev_score"] = stopper.best_score
    return history
