"""AggNet (Albarqouni et al., 2016) and Raykar et al. (2010).

Both are the canonical latent-truth EM of §II-B: a classifier plus
per-annotator confusion matrices, alternating Bayes-rule posteriors with
classifier/annotator updates. They differ only in the classifier family —
Raykar uses logistic regression, AggNet a deep network.

Algorithmically this is exactly Logic-LNCL with no rules (the paper's
*w/o-Rule* ablation), so both wrappers delegate to the core implementation
with ``rule=None``.
"""

from __future__ import annotations

import numpy as np

from ..core.config import LogicLNCLConfig
from ..core.logic_lncl import LogicLNCLClassifier
from ..core.sequence_lncl import LogicLNCLSequenceTagger
from ..models.base import SequenceTagger, TextClassifier
from ..models.mlp import BagOfEmbeddingsClassifier

__all__ = ["AggNetClassifier", "AggNetSequenceTagger", "RaykarClassifier"]


class AggNetClassifier(LogicLNCLClassifier):
    """Deep EM from crowds — classification (rule-free Logic-LNCL)."""

    def __init__(
        self, model: TextClassifier, config: LogicLNCLConfig, rng: np.random.Generator
    ) -> None:
        super().__init__(model, config, rng, rule=None)


class AggNetSequenceTagger(LogicLNCLSequenceTagger):
    """Deep EM from crowds — sequence tagging (rule-free Logic-LNCL)."""

    def __init__(
        self, model: SequenceTagger, config: LogicLNCLConfig, rng: np.random.Generator
    ) -> None:
        super().__init__(model, config, rng, rules=None)


class RaykarClassifier(LogicLNCLClassifier):
    """Raykar et al. (2010): EM with a logistic-regression classifier.

    Realized as a linear softmax over mean-pooled frozen embeddings
    (:class:`~repro.models.BagOfEmbeddingsClassifier`).
    """

    def __init__(
        self,
        embeddings: np.ndarray,
        num_classes: int,
        config: LogicLNCLConfig,
        rng: np.random.Generator,
    ) -> None:
        model = BagOfEmbeddingsClassifier(embeddings, num_classes, rng)
        super().__init__(model, config, rng, rule=None)
