"""Gold baseline: supervised training on the true labels.

The paper's upper bound ("the classifier trained in the ideal case when
true labels are known", Tables II/III bottom rows).
"""

from __future__ import annotations

import numpy as np

from ..baselines.common import TrainerConfig, fit_classifier, fit_tagger
from ..data.datasets import SequenceTaggingDataset, TextClassificationDataset
from ..models.base import SequenceTagger, TextClassifier

__all__ = ["train_gold_classifier", "train_gold_tagger"]


def train_gold_classifier(
    model: TextClassifier,
    config: TrainerConfig,
    rng: np.random.Generator,
    train: TextClassificationDataset,
    dev: TextClassificationDataset | None = None,
) -> dict:
    """Train on ground-truth labels (ignores any crowd labels)."""
    dev_triple = (dev.tokens, dev.lengths, dev.labels) if dev is not None else None
    return fit_classifier(
        model, config, rng, train.tokens, train.lengths, train.labels, dev_triple
    )


def train_gold_tagger(
    model: SequenceTagger,
    config: TrainerConfig,
    rng: np.random.Generator,
    train: SequenceTaggingDataset,
    dev: SequenceTaggingDataset | None = None,
) -> dict:
    """Train on ground-truth tags (ignores any crowd labels)."""
    dev_triple = (dev.tokens, dev.lengths, dev.tags) if dev is not None else None
    return fit_tagger(
        model, config, rng, train.tokens, train.lengths, train.padded_tags(), dev_triple
    )
