"""LNCL competitor methods (Tables II/III) and shared training machinery."""

from .aggnet import AggNetClassifier, AggNetSequenceTagger, RaykarClassifier
from .common import (
    EarlyStopping,
    TrainerConfig,
    build_optimizer,
    fit_classifier,
    fit_tagger,
    predict_proba_batched,
    predict_sequence_proba_batched,
    run_classification_epoch,
    run_sequence_epoch,
)
from .crowd_layer import (
    CROWD_LAYER_VARIANTS,
    CrowdLayerClassifier,
    CrowdLayerSequenceTagger,
)
from .dl_dn import DeepMultiNetworkClassifier
from .gold import train_gold_classifier, train_gold_tagger
from .two_stage import TwoStageClassifier, TwoStageSequenceTagger

__all__ = [
    "TrainerConfig",
    "build_optimizer",
    "EarlyStopping",
    "run_classification_epoch",
    "run_sequence_epoch",
    "predict_proba_batched",
    "predict_sequence_proba_batched",
    "fit_classifier",
    "fit_tagger",
    "TwoStageClassifier",
    "TwoStageSequenceTagger",
    "AggNetClassifier",
    "AggNetSequenceTagger",
    "RaykarClassifier",
    "CrowdLayerClassifier",
    "CrowdLayerSequenceTagger",
    "CROWD_LAYER_VARIANTS",
    "DeepMultiNetworkClassifier",
    "train_gold_classifier",
    "train_gold_tagger",
]
