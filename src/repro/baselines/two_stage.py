"""Two-stage LNCL: truth inference first, supervised learning second.

The paper's MV-Classifier and GLAD-Classifier baselines (Fig. 1, upper
path): estimate each instance's label with a truth-inference method, then
train the classifier on the estimates as if they were gold. The optional
``test_rule`` enables the *MV-t* ablation (Table IV): a plain MV-Classifier
whose test-time predictions are adapted by Eq. 15.
"""

from __future__ import annotations

import numpy as np

from ..baselines.common import TrainerConfig, fit_classifier, fit_tagger, predict_proba_batched
from ..data.datasets import SequenceTaggingDataset, TextClassificationDataset
from ..inference.base import TruthInferenceMethod
from ..logic.distillation import chain_marginals, distill_posterior
from ..logic.ner_rules import TransitionRules
from ..logic.sentiment_rules import ButRule
from ..models.base import SequenceTagger, TextClassifier

__all__ = ["TwoStageClassifier", "TwoStageSequenceTagger"]


class TwoStageClassifier:
    """Truth inference + supervised classifier.

    Parameters
    ----------
    model:
        Classifier to train on the inferred labels.
    inference:
        Stage-one truth-inference method (MV, GLAD, DS, ...).
    test_rule, C:
        Optional Eq. 15 adaptation of test-time predictions (the MV-t
        ablation); ``C`` is the regularization strength.
    """

    def __init__(
        self,
        model: TextClassifier,
        inference: TruthInferenceMethod,
        config: TrainerConfig,
        rng: np.random.Generator,
        test_rule: ButRule | None = None,
        C: float = 5.0,
    ) -> None:
        self.model = model
        self.inference = inference
        self.config = config
        self.rng = rng
        self.test_rule = test_rule
        self.C = C
        self.inferred_posterior_: np.ndarray | None = None

    def fit(
        self,
        train: TextClassificationDataset,
        dev: TextClassificationDataset | None = None,
    ) -> dict:
        if train.crowd is None:
            raise ValueError("training dataset carries no crowd labels")
        result = self.inference.infer(train.crowd)
        self.inferred_posterior_ = result.posterior
        hard = np.eye(self.model.num_classes)[result.hard_labels()]
        dev_triple = (dev.tokens, dev.lengths, dev.labels) if dev is not None else None
        return fit_classifier(
            self.model, self.config, self.rng, train.tokens, train.lengths, hard, dev_triple
        )

    def predict(self, tokens: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        return self.predict_proba(tokens, lengths).argmax(axis=1)

    def predict_proba(self, tokens: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        proba = predict_proba_batched(self.model, tokens, lengths)
        if self.test_rule is None:
            return proba
        penalties = self.test_rule.penalties(tokens, lengths, self.model.predict_proba)
        return distill_posterior(proba, penalties, self.C)

    def inference_posterior(self) -> np.ndarray:
        """Stage-one posterior (the Inference column in Table II)."""
        if self.inferred_posterior_ is None:
            raise RuntimeError("fit() has not been run")
        return self.inferred_posterior_


class TwoStageSequenceTagger:
    """Truth inference + supervised tagger (sequence analogue).

    ``inference`` is any object with ``infer(SequenceCrowdLabels) →
    SequenceInferenceResult`` — a :class:`TokenLevelInference`-wrapped
    method or a native sequential one (HMM-Crowd, BSC-seq).
    """

    def __init__(
        self,
        model: SequenceTagger,
        inference,
        config: TrainerConfig,
        rng: np.random.Generator,
        test_rules: TransitionRules | None = None,
        C: float = 5.0,
    ) -> None:
        self.model = model
        self.inference = inference
        self.config = config
        self.rng = rng
        self.test_rules = test_rules
        self.C = C
        self.inferred_posteriors_: list[np.ndarray] | None = None

    def fit(
        self,
        train: SequenceTaggingDataset,
        dev: SequenceTaggingDataset | None = None,
    ) -> dict:
        if train.crowd is None:
            raise ValueError("training dataset carries no crowd labels")
        result = self.inference.infer(train.crowd)
        self.inferred_posteriors_ = result.posteriors
        K = self.model.num_classes
        max_time = train.tokens.shape[1]
        targets = np.zeros((len(train), max_time, K))
        for i, hard in enumerate(result.hard_labels()):
            targets[i, : len(hard)] = np.eye(K)[hard]
        dev_triple = (dev.tokens, dev.lengths, dev.tags) if dev is not None else None
        return fit_tagger(
            self.model, self.config, self.rng, train.tokens, train.lengths, targets, dev_triple
        )

    def predict(self, tokens: np.ndarray, lengths: np.ndarray) -> list[np.ndarray]:
        from ..baselines.common import predict_sequence_proba_batched

        proba = predict_sequence_proba_batched(self.model, tokens, lengths)
        if self.test_rules is None:
            return [proba[i, : int(lengths[i])].argmax(axis=1) for i in range(len(lengths))]
        pairwise = self.test_rules.pairwise_potential(self.C)
        initial = self.test_rules.initial_potential(self.C)
        out = []
        for i in range(len(lengths)):
            marginals = chain_marginals(proba[i, : int(lengths[i])], pairwise, initial)
            out.append(marginals.argmax(axis=1))
        return out

    def inference_posteriors(self) -> list[np.ndarray]:
        if self.inferred_posteriors_ is None:
            raise RuntimeError("fit() has not been run")
        return self.inferred_posteriors_
