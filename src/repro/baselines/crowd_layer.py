"""CrowdLayer (Rodrigues & Pereira, AAAI 2018) — "Deep learning from crowds".

The state-of-the-art deep one-stage baseline of the paper: append to the
base network an annotator-specific layer that maps the bottleneck softmax
``p(t|x)`` to each annotator's predicted label distribution, and train
end-to-end with masked cross-entropy against the raw crowd labels.

Three parameterizations of annotator reliability (Table II/III variants):

* **MW** — a full K×K matrix per annotator (initialized to identity);
* **VW** — a per-class scaling vector per annotator (initialized to ones);
* **VW-B** — scaling vector plus per-class bias.

The paper notes CL (MW) "relies on several epochs of pre-training on
estimated labels with Majority Voting" — reproduced with
``pretrain_epochs`` (Table III compares 5 vs 1).
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor
from ..autodiff import functional as F
from ..baselines.common import (
    EarlyStopping,
    TrainerConfig,
    build_optimizer,
    fit_classifier,
    fit_tagger,
    predict_proba_batched,
    predict_sequence_proba_batched,
)
from ..crowd.types import MISSING
from ..data.datasets import SequenceTaggingDataset, TextClassificationDataset
from ..data.loaders import batch_indices
from ..eval.classification import accuracy
from ..eval.ner_f1 import span_f1_score
from ..inference.majority_vote import majority_vote_posterior
from ..models.base import SequenceTagger, TextClassifier

__all__ = ["CrowdLayerClassifier", "CrowdLayerSequenceTagger", "CROWD_LAYER_VARIANTS"]

CROWD_LAYER_VARIANTS = ("MW", "VW", "VW-B")


class _CrowdLayer:
    """Annotator adaptation layer shared by both task variants."""

    def __init__(self, variant: str, num_annotators: int, num_classes: int) -> None:
        if variant not in CROWD_LAYER_VARIANTS:
            raise ValueError(f"variant must be one of {CROWD_LAYER_VARIANTS}, got {variant!r}")
        self.variant = variant
        self.num_annotators = num_annotators
        self.num_classes = num_classes
        J, K = num_annotators, num_classes
        if variant == "MW":
            # (K, J*K) block matrix of identities: annotator j's block is
            # columns [j*K, (j+1)*K).
            blocks = np.tile(np.eye(K), (1, J))
            self.matrix = Tensor(blocks, requires_grad=True, name="crowd.MW")
            self.scale = None
            self.bias = None
        else:
            self.matrix = None
            self.scale = Tensor(np.ones((J, K)), requires_grad=True, name="crowd.VW")
            self.bias = (
                Tensor(np.zeros((J, K)), requires_grad=True, name="crowd.B")
                if variant == "VW-B"
                else None
            )

    def parameters(self) -> list[Tensor]:
        return [p for p in (self.matrix, self.scale, self.bias) if p is not None]

    def annotator_scores(self, proba: Tensor) -> Tensor:
        """Map base probabilities ``(..., K)`` to scores ``(..., J, K)``."""
        leading = proba.shape[:-1]
        K, J = self.num_classes, self.num_annotators
        if self.variant == "MW":
            flat = proba.reshape((-1, K)) if proba.ndim != 2 else proba
            scores = flat @ self.matrix                      # (N, J*K)
            return scores.reshape(leading + (J, K))
        expanded = proba.reshape(leading + (1, K))
        scores = expanded * self.scale                       # broadcast to (..., J, K)
        if self.bias is not None:
            scores = scores + self.bias
        return scores


def _masked_annotator_ce(scores: Tensor, target_one_hot: np.ndarray) -> Tensor:
    """Cross-entropy over observed (instance, annotator) pairs.

    ``target_one_hot`` is zero everywhere an annotator did not label, so
    those cells contribute nothing; the loss normalizes by the number of
    observed labels.
    """
    logp = F.log_softmax(scores, axis=-1)
    observed = float(target_one_hot.sum())
    if observed == 0:
        raise ValueError("batch contains no crowd labels")
    return -(Tensor(target_one_hot) * logp).sum() * (1.0 / observed)


class CrowdLayerClassifier:
    """CL for classification.

    Parameters
    ----------
    variant:
        "MW", "VW", or "VW-B".
    pretrain_epochs:
        Base-model epochs on hard MV labels before the joint phase.
    """

    def __init__(
        self,
        model: TextClassifier,
        variant: str,
        config: TrainerConfig,
        rng: np.random.Generator,
        pretrain_epochs: int = 5,
    ) -> None:
        if variant not in CROWD_LAYER_VARIANTS:
            raise ValueError(f"variant must be one of {CROWD_LAYER_VARIANTS}, got {variant!r}")
        self.model = model
        self.variant = variant
        self.config = config
        self.rng = rng
        self.pretrain_epochs = pretrain_epochs
        self.layer: _CrowdLayer | None = None
        self.train_proba_: np.ndarray | None = None

    def fit(
        self,
        train: TextClassificationDataset,
        dev: TextClassificationDataset | None = None,
    ) -> dict:
        crowd = train.crowd
        if crowd is None:
            raise ValueError("training dataset carries no crowd labels")
        K = self.model.num_classes
        self.layer = _CrowdLayer(self.variant, crowd.num_annotators, K)

        history: dict = {"pretrain": None, "loss": [], "dev_score": []}
        if self.pretrain_epochs > 0:
            mv_hard = majority_vote_posterior(crowd).argmax(axis=1)
            pre_config = TrainerConfig(
                epochs=self.pretrain_epochs,
                batch_size=self.config.batch_size,
                optimizer=self.config.optimizer,
                learning_rate=self.config.learning_rate,
                lr_decay_every=None,
                patience=self.config.patience,
                grad_clip=self.config.grad_clip,
            )
            history["pretrain"] = fit_classifier(
                self.model, pre_config, self.rng, train.tokens, train.lengths,
                np.eye(K)[mv_hard], dev=None,
            )

        one_hot = crowd.one_hot()                                # (I, J, K)
        parameters = self.model.parameters() + self.layer.parameters()
        optimizer, schedule = build_optimizer(parameters, self.config)
        stopper = EarlyStopping(self.model, self.config.patience) if dev is not None else None

        for _ in range(self.config.epochs):
            self.model.train()
            total = 0.0
            batches = 0
            for batch in batch_indices(len(train), self.config.batch_size, rng=self.rng):
                optimizer.zero_grad()
                logits = self.model.logits(train.tokens[batch], train.lengths[batch])
                proba = F.softmax(logits, axis=-1)
                scores = self.layer.annotator_scores(proba)
                loss = _masked_annotator_ce(scores, one_hot[batch])
                loss.backward()
                optimizer.step()
                if hasattr(self.model, "apply_max_norm"):
                    self.model.apply_max_norm()
                total += loss.item()
                batches += 1
            history["loss"].append(total / max(batches, 1))
            if schedule is not None:
                schedule.step()
            if stopper is not None:
                score = accuracy(dev.labels, self.model.predict(dev.tokens, dev.lengths))
                history["dev_score"].append(score)
                if stopper.update(score):
                    break
        if stopper is not None:
            stopper.restore_best()
            history["best_dev_score"] = stopper.best_score
        self.train_proba_ = predict_proba_batched(self.model, train.tokens, train.lengths)
        return history

    def predict(self, tokens: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        return self.model.predict(tokens, lengths)

    def predict_proba(self, tokens: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        return predict_proba_batched(self.model, tokens, lengths)

    def inference_posterior(self) -> np.ndarray:
        """Paper Table II footnote: CL's inference = classifier output on train."""
        if self.train_proba_ is None:
            raise RuntimeError("fit() has not been run")
        return self.train_proba_


class CrowdLayerSequenceTagger:
    """CL for sequence tagging (the paper's Table III variants)."""

    def __init__(
        self,
        model: SequenceTagger,
        variant: str,
        config: TrainerConfig,
        rng: np.random.Generator,
        pretrain_epochs: int = 5,
    ) -> None:
        if variant not in CROWD_LAYER_VARIANTS:
            raise ValueError(f"variant must be one of {CROWD_LAYER_VARIANTS}, got {variant!r}")
        self.model = model
        self.variant = variant
        self.config = config
        self.rng = rng
        self.pretrain_epochs = pretrain_epochs
        self.layer: _CrowdLayer | None = None
        self.train_proba_: list[np.ndarray] | None = None

    @staticmethod
    def _padded_crowd_one_hot(train: SequenceTaggingDataset) -> np.ndarray:
        """``(I, T, J, K)`` one-hot crowd labels (zeros where unlabeled)."""
        crowd = train.crowd
        I, T = train.tokens.shape
        J, K = crowd.num_annotators, crowd.num_classes
        out = np.zeros((I, T, J, K))
        for i in range(I):
            matrix = crowd.labels[i]                    # (T_i, J)
            observed = matrix != MISSING
            t_idx, j_idx = np.nonzero(observed)
            out[i, t_idx, j_idx, matrix[t_idx, j_idx]] = 1.0
        return out

    def fit(
        self,
        train: SequenceTaggingDataset,
        dev: SequenceTaggingDataset | None = None,
    ) -> dict:
        crowd = train.crowd
        if crowd is None:
            raise ValueError("training dataset carries no crowd labels")
        K = self.model.num_classes
        self.layer = _CrowdLayer(self.variant, crowd.num_annotators, K)

        history: dict = {"pretrain": None, "loss": [], "dev_score": []}
        if self.pretrain_epochs > 0:
            # Token-level MV hard tags.
            max_time = train.tokens.shape[1]
            targets = np.zeros((len(train), max_time, K))
            for i in range(len(train)):
                votes = crowd.token_vote_counts(i)
                targets[i, : votes.shape[0]] = np.eye(K)[votes.argmax(axis=1)]
            pre_config = TrainerConfig(
                epochs=self.pretrain_epochs,
                batch_size=self.config.batch_size,
                optimizer=self.config.optimizer,
                learning_rate=self.config.learning_rate,
                lr_decay_every=None,
                patience=self.config.patience,
                grad_clip=self.config.grad_clip,
            )
            history["pretrain"] = fit_tagger(
                self.model, pre_config, self.rng, train.tokens, train.lengths, targets, dev=None
            )
        elif hasattr(self.model, "initialize_output_bias") and len(train) > 0:
            votes = np.sum(
                [crowd.token_vote_counts(i).sum(axis=0) for i in range(len(train))], axis=0
            ).astype(np.float64)
            if votes.sum() > 0:  # no votes at all: keep the default bias
                self.model.initialize_output_bias(votes / votes.sum())

        one_hot = self._padded_crowd_one_hot(train)
        parameters = self.model.parameters() + self.layer.parameters()
        optimizer, schedule = build_optimizer(parameters, self.config)
        stopper = EarlyStopping(self.model, self.config.patience) if dev is not None else None

        for _ in range(self.config.epochs):
            self.model.train()
            total = 0.0
            batches = 0
            for batch in batch_indices(len(train), self.config.batch_size, rng=self.rng):
                optimizer.zero_grad()
                logits = self.model.logits(train.tokens[batch], train.lengths[batch])
                proba = F.softmax(logits, axis=-1)                 # (B, T, K)
                scores = self.layer.annotator_scores(proba)        # (B, T, J, K)
                loss = _masked_annotator_ce(scores, one_hot[batch])
                loss.backward()
                optimizer.step()
                total += loss.item()
                batches += 1
            history["loss"].append(total / max(batches, 1))
            if schedule is not None:
                schedule.step()
            if stopper is not None:
                predictions = self.model.predict(dev.tokens, dev.lengths)
                score = span_f1_score(dev.tags, predictions).f1
                history["dev_score"].append(score)
                if stopper.update(score):
                    break
        if stopper is not None:
            stopper.restore_best()
            history["best_dev_score"] = stopper.best_score

        proba = predict_sequence_proba_batched(self.model, train.tokens, train.lengths)
        self.train_proba_ = [proba[i, : int(train.lengths[i])] for i in range(len(train))]
        return history

    def predict(self, tokens: np.ndarray, lengths: np.ndarray) -> list[np.ndarray]:
        return self.model.predict(tokens, lengths)

    def inference_posteriors(self) -> list[np.ndarray]:
        if self.train_proba_ is None:
            raise RuntimeError("fit() has not been run")
        return self.train_proba_
