"""Single-source noisy-label learning built on the crowd machinery."""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor
from ..autodiff import functional as F
from ..baselines.common import (
    EarlyStopping,
    TrainerConfig,
    build_optimizer,
)
from ..core.logic_lncl import LogicLNCLClassifier
from ..crowd.types import CrowdLabelMatrix
from ..data.datasets import TextClassificationDataset
from ..data.loaders import batch_indices
from ..eval.classification import accuracy
from ..models.base import TextClassifier

__all__ = [
    "corrupt_labels",
    "as_single_source_crowd",
    "NoisyLabelLogicLNCL",
    "forward_correction_baseline",
]


def corrupt_labels(
    rng: np.random.Generator,
    labels: np.ndarray,
    transition: np.ndarray,
) -> np.ndarray:
    """Sample noisy labels from a class-conditional noise process.

    ``transition[m, n]`` is the probability that true class ``m`` is
    recorded as ``n`` (rows sum to one). Symmetric noise at rate ``ρ`` is
    the special case ``T = (1-ρ)·I + ρ/(K-1)·(1-I)``.
    """
    labels = np.asarray(labels)
    transition = np.asarray(transition, dtype=np.float64)
    K = transition.shape[0]
    if transition.shape != (K, K):
        raise ValueError(f"transition must be square, got {transition.shape}")
    if not np.allclose(transition.sum(axis=1), 1.0, atol=1e-8):
        raise ValueError("transition rows must sum to 1")
    if labels.min() < 0 or labels.max() >= K:
        raise ValueError(f"labels out of range [0, {K})")
    cumulative = transition.cumsum(axis=1)
    draws = rng.random(labels.shape[0])
    return (draws[:, None] < cumulative[labels]).argmax(axis=1)


def as_single_source_crowd(noisy_labels: np.ndarray, num_classes: int) -> CrowdLabelMatrix:
    """Wrap one noisy label per instance as a one-annotator crowd."""
    noisy_labels = np.asarray(noisy_labels)
    if noisy_labels.ndim != 1:
        raise ValueError("expected one label per instance")
    return CrowdLabelMatrix(noisy_labels[:, None].astype(np.int64), num_classes)


class NoisyLabelLogicLNCL(LogicLNCLClassifier):
    """Logic-LNCL with a single anonymous noise source.

    Identical algorithm; the lone "annotator's" confusion matrix doubles
    as the estimated noise-transition matrix, exposed as
    :attr:`transition_`.
    """

    def fit(self, train: TextClassificationDataset, dev=None) -> dict:
        if train.crowd is None or train.crowd.num_annotators != 1:
            raise ValueError(
                "NoisyLabelLogicLNCL expects exactly one noise source; wrap "
                "labels with as_single_source_crowd()"
            )
        return super().fit(train, dev)

    @property
    def transition_(self) -> np.ndarray:
        """Estimated noise-transition matrix ``(K, K)``."""
        if self.confusions_ is None:
            raise RuntimeError("fit() has not been run")
        return self.confusions_[0]


def forward_correction_baseline(
    model: TextClassifier,
    config: TrainerConfig,
    rng: np.random.Generator,
    train: TextClassificationDataset,
    transition: np.ndarray,
    dev: TextClassificationDataset | None = None,
) -> dict:
    """Forward loss correction (Patrini et al., CVPR 2017).

    Trains against the *noisy* labels with the corrected likelihood
    ``p_noisy = T^T · p(t|x)`` — consistent when ``T`` is the true noise
    transition. ``train.crowd`` must be a one-source crowd whose column
    holds the noisy labels.
    """
    crowd = train.crowd
    if crowd is None or crowd.num_annotators != 1:
        raise ValueError("forward correction expects a single-source crowd")
    transition = np.asarray(transition, dtype=np.float64)
    K = model.num_classes
    if transition.shape != (K, K):
        raise ValueError(f"transition must be ({K}, {K}), got {transition.shape}")
    noisy_one_hot = np.eye(K)[crowd.labels[:, 0]]

    optimizer, schedule = build_optimizer(model.parameters(), config)
    stopper = EarlyStopping(model, config.patience) if dev is not None else None
    history: dict = {"loss": [], "dev_score": []}
    T = Tensor(transition)
    for _ in range(config.epochs):
        model.train()
        total = 0.0
        batches = 0
        for batch in batch_indices(len(train), config.batch_size, rng=rng):
            optimizer.zero_grad()
            logits = model.logits(train.tokens[batch], train.lengths[batch])
            clean_proba = F.softmax(logits, axis=-1)
            noisy_proba = clean_proba @ T            # p(noisy = n) = Σ_m p_m T_mn
            log_noisy = (noisy_proba + 1e-12).log()
            loss = -(Tensor(noisy_one_hot[batch]) * log_noisy).sum() * (
                1.0 / len(batch)
            )
            loss.backward()
            optimizer.step()
            if hasattr(model, "apply_max_norm"):
                model.apply_max_norm()
            total += loss.item()
            batches += 1
        history["loss"].append(total / max(batches, 1))
        if schedule is not None:
            schedule.step()
        if stopper is not None:
            score = accuracy(dev.labels, model.predict(dev.tokens, dev.lengths))
            history["dev_score"].append(score)
            if stopper.update(score):
                break
    if stopper is not None:
        stopper.restore_best()
        history["best_dev_score"] = stopper.best_score
    return history
