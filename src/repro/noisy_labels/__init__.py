"""Learning from (single-source) noisy labels — the paper's §VIII transfer.

The Discussion argues the Logic-LNCL idea carries over to the classic
learning-from-noisy-labels setting, where each instance has *one* noisy
label from an anonymous process instead of several crowd labels. A single
noise source is exactly a one-annotator crowd, so the transfer is direct:

* :func:`corrupt_labels` — inject class-conditional label noise;
* :func:`as_single_source_crowd` — wrap noisy labels as a ``(I, 1)`` crowd
  matrix;
* :class:`NoisyLabelLogicLNCL` — Logic-LNCL on that crowd: the EM loop
  estimates the 1×K×K noise-transition matrix (Eq. 12), infers per-instance
  posteriors (Eq. 13), and distills logic rules exactly as before;
* :func:`forward_correction_baseline` — the standard loss-correction
  comparator (Patrini et al., 2017): train against ``T^T · p`` with the
  known/estimated transition matrix.
"""

from .single_source import (
    NoisyLabelLogicLNCL,
    as_single_source_crowd,
    corrupt_labels,
    forward_correction_baseline,
)

__all__ = [
    "corrupt_labels",
    "as_single_source_crowd",
    "NoisyLabelLogicLNCL",
    "forward_correction_baseline",
]
