"""Classifier architectures: Kim-CNN, CNN+GRU tagger, bag-of-embeddings."""

from .base import SequenceTagger, TextClassifier
from .mlp import BagOfEmbeddingsClassifier, MLPClassifier, MLPConfig
from .ner_crnn import NERTagger, NERTaggerConfig
from .text_cnn import TextCNN, TextCNNConfig

__all__ = [
    "TextClassifier",
    "SequenceTagger",
    "TextCNN",
    "TextCNNConfig",
    "NERTagger",
    "NERTaggerConfig",
    "BagOfEmbeddingsClassifier",
    "MLPConfig",
    "MLPClassifier",
]
