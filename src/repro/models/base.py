"""Model interfaces shared by classifiers and sequence taggers."""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor, no_grad
from ..autodiff import functional as F
from ..autodiff.nn import Module

__all__ = ["TextClassifier", "SequenceTagger"]


class TextClassifier(Module):
    """Base class: sentence in, class logits out.

    Subclasses implement :meth:`logits`; prediction helpers run in eval
    mode without building the autodiff tape.
    """

    num_classes: int

    def logits(self, tokens: np.ndarray, lengths: np.ndarray) -> Tensor:
        """``(B, K)`` unnormalized class scores (training mode respected)."""
        raise NotImplementedError

    def forward(self, tokens: np.ndarray, lengths: np.ndarray) -> Tensor:
        return self.logits(tokens, lengths)

    def predict_proba(self, tokens: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """``(B, K)`` class probabilities, eval mode, no tape."""
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                probabilities = F.softmax(self.logits(tokens, lengths)).numpy()
        finally:
            if was_training:
                self.train()
        return probabilities

    def predict(self, tokens: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """Hard label predictions, shape ``(B,)``."""
        return self.predict_proba(tokens, lengths).argmax(axis=1)


class SequenceTagger(Module):
    """Base class: sentence in, per-token tag logits out."""

    num_classes: int

    def logits(self, tokens: np.ndarray, lengths: np.ndarray) -> Tensor:
        """``(B, T, K)`` unnormalized per-token scores."""
        raise NotImplementedError

    def forward(self, tokens: np.ndarray, lengths: np.ndarray) -> Tensor:
        return self.logits(tokens, lengths)

    def predict_proba(self, tokens: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        """``(B, T, K)`` per-token probabilities, eval mode, no tape."""
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                probabilities = F.softmax(self.logits(tokens, lengths), axis=-1).numpy()
        finally:
            if was_training:
                self.train()
        return probabilities

    def predict(self, tokens: np.ndarray, lengths: np.ndarray) -> list[np.ndarray]:
        """Per-sentence tag-id arrays trimmed to true lengths."""
        proba = self.predict_proba(tokens, lengths)
        hard = proba.argmax(axis=-1)
        return [hard[i, : int(lengths[i])] for i in range(len(lengths))]
