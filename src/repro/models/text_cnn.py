"""Kim (2014) CNN for sentence classification — the paper's sentiment network.

Architecture (paper Fig. 5, left): static pre-trained word vectors, parallel
convolutions with filter windows 3/4/5 (100 feature maps each in the paper),
ReLU, max-over-time pooling, dropout 0.5 on the penultimate layer, and a
softmax output whose weights are renormalized to an L2 ball of radius 3
(Kim's max-norm constraint).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autodiff import Tensor
from ..autodiff import functional as F
from ..autodiff.dtypes import canonical_dtype
from ..autodiff.nn import Conv1dSeq, Dropout, Embedding, Linear
from .base import TextClassifier

__all__ = ["TextCNNConfig", "TextCNN"]


@dataclass
class TextCNNConfig:
    """Hyper-parameters of the Kim CNN.

    Paper values: windows (3, 4, 5) × 100 maps, dropout 0.5, max-norm 3,
    300-d static embeddings. Benches scale down feature maps / dims, never
    the structure.
    """

    num_classes: int = 2
    filter_windows: tuple[int, ...] = (3, 4, 5)
    feature_maps: int = 100
    dropout: float = 0.5
    max_norm: float = 3.0
    static_embeddings: bool = True
    conv_variant: str = "auto"
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if not self.filter_windows:
            raise ValueError("need at least one filter window")
        if any(w < 1 for w in self.filter_windows):
            raise ValueError(f"filter windows must be >= 1, got {self.filter_windows}")
        if self.feature_maps < 1:
            raise ValueError("need at least one feature map")
        self.dtype = canonical_dtype(self.dtype).name


class TextCNN(TextClassifier):
    """Kim-CNN over pre-trained (synthetic prototype) embeddings.

    Parameters
    ----------
    embeddings:
        ``(V, D)`` pre-trained matrix; frozen when
        ``config.static_embeddings`` (the paper's "static" variant).
    config:
        Architecture hyper-parameters.
    rng:
        Generator for weight init and dropout masks.
    """

    def __init__(self, embeddings: np.ndarray, config: TextCNNConfig, rng: np.random.Generator) -> None:
        super().__init__()
        vocab_size, dim = embeddings.shape
        self.config = config
        self.num_classes = config.num_classes
        self.embedding = Embedding(
            vocab_size,
            dim,
            pretrained=embeddings,
            trainable=not config.static_embeddings,
            dtype=config.dtype,
        )
        self.convs = [
            Conv1dSeq(
                dim,
                config.feature_maps,
                width,
                rng,
                variant=config.conv_variant,
                dtype=config.dtype,
            )
            for width in config.filter_windows
        ]
        self.dropout = Dropout(config.dropout, rng)
        hidden = config.feature_maps * len(config.filter_windows)
        self.output = Linear(hidden, config.num_classes, rng, dtype=config.dtype)

    def logits(self, tokens: np.ndarray, lengths: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens)
        lengths = np.asarray(lengths)
        max_window = max(self.config.filter_windows)
        if tokens.shape[1] < max_window:
            pad = np.zeros((tokens.shape[0], max_window - tokens.shape[1]), dtype=tokens.dtype)
            tokens = np.concatenate([tokens, pad], axis=1)
        embedded = self.embedding(tokens)
        pooled = []
        for conv, width in zip(self.convs, self.config.filter_windows):
            convolved = conv(embedded).relu()
            out_time = tokens.shape[1] - width + 1
            # Conv position t is valid iff the window starts inside the true
            # sentence; degenerate short sentences keep position 0 so the
            # max is always over a non-empty set.
            positions = np.arange(out_time)[None, :]
            valid = positions < np.maximum(lengths - width + 1, 1)[:, None]
            pooled.append(F.max_over_time(convolved, mask=valid))
        features = F.concat(pooled, axis=1)
        return self.output(self.dropout(features))

    def apply_max_norm(self) -> None:
        """Kim's constraint: renorm each output-layer column to L2 ≤ 3.

        Called by trainers after each optimizer step.
        """
        if self.config.max_norm <= 0:
            return
        weight = self.output.weight.data
        norms = np.linalg.norm(weight, axis=0, keepdims=True)
        excess = norms > self.config.max_norm
        if excess.any():
            scale = np.where(excess, self.config.max_norm / np.where(norms > 0, norms, 1), 1.0)
            weight *= scale
