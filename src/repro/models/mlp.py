"""Bag-of-embeddings classifiers: logistic regression and a small MLP.

Raykar et al. (2010) — the paper's probabilistic baseline — uses logistic
regression as its classifier. We realize it as a linear layer over
mean-pooled word embeddings; :class:`MLPClassifier` adds one hidden layer
and is used in unit tests where a tiny trainable model is convenient.
"""

from __future__ import annotations

import numpy as np

from ..autodiff import Tensor
from ..autodiff.nn import Embedding, Linear
from .base import TextClassifier

__all__ = ["BagOfEmbeddingsClassifier", "MLPClassifier"]


class BagOfEmbeddingsClassifier(TextClassifier):
    """Logistic regression on mean-pooled (frozen) word embeddings."""

    def __init__(self, embeddings: np.ndarray, num_classes: int, rng: np.random.Generator) -> None:
        super().__init__()
        vocab_size, dim = embeddings.shape
        self.num_classes = num_classes
        self.embedding = Embedding(vocab_size, dim, pretrained=embeddings, trainable=False)
        self.output = Linear(dim, num_classes, rng)

    def _pooled(self, tokens: np.ndarray, lengths: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens)
        lengths = np.asarray(lengths)
        embedded = self.embedding(tokens)
        mask = (np.arange(tokens.shape[1])[None, :] < lengths[:, None]).astype(np.float64)
        summed = (embedded * Tensor(mask[:, :, None])).sum(axis=1)
        return summed * Tensor((1.0 / lengths.astype(np.float64))[:, None])

    def logits(self, tokens: np.ndarray, lengths: np.ndarray) -> Tensor:
        return self.output(self._pooled(tokens, lengths))


class MLPClassifier(BagOfEmbeddingsClassifier):
    """One-hidden-layer tanh MLP on mean-pooled embeddings."""

    def __init__(
        self,
        embeddings: np.ndarray,
        num_classes: int,
        hidden: int,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(embeddings, num_classes, rng)
        dim = embeddings.shape[1]
        self.hidden_layer = Linear(dim, hidden, rng)
        self.output = Linear(hidden, num_classes, rng)

    def logits(self, tokens: np.ndarray, lengths: np.ndarray) -> Tensor:
        return self.output(self.hidden_layer(self._pooled(tokens, lengths)).tanh())
