"""Bag-of-embeddings classifiers: logistic regression and a small MLP.

Raykar et al. (2010) — the paper's probabilistic baseline — uses logistic
regression as its classifier. We realize it as a linear layer over
mean-pooled word embeddings; :class:`MLPClassifier` adds one hidden layer
and is used in unit tests where a tiny trainable model is convenient.

Like the larger networks, both classifiers follow the autodiff precision
policy: pooling masks and length normalizers are built in the embedding
matrix's dtype, so a float32 model never promotes to float64 mid-graph.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autodiff import Tensor
from ..autodiff.dtypes import canonical_dtype
from ..autodiff.nn import Embedding, Linear
from .base import TextClassifier

__all__ = ["BagOfEmbeddingsClassifier", "MLPConfig", "MLPClassifier"]


class BagOfEmbeddingsClassifier(TextClassifier):
    """Logistic regression on mean-pooled (frozen) word embeddings."""

    def __init__(
        self,
        embeddings: np.ndarray,
        num_classes: int,
        rng: np.random.Generator,
        dtype=None,
    ) -> None:
        super().__init__()
        vocab_size, dim = embeddings.shape
        self.num_classes = num_classes
        self.embedding = Embedding(
            vocab_size, dim, pretrained=embeddings, trainable=False, dtype=dtype
        )
        self.output = Linear(dim, num_classes, rng, dtype=dtype)

    def _pooled(self, tokens: np.ndarray, lengths: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens)
        lengths = np.asarray(lengths)
        embedded = self.embedding(tokens)
        compute_dtype = embedded.data.dtype
        mask = (np.arange(tokens.shape[1])[None, :] < lengths[:, None]).astype(compute_dtype)
        summed = (embedded * Tensor(mask[:, :, None])).sum(axis=1)
        return summed * Tensor((1.0 / lengths.astype(compute_dtype))[:, None])

    def logits(self, tokens: np.ndarray, lengths: np.ndarray) -> Tensor:
        return self.output(self._pooled(tokens, lengths))


@dataclass
class MLPConfig:
    """Hyper-parameters of the small test MLP.

    ``dtype`` selects the parameter/compute precision ("float64" reference
    or the "float32" fast path), mirroring :class:`TextCNNConfig` and
    :class:`NERTaggerConfig`.
    """

    num_classes: int = 2
    hidden: int = 16
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError("need at least two classes")
        if self.hidden < 1:
            raise ValueError("hidden width must be positive")
        self.dtype = canonical_dtype(self.dtype).name


class MLPClassifier(BagOfEmbeddingsClassifier):
    """One-hidden-layer tanh MLP on mean-pooled embeddings."""

    def __init__(
        self,
        embeddings: np.ndarray,
        num_classes: int,
        hidden: int,
        rng: np.random.Generator,
        dtype=None,
    ) -> None:
        super().__init__(embeddings, num_classes, rng, dtype=dtype)
        dim = embeddings.shape[1]
        self.hidden_layer = Linear(dim, hidden, rng, dtype=dtype)
        self.output = Linear(hidden, num_classes, rng, dtype=dtype)

    @classmethod
    def from_config(
        cls, embeddings: np.ndarray, config: MLPConfig, rng: np.random.Generator
    ) -> "MLPClassifier":
        return cls(
            embeddings, config.num_classes, config.hidden, rng, dtype=config.dtype
        )

    def logits(self, tokens: np.ndarray, lengths: np.ndarray) -> Tensor:
        return self.output(self.hidden_layer(self._pooled(tokens, lengths)).tanh())
