"""Rodrigues & Pereira (2018) CNN+GRU tagger — the paper's NER network.

Architecture (paper Fig. 5, right): 300-d GloVe embeddings, a width-5
convolution with 512 features (ReLU), dropout 0.5, a GRU with 50 hidden
states, and a per-token fully-connected softmax output. We keep the
structure and scale widths down in benches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..autodiff import Tensor
from ..autodiff.dtypes import canonical_dtype
from ..autodiff.nn import GRU, Conv1dSeq, Dropout, Embedding, Linear
from .base import SequenceTagger

__all__ = ["NERTaggerConfig", "NERTagger"]


@dataclass
class NERTaggerConfig:
    """Hyper-parameters of the CNN+GRU tagger.

    Paper values: conv width 5 × 512 features, GRU hidden 50, dropout 0.5.
    """

    num_classes: int = 9
    conv_width: int = 5
    conv_features: int = 512
    gru_hidden: int = 50
    dropout: float = 0.5
    static_embeddings: bool = True
    conv_variant: str = "auto"
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.conv_width < 1:
            raise ValueError("conv width must be >= 1")
        if self.conv_features < 1 or self.gru_hidden < 1:
            raise ValueError("layer widths must be positive")
        self.dtype = canonical_dtype(self.dtype).name


class NERTagger(SequenceTagger):
    """Conv + GRU + softmax per token.

    The convolution uses "same" padding so every token produces a tag; the
    GRU carries a padding mask so hidden states (and thus logits) are
    invariant to batch padding.
    """

    def __init__(self, embeddings: np.ndarray, config: NERTaggerConfig, rng: np.random.Generator) -> None:
        super().__init__()
        vocab_size, dim = embeddings.shape
        self.config = config
        self.num_classes = config.num_classes
        self.embedding = Embedding(
            vocab_size,
            dim,
            pretrained=embeddings,
            trainable=not config.static_embeddings,
            dtype=config.dtype,
        )
        self.conv = Conv1dSeq(
            dim, config.conv_features, config.conv_width, rng,
            pad="same", variant=config.conv_variant, dtype=config.dtype,
        )
        self.dropout = Dropout(config.dropout, rng)
        self.gru = GRU(config.conv_features, config.gru_hidden, rng, dtype=config.dtype)
        self.output = Linear(config.gru_hidden, config.num_classes, rng, dtype=config.dtype)

    def logits(self, tokens: np.ndarray, lengths: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens)
        lengths = np.asarray(lengths)
        mask = np.arange(tokens.shape[1])[None, :] < lengths[:, None]
        embedded = self.embedding(tokens)
        convolved = self.conv(embedded).relu()
        dropped = self.dropout(convolved)
        hidden = self.gru(dropped, mask=mask)
        return self.output(hidden)

    def initialize_output_bias(self, priors: np.ndarray) -> None:
        """Set the softmax bias to log class priors.

        BIO tagging is dominated by the O class; starting the output layer
        at the prior distribution avoids the long all-O plateau at the
        beginning of training (a standard imbalanced-classification trick).
        Trainers call this with the prior of their initial targets.
        """
        priors = np.asarray(priors, dtype=self.output.bias.data.dtype)
        if priors.shape != (self.num_classes,):
            raise ValueError(f"priors must be ({self.num_classes},), got {priors.shape}")
        self.output.bias.data[...] = np.log(priors + 1e-3)
