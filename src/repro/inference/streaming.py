"""Streaming (online) truth inference over label streams.

The batch methods in this package assume the whole crowd is in memory
before inference starts. Serving a live annotation pipeline needs the
opposite: labels arrive in batches of new instances, posteriors update
incrementally, and the cost of ingesting a batch is O(new observations) —
never a fresh EM run over everything seen so far. This module provides
that as a thin layer over the same sparse-crowd kernels
(:mod:`repro.inference.primitives`) the batch methods run on:

* :class:`StreamingMajorityVote` — running vote counts; exactly the batch
  posterior at every step.
* :class:`StreamingDawidSkene` — stepwise EM (Cappé & Moulines style):
  per-annotator confusion *sufficient statistics* are accumulated across
  batches (optionally exponentially decayed), each arriving batch gets a
  few local E/M sweeps against them, and old instances are never
  re-scanned during ingest.
* :class:`StreamingGLAD` — per-batch E-step + stochastic gradient ascent
  on annotator ability (binary crowds, as in the paper); instance
  difficulties of past batches stay frozen at ingest time.

Shared API: :meth:`~StreamingTruthInference.partial_fit` ingests one
:class:`~repro.crowd.types.CrowdLabelMatrix` of *new* instances (same
annotator axis throughout the stream; a batch that fails validation is
rejected *before* any state is touched, so the stream is exactly as it
was), :meth:`~StreamingTruthInference.result` returns an
:class:`~repro.inference.base.InferenceResult` over everything seen, and
:meth:`~StreamingTruthInference.fit_to_convergence` re-estimates on the
full retained stream with the batch twin. :meth:`~StreamingTruthInference.
get_state` / :meth:`~StreamingTruthInference.set_state` round-trip the
learned state (sufficient statistics, stored posteriors, counters) as a
flat dict of scalars and float64 arrays — the checkpoint surface the
serving layer (:mod:`repro.serving`) persists, under the recovery
contract that a restored stream replaying the tail of its label stream
reproduces the uninterrupted run exactly. Diagnostics
follow the subsystem-wide :class:`~repro.inference.base.ConvergenceMonitor`
contract (``iterations``/``last_change``/``converged``, one step per
update, measuring how much the annotator model still moves) plus the
streaming extras ``updates``, ``observations_seen``, and ``decay``.

**Replay-equivalence contract** (pinned at atol 1e-8 by the randomized
harness in ``tests/inference/equivalence_harness.py``): feeding an entire
crowd through ``partial_fit`` in batches with decay disabled and then
calling ``fit_to_convergence()`` reproduces the batch method's posterior
at convergence exactly — the retained container is grown with the
incremental append path (:meth:`~repro.crowd.types.CrowdLabelMatrix.
extend`), so any cache-coherence bug in that path breaks this contract.
For majority vote the contract is stronger: the incremental ``result()``
itself equals the batch posterior after every update, no convergence call
needed. With decay enabled there is deliberately no batch equivalent —
old evidence about annotators is forgotten, which is the point (annotator
drift).

``decay`` semantics: a factor in (0, 1] applied to the *annotator-level*
sufficient statistics once per update before the new batch is added
(1.0 / ``None`` = never forget). Instance posteriors are not decayed —
an instance's labels arrive once, with its batch. Majority vote keeps no
cross-batch annotator state, so its posterior is decay-invariant; the
parameter exists there only for API uniformity.
"""

from __future__ import annotations

import numpy as np

from ..crowd.types import CrowdLabelMatrix
from .base import ConvergenceMonitor, InferenceResult
from .dawid_skene import DawidSkene
from .glad import GLAD, _sigmoid
from .majority_vote import MajorityVote, majority_vote_posterior
from .primitives import confusion_counts, emission_log_likelihood, normalize_log_posterior

__all__ = [
    "StreamingTruthInference",
    "StreamingMajorityVote",
    "StreamingDawidSkene",
    "StreamingGLAD",
]

# Streams are open-ended; the monitor's iteration budget must never be the
# thing that reports "stop".
_UNBOUNDED = 2**62

# get_state/set_state payload format; bumped when keys change meaning.
_STATE_FORMAT = 1


def _state_array(state: dict, key: str) -> np.ndarray | None:
    """Fetch an optional float64 array from a state dict (defensive copy)."""
    value = state.get(key)
    if value is None:
        return None
    return np.array(value, dtype=np.float64)


class StreamingTruthInference:
    """Base class: stream bookkeeping shared by every streaming method.

    Subclasses implement :meth:`_ingest` (the O(new observations) state
    update, returning the monitor delta), :meth:`_posterior_blocks`, and
    :meth:`_batch_twin` / :meth:`_adopt` for the convergence path.
    """

    name = "streaming-base"

    def __init__(self, decay: float | None = None, tolerance: float = 1e-6) -> None:
        if decay is not None and not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.decay = decay
        self.crowd: CrowdLabelMatrix | None = None
        self.updates = 0
        self.observations_seen = 0
        self._monitor = ConvergenceMonitor(tolerance, _UNBOUNDED)

    # ------------------------------------------------------------------ #
    @property
    def num_classes(self) -> int:
        self._require_data()
        return self.crowd.num_classes

    @property
    def num_annotators(self) -> int:
        self._require_data()
        return self.crowd.num_annotators

    def _require_data(self) -> None:
        if self.crowd is None:
            raise RuntimeError(f"{type(self).__name__} has not seen any batch yet")

    def _decay_factor(self) -> float:
        return 1.0 if self.decay is None else self.decay

    def streaming_extras(self) -> dict:
        """The streaming diagnostics block, merged into every result."""
        extras = self._monitor.extras()
        extras.update(
            updates=self.updates,
            observations_seen=self.observations_seen,
            decay=self.decay,
        )
        return extras

    # ------------------------------------------------------------------ #
    def partial_fit(self, batch: CrowdLabelMatrix) -> "StreamingTruthInference":
        """Ingest one batch of new instances in O(new observations).

        The batch must keep the stream's annotator axis and class count.
        Empty batches (zero instances) are legal and leave the model
        unchanged apart from the update counter. Batch compatibility is
        validated *before* the retained crowd is touched: a rejected
        batch raises without mutating anything — no retained labels, no
        ``updates``/``observations_seen`` increment, no monitor step.
        """
        if not isinstance(batch, CrowdLabelMatrix):
            raise TypeError(f"streaming methods ingest CrowdLabelMatrix, got {type(batch).__name__}")
        if self.crowd is None:
            self._check_first_batch(batch)
            self.crowd = CrowdLabelMatrix(batch.labels.copy(), batch.num_classes)
        else:
            if batch.num_classes != self.num_classes:
                raise ValueError(
                    f"batch has {batch.num_classes} classes, stream has {self.num_classes}"
                )
            if batch.num_annotators != self.num_annotators:
                raise ValueError(
                    f"batch has {batch.num_annotators} annotators, "
                    f"stream has {self.num_annotators}"
                )
            self.crowd.extend(batch.labels)
        delta = self._ingest(batch)
        self.updates += 1
        self.observations_seen += batch.total_annotations()
        self._monitor.step(delta)
        return self

    def result(self, refresh: bool = False) -> InferenceResult:
        """Posterior over every instance seen so far.

        With ``refresh=False`` (default) each instance keeps the posterior
        computed when its batch arrived — O(I) assembly, no label scans.
        ``refresh=True`` re-runs one E-step over the full retained stream
        under the *current* annotator model (O(total observations)) so
        early instances benefit from later evidence. The refresh is
        computed into the returned result only — stored ingest-time
        posteriors are never overwritten, so a later
        ``result(refresh=False)`` still reports them (contract pinned by
        ``tests/inference/test_streaming.py``).
        """
        self._require_data()
        blocks = self._refreshed_blocks() if refresh else self._posterior_blocks()
        posterior = (
            np.concatenate(blocks, axis=0)
            if blocks
            else np.zeros((0, self.num_classes))
        )
        return InferenceResult(
            posterior=posterior,
            confusions=self._current_confusions(),
            extras=self.streaming_extras(),
        )

    def fit_to_convergence(self) -> InferenceResult:
        """Re-estimate on the full retained stream with the batch twin.

        This is the replay-equivalence anchor: with decay disabled the
        returned result is exactly what the batch method produces on the
        union of all ingested batches (same code path, same data — the
        incrementally-extended container). The converged parameters are
        adopted as the new streaming state, so subsequent ``partial_fit``
        calls continue from them. Extras carry the batch twin's
        convergence diagnostics plus the streaming block.

        Streams may contain instances nobody has labeled yet (their
        annotations are still in flight); the batch twins refuse those, so
        the twin runs on the annotated subset and the unannotated rows get
        the method's no-evidence posterior under the converged model —
        exactly what the twin's E-step would assign them.
        """
        self._require_data()
        counts = self.crowd.annotations_per_instance()
        if counts.size and (counts == 0).any():
            result = self._converge_around_unannotated(
                np.nonzero(counts > 0)[0], np.nonzero(counts == 0)[0]
            )
        else:
            result = self._batch_twin().infer(self.crowd)
        self._adopt(result)
        extras = dict(result.extras)
        streaming = self.streaming_extras()
        extras.update(
            {key: streaming[key] for key in ("updates", "observations_seen", "decay")}
        )
        return InferenceResult(
            posterior=result.posterior, confusions=result.confusions, extras=extras
        )

    def _converge_around_unannotated(
        self, annotated: np.ndarray, unannotated: np.ndarray
    ) -> InferenceResult:
        """Batch-twin convergence when some instances carry no labels yet."""
        sub = self._batch_twin().infer(self.crowd.subset(annotated))
        posterior = np.empty((self.crowd.num_instances, self.num_classes))
        posterior[annotated] = sub.posterior
        posterior[unannotated] = self._no_evidence_posterior(sub)
        extras = dict(sub.extras)
        self._splice_extras(extras, annotated, unannotated)
        return InferenceResult(
            posterior=posterior, confusions=sub.confusions, extras=extras
        )

    # -- checkpoint surface -------------------------------------------- #
    def get_state(self) -> dict:
        """Serializable snapshot of the learned streaming state.

        The returned dict holds only scalars, None, and float64 arrays,
        so it round-trips losslessly through ``np.savez`` — the codec the
        serving layer's checkpoints use (:mod:`repro.serving.state`).
        Restoring it with :meth:`set_state` into a freshly-constructed
        instance (same constructor configuration) and re-attaching the
        retained crowd reproduces the stream bit-for-bit: replaying the
        tail of a label stream after a restore matches the uninterrupted
        run exactly (the recovery contract pinned by
        ``tests/serving/test_recovery.py``). The retained crowd is *not*
        embedded — it dominates the checkpoint size and already has a
        durable form (:class:`~repro.crowd.sharding.SparseLabelShard`).
        """
        state = {
            "format": _STATE_FORMAT,
            "method": self.name,
            "decay": self.decay,
            "updates": self.updates,
            "observations_seen": self.observations_seen,
            "monitor_iterations": self._monitor.iterations,
            "monitor_last_change": self._monitor.last_change,
            "monitor_converged": self._monitor.converged,
        }
        state.update(self._model_state())
        return state

    def set_state(self, state: dict, crowd: CrowdLabelMatrix | None = None) -> "StreamingTruthInference":
        """Restore a :meth:`get_state` snapshot (plus the retained crowd).

        The instance must be constructed with the configuration the
        snapshot was taken under; ``method`` and ``decay`` are
        cross-checked here because they change what the restored state
        *means*, while the remaining knobs (iteration budgets, learning
        rates) only shape future updates. Arrays are defensively copied.
        """
        method = state.get("method")
        if method != self.name:
            raise ValueError(f"state is for method {method!r}, this stream is {self.name!r}")
        version = int(state.get("format", -1))
        if version != _STATE_FORMAT:
            raise ValueError(f"unsupported streaming state format {version}")
        decay = state.get("decay")
        decay = None if decay is None else float(decay)
        if decay != self.decay:
            raise ValueError(
                f"state was taken with decay={decay!r}, this stream has decay={self.decay!r}"
            )
        updates = int(state["updates"])
        if crowd is not None and not isinstance(crowd, CrowdLabelMatrix):
            raise TypeError(
                f"crowd must be a CrowdLabelMatrix, got {type(crowd).__name__}"
            )
        if crowd is None and updates > 0:
            raise ValueError(
                "a stream that has ingested batches needs its retained crowd back"
            )
        self.crowd = crowd
        self.updates = updates
        self.observations_seen = int(state["observations_seen"])
        self._monitor.iterations = int(state["monitor_iterations"])
        self._monitor.last_change = float(state["monitor_last_change"])
        self._monitor.converged = bool(state["monitor_converged"])
        self._set_model_state(state)
        return self

    # -- subclass hooks ------------------------------------------------ #
    def _model_state(self) -> dict:
        """Subclass state block for :meth:`get_state` (arrays or None)."""
        raise NotImplementedError

    def _set_model_state(self, state: dict) -> None:
        """Restore the :meth:`_model_state` block (inverse hook)."""
        raise NotImplementedError

    def _check_first_batch(self, batch: CrowdLabelMatrix) -> None:
        """Structural constraints checked before the stream starts."""

    def _ingest(self, batch: CrowdLabelMatrix) -> float:
        """Update state from one new batch; returns the monitor delta."""
        raise NotImplementedError

    def _posterior_blocks(self) -> list[np.ndarray]:
        raise NotImplementedError

    def _refreshed_blocks(self) -> list[np.ndarray]:
        """Posterior blocks recomputed under the current model.

        Must be side-effect-free: ``result(refresh=True)`` consumes the
        returned blocks without storing them, so the ingest-time
        posteriors survive a refresh.
        """
        raise NotImplementedError

    def _current_confusions(self) -> np.ndarray | None:
        return None

    def _no_evidence_posterior(self, sub_result: InferenceResult) -> np.ndarray:
        """``(K,)`` posterior the converged model assigns an unlabeled row."""
        return np.full(self.num_classes, 1.0 / self.num_classes)

    def _splice_extras(self, extras: dict, annotated: np.ndarray, unannotated: np.ndarray) -> None:
        """Expand per-instance extras of a subset run back to full size."""

    def _batch_twin(self):
        """The batch method this stream converges to (replay contract)."""
        raise NotImplementedError

    def _adopt(self, result: InferenceResult) -> None:
        """Adopt a converged batch result as the streaming state."""
        raise NotImplementedError


class StreamingMajorityVote(StreamingTruthInference):
    """Online soft majority voting.

    The retained container's vote-count cache is extended in place by
    :meth:`~repro.crowd.types.CrowdLabelMatrix.extend`, so ``result()`` is
    one O(I) normalization and equals the batch posterior after *every*
    update (no convergence step needed). The monitor delta is the change
    in the global class vote share — "has the stream's label distribution
    stabilized", the only model-level quantity MV has.
    """

    name = "MV"

    def __init__(self, decay: float | None = None, tolerance: float = 1e-6) -> None:
        super().__init__(decay=decay, tolerance=tolerance)
        self._vote_totals: np.ndarray | None = None
        self._vote_share: np.ndarray | None = None

    def _ingest(self, batch: CrowdLabelMatrix) -> float:
        if self._vote_totals is None:
            self._vote_totals = np.zeros(self.num_classes)
        self._vote_totals += batch.vote_counts().sum(axis=0)
        grand = self._vote_totals.sum()
        share = (
            self._vote_totals / grand
            if grand > 0
            else np.full(self.num_classes, 1.0 / self.num_classes)
        )
        previous, self._vote_share = self._vote_share, share
        return float(np.abs(share - previous).max()) if previous is not None else np.inf

    def _posterior_blocks(self) -> list[np.ndarray]:
        return [majority_vote_posterior(self.crowd)]

    def _refreshed_blocks(self) -> list[np.ndarray]:
        return self._posterior_blocks()  # always reflects every vote seen

    def _model_state(self) -> dict:
        return {"vote_totals": self._vote_totals, "vote_share": self._vote_share}

    def _set_model_state(self, state: dict) -> None:
        self._vote_totals = _state_array(state, "vote_totals")
        self._vote_share = _state_array(state, "vote_share")

    def _batch_twin(self) -> MajorityVote:
        return MajorityVote()

    def _adopt(self, result: InferenceResult) -> None:
        pass


class StreamingDawidSkene(StreamingTruthInference):
    """Stepwise-EM Dawid–Skene over decayed sufficient statistics.

    Per batch: an E-step for the new instances under the current
    ``(prior, confusions)``, then ``inner_sweeps`` local E/M refinements
    in which the batch's soft confusion counts are swapped into the
    running statistics (first swap applies the decay). Everything runs on
    the shared COO kernels, so ingest cost is O(batch observations) plus
    the O(J·K²) M-step.

    Parameters mirror :class:`~repro.inference.dawid_skene.DawidSkene`
    (``max_iterations``/``tolerance``/``smoothing`` parameterize the batch
    twin used by :meth:`fit_to_convergence`), plus ``decay`` and
    ``inner_sweeps``.
    """

    name = "DS"

    def __init__(
        self,
        decay: float | None = None,
        inner_sweeps: int = 2,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        smoothing: float = 0.01,
    ) -> None:
        if inner_sweeps < 1:
            raise ValueError("need at least one inner sweep per batch")
        if smoothing < 0:
            raise ValueError("smoothing must be non-negative")
        super().__init__(decay=decay, tolerance=tolerance)
        self.inner_sweeps = inner_sweeps
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.smoothing = smoothing
        self._stat_confusions: np.ndarray | None = None  # (J, K, K) soft counts
        self._stat_prior: np.ndarray | None = None       # (K,) soft counts
        self._confusions: np.ndarray | None = None
        self._prior: np.ndarray | None = None
        self._blocks: list[np.ndarray] = []

    def _e_step(self, crowd: CrowdLabelMatrix) -> np.ndarray:
        log_posterior = np.log(self._prior)[None, :] + emission_log_likelihood(
            crowd, np.log(self._confusions)
        )
        return normalize_log_posterior(log_posterior)

    def _m_step(self) -> None:
        counts = self._stat_confusions + self.smoothing
        self._confusions = counts / counts.sum(axis=2, keepdims=True)
        prior = self._stat_prior + self.smoothing
        self._prior = prior / prior.sum()

    def _ingest(self, batch: CrowdLabelMatrix) -> float:
        K = self.num_classes
        if self._stat_confusions is None:
            self._stat_confusions = np.zeros((self.num_annotators, K, K))
            self._stat_prior = np.zeros(K)
        if batch.total_annotations() == 0:
            # Observation-free update: nothing to learn, and the history is
            # not decayed (decay tracks information arrival, not ticks).
            if self._confusions is None:
                self._blocks.append(np.full((batch.num_instances, K), 1.0 / K))
                return np.inf
            self._blocks.append(self._e_step(batch))
            return 0.0
        if self._confusions is None:
            # Nothing learned yet: bootstrap the first real batch from
            # majority voting, exactly like the batch method's init.
            posterior = majority_vote_posterior(batch)
        else:
            posterior = self._e_step(batch)
        previous = None if self._confusions is None else self._confusions.copy()

        contrib_confusions = contrib_prior = None
        for _ in range(self.inner_sweeps):
            new_confusions = confusion_counts(posterior, batch)
            new_prior = posterior.sum(axis=0)
            if contrib_confusions is None:
                gamma = self._decay_factor()
                self._stat_confusions = gamma * self._stat_confusions + new_confusions
                self._stat_prior = gamma * self._stat_prior + new_prior
            else:
                # Inner refinements replace this batch's contribution
                # rather than decaying the history again.
                self._stat_confusions += new_confusions - contrib_confusions
                self._stat_prior += new_prior - contrib_prior
            contrib_confusions, contrib_prior = new_confusions, new_prior
            self._m_step()
            posterior = self._e_step(batch)

        self._blocks.append(posterior)
        if previous is None:
            return np.inf
        return float(np.abs(self._confusions - previous).max(initial=0.0))

    def _posterior_blocks(self) -> list[np.ndarray]:
        return self._blocks

    def _refreshed_blocks(self) -> list[np.ndarray]:
        if self._confusions is None:
            return list(self._blocks)
        return [self._e_step(self.crowd)]

    def _model_state(self) -> dict:
        return {
            "stat_confusions": self._stat_confusions,
            "stat_prior": self._stat_prior,
            "confusions": self._confusions,
            "prior": self._prior,
            # Stored per-batch posteriors concatenate losslessly: they are
            # only ever appended to and concatenated, never re-split.
            "posterior_blocks": (
                np.concatenate(self._blocks, axis=0) if self._blocks else None
            ),
        }

    def _set_model_state(self, state: dict) -> None:
        self._stat_confusions = _state_array(state, "stat_confusions")
        self._stat_prior = _state_array(state, "stat_prior")
        self._confusions = _state_array(state, "confusions")
        self._prior = _state_array(state, "prior")
        packed = _state_array(state, "posterior_blocks")
        self._blocks = [] if packed is None else [packed]
        if packed is not None and self.crowd is not None and packed.shape[0] != self.crowd.num_instances:
            raise ValueError(
                f"state holds {packed.shape[0]} posterior rows, "
                f"crowd has {self.crowd.num_instances} instances"
            )

    def _current_confusions(self) -> np.ndarray | None:
        return self._confusions

    def _no_evidence_posterior(self, sub_result: InferenceResult) -> np.ndarray:
        # DS's E-step gives an unlabeled instance the class prior.
        prior = sub_result.posterior.sum(axis=0) + self.smoothing
        return prior / prior.sum()

    def _batch_twin(self) -> DawidSkene:
        return DawidSkene(
            max_iterations=self.max_iterations,
            tolerance=self.tolerance,
            smoothing=self.smoothing,
        )

    def _adopt(self, result: InferenceResult) -> None:
        self._confusions = result.confusions
        self._blocks = [result.posterior]
        # Rebuild the running statistics from the converged posterior so
        # later partial_fit calls continue from the converged model.
        self._stat_confusions = confusion_counts(result.posterior, self.crowd)
        self._stat_prior = result.posterior.sum(axis=0)
        prior = self._stat_prior + self.smoothing
        self._prior = prior / prior.sum()


class StreamingGLAD(StreamingTruthInference):
    """Streaming GLAD: per-batch E-step + SGD on annotator ability.

    Binary crowds only, as in the paper. Each batch gets an E-step under
    the current abilities, then ``gradient_steps`` ascent steps on
    ``(α, log β_batch)`` using only the batch's observations — stochastic
    gradient ascent over the stream. α gradients are normalized by the
    (decayed) running per-annotator label counts, so a prolific history
    damps per-batch swings while decay lets abilities track drifting
    annotators. Past batches' difficulties stay frozen at ingest time.

    The per-batch ascent uses ``gradient_steps``/``learning_rate``/
    ``prior_correct`` only; ``em_iterations`` sizes the batch twin
    :meth:`fit_to_convergence` runs, which is fixed-budget (twin
    ``tolerance=0.0``) exactly like the paper's batch GLAD — that is what
    the replay contract pins against. ``tolerance`` here feeds the
    *streaming* diagnostics monitor (how much α still moves per update),
    not an early stop.
    """

    name = "GLAD"

    def __init__(
        self,
        decay: float | None = None,
        em_iterations: int = 30,
        gradient_steps: int = 20,
        learning_rate: float = 0.05,
        prior_correct: float = 0.5,
        tolerance: float = 1e-6,
    ) -> None:
        if em_iterations < 1:
            raise ValueError("need at least one EM iteration")
        if gradient_steps < 1:
            raise ValueError("need at least one gradient step per batch")
        if not 0.0 < prior_correct < 1.0:
            raise ValueError("prior must be in (0, 1)")
        super().__init__(decay=decay, tolerance=tolerance)
        self.em_iterations = em_iterations
        self.gradient_steps = gradient_steps
        self.learning_rate = learning_rate
        self.prior_correct = prior_correct
        self._alpha: np.ndarray | None = None
        self._label_counts: np.ndarray | None = None  # decayed per-annotator
        self._log_beta_blocks: list[np.ndarray] = []
        self._blocks: list[np.ndarray] = []

    def _check_first_batch(self, batch: CrowdLabelMatrix) -> None:
        if batch.num_classes != 2:
            raise ValueError("GLAD supports binary labels only (as in the paper)")

    def _posterior_one(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        votes_one: np.ndarray,
        log_beta: np.ndarray,
        num_rows: int,
    ) -> np.ndarray:
        sig = _sigmoid(np.exp(log_beta)[rows] * self._alpha[cols])
        log_sig = np.log(sig + 1e-12)
        log_one_minus = np.log(1.0 - sig + 1e-12)
        log_like_one = np.bincount(
            rows, weights=np.where(votes_one, log_sig, log_one_minus), minlength=num_rows
        )
        log_like_zero = np.bincount(
            rows, weights=np.where(votes_one, log_one_minus, log_sig), minlength=num_rows
        )
        log_prior_ratio = np.log(self.prior_correct) - np.log(1 - self.prior_correct)
        return _sigmoid(log_prior_ratio + log_like_one - log_like_zero)

    def _ingest(self, batch: CrowdLabelMatrix) -> float:
        J = self.num_annotators
        rows, cols, given = batch.flat_label_pairs()
        if rows.size == 0:
            # Observation-free update: abilities and history untouched.
            # Until a real batch has trained the abilities the stream has
            # learned nothing, so the monitor must keep reporting "not
            # converged" — the same `is None` guard StreamingDawidSkene
            # uses, not an update-counter check (an empty→empty stream
            # has updates > 0 but an untrained model).
            self._log_beta_blocks.append(np.zeros(batch.num_instances))
            prior = np.full(batch.num_instances, self.prior_correct)
            self._blocks.append(np.stack([1.0 - prior, prior], axis=1))
            return np.inf if self._alpha is None else 0.0
        if self._alpha is None:
            self._alpha = np.ones(J)
            self._label_counts = np.zeros(J)
        votes_one = given == 1
        self._label_counts = self._decay_factor() * self._label_counts + np.bincount(
            cols, minlength=J
        )
        normalizer = np.maximum(self._label_counts, 1.0)
        labels_per_instance = np.maximum(
            np.bincount(rows, minlength=batch.num_instances), 1
        )
        previous_alpha = self._alpha.copy()

        log_beta = np.zeros(batch.num_instances)
        posterior_one = self._posterior_one(
            rows, cols, votes_one, log_beta, batch.num_instances
        )
        for _ in range(self.gradient_steps):
            beta = np.exp(log_beta)
            sig = _sigmoid(beta[rows] * self._alpha[cols])
            prob_correct = np.where(
                votes_one, posterior_one[rows], 1.0 - posterior_one[rows]
            )
            residual = prob_correct - sig
            grad_alpha = (
                np.bincount(cols, weights=residual * beta[rows], minlength=J)
                / normalizer
            )
            grad_log_beta = (
                np.bincount(
                    rows, weights=residual * self._alpha[cols], minlength=batch.num_instances
                )
                * beta
            ) / labels_per_instance
            self._alpha = np.clip(
                self._alpha + self.learning_rate * grad_alpha, -8.0, 8.0
            )
            log_beta = np.clip(log_beta + self.learning_rate * grad_log_beta, -4.0, 4.0)
        posterior_one = self._posterior_one(
            rows, cols, votes_one, log_beta, batch.num_instances
        )

        self._log_beta_blocks.append(log_beta)
        self._blocks.append(np.stack([1.0 - posterior_one, posterior_one], axis=1))
        return float(np.abs(self._alpha - previous_alpha).max(initial=0.0))

    def _posterior_blocks(self) -> list[np.ndarray]:
        return self._blocks

    def _refreshed_blocks(self) -> list[np.ndarray]:
        if self._alpha is None or not self._log_beta_blocks:
            return list(self._blocks)
        rows, cols, given = self.crowd.flat_label_pairs()
        log_beta = np.concatenate(self._log_beta_blocks)
        posterior_one = self._posterior_one(
            rows, cols, given == 1, log_beta, self.crowd.num_instances
        )
        return [np.stack([1.0 - posterior_one, posterior_one], axis=1)]

    def _model_state(self) -> dict:
        return {
            "alpha": self._alpha,
            "label_counts": self._label_counts,
            "log_beta": (
                np.concatenate(self._log_beta_blocks) if self._log_beta_blocks else None
            ),
            "posterior_blocks": (
                np.concatenate(self._blocks, axis=0) if self._blocks else None
            ),
        }

    def _set_model_state(self, state: dict) -> None:
        self._alpha = _state_array(state, "alpha")
        self._label_counts = _state_array(state, "label_counts")
        log_beta = _state_array(state, "log_beta")
        self._log_beta_blocks = [] if log_beta is None else [log_beta]
        packed = _state_array(state, "posterior_blocks")
        self._blocks = [] if packed is None else [packed]
        if log_beta is not None and self.crowd is not None and log_beta.shape[0] != self.crowd.num_instances:
            raise ValueError(
                f"state holds {log_beta.shape[0]} difficulty rows, "
                f"crowd has {self.crowd.num_instances} instances"
            )

    def _no_evidence_posterior(self, sub_result: InferenceResult) -> np.ndarray:
        # GLAD's E-step gives an unlabeled instance the class-1 prior.
        return np.array([1.0 - self.prior_correct, self.prior_correct])

    def _splice_extras(self, extras: dict, annotated: np.ndarray, unannotated: np.ndarray) -> None:
        # Unlabeled instances keep the neutral difficulty β = 1, so the
        # adopted per-instance state stays aligned with the full stream.
        beta = np.ones(self.crowd.num_instances)
        beta[annotated] = extras["beta"]
        extras["beta"] = beta

    def _batch_twin(self) -> GLAD:
        return GLAD(
            em_iterations=self.em_iterations,
            gradient_steps=self.gradient_steps,
            learning_rate=self.learning_rate,
            prior_correct=self.prior_correct,
            tolerance=0.0,
        )

    def _adopt(self, result: InferenceResult) -> None:
        self._alpha = np.asarray(result.extras["alpha"], dtype=np.float64).copy()
        beta = np.asarray(result.extras["beta"], dtype=np.float64)
        self._log_beta_blocks = [np.log(beta)] if beta.size else []
        self._blocks = [result.posterior] if result.posterior.size else []
        self._label_counts = self.crowd.annotations_per_annotator().astype(np.float64)
