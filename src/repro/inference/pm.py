"""PM (Aydin et al., AAAI 2014): iterative weighted voting for
multiple-choice answer aggregation.

Heuristic truth discovery: alternate (1) estimating each instance's answer
by annotator-weighted voting with (2) re-estimating annotator weights from
their agreement with the current estimates. Weights follow the classic
truth-discovery update ``w_j ∝ -log(error_j)`` with clamping.

Performance: both halves of the iteration run on the shared sparse-crowd
kernels (:mod:`repro.inference.primitives`) — the agreement term is one
:func:`~repro.inference.primitives.annotator_agreement` gather/scatter and
the weighted vote one
:func:`~repro.inference.primitives.weighted_vote_scores` spMM/bincount —
instead of dense einsums over the ``(I, J, K)`` one-hot expansion. The
pre-refactor implementation is kept as :func:`pm_reference`; equivalence
at atol 1e-10 is enforced by ``tests/inference/equivalence_harness.py``.
"""

from __future__ import annotations

import numpy as np

from ..crowd.types import CrowdLabelMatrix
from .base import ConvergenceMonitor, InferenceResult, TruthInferenceMethod
from .majority_vote import majority_vote_posterior
from .primitives import annotator_agreement, normalize_vote_scores, weighted_vote_scores
from .sharding import ShardedTruthInference, ShardStats, shard_base_stats

__all__ = ["PM", "ShardedPM", "pm_reference"]


class PM(TruthInferenceMethod):
    """Iterative weighted majority voting."""

    name = "PM"

    def __init__(self, max_iterations: int = 50, tolerance: float = 1e-6, floor: float = 1e-3) -> None:
        if max_iterations < 1:
            raise ValueError("need at least one iteration")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.floor = floor

    def infer(self, crowd: CrowdLabelMatrix) -> InferenceResult:
        self._check_nonempty(crowd)
        counts = np.maximum(crowd.annotations_per_annotator(), 1)
        posterior = majority_vote_posterior(crowd)
        weights = np.ones(crowd.num_annotators)
        monitor = ConvergenceMonitor(self.tolerance, self.max_iterations)

        while True:
            # Annotator error: expected disagreement with the soft estimate.
            error = 1.0 - annotator_agreement(posterior, crowd) / counts
            error = np.clip(error, self.floor, 1.0 - self.floor)
            weights = -np.log(error)

            scores = np.maximum(weighted_vote_scores(weights, crowd), 0.0)
            new_posterior = normalize_vote_scores(scores)
            delta = float(np.abs(new_posterior - posterior).max(initial=0.0))
            posterior = new_posterior
            if monitor.step(delta):
                break

        extras = monitor.extras()
        extras["weights"] = weights
        return InferenceResult(posterior=posterior, extras=extras)


class ShardedPM(ShardedTruthInference):
    """Map-reduce iterative weighted voting.

    The annotator-error update needs only the merged per-annotator
    agreement sums and label counts; the weighted vote is per-instance and
    runs shard-local under the global weights. Pinned to batch :class:`PM`
    at atol 1e-10 by the equivalence harness across shard layouts.
    """

    name = "PM"

    def __init__(
        self, max_iterations: int = 50, tolerance: float = 1e-6, floor: float = 1e-3
    ) -> None:
        if max_iterations < 1:
            raise ValueError("need at least one iteration")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.floor = floor

    def _init_mapper(self, params, shard):
        block = majority_vote_posterior(shard)
        return block, ShardStats(
            agreement=annotator_agreement(block, shard),
            label_counts=np.asarray(
                shard.annotations_per_annotator(), dtype=np.float64
            ),
            **shard_base_stats(shard),
        )

    def _vote_mapper(self, weights, shard, old_block):
        scores = np.maximum(weighted_vote_scores(weights, shard), 0.0)
        block = normalize_vote_scores(scores)
        return block, ShardStats(
            agreement=annotator_agreement(block, shard),
            delta=float(np.abs(block - old_block).max(initial=0.0)),
        )

    def _infer(self, ctx) -> InferenceResult:
        _, K, blocks, stats = self._initial_pass(ctx, self._init_mapper)
        self._require_annotated(stats)
        num_shards = len(blocks)
        observations = stats.observations
        counts = np.maximum(stats.label_counts, 1)
        monitor = ConvergenceMonitor(self.tolerance, self.max_iterations)

        while True:
            # Global weight update from the merged agreement sums.
            error = 1.0 - stats.agreement / counts
            error = np.clip(error, self.floor, 1.0 - self.floor)
            weights = -np.log(error)

            blocks, stats = self._pass(ctx, blocks, self._vote_mapper, weights)
            if monitor.step(stats.delta):
                break

        extras = monitor.extras()
        extras.update(weights=weights, shards=num_shards, observations=observations)
        return InferenceResult(posterior=self._concat(blocks, K), extras=extras)


def pm_reference(
    crowd: CrowdLabelMatrix,
    max_iterations: int = 50,
    tolerance: float = 1e-6,
    floor: float = 1e-3,
) -> InferenceResult:
    """Pre-refactor PM (dense one-hot einsums over ``(I, J, K)``).

    Kept as the executable specification for the equivalence harness and
    the benchmark baseline; use :class:`PM`.
    """
    TruthInferenceMethod._check_nonempty(crowd)
    one_hot = crowd.one_hot()                 # (I, J, K)
    observed = crowd.observed_mask
    counts = observed.sum(axis=0)             # labels per annotator
    posterior = majority_vote_posterior(crowd)
    weights = np.ones(crowd.num_annotators)

    iterations_used = max_iterations
    for iteration in range(max_iterations):
        # Annotator error: expected disagreement with the soft estimate.
        agreement = np.einsum("ijk,ik->ij", one_hot, posterior)
        per_annotator_agreement = np.where(observed, agreement, 0.0).sum(axis=0)
        error = 1.0 - per_annotator_agreement / np.maximum(counts, 1)
        error = np.clip(error, floor, 1.0 - floor)
        weights = -np.log(error)

        scores = np.einsum("j,ijk->ik", weights, one_hot)
        scores = np.maximum(scores, 0.0)
        totals = scores.sum(axis=1, keepdims=True)
        new_posterior = np.where(
            totals > 0, scores / np.where(totals > 0, totals, 1.0),
            np.full_like(scores, 1.0 / crowd.num_classes),
        )
        delta = float(np.abs(new_posterior - posterior).max())
        posterior = new_posterior
        if delta < tolerance:
            iterations_used = iteration + 1
            break

    return InferenceResult(
        posterior=posterior,
        extras={"weights": weights, "iterations": iterations_used},
    )
