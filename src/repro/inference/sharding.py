"""Shard-and-merge truth inference: map-reduce EM over crowd shards.

The batch methods in this package hold one in-memory crowd per run; the
streaming layer (PR 4) relaxed that over *time* (batches arrive, sufficient
statistics update incrementally). This module relaxes it over *space*: a
crowd is a collection of shards, every E/M round maps each shard to a
:class:`ShardStats` of mergeable sufficient statistics with the same
sparse-COO kernels the batch methods use (:mod:`repro.inference.primitives`),
reduces with the associative :meth:`ShardStats.merge`, and runs one global
closed-form M-step. Peak crowd-data memory is bounded by the largest shard
(plus the O(I·K) posterior the caller asked for), and the map stage is
embarrassingly parallel.

**Shard sources.** Every sharded method accepts, in order of increasing
externality:

* a *sequence* of shards — e.g. the zero-copy views from
  :meth:`~repro.crowd.types.CrowdLabelMatrix.shards` (in-memory sharding:
  shard caches persist across passes, so repeated rounds cost no rebuild);
* a zero-arg *callable* returning a fresh iterator of shards — the
  out-of-core form: each EM round lazily loads, consumes, and drops one
  shard at a time (e.g. :class:`~repro.crowd.sharding.SparseLabelShard`
  blocks read from disk). The callable must yield the same shard partition
  in the same order every pass — posterior blocks are carried by position;
* a one-shot *iterator* — accepted for single-pass methods (majority
  vote); iterative methods raise a clear error asking for one of the
  re-iterable forms above.

A "shard" is any object exposing the kernel-facing container surface (see
:mod:`repro.crowd.sharding`): whole :class:`~repro.crowd.types.
CrowdLabelMatrix` containers, :class:`~repro.crowd.sharding.CrowdShard`
views, and :class:`~repro.crowd.sharding.SparseLabelShard` COO blocks all
qualify. All shards must agree on the annotator axis and class count;
their *active* annotators may overlap or be disjoint — statistics merge
per annotator either way.

**Parallel map.** ``infer_sharded(..., executor=...)`` accepts a
``concurrent.futures``-style executor (``ThreadPoolExecutor`` is the
intended hook — the mappers are closures over the current global
parameters, which processes cannot pickle). Shards are submitted through
a bounded in-flight window (2× the executor's worker count), so a lazy
out-of-core source keeps its O(largest shard) memory bound even under
the parallel map; results are consumed in submission order and the
reduce happens on the caller's thread, so executor use never changes the
result.

**Equivalence contract.** Every method registered under the ``"sharded"``
registry kind reproduces its batch twin (same name, kind
``"classification"``) at atol 1e-10 — posterior, confusion matrices, and
iteration count — on any shard layout: one shard, many, single-instance
shards, empty shards interleaved. The randomized harness in
``tests/inference/equivalence_harness.py`` pins this across seeded crowds
and layouts, and its meta-test refuses future ``"sharded"`` registrations
that do not name a batch reference. The only divergence from the batch
twin is floating-point summation *grouping* (per-shard partial sums versus
one global scatter), which is why the pin is atol and not bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from .base import InferenceResult

__all__ = [
    "ShardStats",
    "merge_shard_stats",
    "shard_base_stats",
    "as_shard_source",
    "ShardedTruthInference",
    "run_sharded",
]


def _merged_array(a: np.ndarray | None, b: np.ndarray | None) -> np.ndarray | None:
    """Elementwise sum with None as the identity (no contribution)."""
    if a is None:
        return b
    if b is None:
        return a
    return a + b


@dataclass(frozen=True)
class ShardStats:
    """Mergeable sufficient statistics of one shard under one model state.

    Every aggregate a global M-step needs decomposes into a sum (or max)
    of per-shard terms; this dataclass names the terms the sharded methods
    use and :meth:`merge` combines them. ``ShardStats()`` is the identity;
    ``merge`` is commutative (IEEE addition is) and associative up to
    floating-point rounding — integer counts merge exactly. Array fields
    default to None ("no contribution"), so stats from different pass
    kinds (an E-pass carrying confusion counts, a gradient pass carrying
    only ``grad_alpha``) merge without shape bookkeeping.

    Fields
    ------
    instances / observations / unannotated:
        Shard size, observed-label count, and how many of the shard's
        instances carry no label at all (the batch methods refuse those;
        the sharded twins must refuse identically).
    confusion:
        ``(J, K, K)`` soft confusion counts of the shard's posterior block
        (DS/IBCC M-step numerator).
    class_totals:
        ``(K,)`` posterior column sums (DS prior / IBCC class counts).
    vote_totals:
        ``(K,)`` raw vote counts (majority-vote diagnostics).
    agreement:
        ``(J,)`` posterior-mass agreement sums (PM/CATD weight updates).
    label_counts:
        ``(J,)`` observed labels per annotator (normalizers, chi-square
        degrees of freedom).
    grad_alpha:
        ``(J,)`` GLAD ability-gradient accumulator (summed raw residual
        scatter; the driver divides by the merged ``label_counts``).
    log_likelihood:
        Shard's E-step log evidence (summed).
    delta:
        Max-abs posterior change on the shard (merged via max — the global
        convergence criterion of every batch twin).
    """

    instances: int = 0
    observations: int = 0
    unannotated: int = 0
    confusion: np.ndarray | None = None
    class_totals: np.ndarray | None = None
    vote_totals: np.ndarray | None = None
    agreement: np.ndarray | None = None
    label_counts: np.ndarray | None = None
    grad_alpha: np.ndarray | None = None
    log_likelihood: float = 0.0
    delta: float = 0.0

    def merge(self, other: "ShardStats") -> "ShardStats":
        """Combine two shards' statistics (pure — operands untouched)."""
        return ShardStats(
            instances=self.instances + other.instances,
            observations=self.observations + other.observations,
            unannotated=self.unannotated + other.unannotated,
            confusion=_merged_array(self.confusion, other.confusion),
            class_totals=_merged_array(self.class_totals, other.class_totals),
            vote_totals=_merged_array(self.vote_totals, other.vote_totals),
            agreement=_merged_array(self.agreement, other.agreement),
            label_counts=_merged_array(self.label_counts, other.label_counts),
            grad_alpha=_merged_array(self.grad_alpha, other.grad_alpha),
            log_likelihood=self.log_likelihood + other.log_likelihood,
            delta=max(self.delta, other.delta),
        )


def merge_shard_stats(stats: Iterable[ShardStats]) -> ShardStats:
    """Fold an iterable of stats left-to-right from the identity."""
    merged = ShardStats()
    for item in stats:
        merged = merged.merge(item)
    return merged


def shard_base_stats(shard) -> dict:
    """The size/coverage fields every mapper includes."""
    per_instance = shard.annotations_per_instance()
    return dict(
        instances=shard.num_instances,
        observations=int(per_instance.sum()),
        unannotated=int((per_instance == 0).sum()),
    )


def as_shard_source(shards) -> Callable[[], Iterable]:
    """Normalize a shard source into a fresh-iterable-per-pass callable.

    See the module docstring for the three accepted forms. One-shot
    iterators are handed out once; a second pass raises with instructions
    to use a sequence or callable instead.
    """
    if callable(shards):
        return shards
    if isinstance(shards, Sequence):
        return lambda: shards
    if hasattr(shards, "__iter__"):
        state = {"used": False}

        def once():
            if state["used"]:
                raise ValueError(
                    "shard source is a one-shot iterator but the method needs "
                    "multiple passes over the shards; pass a sequence of shards "
                    "(in-memory) or a zero-arg callable returning a fresh "
                    "iterator per pass (out-of-core)"
                )
            state["used"] = True
            return shards

        return once
    raise TypeError(
        f"shard source must be a sequence, iterator, or callable, "
        f"got {type(shards).__name__}"
    )


class ShardedTruthInference:
    """Base class for the map-reduce twins of the batch methods.

    Subclasses implement :meth:`infer_sharded` on top of the pass plumbing
    here: :meth:`_initial_pass` discovers the (J, K) dimensions, runs the
    first map, and merges; :meth:`_pass` re-pairs each shard with its
    carried per-shard state (posterior blocks, GLAD difficulties) by
    position and maps again. Merging happens incrementally as map results
    arrive, so the reduce never holds more than two :class:`ShardStats`.
    """

    name = "sharded-base"

    def infer_sharded(self, shards, executor=None) -> InferenceResult:
        """Run inference over a shard source (see module docstring)."""
        raise NotImplementedError

    def infer(self, crowd, num_shards: int = 4, executor=None) -> InferenceResult:
        """Convenience: shard an in-memory container and run."""
        return self.infer_sharded(crowd.shards(num_shards), executor=executor)

    # -- pass plumbing -------------------------------------------------- #
    @staticmethod
    def _map_results(fn, items, executor):
        """Yield ``fn`` over ``items`` in order, optionally via an executor.

        The parallel path submits through a bounded window rather than
        ``executor.map`` (which drains the whole iterable up front): at
        most ``2 × max_workers`` shards are in flight, so lazily loaded
        out-of-core sources never materialize the full crowd. Results are
        yielded in submission order.
        """
        if executor is None:
            return (fn(item) for item in items)

        def windowed():
            from collections import deque

            window = max(2 * getattr(executor, "_max_workers", 4), 2)
            pending = deque()
            for item in items:
                pending.append(executor.submit(fn, item))
                if len(pending) >= window:
                    yield pending.popleft().result()
            while pending:
                yield pending.popleft().result()

        return windowed()

    def _initial_pass(self, source, executor, mapper):
        """First map: returns ``(J, K, per-shard states, merged stats)``."""

        def wrapped(shard):
            state, stats = mapper(shard)
            return shard.num_annotators, shard.num_classes, state, stats

        states, merged, dims = [], ShardStats(), None
        for J, K, state, stats in self._map_results(wrapped, source(), executor):
            if dims is None:
                dims = (J, K)
            elif dims != (J, K):
                raise ValueError(
                    f"shards disagree on (annotators, classes): "
                    f"{sorted({dims, (J, K)})}"
                )
            states.append(state)
            merged = merged.merge(stats)
        if dims is None:
            raise ValueError("shard source yielded no shards")
        return dims[0], dims[1], states, merged

    def _pass(self, source, states, executor, mapper):
        """One map over ``zip(shards, carried states)``; merged reduce."""

        def wrapped(pair):
            return mapper(*pair)

        new_states, merged = [], ShardStats()
        pairs = zip(source(), states, strict=True)
        for state, stats in self._map_results(wrapped, pairs, executor):
            new_states.append(state)
            merged = merged.merge(stats)
        return new_states, merged

    @staticmethod
    def _require_annotated(stats: ShardStats) -> None:
        """Mirror the batch methods' refusal of label-free instances."""
        if stats.unannotated:
            raise ValueError(
                f"{stats.unannotated} instances have no annotations at all"
            )

    @staticmethod
    def _concat(blocks: list[np.ndarray], num_classes: int) -> np.ndarray:
        if not blocks:
            return np.zeros((0, num_classes))
        return np.concatenate(blocks, axis=0)


def run_sharded(method, shards, executor=None, **overrides) -> InferenceResult:
    """Resolve and run a sharded truth-inference method over a shard source.

    ``method`` is a registered ``"sharded"`` name (``"DS"``, ``"MV"``, ...;
    constructor ``overrides`` are forwarded to the registry factory) or an
    already-built :class:`ShardedTruthInference` instance. ``shards`` is
    any source form :func:`as_shard_source` accepts; ``executor`` is the
    optional map-stage hook (``concurrent.futures`` thread pools).
    """
    if isinstance(method, str):
        from .registry import get_method  # import here: registry imports the method modules

        method = get_method(method, kind="sharded", **overrides)
    elif overrides:
        raise TypeError(
            "constructor overrides require a method name; got an instance "
            f"of {type(method).__name__} plus overrides {sorted(overrides)}"
        )
    if not isinstance(method, ShardedTruthInference):
        raise TypeError(
            f"expected a sharded method name or instance, got {type(method).__name__}"
        )
    return method.infer_sharded(shards, executor=executor)
