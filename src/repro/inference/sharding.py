"""Shard-and-merge truth inference: map-reduce EM over crowd shards.

The batch methods in this package hold one in-memory crowd per run; the
streaming layer (PR 4) relaxed that over *time* (batches arrive, sufficient
statistics update incrementally). This module relaxes it over *space*: a
crowd is a collection of shards, every E/M round maps each shard to a
:class:`ShardStats` of mergeable sufficient statistics with the same
sparse-COO kernels the batch methods use (:mod:`repro.inference.primitives`),
reduces with the associative :meth:`ShardStats.merge`, and runs one global
closed-form M-step. Peak crowd-data memory is bounded by the largest shard
(plus the O(I·K) posterior the caller asked for), and the map stage is
embarrassingly parallel — across threads *or* worker processes.

**Shard sources.** Every sharded method accepts, in order of increasing
externality:

* a *sequence* of shards — e.g. the zero-copy views from
  :meth:`~repro.crowd.types.CrowdLabelMatrix.shards` (in-memory sharding:
  shard caches persist across passes, so repeated rounds cost no rebuild),
  or :class:`~repro.crowd.sharding.ShardHandle` descriptors of on-disk
  shard files (the parallel out-of-core form — see
  :func:`~repro.crowd.sharding.save_shard_handles`);
* a zero-arg *callable* returning a fresh iterator of shards — the
  streaming out-of-core form: each EM round lazily loads, consumes, and
  drops one shard at a time. The callable must yield the same shard
  partition in the same order every pass — posterior blocks are carried
  by position;
* a one-shot *iterator* — accepted for single-pass methods (majority
  vote); iterative methods raise a clear error asking for one of the
  re-iterable forms above.

A "shard" is any object exposing the kernel-facing container surface (see
:mod:`repro.crowd.sharding`); :class:`~repro.crowd.sharding.ShardHandle`
entries are resolved (opened, memmapped, localized) where the map runs —
in a worker process when one is attached.

**Parallel map and the pickle boundary.** ``infer_sharded(...)`` takes the
map stage parallel three ways: ``executor=`` with a ``ThreadPoolExecutor``
(shared memory, GIL-bound kernels), ``executor=`` with a
``ProcessPoolExecutor``, or ``workers=N`` — a convenience that builds a
process pool whose initializer pre-opens the run's shard handles in every
worker. The process-based map is engineered so label arrays never cross
the pickle boundary:

* the unit of work shipped per task is a :class:`~repro.crowd.sharding.
  ShardHandle` (a path plus a few ints); the worker opens the memmap
  itself and caches the opened shard (keyed by handle) across passes.
  ``workers=N`` spills in-memory shards of a sequence source to handle
  form automatically (one file per shard in a run-scoped temp dir);
* per-round global model state (log-confusions, digamma expectations,
  weights, GLAD ``α``) is *broadcast once per pass* — pickled to one
  file that every worker loads and caches on first touch — rather than
  serialized into each of the N per-shard tasks;
* only small :class:`ShardStats` (O(J·K²)) and per-shard posterior
  blocks (O(shard instances · K)) return across the boundary.

Shards are submitted through a bounded in-flight window (explicit
``window=`` argument, default ``2 × max_workers`` falling back to
``os.cpu_count()``), so a lazy out-of-core source keeps its O(largest
shard) memory bound even under the parallel map; results are consumed in
submission order.

**Deterministic tree reduce.** ``ShardStats.merge`` is associative only
up to floating-point rounding, so merge *order* is part of the numerical
contract. Every pass reduces through :class:`TreeReducer`, a streaming
balanced (binary-counter) tree fold whose merge shape is a pure function
of the shard count — shard ``i`` always occupies leaf ``i``, pairs merge
bottom-up. Combined with submission-order result consumption, the
posterior is **bit-identical** across serial, thread-pool, and
process-pool execution for a fixed shard layout, regardless of worker
count or completion order. (Across *different* shard counts the grouping
differs, which is why the batch contract below is atol, not bit-for-bit.)

**Equivalence contract.** Every method registered under the ``"sharded"``
registry kind reproduces its batch twin (same name, kind
``"classification"``) at atol 1e-10 — posterior, confusion matrices, and
iteration count — on any shard layout: one shard, many, single-instance
shards, empty shards interleaved, on-disk handle layouts. The randomized
harness in ``tests/inference/equivalence_harness.py`` pins this across
seeded crowds, layouts, and executors, and its meta-test refuses future
``"sharded"`` registrations that do not name a batch reference. The only
divergence from the batch twin is floating-point summation *grouping*
(per-shard partial sums versus one global scatter).
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
from collections import deque
from dataclasses import dataclass
from functools import partial
from typing import Callable, Iterable, Sequence

import numpy as np

from ..crowd.sharding import ShardHandle, as_sparse_shard
from .base import InferenceResult

__all__ = [
    "ShardStats",
    "TreeReducer",
    "merge_shard_stats",
    "tree_merge_shard_stats",
    "shard_base_stats",
    "as_shard_source",
    "resolve_shard",
    "ShardedTruthInference",
    "run_sharded",
]


def _merged_array(a: np.ndarray | None, b: np.ndarray | None) -> np.ndarray | None:
    """Elementwise sum with None as the identity (no contribution)."""
    if a is None:
        return b
    if b is None:
        return a
    return a + b


def _canonical_layout(value):
    """C-contiguous copies of every array in a (possibly nested) value.

    Part of the bit-identity guarantee: a pickle round trip silently
    rewrites transposed/strided views as C-contiguous arrays, and numpy
    reductions order their additions by memory layout — so the same values
    can reduce to *different bits* depending on whether they crossed a
    process boundary. Canonicalizing layout at the task boundary (mapper
    states, per-pass params, stats fields) makes serial, thread, and
    process execution feed bitwise-identical inputs to every reduction.
    Contiguous arrays pass through untouched.
    """
    if isinstance(value, np.ndarray):
        return np.ascontiguousarray(value)
    if isinstance(value, tuple):
        return tuple(_canonical_layout(item) for item in value)
    if isinstance(value, list):
        return [_canonical_layout(item) for item in value]
    return value


@dataclass(frozen=True)
class ShardStats:
    """Mergeable sufficient statistics of one shard under one model state.

    Every aggregate a global M-step needs decomposes into a sum (or max)
    of per-shard terms; this dataclass names the terms the sharded methods
    use and :meth:`merge` combines them. ``ShardStats()`` is the identity;
    ``merge`` is commutative (IEEE addition is) and associative up to
    floating-point rounding — integer counts merge exactly, which is why
    the drivers reduce through the fixed-shape :class:`TreeReducer` rather
    than an arbitrary fold. Array fields default to None ("no
    contribution"), so stats from different pass kinds (an E-pass carrying
    confusion counts, a gradient pass carrying only ``grad_alpha``) merge
    without shape bookkeeping.

    Fields
    ------
    instances / observations / unannotated:
        Shard size, observed-label count, and how many of the shard's
        instances carry no label at all (the batch methods refuse those;
        the sharded twins must refuse identically).
    confusion:
        ``(J, K, K)`` soft confusion counts of the shard's posterior block
        (DS/IBCC M-step numerator).
    class_totals:
        ``(K,)`` posterior column sums (DS prior / IBCC class counts).
    vote_totals:
        ``(K,)`` raw vote counts (majority-vote diagnostics).
    agreement:
        ``(J,)`` posterior-mass agreement sums (PM/CATD weight updates).
    label_counts:
        ``(J,)`` observed labels per annotator (normalizers, chi-square
        degrees of freedom).
    grad_alpha:
        ``(J,)`` GLAD ability-gradient accumulator (summed raw residual
        scatter; the driver divides by the merged ``label_counts``).
    log_likelihood:
        Shard's E-step log evidence (summed).
    delta:
        Max-abs posterior change on the shard (merged via max — the global
        convergence criterion of every batch twin).
    """

    instances: int = 0
    observations: int = 0
    unannotated: int = 0
    confusion: np.ndarray | None = None
    class_totals: np.ndarray | None = None
    vote_totals: np.ndarray | None = None
    agreement: np.ndarray | None = None
    label_counts: np.ndarray | None = None
    grad_alpha: np.ndarray | None = None
    log_likelihood: float = 0.0
    delta: float = 0.0

    _ARRAY_FIELDS = ("confusion", "class_totals", "vote_totals",
                     "agreement", "label_counts", "grad_alpha")

    def __post_init__(self) -> None:
        # Canonicalize layout at construction (see _canonical_layout):
        # mappers hand in strided views (einsum transposes in particular),
        # and a reduction over a view sums in a different order than over
        # the C-contiguous copy a pickle round trip would produce.
        for name in self._ARRAY_FIELDS:
            value = getattr(self, name)
            if isinstance(value, np.ndarray) and not value.flags["C_CONTIGUOUS"]:
                object.__setattr__(self, name, np.ascontiguousarray(value))

    def merge(self, other: "ShardStats") -> "ShardStats":
        """Combine two shards' statistics (pure — operands untouched)."""
        return ShardStats(
            instances=self.instances + other.instances,
            observations=self.observations + other.observations,
            unannotated=self.unannotated + other.unannotated,
            confusion=_merged_array(self.confusion, other.confusion),
            class_totals=_merged_array(self.class_totals, other.class_totals),
            vote_totals=_merged_array(self.vote_totals, other.vote_totals),
            agreement=_merged_array(self.agreement, other.agreement),
            label_counts=_merged_array(self.label_counts, other.label_counts),
            grad_alpha=_merged_array(self.grad_alpha, other.grad_alpha),
            log_likelihood=self.log_likelihood + other.log_likelihood,
            delta=max(self.delta, other.delta),
        )


def merge_shard_stats(stats: Iterable[ShardStats]) -> ShardStats:
    """Fold an iterable of stats left-to-right from the identity.

    The merge shape depends on nothing but the item count, so this is
    deterministic too — but it groups as ``(((a·b)·c)·d)``, a different
    rounding from :func:`tree_merge_shard_stats`. The drivers use the
    tree; this fold is kept for the algebra tests and ad-hoc reduction.
    """
    merged = ShardStats()
    for item in stats:
        merged = merged.merge(item)
    return merged


class TreeReducer:
    """Streaming balanced binary-tree fold over :meth:`ShardStats.merge`.

    Pushed items are the leaves, in push order; whenever two subtrees of
    equal size exist they merge immediately (the binary-counter / pairwise
    summation scheme), so at most ``O(log n)`` partial merges are held and
    the final tree shape — hence every float's rounding path — is a pure
    function of ``n``. For ``n = 4``: ``(s0·s1)·(s2·s3)``; for ``n = 3``:
    ``(s0·s1)·s2``. This is what makes the sharded posteriors
    bit-identical across serial, thread, and process execution: the
    *shape* never depends on task completion timing.
    """

    def __init__(self) -> None:
        self._levels: list[ShardStats | None] = []
        self.count = 0

    def push(self, stats: ShardStats) -> None:
        """Add the next leaf; merges complete subtrees eagerly."""
        self.count += 1
        level = 0
        while level < len(self._levels) and self._levels[level] is not None:
            stats = self._levels[level].merge(stats)
            self._levels[level] = None
            level += 1
        if level == len(self._levels):
            self._levels.append(stats)
        else:
            self._levels[level] = stats

    def result(self) -> ShardStats:
        """Fold the remaining partial subtrees, smallest first (pure)."""
        merged: ShardStats | None = None
        for stats in self._levels:
            if stats is None:
                continue
            merged = stats if merged is None else stats.merge(merged)
        return ShardStats() if merged is None else merged


def tree_merge_shard_stats(stats: Iterable[ShardStats]) -> ShardStats:
    """Reduce an iterable of stats through :class:`TreeReducer`."""
    reducer = TreeReducer()
    for item in stats:
        reducer.push(item)
    return reducer.result()


def shard_base_stats(shard) -> dict:
    """The size/coverage fields every mapper includes."""
    per_instance = shard.annotations_per_instance()
    return dict(
        instances=shard.num_instances,
        observations=int(per_instance.sum()),
        unannotated=int((per_instance == 0).sum()),
    )


def as_shard_source(shards) -> Callable[[], Iterable]:
    """Normalize a shard source into a fresh-iterable-per-pass callable.

    See the module docstring for the three accepted forms. One-shot
    iterators are handed out once; a second pass raises with instructions
    to use a sequence or callable instead.
    """
    if callable(shards):
        return shards
    if isinstance(shards, Sequence):
        return lambda: shards
    if hasattr(shards, "__iter__"):
        state = {"used": False}

        def once():
            if state["used"]:
                raise ValueError(
                    "shard source is a one-shot iterator but the method needs "
                    "multiple passes over the shards; pass a sequence of shards "
                    "(in-memory) or a zero-arg callable returning a fresh "
                    "iterator per pass (out-of-core)"
                )
            state["used"] = True
            return shards

        return once
    raise TypeError(
        f"shard source must be a sequence, iterator, or callable, "
        f"got {type(shards).__name__}"
    )


# -- worker-side resolution (runs in whichever process executes the map) --- #
#
# Shard files are treated as immutable while handles over them are live:
# the caches below key opened shards by handle (path + range + flags), so
# rewriting a path with different data mid-run is undefined.

_RESOLVED_SHARDS: dict[ShardHandle, object] = {}
_RESOLVED_SHARDS_LIMIT = 256
_BROADCAST_CACHE: dict[str, object] = {}


def resolve_shard(shard):
    """Open a :class:`~repro.crowd.sharding.ShardHandle`; pass others through.

    Opened shards are cached per process (keyed by the frozen handle), so
    iterative methods re-localize and re-build incidence caches once per
    worker, not once per pass.
    """
    if not isinstance(shard, ShardHandle):
        return shard
    opened = _RESOLVED_SHARDS.get(shard)
    if opened is None:
        if len(_RESOLVED_SHARDS) >= _RESOLVED_SHARDS_LIMIT:
            _RESOLVED_SHARDS.clear()
        opened = shard.open()
        _RESOLVED_SHARDS[shard] = opened
    return opened


def _load_broadcast(path: str):
    """Load per-pass parameters broadcast as a pickle file (cached).

    Each pass writes a fresh path, so the cache holds exactly the current
    pass's parameters: first task of a pass loads, the rest hit the cache.
    """
    params = _BROADCAST_CACHE.get(path)
    if params is None:
        with open(path, "rb") as stream:
            params = pickle.load(stream)
        _BROADCAST_CACHE.clear()
        _BROADCAST_CACHE[path] = params
    return params


def _resolve_payload(payload):
    """Unpack ``(kind, mapper, params)``; kind "broadcast" reads the file."""
    kind, mapper, params = payload
    if kind == "broadcast":
        params = _load_broadcast(params)
    return mapper, params


def _run_init_task(payload, shard):
    """Initial-pass unit of work (module-level: must pickle by name)."""
    mapper, params = _resolve_payload(payload)
    shard = resolve_shard(shard)
    state, stats = mapper(params, shard)
    return shard.num_annotators, shard.num_classes, state, stats


def _run_pass_task(payload, pair):
    """Iterative-pass unit of work over one ``(shard, carried state)``."""
    shard, state = pair
    mapper, params = _resolve_payload(payload)
    return mapper(params, resolve_shard(shard), state)


def _warm_worker(handles: tuple) -> None:
    """Process-pool initializer: pre-open the run's shard handles."""
    for handle in handles:
        try:
            resolve_shard(handle)
        except Exception:
            # A broken handle surfaces with a full traceback on the first
            # task that touches it; the warmup must not kill the worker.
            pass


def _is_process_executor(executor) -> bool:
    from concurrent.futures import ProcessPoolExecutor

    return isinstance(executor, ProcessPoolExecutor)


def _window_size(executor, window: int | None) -> int:
    """In-flight window: explicit argument, else 2× the pool's workers.

    ``max_workers`` is read via ``getattr`` because the attribute is an
    implementation detail of the stdlib pools; executors without it fall
    back to ``os.cpu_count()`` instead of a hard-coded guess.
    """
    if window is not None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        return int(window)
    max_workers = getattr(executor, "_max_workers", None)
    if not max_workers:
        max_workers = os.cpu_count() or 1
    return max(2 * int(max_workers), 2)


class _MapContext:
    """Per-run parallel plumbing, built by ``infer_sharded``.

    Normalizes the shard source, attaches (or builds, for ``workers=N``)
    the executor, spills in-memory shards to :class:`~repro.crowd.
    sharding.ShardHandle` files when a process pool will consume them, and
    brokers the per-pass parameter broadcast. Context-manages its own
    resources: an owned executor is shut down and the run-scoped temp dir
    (spilled shards + broadcast files) removed on exit.
    """

    def __init__(self, shards, executor=None, workers: int | None = None,
                 window: int | None = None) -> None:
        if workers is not None:
            if executor is not None:
                raise TypeError("pass either executor= or workers=, not both")
            if workers < 1:
                raise ValueError(f"need at least one worker, got {workers}")
        self.window = window
        self._tempdir: str | None = None
        self._owned_executor = None
        self._broadcast_count = 0
        if workers is not None:
            from concurrent.futures import ProcessPoolExecutor

            if isinstance(shards, Sequence):
                shards = [
                    self._spill_to_handle(index, shard)
                    for index, shard in enumerate(shards)
                ]
                handles = tuple(s for s in shards if isinstance(s, ShardHandle))
            else:
                # Lazy/callable sources are consumed as they come; any
                # non-handle shards they yield are pickled per task.
                handles = ()
            executor = self._owned_executor = ProcessPoolExecutor(
                max_workers=workers, initializer=_warm_worker, initargs=(handles,)
            )
        self.source = as_shard_source(shards)
        self.executor = executor
        self.is_process = _is_process_executor(executor) if executor else False

    def _ensure_tempdir(self) -> str:
        if self._tempdir is None:
            self._tempdir = tempfile.mkdtemp(prefix="repro-sharded-")
        return self._tempdir

    def _spill_to_handle(self, index: int, shard):
        """Write one in-memory shard to disk and describe it by handle."""
        if isinstance(shard, ShardHandle):
            return shard
        sparse = as_sparse_shard(shard)
        path = os.path.join(self._ensure_tempdir(), f"shard-{index:05d}.npy")
        sparse.save(path)
        return ShardHandle(
            path=path,
            num_instances=sparse.num_instances,
            num_annotators=sparse.num_annotators,
            num_classes=sparse.num_classes,
        )

    def payload(self, mapper, params=None):
        """Wrap a mapper + its per-pass params for the task functions.

        Thread/serial execution inlines the params (shared memory); a
        process pool gets them broadcast once per pass via a pickle file,
        so N shard tasks don't ship N copies of the model state.
        """
        params = _canonical_layout(params)
        if params is None or not self.is_process:
            return ("inline", mapper, params)
        self._broadcast_count += 1
        path = os.path.join(
            self._ensure_tempdir(), f"broadcast-{self._broadcast_count:06d}.pkl"
        )
        with open(path, "wb") as stream:
            pickle.dump(params, stream, protocol=pickle.HIGHEST_PROTOCOL)
        return ("broadcast", mapper, path)

    def map(self, task, payload, items):
        """Run ``task(payload, item)`` over items, in submission order."""
        return ShardedTruthInference._map_results(
            partial(task, payload), items, self.executor, window=self.window
        )

    def close(self) -> None:
        if self._owned_executor is not None:
            self._owned_executor.shutdown(wait=True)
            self._owned_executor = None
        if self._tempdir is not None:
            shutil.rmtree(self._tempdir, ignore_errors=True)
            self._tempdir = None

    def __enter__(self) -> "_MapContext":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ShardedTruthInference:
    """Base class for the map-reduce twins of the batch methods.

    Subclasses implement :meth:`_infer` over the pass plumbing here, with
    their mappers as *bound methods* taking ``(params, shard[, state])`` —
    bound methods pickle by instance + name, which is what lets one code
    path serve serial, thread-pool, and process-pool execution (and is the
    precondition for the bit-identity guarantee). :meth:`_initial_pass`
    discovers the (J, K) dimensions, runs the first map, and tree-reduces;
    :meth:`_pass` re-pairs each shard with its carried per-shard state
    (posterior blocks, GLAD difficulties) by position and maps again.
    Per-pass global parameters go through ``ctx.payload`` so a process
    pool broadcasts them once, not per shard.
    """

    name = "sharded-base"

    def infer_sharded(self, shards, executor=None, workers: int | None = None,
                      window: int | None = None) -> InferenceResult:
        """Run inference over a shard source (see module docstring).

        ``executor=`` attaches a ``concurrent.futures`` pool (thread or
        process); ``workers=N`` builds a process pool for the run, with a
        shard-warming initializer, and tears it down after. ``window=``
        overrides the bounded in-flight submission window.
        """
        with _MapContext(shards, executor=executor, workers=workers,
                         window=window) as ctx:
            return self._infer(ctx)

    def _infer(self, ctx: _MapContext) -> InferenceResult:
        raise NotImplementedError

    def infer(self, crowd, num_shards: int = 4, executor=None,
              workers: int | None = None, window: int | None = None) -> InferenceResult:
        """Convenience: shard an in-memory container and run."""
        return self.infer_sharded(
            crowd.shards(num_shards), executor=executor, workers=workers,
            window=window,
        )

    # -- pass plumbing -------------------------------------------------- #
    @staticmethod
    def _map_results(fn, items, executor, window: int | None = None):
        """Yield ``fn`` over ``items`` in order, optionally via an executor.

        The parallel path submits through a bounded window rather than
        ``executor.map`` (which drains the whole iterable up front): at
        most ``window`` shards are in flight (default ``2 × max_workers``,
        falling back to ``os.cpu_count()`` for executors without that
        attribute — see :func:`_window_size`), so lazily loaded
        out-of-core sources never materialize the full crowd. Results are
        yielded in submission order regardless of completion order.
        """
        if executor is None:
            return (fn(item) for item in items)

        def windowed():
            limit = _window_size(executor, window)
            pending = deque()
            for item in items:
                pending.append(executor.submit(fn, item))
                if len(pending) >= limit:
                    yield pending.popleft().result()
            while pending:
                yield pending.popleft().result()

        return windowed()

    def _initial_pass(self, ctx: _MapContext, mapper, params=None):
        """First map: returns ``(J, K, per-shard states, merged stats)``."""
        payload = ctx.payload(mapper, params)
        states, reducer, dims = [], TreeReducer(), None
        for J, K, state, stats in ctx.map(_run_init_task, payload, ctx.source()):
            if dims is None:
                dims = (J, K)
            elif dims != (J, K):
                raise ValueError(
                    f"shards disagree on (annotators, classes): "
                    f"{sorted({dims, (J, K)})}"
                )
            states.append(_canonical_layout(state))
            reducer.push(stats)
        if dims is None:
            raise ValueError("shard source yielded no shards")
        return dims[0], dims[1], states, reducer.result()

    def _pass(self, ctx: _MapContext, states, mapper, params=None):
        """One map over ``zip(shards, carried states)``; tree-reduced."""
        payload = ctx.payload(mapper, params)
        new_states, reducer = [], TreeReducer()
        pairs = zip(ctx.source(), states, strict=True)
        for state, stats in ctx.map(_run_pass_task, payload, pairs):
            new_states.append(_canonical_layout(state))
            reducer.push(stats)
        return new_states, reducer.result()

    @staticmethod
    def _require_annotated(stats: ShardStats) -> None:
        """Mirror the batch methods' refusal of label-free instances."""
        if stats.unannotated:
            raise ValueError(
                f"{stats.unannotated} instances have no annotations at all"
            )

    @staticmethod
    def _concat(blocks: list[np.ndarray], num_classes: int) -> np.ndarray:
        if not blocks:
            return np.zeros((0, num_classes))
        return np.concatenate(blocks, axis=0)


def run_sharded(method, shards, executor=None, workers: int | None = None,
                window: int | None = None, **overrides) -> InferenceResult:
    """Resolve and run a sharded truth-inference method over a shard source.

    ``method`` is a registered ``"sharded"`` name (``"DS"``, ``"MV"``, ...;
    constructor ``overrides`` are forwarded to the registry factory) or an
    already-built :class:`ShardedTruthInference` instance. ``shards`` is
    any source form :func:`as_shard_source` accepts. ``executor`` attaches
    a ``concurrent.futures`` thread or process pool; ``workers=N`` builds
    a process pool for the run instead (see
    :meth:`ShardedTruthInference.infer_sharded`).
    """
    if isinstance(method, str):
        from .registry import get_method  # import here: registry imports the method modules

        method = get_method(method, kind="sharded", **overrides)
    elif overrides:
        raise TypeError(
            "constructor overrides require a method name; got an instance "
            f"of {type(method).__name__} plus overrides {sorted(overrides)}"
        )
    if not isinstance(method, ShardedTruthInference):
        raise TypeError(
            f"expected a sharded method name or instance, got {type(method).__name__}"
        )
    return method.infer_sharded(shards, executor=executor, workers=workers,
                                window=window)
