"""IBCC (Kim & Ghahramani, AISTATS 2012): independent Bayesian classifier
combination, realized with variational Bayes.

Bayesian Dawid–Skene: Dirichlet priors over the class proportions and over
each row of each annotator's confusion matrix. The variational posterior
factorizes; updates alternate

    q(t_i) ∝ exp( E[log p_m] + Σ_j E[log π_j(m, y_ij)] )

with Dirichlet-count updates whose expectations use digamma functions. The
priors make it markedly more robust than plain DS on annotators with few
labels (the NER crowd's long tail).

Performance: the Dirichlet-count scatter and the expected-log-likelihood
gather share DS's sparse kernels (:mod:`repro.inference.primitives`) over
the crowd's cached COO views. The pre-refactor implementation is kept as
:func:`ibcc_reference`; equivalence at atol 1e-10 is enforced by
``tests/inference/test_method_equivalence.py``.
"""

from __future__ import annotations

import numpy as np

try:
    from scipy.special import digamma
except ImportError:  # keep the package importable; IBCC itself needs scipy
    digamma = None

from ..crowd.types import CrowdLabelMatrix
from .base import ConvergenceMonitor, InferenceResult, TruthInferenceMethod
from .majority_vote import majority_vote_posterior
from .primitives import confusion_counts, emission_log_likelihood, normalize_log_posterior
from .sharding import ShardedTruthInference, ShardStats, shard_base_stats

__all__ = ["IBCC", "ShardedIBCC", "ibcc_reference"]


class IBCC(TruthInferenceMethod):
    """Variational-Bayes IBCC.

    Parameters
    ----------
    prior_diagonal, prior_off_diagonal:
        Dirichlet pseudo-counts for confusion rows: the diagonal prior
        encodes "annotators are better than chance".
    prior_class:
        Symmetric Dirichlet pseudo-count for class proportions.
    """

    name = "IBCC"

    def __init__(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        prior_diagonal: float = 2.0,
        prior_off_diagonal: float = 1.0,
        prior_class: float = 1.0,
    ) -> None:
        if digamma is None:
            raise ImportError("IBCC needs scipy (scipy.special.digamma)")
        if prior_diagonal <= 0 or prior_off_diagonal <= 0 or prior_class <= 0:
            raise ValueError("Dirichlet priors must be positive")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.prior_diagonal = prior_diagonal
        self.prior_off_diagonal = prior_off_diagonal
        self.prior_class = prior_class

    def infer(self, crowd: CrowdLabelMatrix) -> InferenceResult:
        self._check_nonempty(crowd)
        K = crowd.num_classes
        posterior = majority_vote_posterior(crowd)
        prior_matrix = np.full((K, K), self.prior_off_diagonal)
        np.fill_diagonal(prior_matrix, self.prior_diagonal)
        monitor = ConvergenceMonitor(self.tolerance, self.max_iterations)

        confusions = np.zeros((crowd.num_annotators, K, K))
        while True:
            # Variational M: Dirichlet posterior counts.
            count_matrix = confusion_counts(posterior, crowd) + prior_matrix
            class_counts = posterior.sum(axis=0) + self.prior_class

            expected_log_confusion = digamma(count_matrix) - digamma(
                count_matrix.sum(axis=2, keepdims=True)
            )
            expected_log_class = digamma(class_counts) - digamma(class_counts.sum())

            # Variational E.
            log_posterior = expected_log_class[None, :] + emission_log_likelihood(
                crowd, expected_log_confusion
            )
            new_posterior = normalize_log_posterior(log_posterior)

            # initial=0.0 keeps the degenerate empty crowd (I = 0) total.
            delta = float(np.abs(new_posterior - posterior).max(initial=0.0))
            posterior = new_posterior
            confusions = count_matrix / count_matrix.sum(axis=2, keepdims=True)
            if monitor.step(delta):
                break

        return InferenceResult(
            posterior=posterior,
            confusions=confusions,
            extras=monitor.extras(),
        )


class ShardedIBCC(ShardedTruthInference):
    """Map-reduce variational-Bayes IBCC.

    Same round structure as :class:`~repro.inference.dawid_skene.
    ShardedDawidSkene` — the Dirichlet posterior counts are exactly the
    mergeable statistics (per-shard soft confusion counts + class totals),
    and the digamma expectations are a global O(J·K²) transform of the
    merged counts. Pinned to batch :class:`IBCC` at atol 1e-10 by the
    equivalence harness across shard layouts.
    """

    name = "IBCC"

    def __init__(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        prior_diagonal: float = 2.0,
        prior_off_diagonal: float = 1.0,
        prior_class: float = 1.0,
    ) -> None:
        if digamma is None:
            raise ImportError("IBCC needs scipy (scipy.special.digamma)")
        if prior_diagonal <= 0 or prior_off_diagonal <= 0 or prior_class <= 0:
            raise ValueError("Dirichlet priors must be positive")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.prior_diagonal = prior_diagonal
        self.prior_off_diagonal = prior_off_diagonal
        self.prior_class = prior_class

    def _init_mapper(self, params, shard):
        block = majority_vote_posterior(shard)
        return block, ShardStats(
            confusion=confusion_counts(block, shard),
            class_totals=block.sum(axis=0),
            **shard_base_stats(shard),
        )

    def _em_mapper(self, params, shard, old_block):
        expected_log_class, expected_log_confusion = params
        log_posterior = expected_log_class[None, :] + emission_log_likelihood(
            shard, expected_log_confusion
        )
        block = normalize_log_posterior(log_posterior)
        return block, ShardStats(
            confusion=confusion_counts(block, shard),
            class_totals=block.sum(axis=0),
            delta=float(np.abs(block - old_block).max(initial=0.0)),
        )

    def _infer(self, ctx) -> InferenceResult:
        _, K, blocks, stats = self._initial_pass(ctx, self._init_mapper)
        self._require_annotated(stats)
        num_shards = len(blocks)
        observations = stats.observations
        prior_matrix = np.full((K, K), self.prior_off_diagonal)
        np.fill_diagonal(prior_matrix, self.prior_diagonal)
        monitor = ConvergenceMonitor(self.tolerance, self.max_iterations)

        while True:
            # Global variational M: Dirichlet counts from the merged stats.
            count_matrix = stats.confusion + prior_matrix
            class_counts = stats.class_totals + self.prior_class
            expected_log_confusion = digamma(count_matrix) - digamma(
                count_matrix.sum(axis=2, keepdims=True)
            )
            expected_log_class = digamma(class_counts) - digamma(class_counts.sum())

            blocks, stats = self._pass(
                ctx, blocks, self._em_mapper,
                (expected_log_class, expected_log_confusion),
            )
            confusions = count_matrix / count_matrix.sum(axis=2, keepdims=True)
            if monitor.step(stats.delta):
                break

        extras = monitor.extras()
        extras.update(shards=num_shards, observations=observations)
        return InferenceResult(
            posterior=self._concat(blocks, K), confusions=confusions, extras=extras
        )


def ibcc_reference(
    crowd: CrowdLabelMatrix,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
    prior_diagonal: float = 2.0,
    prior_off_diagonal: float = 1.0,
    prior_class: float = 1.0,
) -> InferenceResult:
    """Pre-refactor VB-IBCC (dense one-hot einsums over ``(I, J, K)``).

    Kept as the executable specification for the equivalence tests; use
    :class:`IBCC`.
    """
    TruthInferenceMethod._check_nonempty(crowd)
    K = crowd.num_classes
    one_hot = crowd.one_hot()
    posterior = majority_vote_posterior(crowd)
    prior_matrix = np.full((K, K), prior_off_diagonal)
    np.fill_diagonal(prior_matrix, prior_diagonal)

    confusions = np.zeros((crowd.num_annotators, K, K))
    iterations_used = max_iterations
    for iteration in range(max_iterations):
        confusion_counts = np.einsum("im,ijn->jmn", posterior, one_hot) + prior_matrix
        class_counts = posterior.sum(axis=0) + prior_class

        expected_log_confusion = digamma(confusion_counts) - digamma(
            confusion_counts.sum(axis=2, keepdims=True)
        )
        expected_log_class = digamma(class_counts) - digamma(class_counts.sum())

        log_posterior = expected_log_class[None, :] + np.einsum(
            "ijn,jmn->im", one_hot, expected_log_confusion
        )
        log_posterior -= log_posterior.max(axis=1, keepdims=True)
        new_posterior = np.exp(log_posterior)
        new_posterior /= new_posterior.sum(axis=1, keepdims=True)

        delta = float(np.abs(new_posterior - posterior).max())
        posterior = new_posterior
        confusions = confusion_counts / confusion_counts.sum(axis=2, keepdims=True)
        if delta < tolerance:
            iterations_used = iteration + 1
            break

    return InferenceResult(
        posterior=posterior,
        confusions=confusions,
        extras={"iterations": iterations_used},
    )
