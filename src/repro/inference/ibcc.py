"""IBCC (Kim & Ghahramani, AISTATS 2012): independent Bayesian classifier
combination, realized with variational Bayes.

Bayesian Dawid–Skene: Dirichlet priors over the class proportions and over
each row of each annotator's confusion matrix. The variational posterior
factorizes; updates alternate

    q(t_i) ∝ exp( E[log p_m] + Σ_j E[log π_j(m, y_ij)] )

with Dirichlet-count updates whose expectations use digamma functions. The
priors make it markedly more robust than plain DS on annotators with few
labels (the NER crowd's long tail).
"""

from __future__ import annotations

import numpy as np
from scipy.special import digamma

from ..crowd.types import CrowdLabelMatrix
from .base import InferenceResult, TruthInferenceMethod
from .majority_vote import majority_vote_posterior

__all__ = ["IBCC"]


class IBCC(TruthInferenceMethod):
    """Variational-Bayes IBCC.

    Parameters
    ----------
    prior_diagonal, prior_off_diagonal:
        Dirichlet pseudo-counts for confusion rows: the diagonal prior
        encodes "annotators are better than chance".
    prior_class:
        Symmetric Dirichlet pseudo-count for class proportions.
    """

    name = "IBCC"

    def __init__(
        self,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
        prior_diagonal: float = 2.0,
        prior_off_diagonal: float = 1.0,
        prior_class: float = 1.0,
    ) -> None:
        if prior_diagonal <= 0 or prior_off_diagonal <= 0 or prior_class <= 0:
            raise ValueError("Dirichlet priors must be positive")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.prior_diagonal = prior_diagonal
        self.prior_off_diagonal = prior_off_diagonal
        self.prior_class = prior_class

    def infer(self, crowd: CrowdLabelMatrix) -> InferenceResult:
        self._check_nonempty(crowd)
        K = crowd.num_classes
        one_hot = crowd.one_hot()
        posterior = majority_vote_posterior(crowd)
        prior_matrix = np.full((K, K), self.prior_off_diagonal)
        np.fill_diagonal(prior_matrix, self.prior_diagonal)

        confusions = np.zeros((crowd.num_annotators, K, K))
        iterations_used = self.max_iterations
        for iteration in range(self.max_iterations):
            # Variational M: Dirichlet posterior counts.
            confusion_counts = np.einsum("im,ijn->jmn", posterior, one_hot) + prior_matrix
            class_counts = posterior.sum(axis=0) + self.prior_class

            expected_log_confusion = digamma(confusion_counts) - digamma(
                confusion_counts.sum(axis=2, keepdims=True)
            )
            expected_log_class = digamma(class_counts) - digamma(class_counts.sum())

            # Variational E.
            log_posterior = expected_log_class[None, :] + np.einsum(
                "ijn,jmn->im", one_hot, expected_log_confusion
            )
            log_posterior -= log_posterior.max(axis=1, keepdims=True)
            new_posterior = np.exp(log_posterior)
            new_posterior /= new_posterior.sum(axis=1, keepdims=True)

            delta = float(np.abs(new_posterior - posterior).max())
            posterior = new_posterior
            confusions = confusion_counts / confusion_counts.sum(axis=2, keepdims=True)
            if delta < self.tolerance:
                iterations_used = iteration + 1
                break

        return InferenceResult(
            posterior=posterior,
            confusions=confusions,
            extras={"iterations": iterations_used},
        )
