"""BSC-seq (Simpson & Gurevych, 2019), simplified: Bayesian sequence
combination with a sequential worker model.

The original BSC is a full variational Bayesian treatment with several
worker models; we implement the "seq" configuration's essential structure
— a Markov chain over true tags plus per-annotator confusion matrices —
with Dirichlet priors on every categorical parameter and variational
(digamma-expectation) updates in place of HMM-Crowd's maximum-likelihood
counts. DESIGN.md records this as a documented simplification: the prior
smoothing is what distinguishes its behaviour from HMM-Crowd on long-tail
annotators, and that mechanism is preserved.

Performance: shares HMM-Crowd's vectorized E-step — batched
forward–backward over padded ``(I, T_max, K)`` expected-log emissions —
and the sparse confusion-count kernel from
:mod:`repro.inference.primitives`. The pre-refactor loop is kept as
:func:`bsc_seq_reference`; equivalence at atol 1e-10 is enforced by
``tests/inference/test_method_equivalence.py``.
"""

from __future__ import annotations

import numpy as np

try:
    from scipy.special import digamma
except ImportError:  # keep the package importable; BSC-seq itself needs scipy
    digamma = None

from ..crowd.types import SequenceCrowdLabels
from .base import ConvergenceMonitor, SequenceInferenceResult
from .hmm_crowd import forward_backward
from .primitives import (
    batched_forward_backward,
    confusion_counts,
    emission_log_likelihood,
    flat_chain_views,
    scatter_to_padded,
    split_by_offsets,
    token_majority_vote_flat,
)

__all__ = ["BSCSeq", "bsc_seq_reference"]


class BSCSeq:
    """Variational Bayesian sequential combination (simplified BSC-seq)."""

    name = "BSC-seq"

    def __init__(
        self,
        max_iterations: int = 30,
        tolerance: float = 1e-4,
        prior_diagonal: float = 2.0,
        prior_off_diagonal: float = 1.0,
        prior_transition: float = 1.0,
    ) -> None:
        if digamma is None:
            raise ImportError("BSC-seq needs scipy (scipy.special.digamma)")
        if prior_diagonal <= 0 or prior_off_diagonal <= 0 or prior_transition <= 0:
            raise ValueError("Dirichlet priors must be positive")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.prior_diagonal = prior_diagonal
        self.prior_off_diagonal = prior_off_diagonal
        self.prior_transition = prior_transition

    def infer(self, crowd: SequenceCrowdLabels) -> SequenceInferenceResult:
        K = crowd.num_classes
        prior_confusion = np.full((K, K), self.prior_off_diagonal)
        np.fill_diagonal(prior_confusion, self.prior_diagonal)
        offsets, lengths, starts, chain_index, time_index, T_max = flat_chain_views(crowd)
        transition_counts = np.full((K, K), self.prior_transition)
        if T_max == 0:
            # Degenerate crowd (no sentences, or only empty ones): nothing
            # to infer; parameters stay at their prior expectations.
            prior_rows = prior_confusion / prior_confusion.sum(axis=1, keepdims=True)
            return SequenceInferenceResult(
                posteriors=[np.zeros((0, K)) for _ in range(crowd.num_instances)],
                confusions=np.tile(prior_rows, (crowd.num_annotators, 1, 1)),
                extras={
                    "iterations": 0,
                    "last_change": 0.0,
                    "converged": True,
                    "transition": transition_counts
                    / transition_counts.sum(axis=1, keepdims=True),
                },
            )
        gamma_flat = token_majority_vote_flat(crowd)
        monitor = ConvergenceMonitor(self.tolerance, self.max_iterations)

        confusions = np.zeros((crowd.num_annotators, K, K))
        while True:
            count_matrix = confusion_counts(gamma_flat, crowd) + prior_confusion
            initial_counts = self.prior_transition + gamma_flat[starts].sum(axis=0)

            # Variational expectations of log parameters.
            expected_log_confusion = digamma(count_matrix) - digamma(
                count_matrix.sum(axis=2, keepdims=True)
            )
            expected_log_transition = digamma(transition_counts) - digamma(
                transition_counts.sum(axis=1, keepdims=True)
            )
            expected_log_initial = digamma(initial_counts) - digamma(initial_counts.sum())

            log_em = scatter_to_padded(
                emission_log_likelihood(crowd, expected_log_confusion),
                crowd.num_instances, T_max, chain_index, time_index,
            )
            gamma_padded, xi, chain_log_likelihoods = batched_forward_backward(
                log_em, expected_log_transition, expected_log_initial, lengths
            )
            new_gamma_flat = gamma_padded[chain_index, time_index]
            max_change = (
                float(np.abs(new_gamma_flat - gamma_flat).max()) if gamma_flat.size else 0.0
            )
            gamma_flat = new_gamma_flat
            transition_counts = self.prior_transition + xi.sum(axis=0)
            confusions = count_matrix / count_matrix.sum(axis=2, keepdims=True)

            if monitor.step(max_change, float(chain_log_likelihoods.sum())):
                break

        posteriors = split_by_offsets(gamma_flat, offsets)
        extras = monitor.extras()
        extras["transition"] = transition_counts / transition_counts.sum(
            axis=1, keepdims=True
        )
        return SequenceInferenceResult(
            posteriors=posteriors, confusions=confusions, extras=extras
        )


def bsc_seq_reference(
    crowd: SequenceCrowdLabels,
    max_iterations: int = 30,
    tolerance: float = 1e-4,
    prior_diagonal: float = 2.0,
    prior_off_diagonal: float = 1.0,
    prior_transition: float = 1.0,
) -> SequenceInferenceResult:
    """Pre-refactor BSC-seq VB loop (per-sentence/per-annotator loops).

    Kept as the executable specification for the equivalence tests and the
    benchmark baseline; use :class:`BSCSeq`. Note the known stale
    diagnostics of the original loop (``last_change`` reports the change
    from the sweep *before* the one that converged); the live class
    reports the triggering change itself.
    """
    K = crowd.num_classes
    J = crowd.num_annotators
    prior_confusion = np.full((K, K), prior_off_diagonal)
    np.fill_diagonal(prior_confusion, prior_diagonal)

    posteriors: list[np.ndarray] = []
    for i in range(crowd.num_instances):
        votes = crowd.token_vote_counts(i).astype(np.float64) + 1e-3
        posteriors.append(votes / votes.sum(axis=1, keepdims=True))
    transition_counts = np.full((K, K), prior_transition)
    initial_counts = np.full(K, prior_transition)

    confusions = np.zeros((J, K, K))
    previous_change = np.inf
    iterations_used = max_iterations
    for iteration in range(max_iterations):
        confusion_count_arr = np.tile(prior_confusion, (J, 1, 1))
        new_initial_counts = np.full(K, prior_transition)
        for i in range(crowd.num_instances):
            gamma = posteriors[i]
            matrix = crowd.labels[i]
            new_initial_counts += gamma[0]
            for j in crowd.annotators_of(i):
                np.add.at(confusion_count_arr[j].T, matrix[:, j], gamma)

        # Variational expectations of log parameters.
        expected_log_confusion = digamma(confusion_count_arr) - digamma(
            confusion_count_arr.sum(axis=2, keepdims=True)
        )
        expected_log_transition = digamma(transition_counts) - digamma(
            transition_counts.sum(axis=1, keepdims=True)
        )
        expected_log_initial = digamma(new_initial_counts) - digamma(new_initial_counts.sum())

        new_transition_counts = np.full((K, K), prior_transition)
        max_change = 0.0
        new_posteriors: list[np.ndarray] = []
        for i in range(crowd.num_instances):
            matrix = crowd.labels[i]
            log_em = np.zeros((matrix.shape[0], K))
            for j in crowd.annotators_of(i):
                log_em += expected_log_confusion[j][:, matrix[:, j]].T
            gamma, xi_sum, _ = forward_backward(
                log_em, expected_log_transition, expected_log_initial
            )
            new_transition_counts += xi_sum
            max_change = max(max_change, float(np.abs(gamma - posteriors[i]).max()))
            new_posteriors.append(gamma)
        posteriors = new_posteriors
        transition_counts = new_transition_counts
        initial_counts = new_initial_counts
        confusions = confusion_count_arr / confusion_count_arr.sum(axis=2, keepdims=True)

        if max_change < tolerance:
            iterations_used = iteration + 1
            break
        previous_change = max_change

    return SequenceInferenceResult(
        posteriors=posteriors,
        confusions=confusions,
        extras={
            "transition": transition_counts / transition_counts.sum(axis=1, keepdims=True),
            "iterations": iterations_used,
            "last_change": previous_change,
        },
    )
