"""BSC-seq (Simpson & Gurevych, 2019), simplified: Bayesian sequence
combination with a sequential worker model.

The original BSC is a full variational Bayesian treatment with several
worker models; we implement the "seq" configuration's essential structure
— a Markov chain over true tags plus per-annotator confusion matrices —
with Dirichlet priors on every categorical parameter and variational
(digamma-expectation) updates in place of HMM-Crowd's maximum-likelihood
counts. DESIGN.md records this as a documented simplification: the prior
smoothing is what distinguishes its behaviour from HMM-Crowd on long-tail
annotators, and that mechanism is preserved.
"""

from __future__ import annotations

import numpy as np
from scipy.special import digamma

from ..crowd.types import SequenceCrowdLabels
from .base import SequenceInferenceResult
from .hmm_crowd import forward_backward

__all__ = ["BSCSeq"]


class BSCSeq:
    """Variational Bayesian sequential combination (simplified BSC-seq)."""

    name = "BSC-seq"

    def __init__(
        self,
        max_iterations: int = 30,
        tolerance: float = 1e-4,
        prior_diagonal: float = 2.0,
        prior_off_diagonal: float = 1.0,
        prior_transition: float = 1.0,
    ) -> None:
        if prior_diagonal <= 0 or prior_off_diagonal <= 0 or prior_transition <= 0:
            raise ValueError("Dirichlet priors must be positive")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.prior_diagonal = prior_diagonal
        self.prior_off_diagonal = prior_off_diagonal
        self.prior_transition = prior_transition

    def infer(self, crowd: SequenceCrowdLabels) -> SequenceInferenceResult:
        K = crowd.num_classes
        J = crowd.num_annotators
        prior_confusion = np.full((K, K), self.prior_off_diagonal)
        np.fill_diagonal(prior_confusion, self.prior_diagonal)

        posteriors: list[np.ndarray] = []
        for i in range(crowd.num_instances):
            votes = crowd.token_vote_counts(i).astype(np.float64) + 1e-3
            posteriors.append(votes / votes.sum(axis=1, keepdims=True))
        transition_counts = np.full((K, K), self.prior_transition)
        initial_counts = np.full(K, self.prior_transition)

        confusions = np.zeros((J, K, K))
        previous_change = np.inf
        iterations_used = self.max_iterations
        for iteration in range(self.max_iterations):
            confusion_counts = np.tile(prior_confusion, (J, 1, 1))
            new_initial_counts = np.full(K, self.prior_transition)
            for i in range(crowd.num_instances):
                gamma = posteriors[i]
                matrix = crowd.labels[i]
                new_initial_counts += gamma[0]
                for j in crowd.annotators_of(i):
                    np.add.at(confusion_counts[j].T, matrix[:, j], gamma)

            # Variational expectations of log parameters.
            expected_log_confusion = digamma(confusion_counts) - digamma(
                confusion_counts.sum(axis=2, keepdims=True)
            )
            expected_log_transition = digamma(transition_counts) - digamma(
                transition_counts.sum(axis=1, keepdims=True)
            )
            expected_log_initial = digamma(new_initial_counts) - digamma(new_initial_counts.sum())

            new_transition_counts = np.full((K, K), self.prior_transition)
            max_change = 0.0
            new_posteriors: list[np.ndarray] = []
            for i in range(crowd.num_instances):
                matrix = crowd.labels[i]
                log_em = np.zeros((matrix.shape[0], K))
                for j in crowd.annotators_of(i):
                    log_em += expected_log_confusion[j][:, matrix[:, j]].T
                gamma, xi_sum, _ = forward_backward(
                    log_em, expected_log_transition, expected_log_initial
                )
                new_transition_counts += xi_sum
                max_change = max(max_change, float(np.abs(gamma - posteriors[i]).max()))
                new_posteriors.append(gamma)
            posteriors = new_posteriors
            transition_counts = new_transition_counts
            initial_counts = new_initial_counts
            confusions = confusion_counts / confusion_counts.sum(axis=2, keepdims=True)

            if max_change < self.tolerance:
                iterations_used = iteration + 1
                break
            previous_change = max_change

        return SequenceInferenceResult(
            posteriors=posteriors,
            confusions=confusions,
            extras={
                "transition": transition_counts / transition_counts.sum(axis=1, keepdims=True),
                "iterations": iterations_used,
                "last_change": previous_change,
            },
        )
