"""Shared interface for truth-inference methods.

Truth inference (Zheng et al., VLDB 2017) estimates each instance's latent
true label from redundant noisy crowd labels, *without* features. The paper
benchmarks MV, DS, GLAD, PM, CATD on sentiment and MV, DS, IBCC, BSC-seq,
HMM-Crowd on NER (Tables II/III, "Truth Inference" blocks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..crowd.types import CrowdLabelMatrix

__all__ = [
    "InferenceResult",
    "TruthInferenceMethod",
    "SequenceInferenceResult",
    "ConvergenceMonitor",
]


class ConvergenceMonitor:
    """Shared convergence bookkeeping for the iterative methods.

    Every EM/VB method (DS, IBCC, HMM-Crowd, BSC-seq) tracks the same
    things: how many sweeps ran, the change that was last measured (the one
    that actually triggered convergence, not the previous sweep's), and an
    optional log-likelihood trace. Methods call :meth:`step` once per sweep
    and splice :meth:`extras` into their result, so diagnostics keys are
    identical across the subsystem.
    """

    def __init__(self, tolerance: float, max_iterations: int) -> None:
        if max_iterations < 1:
            raise ValueError("need at least one iteration")
        self.tolerance = float(tolerance)
        self.max_iterations = int(max_iterations)
        self.iterations = 0
        self.last_change = float("inf")
        self.converged = False
        self.log_likelihood_trace: list[float] = []

    def step(self, change: float, log_likelihood: float | None = None) -> bool:
        """Record one sweep; returns True when the loop should stop."""
        self.iterations += 1
        self.last_change = float(change)
        if log_likelihood is not None:
            self.log_likelihood_trace.append(float(log_likelihood))
        self.converged = self.last_change < self.tolerance
        return self.converged or self.iterations >= self.max_iterations

    def extras(self) -> dict:
        """Common diagnostics block for ``InferenceResult.extras``."""
        out = {
            "iterations": self.iterations,
            "last_change": self.last_change,
            "converged": self.converged,
        }
        if self.log_likelihood_trace:
            out["log_likelihood_trace"] = list(self.log_likelihood_trace)
        return out


@dataclass
class InferenceResult:
    """Output of a truth-inference method on a classification crowd.

    Attributes
    ----------
    posterior:
        ``(I, K)`` soft truth estimates (rows sum to 1).
    confusions:
        ``(J, K, K)`` estimated annotator confusion matrices, when the
        method models them (DS/IBCC), else None.
    extras:
        Method-specific diagnostics (iterations, weights, ...).
    """

    posterior: np.ndarray
    confusions: np.ndarray | None = None
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.posterior = np.asarray(self.posterior, dtype=np.float64)
        if self.posterior.ndim != 2:
            raise ValueError(f"posterior must be (I, K), got {self.posterior.shape}")
        sums = self.posterior.sum(axis=1)
        if not np.allclose(sums, 1.0, atol=1e-6):
            raise ValueError("posterior rows must sum to 1")

    def hard_labels(self) -> np.ndarray:
        """Argmax labels (ties resolve to the lowest class id)."""
        return self.posterior.argmax(axis=1)


@dataclass
class SequenceInferenceResult:
    """Output of a truth-inference method on a sequence crowd.

    Attributes
    ----------
    posteriors:
        List of ``(T_i, K)`` per-token soft truth estimates.
    """

    posteriors: list[np.ndarray]
    confusions: np.ndarray | None = None
    extras: dict = field(default_factory=dict)

    def hard_labels(self) -> list[np.ndarray]:
        return [posterior.argmax(axis=1) for posterior in self.posteriors]


class TruthInferenceMethod:
    """Base class; subclasses set :attr:`name` and implement :meth:`infer`."""

    name: str = "base"

    def infer(self, crowd: CrowdLabelMatrix) -> InferenceResult:
        raise NotImplementedError

    @staticmethod
    def _check_nonempty(crowd: CrowdLabelMatrix) -> None:
        counts = crowd.annotations_per_instance()
        if (counts == 0).any():
            empty = int((counts == 0).sum())
            raise ValueError(f"{empty} instances have no annotations at all")
