"""Shared vectorized kernels for the truth-inference subsystem.

Every confusion-matrix method (DS, IBCC, HMM-Crowd, BSC-seq) and the
Logic-LNCL pseudo-E/M in :mod:`repro.core.em` needs the same three
operations over a sparse crowd:

* **confusion counts** — scatter a soft truth posterior into per-annotator
  ``(K, K)`` count matrices over the observed ``(instance, annotator,
  label)`` triples (the M-step numerator of paper Eq. 12 and of DS/IBCC);
* **emission log-likelihood** — gather ``Σ_j log π_j[m, y_ij]`` into an
  ``(N, K)`` matrix (the E-step evidence term of Eq. 13 and the HMM
  emission scores);
* **log-space normalization** — turn unnormalized log scores into a
  proper posterior.

Both containers in :mod:`repro.crowd.types` expose the cached flat COO
views these kernels run on (``flat_label_pairs`` plus a sparse
instance × (annotator, label) incidence); with scipy present each kernel
is one sparse–dense matmul, otherwise one ``bincount`` per class.

The module also hosts :func:`batched_forward_backward`: a length-masked
forward–backward over padded ``(I, T_max, K)`` emissions that vectorizes
across all chains at every timestep, replacing per-chain Python loops in
HMM-Crowd/BSC-seq. The per-chain
:func:`repro.inference.hmm_crowd.forward_backward` is kept as the
executable specification; equivalence (gamma, xi, log-likelihood) is
enforced at atol 1e-10 by ``tests/inference/test_primitives.py``.
"""

from __future__ import annotations

import numpy as np

from ..crowd.sharding import CrowdShard, SequenceCrowdShard, SparseLabelShard
from ..crowd.types import CrowdLabelMatrix, SequenceCrowdLabels

__all__ = [
    "crowd_views",
    "confusion_counts",
    "emission_log_likelihood",
    "normalize_log_posterior",
    "annotator_agreement",
    "weighted_vote_scores",
    "normalize_vote_scores",
    "chain_indices",
    "flat_chain_views",
    "token_majority_vote_flat",
    "scatter_to_padded",
    "split_by_offsets",
    "pad_ragged",
    "batched_forward_backward",
]


def crowd_views(crowd) -> tuple[np.ndarray, np.ndarray, np.ndarray, int, object]:
    """Uniform flat view of any crowd container or shard view.

    Returns ``(rows, annotators, labels, num_rows, incidence)`` where
    ``rows`` indexes instances (:class:`CrowdLabelMatrix` and the
    instance-level shards) or stacked tokens (:class:`SequenceCrowdLabels`
    / :class:`~repro.crowd.sharding.SequenceCrowdShard`), and ``incidence``
    is the cached sparse ``(num_rows, J·K)`` matrix or None (no scipy, or
    a shard that opts out of building one).

    Dispatch is structural beyond the built-in containers: any object
    exposing the kernel-facing surface (``flat_labels`` +
    ``token_label_incidence`` for token-level crowds, or
    ``flat_label_pairs`` + ``num_instances`` + ``label_incidence`` for
    instance-level ones, plus ``num_classes``/``num_annotators``)
    qualifies — the shard protocol :mod:`repro.inference.sharding`
    documents for user-defined out-of-core shards.
    """
    if isinstance(crowd, (SequenceCrowdLabels, SequenceCrowdShard)) or (
        hasattr(crowd, "flat_labels") and hasattr(crowd, "token_label_incidence")
    ):
        stacked, _ = crowd.flat_labels()
        rows, annotators, given = crowd.flat_label_pairs()
        return rows, annotators, given, stacked.shape[0], crowd.token_label_incidence()
    if isinstance(crowd, (CrowdLabelMatrix, CrowdShard, SparseLabelShard)) or (
        hasattr(crowd, "flat_label_pairs") and hasattr(crowd, "label_incidence")
    ):
        rows, annotators, given = crowd.flat_label_pairs()
        return rows, annotators, given, crowd.num_instances, crowd.label_incidence()
    raise TypeError(f"unsupported crowd container {type(crowd).__name__}")


def confusion_counts(posterior: np.ndarray, crowd) -> np.ndarray:
    """Soft confusion counts ``C[j, m, n] = Σ_r posterior[r, m]·1[y_rj = n]``.

    ``posterior`` is ``(N, K)`` over instances (classification) or stacked
    tokens (sequences). Callers add their own prior/smoothing pseudo-counts
    and normalize. One spMM with scipy, else one ``bincount`` per class.
    """
    K = crowd.num_classes
    J = crowd.num_annotators
    posterior = np.asarray(posterior, dtype=np.float64)
    rows, annotators, given, num_rows, incidence = crowd_views(crowd)
    if posterior.shape != (num_rows, K):
        raise ValueError(f"posterior shape {posterior.shape} != ({num_rows}, {K})")
    if incidence is not None:
        summed = np.asarray(incidence.T @ posterior)          # (J·K, K)
    else:
        # One flat bincount over (observation, class) keys instead of a
        # Python loop of K bincounts on non-contiguous posterior columns.
        key = annotators * K + given
        keys = key[:, None] * K + np.arange(K)[None, :]
        summed = np.bincount(
            keys.ravel(), weights=posterior[rows].ravel(), minlength=J * K * K
        ).reshape(J * K, K)
    # summed[(j, n), m] → counts[j, m, n]
    return summed.reshape(J, K, K).transpose(0, 2, 1)


def emission_log_likelihood(crowd, log_confusions: np.ndarray) -> np.ndarray:
    """``L[r, m] = Σ_{j∈J(r)} log π_j[m, y_rj]`` for every row, ``(N, K)``.

    The evidence term of every E-step: rows with no annotations get zeros
    (log 1). ``log_confusions`` is ``(J, K, K)``.
    """
    K = crowd.num_classes
    J = crowd.num_annotators
    rows, annotators, given, num_rows, incidence = crowd_views(crowd)
    if log_confusions.shape != (J, K, K):
        raise ValueError(f"log_confusions shape {log_confusions.shape} != ({J}, {K}, {K})")
    # (J·K, K): row (j, y) holds log π_j[:, y] — annotator j's per-true-class
    # log-likelihood of emitting label y.
    by_label = np.ascontiguousarray(log_confusions.transpose(0, 2, 1)).reshape(J * K, K)
    if incidence is not None:
        return np.asarray(incidence @ by_label)
    out = np.zeros((num_rows, K))
    if rows.size:
        # Same flat-keys trick as confusion_counts: one bincount over
        # (observation, class) pairs replaces K bincounts of column copies.
        contrib = by_label[annotators * K + given]            # (n_obs, K)
        keys = rows[:, None] * K + np.arange(K)[None, :]
        out = np.bincount(
            keys.ravel(), weights=contrib.ravel(), minlength=num_rows * K
        ).reshape(num_rows, K)
    return out


def annotator_agreement(posterior: np.ndarray, crowd) -> np.ndarray:
    """``A[j] = Σ_r posterior[r, y_rj]`` over observed labels, shape ``(J,)``.

    The agreement term of the truth-discovery weight updates (PM's expected
    non-error, CATD's complement of the error sum): gather each observed
    label's soft-truth mass, then one scatter-add per annotator. Runs
    directly on the cached COO triples — no scipy needed, O(n_obs) instead
    of the dense ``(I, J, K)`` agreement einsum.
    """
    posterior = np.asarray(posterior, dtype=np.float64)
    rows, annotators, given, num_rows, _ = crowd_views(crowd)
    if posterior.shape != (num_rows, crowd.num_classes):
        raise ValueError(
            f"posterior shape {posterior.shape} != ({num_rows}, {crowd.num_classes})"
        )
    return np.bincount(
        annotators, weights=posterior[rows, given], minlength=crowd.num_annotators
    )


def weighted_vote_scores(weights: np.ndarray, crowd) -> np.ndarray:
    """``S[r, k] = Σ_{j : y_rj = k} w_j`` — annotator-weighted votes, ``(N, K)``.

    The voting step of PM/CATD: with scipy it is one spMM of the cached
    incidence against a ``(J·K, K)`` weight scatter, otherwise one
    ``bincount`` over the COO triples. Rows with no labels come back zero
    (callers decide the tie/empty policy).
    """
    K = crowd.num_classes
    J = crowd.num_annotators
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (J,):
        raise ValueError(f"weights shape {weights.shape} != ({J},)")
    rows, annotators, given, num_rows, incidence = crowd_views(crowd)
    if incidence is not None:
        spread = np.zeros((J * K, K))
        spread[np.arange(J * K), np.tile(np.arange(K), J)] = np.repeat(weights, K)
        return np.asarray(incidence @ spread)
    key = rows * K + given
    scores = np.bincount(key, weights=weights[annotators], minlength=num_rows * K)
    return scores.reshape(num_rows, K)


def normalize_vote_scores(scores: np.ndarray) -> np.ndarray:
    """Turn nonnegative ``(N, K)`` vote scores into row distributions.

    The shared tie/empty policy of the weighted-voting methods (PM/CATD):
    rows with zero total mass fall back to uniform.
    """
    totals = scores.sum(axis=1, keepdims=True)
    return np.where(
        totals > 0, scores / np.where(totals > 0, totals, 1.0),
        np.full_like(scores, 1.0 / scores.shape[1]),
    )


def normalize_log_posterior(log_posterior: np.ndarray) -> np.ndarray:
    """Row-wise softmax of unnormalized log scores (max-shifted; returns a
    new array, the input is left untouched)."""
    log_posterior = log_posterior - log_posterior.max(axis=1, keepdims=True)
    posterior = np.exp(log_posterior)
    posterior /= posterior.sum(axis=1, keepdims=True)
    return posterior


def scatter_to_padded(
    flat: np.ndarray,
    num_chains: int,
    T_max: int,
    chain_index: np.ndarray,
    time_index: np.ndarray,
) -> np.ndarray:
    """Scatter a flat ``(ΣT_i, K)`` array into zero-padded ``(I, T_max, K)``."""
    padded = np.zeros((num_chains, T_max, flat.shape[1]))
    padded[chain_index, time_index] = flat
    return padded


def split_by_offsets(flat: np.ndarray, offsets: np.ndarray) -> list[np.ndarray]:
    """Split a flat stacked array back into its per-chain blocks."""
    return [flat[offsets[i] : offsets[i + 1]] for i in range(len(offsets) - 1)]


# --------------------------------------------------------------------- #
# Batched forward–backward
# --------------------------------------------------------------------- #
def chain_indices(offsets: np.ndarray):
    """Flat↔padded index plumbing for a ragged layout given row offsets.

    Returns ``(lengths, chain_index, time_index, T_max)``; for any stacked
    ``(ΣT_i, K)`` array following the offsets,
    ``padded[chain_index, time_index] == flat``.
    """
    lengths = np.diff(offsets).astype(np.int64)
    chain_index = np.repeat(np.arange(lengths.size), lengths)
    time_index = np.arange(int(offsets[-1]) if lengths.size else 0) - np.repeat(
        offsets[:-1], lengths
    )
    T_max = int(lengths.max()) if lengths.size else 0
    return lengths, chain_index, time_index, T_max


def flat_chain_views(crowd: SequenceCrowdLabels):
    """Per-crowd chain plumbing for the batched sequence E-step.

    Returns ``(offsets, lengths, starts, chain_index, time_index, T_max)``
    where ``starts`` holds the flat row of each non-empty sentence's first
    token (for initial-distribution counts).
    """
    _, offsets = crowd.flat_labels()
    lengths, chain_index, time_index, T_max = chain_indices(offsets)
    starts = offsets[:-1][lengths > 0]
    return offsets, lengths, starts, chain_index, time_index, T_max


def token_majority_vote_flat(crowd: SequenceCrowdLabels, prior: float = 1e-3) -> np.ndarray:
    """Token-level majority-vote initialization, flat ``(ΣT_i, K)``."""
    votes = crowd.token_vote_counts_flat().astype(np.float64) + prior
    return votes / votes.sum(axis=1, keepdims=True)


def pad_ragged(flat: np.ndarray, offsets: np.ndarray, fill: float = 0.0):
    """Pad a stacked ``(ΣT_i, K)`` array into ``(I, T_max, K)``.

    Returns ``(padded, lengths, chain_index, time_index)`` where the two
    index arrays scatter/gather between the flat and padded layouts:
    ``padded[chain_index, time_index] == flat``.
    """
    lengths, chain_index, time_index, T_max = chain_indices(offsets)
    padded = np.full((lengths.size, T_max, flat.shape[1]), fill)
    padded[chain_index, time_index] = flat
    return padded, lengths, chain_index, time_index


def batched_forward_backward(
    log_emissions: np.ndarray,
    log_transition: np.ndarray,
    log_initial: np.ndarray,
    lengths: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Scaled forward–backward over all chains at once.

    Parameters
    ----------
    log_emissions:
        ``(I, T_max, K)`` padded log emission likelihoods; entries at or
        beyond each chain's length are ignored but must be finite (pad
        with zeros, as :func:`pad_ragged` does).
    log_transition:
        ``(K, K)`` log transition matrix shared by all chains.
    log_initial:
        ``(K,)`` log initial distribution.
    lengths:
        ``(I,)`` chain lengths in ``[0, T_max]``; a zero-length chain
        yields all-zero gamma and xi rows and zero log evidence.

    Returns
    -------
    ``(gamma, xi_sum, log_likelihood)`` — per-token marginals
    ``(I, T_max, K)`` (zero past each chain's length), per-chain summed
    pairwise marginals ``(I, K, K)``, and per-chain log evidence ``(I,)``.
    Matches the per-chain :func:`repro.inference.hmm_crowd.forward_backward`
    on every chain; each timestep is one ``(I, K) @ (K, K)`` matmul across
    all chains instead of ``I`` separate vector–matrix products.
    """
    I, T_max, K = log_emissions.shape
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.shape != (I,):
        raise ValueError(f"lengths shape {lengths.shape} != ({I},)")
    if lengths.min(initial=0) < 0 or lengths.max(initial=0) > T_max:
        raise ValueError("lengths must lie in [0, T_max]")
    if T_max == 0:
        return np.zeros((I, 0, K)), np.zeros((I, K, K)), np.zeros(I)

    shift = log_emissions.max(axis=2, keepdims=True)          # (I, T_max, 1)
    emissions = np.exp(log_emissions - shift)
    transition = np.exp(log_transition)
    initial = np.exp(log_initial - log_initial.max())
    initial = initial / initial.sum()
    active = np.arange(T_max)[None, :] < lengths[:, None]     # (I, T_max)

    # Forward. Padded positions (emissions exp(0 - 0) = 1) evolve into
    # harmless, well-normalized alphas — they are masked out of gamma, xi,
    # and the evidence below, so no per-step masking is needed.
    alpha = np.zeros((I, T_max, K))
    scales = np.ones((I, T_max))
    alpha[:, 0] = initial[None, :] * emissions[:, 0]
    scales[:, 0] = alpha[:, 0].sum(axis=1)
    alpha[:, 0] /= scales[:, 0, None]
    for t in range(1, T_max):
        step = emissions[:, t] * (alpha[:, t - 1] @ transition)
        totals = step.sum(axis=1)
        if (totals <= 0).any():
            bad = active[:, t] & (totals <= 0)
            if bad.any():
                raise ValueError(
                    f"chain {int(np.nonzero(bad)[0][0])} has no support at position {t}"
                )
            totals = np.where(totals > 0, totals, 1.0)
        alpha[:, t] = step / totals[:, None]
        scales[:, t] = totals

    # Backward. Chains ending at t keep beta[t] = 1 (their last token);
    # longer chains pull mass back from t+1.
    beta = np.ones((I, T_max, K))
    for t in range(T_max - 2, -1, -1):
        step = (emissions[:, t + 1] * beta[:, t + 1]) @ transition.T
        step /= np.maximum(step.sum(axis=1, keepdims=True), 1e-300)
        beta[:, t] = np.where((lengths > t + 1)[:, None], step, 1.0)

    gamma = alpha * beta
    gamma_sums = gamma.sum(axis=2, keepdims=True)
    gamma /= np.where(gamma_sums > 0, gamma_sums, 1.0)
    gamma *= active[:, :, None]

    # Pairwise marginals. xi_t ∝ (α_t ⊗ b_{t+1}) ⊙ A with b = emissions·β,
    # normalized per (chain, t); because A is shared, the whole time sum
    # collapses to one outer-product accumulation:
    #   xi_chain = A ⊙ Σ_t (α_t / total_t) ⊗ b_{t+1},
    # with total_t = (α_t A) · b_{t+1} — no per-timestep (I, K, K) loop.
    if T_max > 1:
        b_next = emissions[:, 1:] * beta[:, 1:]               # (I, T-1, K)
        propagated = alpha[:, :-1] @ transition               # (I, T-1, K)
        totals = np.einsum("itk,itk->it", propagated, b_next)
        pair = active[:, 1:] & (totals > 0)                   # t and t+1 both real
        weights = np.where(pair, 1.0 / np.where(totals > 0, totals, 1.0), 0.0)
        xi_sum = transition[None, :, :] * np.einsum(
            "itm,itn->imn", alpha[:, :-1] * weights[:, :, None], b_next
        )
    else:
        xi_sum = np.zeros((I, K, K))

    log_scales = np.where(active, np.log(scales), 0.0)
    log_likelihood = log_scales.sum(axis=1) + (shift[:, :, 0] * active).sum(axis=1)
    return gamma, xi_sum, log_likelihood
