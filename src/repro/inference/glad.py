"""GLAD (Whitehill et al., 2009): joint annotator-ability / item-difficulty
model for *binary* labels.

Generative model: ``p(y_ij = t_i | α_j, β_i) = σ(α_j · β_i)`` where ``α_j``
is annotator ability (can be negative: adversarial) and ``β_i > 0`` is
inverse item difficulty. EM with gradient-ascent M-steps, as in the
original paper. GLAD is binary by construction; the paper accordingly uses
it only on the sentiment dataset ("GLAD, which is inapplicable on NER").
"""

from __future__ import annotations

import numpy as np

from ..crowd.types import CrowdLabelMatrix
from .base import InferenceResult, TruthInferenceMethod

__all__ = ["GLAD"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return np.where(x >= 0, 1.0 / (1.0 + np.exp(-np.abs(x))), np.exp(-np.abs(x)) / (1.0 + np.exp(-np.abs(x))))


class GLAD(TruthInferenceMethod):
    """Binary GLAD via EM with gradient M-steps.

    Parameters
    ----------
    em_iterations:
        Number of E/M alternations.
    gradient_steps, learning_rate:
        Inner ascent steps on (α, log β) per M-step.
    prior_correct:
        Prior probability that the true label is class 1.
    """

    name = "GLAD"

    def __init__(
        self,
        em_iterations: int = 30,
        gradient_steps: int = 20,
        learning_rate: float = 0.05,
        prior_correct: float = 0.5,
    ) -> None:
        if not 0.0 < prior_correct < 1.0:
            raise ValueError("prior must be in (0, 1)")
        self.em_iterations = em_iterations
        self.gradient_steps = gradient_steps
        self.learning_rate = learning_rate
        self.prior_correct = prior_correct

    def infer(self, crowd: CrowdLabelMatrix) -> InferenceResult:
        if crowd.num_classes != 2:
            raise ValueError("GLAD supports binary labels only (as in the paper)")
        self._check_nonempty(crowd)
        I, J = crowd.num_instances, crowd.num_annotators
        observed = crowd.observed_mask
        # match[i, j] = +1 where the label equals class 1, else -1 (0 if missing).
        sign = np.where(observed, np.where(crowd.labels == 1, 1.0, -1.0), 0.0)

        alpha = np.ones(J)
        log_beta = np.zeros(I)
        posterior_one = np.full(I, self.prior_correct)

        for _ in range(self.em_iterations):
            # E-step: p(t_i = 1 | labels) with σ(αβ) correctness likelihood.
            strength = np.exp(log_beta)[:, None] * alpha[None, :]
            log_sig = np.log(_sigmoid(strength) + 1e-12)
            log_one_minus = np.log(1.0 - _sigmoid(strength) + 1e-12)
            # If t=1: labels equal to 1 are correct; if t=0 they are wrong.
            log_like_one = np.where(observed, np.where(sign > 0, log_sig, log_one_minus), 0.0).sum(axis=1)
            log_like_zero = np.where(observed, np.where(sign < 0, log_sig, log_one_minus), 0.0).sum(axis=1)
            logit = (
                np.log(self.prior_correct) - np.log(1 - self.prior_correct)
                + log_like_one - log_like_zero
            )
            posterior_one = _sigmoid(logit)

            # M-step: ascend expected complete log-likelihood in (α, log β).
            for _ in range(self.gradient_steps):
                strength = np.exp(log_beta)[:, None] * alpha[None, :]
                sig = _sigmoid(strength)
                # P(label j correct on i) under the posterior.
                prob_correct = np.where(
                    sign > 0, posterior_one[:, None], 1.0 - posterior_one[:, None]
                )
                residual = np.where(observed, prob_correct - sig, 0.0)
                # Mean (not summed) gradients keep step sizes independent of
                # how many labels an annotator/instance has.
                labels_per_annotator = np.maximum(observed.sum(axis=0), 1)
                labels_per_instance = np.maximum(observed.sum(axis=1), 1)
                grad_alpha = (residual * np.exp(log_beta)[:, None]).sum(axis=0) / labels_per_annotator
                grad_log_beta = (
                    (residual * alpha[None, :]).sum(axis=1) * np.exp(log_beta)
                ) / labels_per_instance
                alpha += self.learning_rate * grad_alpha
                log_beta += self.learning_rate * grad_log_beta
                log_beta = np.clip(log_beta, -4.0, 4.0)
                alpha = np.clip(alpha, -8.0, 8.0)

        posterior = np.stack([1.0 - posterior_one, posterior_one], axis=1)
        return InferenceResult(
            posterior=posterior,
            extras={"alpha": alpha, "beta": np.exp(log_beta)},
        )
