"""GLAD (Whitehill et al., 2009): joint annotator-ability / item-difficulty
model for *binary* labels.

Generative model: ``p(y_ij = t_i | α_j, β_i) = σ(α_j · β_i)`` where ``α_j``
is annotator ability (can be negative: adversarial) and ``β_i > 0`` is
inverse item difficulty. EM with gradient-ascent M-steps, as in the
original paper. GLAD is binary by construction; the paper accordingly uses
it only on the sentiment dataset ("GLAD, which is inapplicable on NER").

Performance: every per-label quantity (σ(α_j β_i), the E-step evidence,
the M-step residuals) lives on the crowd's cached flat COO triples
(:meth:`~repro.crowd.types.CrowdLabelMatrix.flat_label_pairs`), so each
E-step and each gradient-ascent step is a handful of O(n_obs) gathers plus
one ``bincount`` scatter per aggregated quantity — never a dense ``(I, J)``
scan of the mostly-missing label matrix. The pre-refactor dense
implementation is kept as :func:`glad_reference` (the executable
specification); equivalence at atol 1e-10 is enforced by
``tests/inference/equivalence_harness.py`` and timed as the "before" side
in ``benchmarks/bench_hotpaths.py``.
"""

from __future__ import annotations

import numpy as np

from ..crowd.types import CrowdLabelMatrix
from .base import ConvergenceMonitor, InferenceResult, TruthInferenceMethod
from .sharding import ShardedTruthInference, ShardStats, shard_base_stats

__all__ = ["GLAD", "ShardedGLAD", "glad_reference"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return np.where(x >= 0, 1.0 / (1.0 + np.exp(-np.abs(x))), np.exp(-np.abs(x)) / (1.0 + np.exp(-np.abs(x))))


class GLAD(TruthInferenceMethod):
    """Binary GLAD via EM with gradient M-steps.

    Parameters
    ----------
    em_iterations:
        Number of E/M alternations.
    gradient_steps, learning_rate:
        Inner ascent steps on (α, log β) per M-step.
    prior_correct:
        Prior probability that the true label is class 1.
    tolerance:
        Early-stop threshold on the posterior's max absolute change per EM
        sweep. The default 0.0 never stops early (the paper's fixed-budget
        behaviour, and what :func:`glad_reference` always does); it exists
        so the shared diagnostics contract (``iterations``/``last_change``/
        ``converged``) is meaningful.
    """

    name = "GLAD"

    def __init__(
        self,
        em_iterations: int = 30,
        gradient_steps: int = 20,
        learning_rate: float = 0.05,
        prior_correct: float = 0.5,
        tolerance: float = 0.0,
    ) -> None:
        if em_iterations < 1:
            raise ValueError("need at least one EM iteration")
        if not 0.0 < prior_correct < 1.0:
            raise ValueError("prior must be in (0, 1)")
        self.em_iterations = em_iterations
        self.gradient_steps = gradient_steps
        self.learning_rate = learning_rate
        self.prior_correct = prior_correct
        self.tolerance = tolerance

    def infer(self, crowd: CrowdLabelMatrix) -> InferenceResult:
        if crowd.num_classes != 2:
            raise ValueError("GLAD supports binary labels only (as in the paper)")
        self._check_nonempty(crowd)
        I, J = crowd.num_instances, crowd.num_annotators
        rows, cols, given = crowd.flat_label_pairs()
        # Per observed label: True where the label equals class 1.
        votes_one = given == 1
        labels_per_annotator = np.maximum(np.bincount(cols, minlength=J), 1)
        labels_per_instance = np.maximum(np.bincount(rows, minlength=I), 1)
        log_prior_ratio = np.log(self.prior_correct) - np.log(1 - self.prior_correct)

        alpha = np.ones(J)
        log_beta = np.zeros(I)
        posterior_one = np.full(I, self.prior_correct)
        monitor = ConvergenceMonitor(self.tolerance, self.em_iterations)

        while True:
            # E-step: p(t_i = 1 | labels) with σ(αβ) correctness likelihood,
            # one gather per label and one scatter per evidence term.
            beta = np.exp(log_beta)
            sig = _sigmoid(beta[rows] * alpha[cols])
            log_sig = np.log(sig + 1e-12)
            log_one_minus = np.log(1.0 - sig + 1e-12)
            # If t=1: labels equal to 1 are correct; if t=0 they are wrong.
            log_like_one = np.bincount(
                rows, weights=np.where(votes_one, log_sig, log_one_minus), minlength=I
            )
            log_like_zero = np.bincount(
                rows, weights=np.where(votes_one, log_one_minus, log_sig), minlength=I
            )
            new_posterior_one = _sigmoid(log_prior_ratio + log_like_one - log_like_zero)
            delta = float(np.abs(new_posterior_one - posterior_one).max(initial=0.0))
            posterior_one = new_posterior_one
            should_stop = monitor.step(delta)
            if monitor.converged:
                # Tolerance-triggered stop: the posterior is final, so the
                # gradient ascent below would be dead work. (Never taken at
                # the default tolerance 0.0 — the budget-exhausted path
                # still runs the final M-step, exactly like the reference.)
                break

            # M-step: ascend expected complete log-likelihood in (α, log β);
            # each gradient is one O(n_obs) residual plus one bincount.
            for _ in range(self.gradient_steps):
                beta = np.exp(log_beta)
                sig = _sigmoid(beta[rows] * alpha[cols])
                # P(label j correct on i) under the posterior.
                prob_correct = np.where(votes_one, posterior_one[rows], 1.0 - posterior_one[rows])
                residual = prob_correct - sig
                # Mean (not summed) gradients keep step sizes independent of
                # how many labels an annotator/instance has.
                grad_alpha = (
                    np.bincount(cols, weights=residual * beta[rows], minlength=J)
                    / labels_per_annotator
                )
                grad_log_beta = (
                    np.bincount(rows, weights=residual * alpha[cols], minlength=I)
                    * beta
                ) / labels_per_instance
                alpha += self.learning_rate * grad_alpha
                log_beta += self.learning_rate * grad_log_beta
                log_beta = np.clip(log_beta, -4.0, 4.0)
                alpha = np.clip(alpha, -8.0, 8.0)

            if should_stop:
                break

        posterior = np.stack([1.0 - posterior_one, posterior_one], axis=1)
        extras = monitor.extras()
        extras.update({"alpha": alpha, "beta": np.exp(log_beta)})
        return InferenceResult(posterior=posterior, extras=extras)


class ShardedGLAD(ShardedTruthInference):
    """Map-reduce binary GLAD.

    The annotator abilities ``α`` are the only cross-shard state; item
    difficulties ``log β`` and posteriors are per-instance and live with
    their shard. Each EM round is one E-pass (per-shard posterior update,
    deltas merged via max) followed by ``gradient_steps`` gradient passes:
    every inner ascent step maps shards to raw ``α``-gradient scatter sums
    (merged, then normalized by the merged per-annotator label counts —
    exactly the batch mean-gradient) while the ``log β`` ascent applies
    shard-locally under the not-yet-updated global ``α``, which is the
    batch update order. Pinned to batch :class:`GLAD` at atol 1e-10 by the
    equivalence harness across shard layouts.
    """

    name = "GLAD"

    def __init__(
        self,
        em_iterations: int = 30,
        gradient_steps: int = 20,
        learning_rate: float = 0.05,
        prior_correct: float = 0.5,
        tolerance: float = 0.0,
    ) -> None:
        if em_iterations < 1:
            raise ValueError("need at least one EM iteration")
        if not 0.0 < prior_correct < 1.0:
            raise ValueError("prior must be in (0, 1)")
        self.em_iterations = em_iterations
        self.gradient_steps = gradient_steps
        self.learning_rate = learning_rate
        self.prior_correct = prior_correct
        self.tolerance = tolerance

    def _init_mapper(self, params, shard):
        # Per-shard state (all O(shard instances), carried across
        # passes like the batch method's per-instance arrays):
        # posterior, log difficulty, and the labels-per-instance mean
        # normalizer — computed once here, not per gradient step.
        rows, cols, _ = shard.flat_label_pairs()
        state = (
            np.full(shard.num_instances, self.prior_correct),
            np.zeros(shard.num_instances),
            np.maximum(np.bincount(rows, minlength=shard.num_instances), 1),
        )
        return state, ShardStats(
            label_counts=np.bincount(
                cols, minlength=shard.num_annotators
            ).astype(np.float64),
            **shard_base_stats(shard),
        )

    def _e_mapper(self, alpha, shard, state):
        posterior_one, log_beta, labels_per_instance = state
        rows, cols, given = shard.flat_label_pairs()
        votes_one = given == 1
        n = shard.num_instances
        log_prior_ratio = np.log(self.prior_correct) - np.log(1 - self.prior_correct)
        sig = _sigmoid(np.exp(log_beta)[rows] * alpha[cols])
        log_sig = np.log(sig + 1e-12)
        log_one_minus = np.log(1.0 - sig + 1e-12)
        log_like_one = np.bincount(
            rows, weights=np.where(votes_one, log_sig, log_one_minus), minlength=n
        )
        log_like_zero = np.bincount(
            rows, weights=np.where(votes_one, log_one_minus, log_sig), minlength=n
        )
        new_posterior = _sigmoid(log_prior_ratio + log_like_one - log_like_zero)
        delta = float(np.abs(new_posterior - posterior_one).max(initial=0.0))
        return (new_posterior, log_beta, labels_per_instance), ShardStats(delta=delta)

    def _grad_mapper(self, alpha, shard, state):
        posterior_one, log_beta, labels_per_instance = state
        rows, cols, given = shard.flat_label_pairs()
        votes_one = given == 1
        n = shard.num_instances
        beta = np.exp(log_beta)
        sig = _sigmoid(beta[rows] * alpha[cols])
        prob_correct = np.where(
            votes_one, posterior_one[rows], 1.0 - posterior_one[rows]
        )
        residual = prob_correct - sig
        # Raw scatter sum; the driver applies the global
        # labels-per-annotator mean, matching the batch gradient.
        grad_alpha = np.bincount(
            cols, weights=residual * beta[rows], minlength=shard.num_annotators
        )
        grad_log_beta = (
            np.bincount(rows, weights=residual * alpha[cols], minlength=n)
            * beta
        ) / labels_per_instance
        new_log_beta = np.clip(
            log_beta + self.learning_rate * grad_log_beta, -4.0, 4.0
        )
        return (
            (posterior_one, new_log_beta, labels_per_instance),
            ShardStats(grad_alpha=grad_alpha),
        )

    def _infer(self, ctx) -> InferenceResult:
        J, K, states, stats = self._initial_pass(ctx, self._init_mapper)
        if K != 2:
            raise ValueError("GLAD supports binary labels only (as in the paper)")
        self._require_annotated(stats)
        num_shards = len(states)
        observations = stats.observations
        labels_per_annotator = np.maximum(stats.label_counts, 1)
        alpha = np.ones(J)
        monitor = ConvergenceMonitor(self.tolerance, self.em_iterations)

        while True:
            states, stats = self._pass(ctx, states, self._e_mapper, alpha)
            should_stop = monitor.step(stats.delta)
            if monitor.converged:
                # Same dead-work skip as the batch method: the posterior is
                # final, so the gradient ascent would change nothing reported.
                break

            for _ in range(self.gradient_steps):
                states, grad_stats = self._pass(ctx, states, self._grad_mapper, alpha)
                alpha = np.clip(
                    alpha + self.learning_rate * grad_stats.grad_alpha / labels_per_annotator,
                    -8.0,
                    8.0,
                )

            if should_stop:
                break

        posterior_one = (
            np.concatenate([state[0] for state in states])
            if states
            else np.zeros(0)
        )
        log_beta = (
            np.concatenate([state[1] for state in states])
            if states
            else np.zeros(0)
        )
        posterior = np.stack([1.0 - posterior_one, posterior_one], axis=1)
        extras = monitor.extras()
        extras.update(
            alpha=alpha,
            beta=np.exp(log_beta),
            shards=num_shards,
            observations=observations,
        )
        return InferenceResult(posterior=posterior, extras=extras)


def glad_reference(
    crowd: CrowdLabelMatrix,
    em_iterations: int = 30,
    gradient_steps: int = 20,
    learning_rate: float = 0.05,
    prior_correct: float = 0.5,
) -> InferenceResult:
    """Pre-refactor GLAD (dense ``(I, J)`` masked scans every step).

    Kept as the executable specification for the equivalence harness and
    the benchmark baseline; use :class:`GLAD`.
    """
    if crowd.num_classes != 2:
        raise ValueError("GLAD supports binary labels only (as in the paper)")
    TruthInferenceMethod._check_nonempty(crowd)
    I, J = crowd.num_instances, crowd.num_annotators
    observed = crowd.observed_mask
    # match[i, j] = +1 where the label equals class 1, else -1 (0 if missing).
    sign = np.where(observed, np.where(crowd.labels == 1, 1.0, -1.0), 0.0)

    alpha = np.ones(J)
    log_beta = np.zeros(I)
    posterior_one = np.full(I, prior_correct)

    for _ in range(em_iterations):
        # E-step: p(t_i = 1 | labels) with σ(αβ) correctness likelihood.
        strength = np.exp(log_beta)[:, None] * alpha[None, :]
        log_sig = np.log(_sigmoid(strength) + 1e-12)
        log_one_minus = np.log(1.0 - _sigmoid(strength) + 1e-12)
        # If t=1: labels equal to 1 are correct; if t=0 they are wrong.
        log_like_one = np.where(observed, np.where(sign > 0, log_sig, log_one_minus), 0.0).sum(axis=1)
        log_like_zero = np.where(observed, np.where(sign < 0, log_sig, log_one_minus), 0.0).sum(axis=1)
        logit = (
            np.log(prior_correct) - np.log(1 - prior_correct)
            + log_like_one - log_like_zero
        )
        posterior_one = _sigmoid(logit)

        # M-step: ascend expected complete log-likelihood in (α, log β).
        for _ in range(gradient_steps):
            strength = np.exp(log_beta)[:, None] * alpha[None, :]
            sig = _sigmoid(strength)
            # P(label j correct on i) under the posterior.
            prob_correct = np.where(
                sign > 0, posterior_one[:, None], 1.0 - posterior_one[:, None]
            )
            residual = np.where(observed, prob_correct - sig, 0.0)
            # Mean (not summed) gradients keep step sizes independent of
            # how many labels an annotator/instance has.
            labels_per_annotator = np.maximum(observed.sum(axis=0), 1)
            labels_per_instance = np.maximum(observed.sum(axis=1), 1)
            grad_alpha = (residual * np.exp(log_beta)[:, None]).sum(axis=0) / labels_per_annotator
            grad_log_beta = (
                (residual * alpha[None, :]).sum(axis=1) * np.exp(log_beta)
            ) / labels_per_instance
            alpha += learning_rate * grad_alpha
            log_beta += learning_rate * grad_log_beta
            log_beta = np.clip(log_beta, -4.0, 4.0)
            alpha = np.clip(alpha, -8.0, 8.0)

    posterior = np.stack([1.0 - posterior_one, posterior_one], axis=1)
    return InferenceResult(
        posterior=posterior,
        extras={"alpha": alpha, "beta": np.exp(log_beta), "iterations": em_iterations},
    )
