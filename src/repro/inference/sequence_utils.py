"""Adapters that run instance-level inference methods at the token level.

MV, DS, and IBCC are token-independent, so for sequence crowds (NER) the
paper applies them per token. These adapters flatten a
:class:`~repro.crowd.SequenceCrowdLabels` into one big token × annotator
matrix, run the wrapped method, and unflatten back into per-sentence
posteriors.
"""

from __future__ import annotations

import numpy as np

from ..crowd.types import CrowdLabelMatrix, SequenceCrowdLabels
from .base import SequenceInferenceResult, TruthInferenceMethod

__all__ = ["flatten_sequence_crowd", "TokenLevelInference"]


def flatten_sequence_crowd(crowd: SequenceCrowdLabels) -> tuple[CrowdLabelMatrix, list[slice]]:
    """Stack all sentences' token labels into one ``(ΣT_i, J)`` matrix.

    Returns the matrix and per-sentence row slices for unflattening.
    """
    pieces = [np.asarray(matrix) for matrix in crowd.labels]
    slices: list[slice] = []
    cursor = 0
    for piece in pieces:
        slices.append(slice(cursor, cursor + piece.shape[0]))
        cursor += piece.shape[0]
    stacked = np.concatenate(pieces, axis=0)
    return CrowdLabelMatrix(stacked, crowd.num_classes), slices


class TokenLevelInference:
    """Run a classification truth-inference method independently per token."""

    def __init__(self, method: TruthInferenceMethod) -> None:
        self.method = method
        self.name = f"{method.name} (token)"

    def infer(self, crowd: SequenceCrowdLabels) -> SequenceInferenceResult:
        flat, slices = flatten_sequence_crowd(crowd)
        result = self.method.infer(flat)
        posteriors = [result.posterior[s] for s in slices]
        return SequenceInferenceResult(
            posteriors=posteriors,
            confusions=result.confusions,
            extras=dict(result.extras),
        )
