"""Adapters that run instance-level inference methods at the token level.

MV, DS, and IBCC are token-independent, so for sequence crowds (NER) the
paper applies them per token. These adapters flatten a
:class:`~repro.crowd.SequenceCrowdLabels` into one big token × annotator
matrix, run the wrapped method, and unflatten back into per-sentence
posteriors.
"""

from __future__ import annotations

import numpy as np

from ..crowd.types import CrowdLabelMatrix, SequenceCrowdLabels
from .base import SequenceInferenceResult, TruthInferenceMethod

__all__ = ["flatten_sequence_crowd", "TokenLevelInference"]


def flatten_sequence_crowd(crowd: SequenceCrowdLabels) -> tuple[CrowdLabelMatrix, list[slice]]:
    """Stack all sentences' token labels into one ``(ΣT_i, J)`` matrix.

    Returns the matrix and per-sentence row slices for unflattening. The
    stacked matrix and offsets come from the crowd's cached flat view, so
    repeated flattening (every EM round) costs no fresh concatenation.
    """
    stacked, offsets = crowd.flat_labels()
    slices = [
        slice(int(offsets[i]), int(offsets[i + 1])) for i in range(crowd.num_instances)
    ]
    return CrowdLabelMatrix(stacked, crowd.num_classes), slices


class TokenLevelInference:
    """Run a classification truth-inference method independently per token."""

    def __init__(self, method: TruthInferenceMethod) -> None:
        self.method = method
        self.name = f"{method.name} (token)"

    def infer(self, crowd: SequenceCrowdLabels) -> SequenceInferenceResult:
        flat, slices = flatten_sequence_crowd(crowd)
        result = self.method.infer(flat)
        posteriors = [result.posterior[s] for s in slices]
        return SequenceInferenceResult(
            posteriors=posteriors,
            confusions=result.confusions,
            extras=dict(result.extras),
        )
