"""Majority voting — the canonical truth-inference baseline.

The *soft* posterior is the per-instance vote fraction, which is also how
Algorithm 1 of the paper initializes ``qf(t)`` ("Initialize qf(t) with
Majority Voting").
"""

from __future__ import annotations

import numpy as np

from ..crowd.types import CrowdLabelMatrix
from .base import InferenceResult, TruthInferenceMethod

__all__ = ["MajorityVote", "majority_vote_posterior"]


def majority_vote_posterior(crowd: CrowdLabelMatrix) -> np.ndarray:
    """``(I, K)`` vote-fraction posterior; uniform for unlabeled instances."""
    counts = crowd.vote_counts().astype(np.float64)
    totals = counts.sum(axis=1, keepdims=True)
    uniform = np.full((1, crowd.num_classes), 1.0 / crowd.num_classes)
    return np.where(totals > 0, counts / np.where(totals > 0, totals, 1.0), uniform)


class MajorityVote(TruthInferenceMethod):
    """Soft majority voting."""

    name = "MV"

    def infer(self, crowd: CrowdLabelMatrix) -> InferenceResult:
        return InferenceResult(posterior=majority_vote_posterior(crowd))
