"""Majority voting — the canonical truth-inference baseline.

The *soft* posterior is the per-instance vote fraction, which is also how
Algorithm 1 of the paper initializes ``qf(t)`` ("Initialize qf(t) with
Majority Voting").
"""

from __future__ import annotations

import numpy as np

from ..crowd.types import MISSING, CrowdLabelMatrix
from .base import InferenceResult, TruthInferenceMethod

__all__ = ["MajorityVote", "majority_vote_posterior", "majority_vote_reference"]


def majority_vote_posterior(crowd: CrowdLabelMatrix) -> np.ndarray:
    """``(I, K)`` vote-fraction posterior; uniform for unlabeled instances."""
    counts = crowd.vote_counts().astype(np.float64)
    totals = counts.sum(axis=1, keepdims=True)
    uniform = np.full((1, crowd.num_classes), 1.0 / crowd.num_classes)
    return np.where(totals > 0, counts / np.where(totals > 0, totals, 1.0), uniform)


class MajorityVote(TruthInferenceMethod):
    """Soft majority voting."""

    name = "MV"

    def infer(self, crowd: CrowdLabelMatrix) -> InferenceResult:
        return InferenceResult(posterior=majority_vote_posterior(crowd))


def majority_vote_reference(crowd: CrowdLabelMatrix) -> InferenceResult:
    """Per-instance/per-annotator loop form of soft majority voting.

    The executable specification the equivalence harness compares the
    bincount-vectorized :class:`MajorityVote` against — every registered
    method has a reference, including the trivial baseline.
    """
    I, J, K = crowd.num_instances, crowd.num_annotators, crowd.num_classes
    posterior = np.full((I, K), 1.0 / K)
    for i in range(I):
        counts = np.zeros(K)
        for j in range(J):
            label = crowd.labels[i, j]
            if label != MISSING:
                counts[label] += 1.0
        total = counts.sum()
        if total > 0:
            posterior[i] = counts / total
    return InferenceResult(posterior=posterior)
