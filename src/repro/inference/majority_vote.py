"""Majority voting — the canonical truth-inference baseline.

The *soft* posterior is the per-instance vote fraction, which is also how
Algorithm 1 of the paper initializes ``qf(t)`` ("Initialize qf(t) with
Majority Voting").
"""

from __future__ import annotations

import numpy as np

from ..crowd.types import MISSING, CrowdLabelMatrix
from .base import InferenceResult, TruthInferenceMethod
from .sharding import ShardedTruthInference, ShardStats, shard_base_stats

__all__ = [
    "MajorityVote",
    "ShardedMajorityVote",
    "majority_vote_posterior",
    "majority_vote_reference",
]


def majority_vote_posterior(crowd: CrowdLabelMatrix) -> np.ndarray:
    """``(I, K)`` vote-fraction posterior; uniform for unlabeled instances."""
    counts = crowd.vote_counts().astype(np.float64)
    totals = counts.sum(axis=1, keepdims=True)
    uniform = np.full((1, crowd.num_classes), 1.0 / crowd.num_classes)
    return np.where(totals > 0, counts / np.where(totals > 0, totals, 1.0), uniform)


class MajorityVote(TruthInferenceMethod):
    """Soft majority voting."""

    name = "MV"

    def infer(self, crowd: CrowdLabelMatrix) -> InferenceResult:
        return InferenceResult(posterior=majority_vote_posterior(crowd))


class ShardedMajorityVote(ShardedTruthInference):
    """Map-reduce soft majority voting — one pass, no global model.

    Each instance's vote fraction depends only on its own labels, so the
    map stage is the whole computation and the reduce is bookkeeping
    (global vote totals for diagnostics). The result equals batch
    :class:`MajorityVote` on the concatenated shards; being single-pass,
    this is the one sharded method that accepts a one-shot shard iterator.
    """

    name = "MV"

    def _vote_mapper(self, params, shard):
        block = majority_vote_posterior(shard)
        stats = ShardStats(
            vote_totals=np.asarray(shard.vote_counts(), dtype=np.float64).sum(axis=0),
            **shard_base_stats(shard),
        )
        return block, stats

    def _infer(self, ctx) -> InferenceResult:
        _, K, blocks, stats = self._initial_pass(ctx, self._vote_mapper)
        return InferenceResult(
            posterior=self._concat(blocks, K),
            extras={
                "shards": len(blocks),
                "observations": stats.observations,
                "vote_totals": stats.vote_totals,
            },
        )


def majority_vote_reference(crowd: CrowdLabelMatrix) -> InferenceResult:
    """Per-instance/per-annotator loop form of soft majority voting.

    The executable specification the equivalence harness compares the
    bincount-vectorized :class:`MajorityVote` against — every registered
    method has a reference, including the trivial baseline.
    """
    I, J, K = crowd.num_instances, crowd.num_annotators, crowd.num_classes
    posterior = np.full((I, K), 1.0 / K)
    for i in range(I):
        counts = np.zeros(K)
        for j in range(J):
            label = crowd.labels[i, j]
            if label != MISSING:
                counts[label] += 1.0
        total = counts.sum()
        if total > 0:
            posterior[i] = counts / total
    return InferenceResult(posterior=posterior)
