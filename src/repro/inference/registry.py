"""Method registry: one place that names every truth-inference method.

The paper's Tables II/III each benchmark a block of truth-inference
methods ("MV", "DS", "GLAD", "PM", "CATD" on sentiment; "MV", "DS",
"IBCC", "BSC-seq", "HMM-Crowd" on NER). Before this registry existed,
every experiment suite and example hard-coded its own name → constructor
dict; now they all resolve through :func:`get_method`, and adding a method
to the comparison is one :func:`register` call.

Methods are registered under a *kind*:

* ``"classification"`` — operates on a :class:`~repro.crowd.types.\
  CrowdLabelMatrix`, returns an ``InferenceResult``;
* ``"sequence"`` — operates on a :class:`~repro.crowd.types.\
  SequenceCrowdLabels`, returns a ``SequenceInferenceResult``. The
  token-independent methods (MV/DS/IBCC) are registered here wrapped in
  :class:`~repro.inference.sequence_utils.TokenLevelInference`, exactly as
  the paper applies them to NER;
* ``"streaming"`` — online estimators from :mod:`~repro.inference.\
  streaming`: batches of new instances are ingested via ``partial_fit``
  instead of a one-shot ``infer``, under the replay-equivalence contract
  documented there (no decay + ``fit_to_convergence`` reproduces the
  kind-``"classification"`` method of the same name);
* ``"sharded"`` — map-reduce twins from :mod:`~repro.inference.sharding`:
  ``infer_sharded(shard_source)`` runs the same EM on mergeable per-shard
  sufficient statistics (in-memory shard views, lazily loaded out-of-core
  shards, or on-disk :class:`~repro.crowd.sharding.ShardHandle` files),
  reproducing the kind-``"classification"`` method of the same name at
  atol 1e-10 on any shard layout. The map stage runs serially, over a
  thread pool (``executor=``), or over a process pool (``workers=N`` or a
  ``ProcessPoolExecutor``) with bit-identical posteriors either way
  (deterministic tree reduce). Drive them through
  :func:`~repro.inference.sharding.run_sharded`.

Factories receive the caller's keyword overrides (e.g.
``get_method("HMM-Crowd", kind="sequence", max_iterations=15)``), so
suites can scale iteration budgets without bypassing the registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .bsc_seq import BSCSeq
from .catd import CATD, ShardedCATD
from .dawid_skene import DawidSkene, ShardedDawidSkene
from .glad import GLAD, ShardedGLAD
from .hmm_crowd import HMMCrowd
from .ibcc import IBCC, ShardedIBCC
from .majority_vote import MajorityVote, ShardedMajorityVote
from .pm import PM, ShardedPM
from .sequence_utils import TokenLevelInference
from .streaming import StreamingDawidSkene, StreamingGLAD, StreamingMajorityVote

__all__ = ["MethodSpec", "register", "get_method", "available_methods", "build_method_table"]

KINDS = ("classification", "sequence", "streaming", "sharded")


@dataclass(frozen=True)
class MethodSpec:
    """One registry entry: paper name, task kind, and a factory."""

    name: str
    kind: str
    factory: Callable[..., object]
    description: str = ""


_REGISTRY: dict[tuple[str, str], MethodSpec] = {}


def register(
    name: str,
    kind: str,
    factory: Callable[..., object],
    description: str = "",
    overwrite: bool = False,
) -> MethodSpec:
    """Add a method under ``(kind, name)``; refuses silent redefinition."""
    if kind not in KINDS:
        raise ValueError(f"kind must be one of {KINDS}, got {kind!r}")
    key = (kind, name)
    if key in _REGISTRY and not overwrite:
        raise ValueError(f"{name!r} already registered for kind {kind!r}")
    spec = MethodSpec(name=name, kind=kind, factory=factory, description=description)
    _REGISTRY[key] = spec
    return spec


def get_method(name: str, kind: str = "classification", **overrides):
    """Instantiate the registered method ``name`` for ``kind``.

    Keyword overrides are forwarded to the factory (and from there to the
    method constructor). Raises ``KeyError`` with the known names when the
    method is missing — the same contract the suites' hard-coded dicts had.
    """
    if kind not in KINDS:
        raise ValueError(f"kind must be one of {KINDS}, got {kind!r}")
    spec = _REGISTRY.get((kind, name))
    if spec is None:
        known = ", ".join(available_methods(kind))
        raise KeyError(f"unknown truth-inference method {name!r} for kind {kind!r} (known: {known})")
    return spec.factory(**overrides)


def available_methods(kind: str | None = None) -> tuple[str, ...]:
    """Registered names (registration order), optionally filtered by kind.

    Without a kind filter, names registered for both kinds (MV/DS/IBCC)
    appear once.
    """
    names = {
        spec.name: None
        for (k, _), spec in _REGISTRY.items()
        if kind is None or k == kind
    }
    return tuple(names)


def build_method_table(names, kind: str, overrides: dict[str, dict] | None = None) -> dict:
    """Instantiate ``{name: method}`` for a suite's comparison block.

    ``overrides`` maps method names to constructor keyword overrides (e.g.
    ``{"HMM-Crowd": {"max_iterations": 15}}``).
    """
    overrides = overrides or {}
    return {name: get_method(name, kind=kind, **overrides.get(name, {})) for name in names}


def _token_level(method_cls):
    """Factory adapter: run a classification method independently per token."""

    def factory(**overrides):
        return TokenLevelInference(method_cls(**overrides))

    return factory


# --------------------------------------------------------------------- #
# Built-in registrations: the paper's Table II/III truth-inference blocks.
# --------------------------------------------------------------------- #
register("MV", "classification", MajorityVote, "soft majority voting")
register("DS", "classification", DawidSkene, "Dawid–Skene confusion-matrix EM")
register("GLAD", "classification", GLAD, "GLAD ability/difficulty model (binary)")
register("PM", "classification", PM, "iterative weighted voting")
register("CATD", "classification", CATD, "confidence-aware truth discovery")
register("IBCC", "classification", IBCC, "variational-Bayes IBCC")

register("MV", "sequence", _token_level(MajorityVote), "token-level majority voting")
register("DS", "sequence", _token_level(DawidSkene), "token-level Dawid–Skene")
register("IBCC", "sequence", _token_level(IBCC), "token-level IBCC")
register("BSC-seq", "sequence", BSCSeq, "Bayesian sequence combination (seq)")
register("HMM-Crowd", "sequence", HMMCrowd, "HMM with crowd emissions")

register("MV", "streaming", StreamingMajorityVote, "online majority voting")
register("DS", "streaming", StreamingDawidSkene, "stepwise-EM Dawid–Skene")
register("GLAD", "streaming", StreamingGLAD, "online GLAD (binary, SGD abilities)")

register("MV", "sharded", ShardedMajorityVote, "map-reduce majority voting")
register("DS", "sharded", ShardedDawidSkene, "map-reduce Dawid–Skene EM")
register("IBCC", "sharded", ShardedIBCC, "map-reduce variational-Bayes IBCC")
register("GLAD", "sharded", ShardedGLAD, "map-reduce GLAD (binary)")
register("PM", "sharded", ShardedPM, "map-reduce iterative weighted voting")
register("CATD", "sharded", ShardedCATD, "map-reduce confidence-aware truth discovery")
