"""Truth-inference baselines (Tables II/III "Truth Inference" blocks).

Architecture — three layers over one sparse-crowd core:

1. **Primitives** (:mod:`~repro.inference.primitives`): vectorized kernels
   shared by every method — confusion-count scatter, emission
   log-likelihood gather, log-space normalization, and a batched
   length-masked forward–backward over padded ``(I, T_max, K)`` emissions.
   They run on the cached flat COO views both crowd containers expose
   (``flat_label_pairs`` + a sparse instance × (annotator, label)
   incidence), so each EM update is a sparse–dense matmul or a
   ``bincount`` per class — never a Python loop over instances or
   annotators. :mod:`repro.core.em` (Logic-LNCL's pseudo-E/M) reuses the
   same kernels.

2. **Methods**: each module implements one method on the primitives, with
   a shared convergence/diagnostics contract
   (:class:`~repro.inference.base.ConvergenceMonitor` → ``iterations``,
   ``last_change``, ``converged``, ``log_likelihood_trace`` in
   ``extras``). Pre-refactor implementations are kept as ``*_reference``
   functions — executable specifications pinned by equivalence tests at
   atol 1e-10 and timed as the "before" side in
   ``benchmarks/bench_hotpaths.py``.

   On top of the batch methods, :mod:`~repro.inference.streaming` runs
   the same kernels *online*: label batches are ingested incrementally
   (``partial_fit``) with per-update cost O(new observations), under a
   replay-equivalence contract that pins the no-decay stream to the batch
   methods at convergence. :mod:`~repro.inference.sharding` runs them
   *sharded*: every E/M round maps shards to mergeable
   :class:`~repro.inference.sharding.ShardStats` and reduces before one
   global M-step, so crowd-data memory is O(largest shard) — in-memory
   shard views or lazily loaded out-of-core shards — pinned to the batch
   methods at atol 1e-10 on any shard layout.

3. **Registry** (:mod:`~repro.inference.registry`): the single name →
   factory table the experiment suites and examples resolve through. To
   add a method: implement ``infer`` (subclass
   :class:`~repro.inference.base.TruthInferenceMethod` for classification
   crowds), then ``register("MyMethod", "classification", MyMethod)`` —
   it immediately becomes available to every suite via
   ``get_method``/``build_method_table``, and the interface-contract tests
   in ``tests/inference/test_registry.py`` cover it automatically.
"""

from .base import (
    ConvergenceMonitor,
    InferenceResult,
    SequenceInferenceResult,
    TruthInferenceMethod,
)
from .bsc_seq import BSCSeq, bsc_seq_reference
from .catd import CATD, ShardedCATD, catd_reference
from .dawid_skene import DawidSkene, ShardedDawidSkene, dawid_skene_reference
from .glad import GLAD, ShardedGLAD, glad_reference
from .hmm_crowd import HMMCrowd, forward_backward, hmm_crowd_reference
from .ibcc import IBCC, ShardedIBCC, ibcc_reference
from .majority_vote import (
    MajorityVote,
    ShardedMajorityVote,
    majority_vote_posterior,
    majority_vote_reference,
)
from .pm import PM, ShardedPM, pm_reference
from .primitives import (
    annotator_agreement,
    batched_forward_backward,
    confusion_counts,
    emission_log_likelihood,
    normalize_log_posterior,
    pad_ragged,
    weighted_vote_scores,
)
from .registry import available_methods, build_method_table, get_method, register
from .sequence_utils import TokenLevelInference, flatten_sequence_crowd
from .sharding import (
    ShardedTruthInference,
    ShardStats,
    as_shard_source,
    merge_shard_stats,
    run_sharded,
    tree_merge_shard_stats,
)
from .streaming import (
    StreamingDawidSkene,
    StreamingGLAD,
    StreamingMajorityVote,
    StreamingTruthInference,
)

__all__ = [
    "InferenceResult",
    "SequenceInferenceResult",
    "TruthInferenceMethod",
    "ConvergenceMonitor",
    "MajorityVote",
    "majority_vote_posterior",
    "majority_vote_reference",
    "DawidSkene",
    "dawid_skene_reference",
    "GLAD",
    "glad_reference",
    "PM",
    "pm_reference",
    "CATD",
    "catd_reference",
    "IBCC",
    "ibcc_reference",
    "HMMCrowd",
    "hmm_crowd_reference",
    "BSCSeq",
    "bsc_seq_reference",
    "forward_backward",
    "batched_forward_backward",
    "confusion_counts",
    "emission_log_likelihood",
    "normalize_log_posterior",
    "annotator_agreement",
    "weighted_vote_scores",
    "pad_ragged",
    "register",
    "get_method",
    "available_methods",
    "build_method_table",
    "TokenLevelInference",
    "flatten_sequence_crowd",
    "StreamingTruthInference",
    "StreamingMajorityVote",
    "StreamingDawidSkene",
    "StreamingGLAD",
    "ShardStats",
    "merge_shard_stats",
    "tree_merge_shard_stats",
    "as_shard_source",
    "ShardedTruthInference",
    "run_sharded",
    "ShardedMajorityVote",
    "ShardedDawidSkene",
    "ShardedIBCC",
    "ShardedGLAD",
    "ShardedPM",
    "ShardedCATD",
]
