"""Truth-inference baselines (Tables II/III "Truth Inference" blocks)."""

from .base import InferenceResult, SequenceInferenceResult, TruthInferenceMethod
from .bsc_seq import BSCSeq
from .catd import CATD
from .dawid_skene import DawidSkene
from .glad import GLAD
from .hmm_crowd import HMMCrowd, forward_backward
from .ibcc import IBCC
from .majority_vote import MajorityVote, majority_vote_posterior
from .pm import PM
from .sequence_utils import TokenLevelInference, flatten_sequence_crowd

__all__ = [
    "InferenceResult",
    "SequenceInferenceResult",
    "TruthInferenceMethod",
    "MajorityVote",
    "majority_vote_posterior",
    "DawidSkene",
    "GLAD",
    "PM",
    "CATD",
    "IBCC",
    "HMMCrowd",
    "BSCSeq",
    "forward_backward",
    "TokenLevelInference",
    "flatten_sequence_crowd",
]
