"""HMM-Crowd (Nguyen et al., ACL 2017): sequential truth inference.

Hidden true tag sequences follow a first-order Markov chain; each annotator
emits labels through a per-annotator confusion matrix. EM:

* E-step — per sentence, forward–backward over the chain whose emission
  likelihood at token ``t`` for state ``m`` is
  ``Π_{j∈J(i)} π_j[m, y_{tj}]``;
* M-step — count updates (with smoothing) for the initial distribution,
  the transition matrix, and every confusion matrix.

The transition matrix is what lets the method repair boundary errors that
token-independent aggregation (MV/DS) cannot.

Performance: the E-step runs :func:`repro.inference.primitives.\
batched_forward_backward` over padded ``(I, T_max, K)`` emissions — every
timestep is one matmul across all sentences — and both the emission
build-up and the confusion-count M-step are sparse products over the
crowd's cached flat token views. The per-chain :func:`forward_backward`
and the pre-refactor EM loop (:func:`hmm_crowd_reference`) are kept as
executable specifications; equivalence at atol 1e-10 is enforced by
``tests/inference/test_primitives.py`` and
``tests/inference/test_method_equivalence.py``.
"""

from __future__ import annotations

import numpy as np

from ..crowd.types import SequenceCrowdLabels
from .base import ConvergenceMonitor, SequenceInferenceResult
from .primitives import (
    batched_forward_backward,
    confusion_counts,
    emission_log_likelihood,
    flat_chain_views,
    scatter_to_padded,
    split_by_offsets,
    token_majority_vote_flat,
)

__all__ = ["HMMCrowd", "forward_backward", "hmm_crowd_reference"]


def forward_backward(
    log_emissions: np.ndarray, log_transition: np.ndarray, log_initial: np.ndarray
) -> tuple[np.ndarray, np.ndarray, float]:
    """Scaled forward–backward on one chain.

    The single-chain executable specification for
    :func:`repro.inference.primitives.batched_forward_backward`.

    Parameters
    ----------
    log_emissions:
        ``(T, K)`` log emission likelihoods.
    log_transition:
        ``(K, K)`` log transition matrix (rows: from-state).
    log_initial:
        ``(K,)`` log initial distribution.

    Returns
    -------
    ``(gamma, xi_sum, log_likelihood)`` — per-token marginals ``(T, K)``,
    summed pairwise marginals ``(K, K)``, and the chain's log evidence.
    """
    T, K = log_emissions.shape
    emissions = np.exp(log_emissions - log_emissions.max(axis=1, keepdims=True))
    transition = np.exp(log_transition)
    initial = np.exp(log_initial - log_initial.max())
    initial /= initial.sum()

    alpha = np.zeros((T, K))
    scales = np.zeros(T)
    alpha[0] = initial * emissions[0]
    scales[0] = alpha[0].sum()
    alpha[0] /= scales[0]
    for t in range(1, T):
        alpha[t] = emissions[t] * (alpha[t - 1] @ transition)
        scales[t] = alpha[t].sum()
        if scales[t] <= 0:
            raise ValueError(f"chain has no support at position {t}")
        alpha[t] /= scales[t]

    beta = np.ones((T, K))
    for t in range(T - 2, -1, -1):
        beta[t] = transition @ (emissions[t + 1] * beta[t + 1])
        beta[t] /= max(beta[t].sum(), 1e-300)

    gamma = alpha * beta
    gamma /= gamma.sum(axis=1, keepdims=True)

    xi_sum = np.zeros((K, K))
    for t in range(T - 1):
        xi = (alpha[t][:, None] * transition) * (emissions[t + 1] * beta[t + 1])[None, :]
        total = xi.sum()
        if total > 0:
            xi_sum += xi / total

    # The dropped per-row emission max constants cancel in gamma/xi but not
    # in the evidence; add them back.
    log_likelihood = float(np.log(scales).sum() + log_emissions.max(axis=1).sum())
    return gamma, xi_sum, log_likelihood


class HMMCrowd:
    """EM for the HMM-with-crowd-emissions model."""

    name = "HMM-Crowd"

    def __init__(self, max_iterations: int = 30, tolerance: float = 1e-4, smoothing: float = 0.1) -> None:
        if max_iterations < 1:
            raise ValueError("need at least one iteration")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.smoothing = smoothing

    def infer(self, crowd: SequenceCrowdLabels) -> SequenceInferenceResult:
        K = crowd.num_classes
        offsets, lengths, starts, chain_index, time_index, T_max = flat_chain_views(crowd)
        transition = np.full((K, K), 1.0 / K)
        initial = np.full(K, 1.0 / K)
        if T_max == 0:
            # Degenerate crowd (no sentences, or only empty ones): nothing
            # to infer; parameters stay at their uniform initialization.
            return SequenceInferenceResult(
                posteriors=[np.zeros((0, K)) for _ in range(crowd.num_instances)],
                confusions=np.full((crowd.num_annotators, K, K), 1.0 / K),
                extras={
                    "iterations": 0,
                    "last_change": 0.0,
                    "converged": True,
                    "transition": transition,
                    "initial": initial,
                    "log_likelihood": 0.0,
                },
            )
        gamma_flat = token_majority_vote_flat(crowd)

        confusions = np.zeros((crowd.num_annotators, K, K))
        monitor = ConvergenceMonitor(self.tolerance, self.max_iterations)
        previous_log_likelihood = -np.inf

        while True:
            # M-step from current posteriors.
            counts = confusion_counts(gamma_flat, crowd) + self.smoothing
            confusions = counts / counts.sum(axis=2, keepdims=True)
            initial_counts = self.smoothing + gamma_flat[starts].sum(axis=0)

            # E-step: all chains at once, with fresh transition statistics.
            log_em = scatter_to_padded(
                emission_log_likelihood(crowd, np.log(confusions)),
                crowd.num_instances, T_max, chain_index, time_index,
            )
            gamma_padded, xi, chain_log_likelihoods = batched_forward_backward(
                log_em, np.log(transition), np.log(initial), lengths
            )
            gamma_flat = gamma_padded[chain_index, time_index]
            transition_counts = self.smoothing + xi.sum(axis=0)
            transition = transition_counts / transition_counts.sum(axis=1, keepdims=True)
            initial = initial_counts / initial_counts.sum()

            total_log_likelihood = float(chain_log_likelihoods.sum())
            change = abs(total_log_likelihood - previous_log_likelihood)
            previous_log_likelihood = total_log_likelihood
            if monitor.step(change, total_log_likelihood):
                break

        posteriors = split_by_offsets(gamma_flat, offsets)
        extras = monitor.extras()
        extras.update(
            transition=transition,
            initial=initial,
            log_likelihood=previous_log_likelihood,
        )
        return SequenceInferenceResult(
            posteriors=posteriors, confusions=confusions, extras=extras
        )


def hmm_crowd_reference(
    crowd: SequenceCrowdLabels,
    max_iterations: int = 30,
    tolerance: float = 1e-4,
    smoothing: float = 0.1,
) -> SequenceInferenceResult:
    """Pre-refactor HMM-Crowd EM (per-sentence/per-annotator loops).

    Kept as the executable specification for the equivalence tests and the
    benchmark baseline; use :class:`HMMCrowd`.
    """
    K = crowd.num_classes
    J = crowd.num_annotators

    def log_emissions_of(instance: int, log_confusions: np.ndarray) -> np.ndarray:
        matrix = crowd.labels[instance]
        out = np.zeros((matrix.shape[0], K))
        for j in crowd.annotators_of(instance):
            out += log_confusions[j][:, matrix[:, j]].T  # (T, K) via fancy index
        return out

    # Init from token-level majority voting.
    posteriors: list[np.ndarray] = []
    for i in range(crowd.num_instances):
        votes = crowd.token_vote_counts(i).astype(np.float64) + 1e-3
        posteriors.append(votes / votes.sum(axis=1, keepdims=True))

    transition = np.full((K, K), 1.0 / K)
    initial = np.full(K, 1.0 / K)
    confusions = np.zeros((J, K, K))
    previous_log_likelihood = -np.inf

    iterations_used = max_iterations
    for iteration in range(max_iterations):
        # M-step from current posteriors.
        confusion_count_arr = np.full((J, K, K), smoothing)
        transition_counts = np.full((K, K), smoothing)
        initial_counts = np.full(K, smoothing)
        for i in range(crowd.num_instances):
            gamma = posteriors[i]
            matrix = crowd.labels[i]
            initial_counts += gamma[0]
            for j in crowd.annotators_of(i):
                np.add.at(confusion_count_arr[j].T, matrix[:, j], gamma)
        confusions = confusion_count_arr / confusion_count_arr.sum(axis=2, keepdims=True)

        # E-step with fresh transition statistics.
        log_confusions = np.log(confusions)
        log_transition = np.log(transition)
        log_initial = np.log(initial)
        total_log_likelihood = 0.0
        new_posteriors: list[np.ndarray] = []
        for i in range(crowd.num_instances):
            log_em = log_emissions_of(i, log_confusions)
            gamma, xi_sum, log_like = forward_backward(log_em, log_transition, log_initial)
            new_posteriors.append(gamma)
            transition_counts += xi_sum
            total_log_likelihood += log_like
        posteriors = new_posteriors
        transition = transition_counts / transition_counts.sum(axis=1, keepdims=True)
        initial = initial_counts / initial_counts.sum()

        if abs(total_log_likelihood - previous_log_likelihood) < tolerance:
            iterations_used = iteration + 1
            break
        previous_log_likelihood = total_log_likelihood

    return SequenceInferenceResult(
        posteriors=posteriors,
        confusions=confusions,
        extras={
            "transition": transition,
            "initial": initial,
            "iterations": iterations_used,
            "log_likelihood": previous_log_likelihood,
        },
    )
