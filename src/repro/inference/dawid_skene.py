"""Dawid & Skene (1979): confusion-matrix EM for truth inference.

The grandfather of the paper's probabilistic model family (§VII). Latent
true labels, per-annotator confusion matrices, class prior; EM alternates
Bayes-rule posteriors with closed-form count updates. Laplace smoothing
keeps confusion rows proper on sparse annotators.
"""

from __future__ import annotations

import numpy as np

from ..crowd.types import CrowdLabelMatrix
from .base import InferenceResult, TruthInferenceMethod
from .majority_vote import majority_vote_posterior

__all__ = ["DawidSkene"]


class DawidSkene(TruthInferenceMethod):
    """Classic DS EM.

    Parameters
    ----------
    max_iterations:
        Upper bound on EM sweeps.
    tolerance:
        Stop when the posterior's max absolute change falls below this.
    smoothing:
        Laplace pseudo-count added to confusion and prior counts.
    """

    name = "DS"

    def __init__(self, max_iterations: int = 100, tolerance: float = 1e-6, smoothing: float = 0.01) -> None:
        if max_iterations < 1:
            raise ValueError("need at least one iteration")
        if smoothing < 0:
            raise ValueError("smoothing must be non-negative")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.smoothing = smoothing

    def infer(self, crowd: CrowdLabelMatrix) -> InferenceResult:
        self._check_nonempty(crowd)
        I, J = crowd.num_instances, crowd.num_annotators
        K = crowd.num_classes
        one_hot = crowd.one_hot()                       # (I, J, K)
        posterior = majority_vote_posterior(crowd)

        confusions = np.zeros((J, K, K))
        iterations_used = self.max_iterations
        for iteration in range(self.max_iterations):
            # M-step: confusion counts and class prior from soft assignments.
            counts = np.einsum("im,ijn->jmn", posterior, one_hot) + self.smoothing
            confusions = counts / counts.sum(axis=2, keepdims=True)
            prior = posterior.sum(axis=0) + self.smoothing
            prior /= prior.sum()

            # E-step in log space: log q(t_i=m) = log p_m + Σ_j log π_j[m, y_ij].
            log_confusions = np.log(confusions)
            log_likelihood = np.einsum("ijn,jmn->im", one_hot, log_confusions)
            log_posterior = np.log(prior)[None, :] + log_likelihood
            log_posterior -= log_posterior.max(axis=1, keepdims=True)
            new_posterior = np.exp(log_posterior)
            new_posterior /= new_posterior.sum(axis=1, keepdims=True)

            delta = float(np.abs(new_posterior - posterior).max())
            posterior = new_posterior
            if delta < self.tolerance:
                iterations_used = iteration + 1
                break

        return InferenceResult(
            posterior=posterior,
            confusions=confusions,
            extras={"iterations": iterations_used},
        )
