"""Dawid & Skene (1979): confusion-matrix EM for truth inference.

The grandfather of the paper's probabilistic model family (§VII). Latent
true labels, per-annotator confusion matrices, class prior; EM alternates
Bayes-rule posteriors with closed-form count updates. Laplace smoothing
keeps confusion rows proper on sparse annotators.

Performance: both EM steps run on the crowd's cached flat COO views via
:mod:`repro.inference.primitives` — the confusion-count scatter and the
per-instance log-likelihood gather are each one sparse–dense product over
the observed ``(instance, annotator)`` pairs, instead of dense einsums
over the mostly-zero ``(I, J, K)`` one-hot expansion. The pre-refactor
implementation is kept as :func:`dawid_skene_reference` (the executable
specification); equivalence at atol 1e-10 is enforced by
``tests/inference/test_method_equivalence.py``.
"""

from __future__ import annotations

import numpy as np

from ..crowd.types import CrowdLabelMatrix
from .base import ConvergenceMonitor, InferenceResult, TruthInferenceMethod
from .majority_vote import majority_vote_posterior
from .primitives import confusion_counts, emission_log_likelihood
from .sharding import ShardedTruthInference, ShardStats, shard_base_stats

__all__ = ["DawidSkene", "ShardedDawidSkene", "dawid_skene_reference"]


class DawidSkene(TruthInferenceMethod):
    """Classic DS EM.

    Parameters
    ----------
    max_iterations:
        Upper bound on EM sweeps.
    tolerance:
        Stop when the posterior's max absolute change falls below this.
    smoothing:
        Laplace pseudo-count added to confusion and prior counts.
    """

    name = "DS"

    def __init__(self, max_iterations: int = 100, tolerance: float = 1e-6, smoothing: float = 0.01) -> None:
        if max_iterations < 1:
            raise ValueError("need at least one iteration")
        if smoothing < 0:
            raise ValueError("smoothing must be non-negative")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.smoothing = smoothing

    def infer(self, crowd: CrowdLabelMatrix) -> InferenceResult:
        self._check_nonempty(crowd)
        posterior = majority_vote_posterior(crowd)
        monitor = ConvergenceMonitor(self.tolerance, self.max_iterations)

        confusions = np.zeros((crowd.num_annotators, crowd.num_classes, crowd.num_classes))
        while True:
            # M-step: confusion counts and class prior from soft assignments.
            counts = confusion_counts(posterior, crowd) + self.smoothing
            confusions = counts / counts.sum(axis=2, keepdims=True)
            prior = posterior.sum(axis=0) + self.smoothing
            prior /= prior.sum()

            # E-step in log space: log q(t_i=m) = log p_m + Σ_j log π_j[m, y_ij].
            log_posterior = np.log(prior)[None, :] + emission_log_likelihood(
                crowd, np.log(confusions)
            )
            shift = log_posterior.max(axis=1, keepdims=True)
            unnormalized = np.exp(log_posterior - shift)
            normalizer = unnormalized.sum(axis=1, keepdims=True)
            log_likelihood = float((shift[:, 0] + np.log(normalizer[:, 0])).sum())
            new_posterior = unnormalized / normalizer

            # initial=0.0 keeps the degenerate empty crowd (I = 0) total.
            delta = float(np.abs(new_posterior - posterior).max(initial=0.0))
            posterior = new_posterior
            if monitor.step(delta, log_likelihood):
                break

        return InferenceResult(
            posterior=posterior,
            confusions=confusions,
            extras=monitor.extras(),
        )


class ShardedDawidSkene(ShardedTruthInference):
    """Map-reduce Dawid–Skene: one data pass per EM round.

    Round structure (mirroring :class:`DawidSkene` exactly): the global
    M-step runs from the merged :class:`~repro.inference.sharding.
    ShardStats` of the previous pass (soft confusion counts + class
    totals), then one map pass applies the refreshed parameters' E-step to
    every shard and gathers the next round's statistics — so each EM round
    reads the shard data exactly once. The init pass seeds with per-shard
    majority voting, as the batch method does. The mappers are bound
    methods taking ``(params, shard, state)`` so a process pool can ship
    them by name; the per-round ``(log prior, log confusions)`` travel as
    the pass params, broadcast once per pass. Equivalence to the batch
    twin (posterior, confusions, iteration count) holds at atol 1e-10 on
    any shard layout; the only divergence is summation grouping.
    """

    name = "DS"

    def __init__(
        self, max_iterations: int = 100, tolerance: float = 1e-6, smoothing: float = 0.01
    ) -> None:
        if max_iterations < 1:
            raise ValueError("need at least one iteration")
        if smoothing < 0:
            raise ValueError("smoothing must be non-negative")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.smoothing = smoothing

    def _init_mapper(self, params, shard):
        block = majority_vote_posterior(shard)
        return block, ShardStats(
            confusion=confusion_counts(block, shard),
            class_totals=block.sum(axis=0),
            **shard_base_stats(shard),
        )

    def _em_mapper(self, params, shard, old_block):
        # E-step under the fresh global parameters, plus this block's
        # contribution to the *next* round's M-step.
        log_prior, log_confusions = params
        log_posterior = log_prior[None, :] + emission_log_likelihood(
            shard, log_confusions
        )
        shift = log_posterior.max(axis=1, keepdims=True)
        unnormalized = np.exp(log_posterior - shift)
        normalizer = unnormalized.sum(axis=1, keepdims=True)
        block = unnormalized / normalizer
        return block, ShardStats(
            confusion=confusion_counts(block, shard),
            class_totals=block.sum(axis=0),
            log_likelihood=float((shift[:, 0] + np.log(normalizer[:, 0])).sum()),
            delta=float(np.abs(block - old_block).max(initial=0.0)),
        )

    def _infer(self, ctx) -> InferenceResult:
        _, K, blocks, stats = self._initial_pass(ctx, self._init_mapper)
        self._require_annotated(stats)
        num_shards = len(blocks)
        observations = stats.observations
        monitor = ConvergenceMonitor(self.tolerance, self.max_iterations)

        while True:
            # Global M-step from the merged sufficient statistics.
            counts = stats.confusion + self.smoothing
            confusions = counts / counts.sum(axis=2, keepdims=True)
            prior = stats.class_totals + self.smoothing
            prior = prior / prior.sum()

            blocks, stats = self._pass(
                ctx, blocks, self._em_mapper, (np.log(prior), np.log(confusions))
            )
            if monitor.step(stats.delta, stats.log_likelihood):
                break

        extras = monitor.extras()
        extras.update(shards=num_shards, observations=observations)
        return InferenceResult(
            posterior=self._concat(blocks, K), confusions=confusions, extras=extras
        )


def dawid_skene_reference(
    crowd: CrowdLabelMatrix,
    max_iterations: int = 100,
    tolerance: float = 1e-6,
    smoothing: float = 0.01,
) -> InferenceResult:
    """Pre-refactor DS EM (dense one-hot einsums over ``(I, J, K)``).

    Kept as the executable specification for the equivalence tests and the
    benchmark baseline; use :class:`DawidSkene`.
    """
    TruthInferenceMethod._check_nonempty(crowd)
    J = crowd.num_annotators
    K = crowd.num_classes
    one_hot = crowd.one_hot()                       # (I, J, K)
    posterior = majority_vote_posterior(crowd)

    confusions = np.zeros((J, K, K))
    iterations_used = max_iterations
    for iteration in range(max_iterations):
        counts = np.einsum("im,ijn->jmn", posterior, one_hot) + smoothing
        confusions = counts / counts.sum(axis=2, keepdims=True)
        prior = posterior.sum(axis=0) + smoothing
        prior /= prior.sum()

        log_confusions = np.log(confusions)
        log_likelihood = np.einsum("ijn,jmn->im", one_hot, log_confusions)
        log_posterior = np.log(prior)[None, :] + log_likelihood
        log_posterior -= log_posterior.max(axis=1, keepdims=True)
        new_posterior = np.exp(log_posterior)
        new_posterior /= new_posterior.sum(axis=1, keepdims=True)

        delta = float(np.abs(new_posterior - posterior).max())
        posterior = new_posterior
        if delta < tolerance:
            iterations_used = iteration + 1
            break

    return InferenceResult(
        posterior=posterior,
        confusions=confusions,
        extras={"iterations": iterations_used},
    )
