"""CATD (Li et al., VLDB 2014): confidence-aware truth discovery.

CATD addresses the *long tail* of annotators with very few labels: a
point-estimated reliability for a 3-label annotator is meaningless. Instead
each annotator's weight is the upper end of a chi-square confidence
interval on their error sum:

    w_j = χ²(α/2; n_j) / Σ_i d(y_ij, t_i*)

so scarce annotators get conservative (smaller) weights. We alternate this
weight update with weighted voting, using the squared distance
``d = 1 - posterior_match`` for categorical labels.

Performance: the error sum is one
:func:`~repro.inference.primitives.annotator_agreement` gather/scatter and
the weighted vote one
:func:`~repro.inference.primitives.weighted_vote_scores` spMM/bincount over
the crowd's cached COO views — the dense ``(I, J, K)`` one-hot einsums
survive only in :func:`catd_reference`, the executable specification the
equivalence harness pins at atol 1e-10.
"""

from __future__ import annotations

import numpy as np

try:
    from scipy import stats
except ImportError:  # keep the package importable; CATD itself needs scipy
    stats = None

from ..crowd.types import CrowdLabelMatrix
from .base import ConvergenceMonitor, InferenceResult, TruthInferenceMethod
from .majority_vote import majority_vote_posterior
from .primitives import annotator_agreement, normalize_vote_scores, weighted_vote_scores
from .sharding import ShardedTruthInference, ShardStats, shard_base_stats

__all__ = ["CATD", "ShardedCATD", "catd_reference"]


class CATD(TruthInferenceMethod):
    """Confidence-aware iterative weighted voting."""

    name = "CATD"

    def __init__(self, max_iterations: int = 50, tolerance: float = 1e-6, alpha: float = 0.05) -> None:
        if stats is None:
            raise ImportError("CATD needs scipy (scipy.stats)")
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.alpha = alpha

    def infer(self, crowd: CrowdLabelMatrix) -> InferenceResult:
        self._check_nonempty(crowd)
        counts = crowd.annotations_per_annotator()
        posterior = majority_vote_posterior(crowd)
        # χ²(α/2; n_j): annotators with more labels can earn larger weights.
        chi_upper = stats.chi2.ppf(1.0 - self.alpha / 2.0, df=np.maximum(counts, 1))
        weights = np.ones(crowd.num_annotators)
        monitor = ConvergenceMonitor(self.tolerance, self.max_iterations)

        while True:
            error_sum = counts - annotator_agreement(posterior, crowd)
            weights = chi_upper / np.maximum(error_sum, 1e-6)
            weights = weights / weights.max()  # scale-invariant voting

            new_posterior = normalize_vote_scores(weighted_vote_scores(weights, crowd))
            delta = float(np.abs(new_posterior - posterior).max(initial=0.0))
            posterior = new_posterior
            if monitor.step(delta):
                break

        extras = monitor.extras()
        extras["weights"] = weights
        return InferenceResult(posterior=posterior, extras=extras)


class ShardedCATD(ShardedTruthInference):
    """Map-reduce confidence-aware truth discovery.

    The chi-square interval bounds depend only on the merged per-annotator
    label counts (computed once, in the init pass); each round then needs
    only the merged error sums for the global weight update, and the
    weighted vote runs shard-local. Pinned to batch :class:`CATD` at atol
    1e-10 by the equivalence harness across shard layouts.
    """

    name = "CATD"

    def __init__(
        self, max_iterations: int = 50, tolerance: float = 1e-6, alpha: float = 0.05
    ) -> None:
        if stats is None:
            raise ImportError("CATD needs scipy (scipy.stats)")
        if not 0.0 < alpha < 1.0:
            raise ValueError("alpha must be in (0, 1)")
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.alpha = alpha

    def _init_mapper(self, params, shard):
        block = majority_vote_posterior(shard)
        return block, ShardStats(
            agreement=annotator_agreement(block, shard),
            label_counts=np.asarray(
                shard.annotations_per_annotator(), dtype=np.float64
            ),
            **shard_base_stats(shard),
        )

    def _vote_mapper(self, weights, shard, old_block):
        block = normalize_vote_scores(weighted_vote_scores(weights, shard))
        return block, ShardStats(
            agreement=annotator_agreement(block, shard),
            delta=float(np.abs(block - old_block).max(initial=0.0)),
        )

    def _infer(self, ctx) -> InferenceResult:
        _, K, blocks, merged = self._initial_pass(ctx, self._init_mapper)
        self._require_annotated(merged)
        num_shards = len(blocks)
        observations = merged.observations
        counts = merged.label_counts
        # χ²(α/2; n_j): annotators with more labels can earn larger weights.
        chi_upper = stats.chi2.ppf(1.0 - self.alpha / 2.0, df=np.maximum(counts, 1))
        monitor = ConvergenceMonitor(self.tolerance, self.max_iterations)

        while True:
            error_sum = counts - merged.agreement
            weights = chi_upper / np.maximum(error_sum, 1e-6)
            weights = weights / weights.max()  # scale-invariant voting

            blocks, merged = self._pass(ctx, blocks, self._vote_mapper, weights)
            if monitor.step(merged.delta):
                break

        extras = monitor.extras()
        extras.update(weights=weights, shards=num_shards, observations=observations)
        return InferenceResult(posterior=self._concat(blocks, K), extras=extras)


def catd_reference(
    crowd: CrowdLabelMatrix,
    max_iterations: int = 50,
    tolerance: float = 1e-6,
    alpha: float = 0.05,
) -> InferenceResult:
    """Pre-refactor CATD (dense one-hot einsums over ``(I, J, K)``).

    Kept as the executable specification for the equivalence harness and
    the benchmark baseline; use :class:`CATD`.
    """
    if stats is None:
        raise ImportError("CATD needs scipy (scipy.stats)")
    TruthInferenceMethod._check_nonempty(crowd)
    one_hot = crowd.one_hot()
    observed = crowd.observed_mask
    counts = observed.sum(axis=0)
    posterior = majority_vote_posterior(crowd)
    # χ²(α/2; n_j): annotators with more labels can earn larger weights.
    chi_upper = stats.chi2.ppf(1.0 - alpha / 2.0, df=np.maximum(counts, 1))
    weights = np.ones(crowd.num_annotators)

    iterations_used = max_iterations
    for iteration in range(max_iterations):
        agreement = np.einsum("ijk,ik->ij", one_hot, posterior)
        error_sum = np.where(observed, 1.0 - agreement, 0.0).sum(axis=0)
        weights = chi_upper / np.maximum(error_sum, 1e-6)
        weights = weights / weights.max()  # scale-invariant voting

        scores = np.einsum("j,ijk->ik", weights, one_hot)
        totals = scores.sum(axis=1, keepdims=True)
        new_posterior = np.where(
            totals > 0, scores / np.where(totals > 0, totals, 1.0),
            np.full_like(scores, 1.0 / crowd.num_classes),
        )
        delta = float(np.abs(new_posterior - posterior).max())
        posterior = new_posterior
        if delta < tolerance:
            iterations_used = iteration + 1
            break

    return InferenceResult(
        posterior=posterior,
        extras={"weights": weights, "iterations": iterations_used},
    )
