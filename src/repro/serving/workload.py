"""Serving workloads: bursty, many-dataset label traffic for CrowdService.

The streaming suite (:mod:`repro.experiments.streaming_suite`) stresses
one stream at a time; a service owns many. This module composes the
suite's generators — the simulator crowd family, the heavy-tailed
:func:`~repro.experiments.streaming_suite.burst_batch_sizes` arrival
pattern, and :func:`~repro.experiments.streaming_suite.
stream_crowd_in_batches` — into one interleaved event schedule: per-tick
a random dataset receives its next arrival batch (quiet ticks and bursts
included), followed by a Poisson number of posterior queries against
random already-started datasets. Replaying the schedule against a
:class:`~repro.serving.service.CrowdService` with a small resident
budget exercises exactly the hot/cold churn the eviction policy exists
for; the serving section of ``benchmarks/bench_hotpaths.py`` times it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..crowd.simulation import sample_annotator_pool, simulate_classification_crowd
from ..crowd.types import CrowdLabelMatrix
from ..experiments.streaming_suite import (
    StreamScenarioConfig,
    burst_batch_sizes,
    stream_crowd_in_batches,
)

__all__ = ["ServingEvent", "ServingWorkload", "build_serving_workload"]


@dataclass(frozen=True)
class ServingEvent:
    """One schedule tick: an update (with its batch) or a posterior query."""

    kind: str  # "update" | "query"
    dataset_id: str
    batch: CrowdLabelMatrix | None = None


@dataclass
class ServingWorkload:
    """An interleaved schedule plus the per-dataset simulator ground truth."""

    events: list[ServingEvent]
    truths: dict[str, np.ndarray]
    datasets: tuple[str, ...]
    config: StreamScenarioConfig = field(default_factory=StreamScenarioConfig)

    @property
    def update_count(self) -> int:
        return sum(1 for event in self.events if event.kind == "update")

    @property
    def query_count(self) -> int:
        return sum(1 for event in self.events if event.kind == "query")

    def updates_for(self, dataset_id: str) -> list[CrowdLabelMatrix]:
        """The dataset's arrival batches in schedule order (for replays)."""
        return [
            event.batch
            for event in self.events
            if event.kind == "update" and event.dataset_id == dataset_id
        ]


def build_serving_workload(
    seed: int = 0,
    datasets: int = 6,
    config: StreamScenarioConfig | None = None,
    queries_per_update: float = 1.0,
) -> ServingWorkload:
    """Deterministic bursty schedule over ``datasets`` simulated crowds.

    Each dataset draws its own annotator pool and ground truth from the
    shared seeded generator and is cut into burst-arrival batches; the
    interleaving picks a random dataset with pending arrivals per tick,
    then emits ``Poisson(queries_per_update)`` queries against random
    datasets that have already received at least one batch (the service
    would reject reads of never-seen datasets).
    """
    if datasets < 1:
        raise ValueError(f"need at least one dataset, got {datasets}")
    config = config or StreamScenarioConfig()
    rng = np.random.default_rng(seed)
    ids = tuple(f"ds-{index:03d}" for index in range(datasets))

    queues: dict[str, list[CrowdLabelMatrix]] = {}
    truths: dict[str, np.ndarray] = {}
    for dataset_id in ids:
        truth = rng.integers(0, config.num_classes, size=config.instances)
        pool = sample_annotator_pool(rng, config.annotators, config.num_classes)
        crowd = simulate_classification_crowd(
            rng, truth, pool, mean_labels_per_instance=config.mean_labels_per_instance
        )
        sizes = burst_batch_sizes(rng, config.instances, config.batch_size)
        queues[dataset_id] = stream_crowd_in_batches(crowd, sizes)
        truths[dataset_id] = truth

    events: list[ServingEvent] = []
    sent = {dataset_id: 0 for dataset_id in ids}
    live = [dataset_id for dataset_id in ids if queues[dataset_id]]
    while live:
        dataset_id = live[int(rng.integers(len(live)))]
        events.append(
            ServingEvent("update", dataset_id, queues[dataset_id][sent[dataset_id]])
        )
        sent[dataset_id] += 1
        if sent[dataset_id] == len(queues[dataset_id]):
            live.remove(dataset_id)
        for _ in range(int(rng.poisson(queries_per_update))):
            target = ids[int(rng.integers(len(ids)))]
            if sent[target] > 0:
                events.append(ServingEvent("query", target))
    return ServingWorkload(events=events, truths=truths, datasets=ids, config=config)
